"""A self-balancing (AVL) binary search tree mapping ordered keys to values.

The shape grid (Sec. 3.3 of the paper) stores, for every row or column of
cells, the non-empty cell intervals "in an AVL-tree".  This module provides
that tree as a general ordered map with the operations the grid layers need:
exact lookup, insertion, deletion, predecessor/successor queries, and ordered
range iteration.

The implementation is iterative-free recursive AVL with parent-less nodes;
heights are maintained explicitly.  All operations are O(log n).
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple


class _Node:
    __slots__ = ("key", "value", "left", "right", "height")

    def __init__(self, key: Any, value: Any) -> None:
        self.key = key
        self.value = value
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None
        self.height = 1


def _height(node: Optional[_Node]) -> int:
    return node.height if node is not None else 0


def _update(node: _Node) -> None:
    node.height = 1 + max(_height(node.left), _height(node.right))


def _balance_factor(node: _Node) -> int:
    return _height(node.left) - _height(node.right)


def _rotate_right(y: _Node) -> _Node:
    x = y.left
    assert x is not None
    y.left = x.right
    x.right = y
    _update(y)
    _update(x)
    return x


def _rotate_left(x: _Node) -> _Node:
    y = x.right
    assert y is not None
    x.right = y.left
    y.left = x
    _update(x)
    _update(y)
    return y


def _rebalance(node: _Node) -> _Node:
    _update(node)
    balance = _balance_factor(node)
    if balance > 1:
        assert node.left is not None
        if _balance_factor(node.left) < 0:
            node.left = _rotate_left(node.left)
        return _rotate_right(node)
    if balance < -1:
        assert node.right is not None
        if _balance_factor(node.right) > 0:
            node.right = _rotate_right(node.right)
        return _rotate_left(node)
    return node


class AVLTree:
    """Ordered map with O(log n) insert, delete, lookup and neighbour queries.

    Keys must be mutually comparable.  Iteration yields ``(key, value)``
    pairs in increasing key order.
    """

    def __init__(self) -> None:
        self._root: Optional[_Node] = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, key: Any) -> bool:
        return self._find(key) is not None

    def _find(self, key: Any) -> Optional[_Node]:
        node = self._root
        while node is not None:
            if key < node.key:
                node = node.left
            elif node.key < key:
                node = node.right
            else:
                return node
        return None

    def get(self, key: Any, default: Any = None) -> Any:
        node = self._find(key)
        return node.value if node is not None else default

    def __getitem__(self, key: Any) -> Any:
        node = self._find(key)
        if node is None:
            raise KeyError(key)
        return node.value

    def __setitem__(self, key: Any, value: Any) -> None:
        self.insert(key, value)

    def insert(self, key: Any, value: Any) -> None:
        """Insert ``key`` -> ``value``, replacing any existing value."""
        inserted = [False]

        def _insert(node: Optional[_Node]) -> _Node:
            if node is None:
                inserted[0] = True
                return _Node(key, value)
            if key < node.key:
                node.left = _insert(node.left)
            elif node.key < key:
                node.right = _insert(node.right)
            else:
                node.value = value
                return node
            return _rebalance(node)

        self._root = _insert(self._root)
        if inserted[0]:
            self._size += 1

    def delete(self, key: Any) -> None:
        """Remove ``key``; raises KeyError if absent."""
        removed = [False]

        def _min_node(node: _Node) -> _Node:
            while node.left is not None:
                node = node.left
            return node

        def _delete(node: Optional[_Node], key: Any) -> Optional[_Node]:
            if node is None:
                raise KeyError(key)
            if key < node.key:
                node.left = _delete(node.left, key)
            elif node.key < key:
                node.right = _delete(node.right, key)
            else:
                removed[0] = True
                if node.left is None:
                    return node.right
                if node.right is None:
                    return node.left
                successor = _min_node(node.right)
                node.key = successor.key
                node.value = successor.value
                removed[0] = False
                node.right = _delete(node.right, successor.key)
                removed[0] = True
            return _rebalance(node)

        self._root = _delete(self._root, key)
        if removed[0]:
            self._size -= 1

    def pop(self, key: Any, default: Any = ...) -> Any:
        node = self._find(key)
        if node is None:
            if default is ...:
                raise KeyError(key)
            return default
        value = node.value
        self.delete(key)
        return value

    def min_item(self) -> Tuple[Any, Any]:
        if self._root is None:
            raise KeyError("min_item on empty tree")
        node = self._root
        while node.left is not None:
            node = node.left
        return node.key, node.value

    def max_item(self) -> Tuple[Any, Any]:
        if self._root is None:
            raise KeyError("max_item on empty tree")
        node = self._root
        while node.right is not None:
            node = node.right
        return node.key, node.value

    def floor_item(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Largest (k, v) with k <= key, or None."""
        node = self._root
        best: Optional[_Node] = None
        while node is not None:
            if node.key < key:
                best = node
                node = node.right
            elif key < node.key:
                node = node.left
            else:
                return node.key, node.value
        return (best.key, best.value) if best is not None else None

    def ceiling_item(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Smallest (k, v) with k >= key, or None."""
        node = self._root
        best: Optional[_Node] = None
        while node is not None:
            if key < node.key:
                best = node
                node = node.left
            elif node.key < key:
                node = node.right
            else:
                return node.key, node.value
        return (best.key, best.value) if best is not None else None

    def lower_item(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Largest (k, v) with k < key, or None."""
        node = self._root
        best: Optional[_Node] = None
        while node is not None:
            if node.key < key:
                best = node
                node = node.right
            else:
                node = node.left
        return (best.key, best.value) if best is not None else None

    def higher_item(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Smallest (k, v) with k > key, or None."""
        node = self._root
        best: Optional[_Node] = None
        while node is not None:
            if key < node.key:
                best = node
                node = node.left
            else:
                node = node.right
        return (best.key, best.value) if best is not None else None

    def __iter__(self) -> Iterator[Tuple[Any, Any]]:
        return self.items()

    def items(self, lo: Any = None, hi: Any = None) -> Iterator[Tuple[Any, Any]]:
        """Yield (key, value) pairs with lo <= key <= hi in key order.

        ``None`` bounds are unbounded.  Uses an explicit stack so that
        deep trees cannot hit the recursion limit.
        """
        stack = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                if lo is not None and node.key < lo:
                    node = node.right
                    continue
                stack.append(node)
                node = node.left
            if not stack:
                return
            node = stack.pop()
            if hi is not None and hi < node.key:
                return
            yield node.key, node.value
            node = node.right

    def keys(self) -> Iterator[Any]:
        for key, _ in self.items():
            yield key

    def values(self) -> Iterator[Any]:
        for _, value in self.items():
            yield value

    def check_invariants(self) -> None:
        """Validate BST ordering and AVL balance (for tests)."""

        def _check(node: Optional[_Node]) -> Tuple[int, Any, Any]:
            if node is None:
                return 0, None, None
            left_height, left_min, left_max = _check(node.left)
            right_height, right_min, right_max = _check(node.right)
            if left_max is not None and not (left_max < node.key):
                raise AssertionError("BST order violated (left)")
            if right_min is not None and not (node.key < right_min):
                raise AssertionError("BST order violated (right)")
            if abs(left_height - right_height) > 1:
                raise AssertionError("AVL balance violated")
            height = 1 + max(left_height, right_height)
            if height != node.height:
                raise AssertionError("stale height")
            lo = left_min if left_min is not None else node.key
            hi = right_max if right_max is not None else node.key
            return height, lo, hi

        _check(self._root)
