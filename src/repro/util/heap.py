"""Addressable binary min-heap.

All Dijkstra variants in the reproduction (the global-routing Steiner oracle,
the interval-based on-track path search of Algorithm 4, the blockage-grid
off-track search) need decrease-key, so Python's ``heapq`` alone is not
enough.  This heap stores hashable items with comparable priorities and
supports O(log n) push / pop / decrease-key plus O(1) membership and
priority lookup.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple


class AddressableHeap:
    """Binary min-heap over (priority, item) with decrease-key by item."""

    def __init__(self) -> None:
        self._heap: List[Tuple[Any, Any]] = []
        self._index: Dict[Any, int] = {}

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __contains__(self, item: Any) -> bool:
        return item in self._index

    def priority(self, item: Any) -> Any:
        return self._heap[self._index[item]][0]

    def push(self, item: Any, priority: Any) -> None:
        """Insert ``item``, or update its priority (up or down) if present."""
        if item in self._index:
            self.update(item, priority)
            return
        self._heap.append((priority, item))
        self._index[item] = len(self._heap) - 1
        self._sift_up(len(self._heap) - 1)

    def decrease_key(self, item: Any, priority: Any) -> bool:
        """Lower ``item``'s priority; no-op if the new one is not lower.

        Returns True if the priority was changed.
        """
        pos = self._index[item]
        if not (priority < self._heap[pos][0]):
            return False
        self._heap[pos] = (priority, item)
        self._sift_up(pos)
        return True

    def update(self, item: Any, priority: Any) -> None:
        pos = self._index[item]
        old = self._heap[pos][0]
        self._heap[pos] = (priority, item)
        if priority < old:
            self._sift_up(pos)
        else:
            self._sift_down(pos)

    def peek(self) -> Tuple[Any, Any]:
        """Return (item, priority) of the minimum without removing it."""
        if not self._heap:
            raise IndexError("peek on empty heap")
        priority, item = self._heap[0]
        return item, priority

    def pop(self) -> Tuple[Any, Any]:
        """Remove and return (item, priority) of the minimum."""
        if not self._heap:
            raise IndexError("pop on empty heap")
        priority, item = self._heap[0]
        last = self._heap.pop()
        del self._index[item]
        if self._heap:
            self._heap[0] = last
            self._index[last[1]] = 0
            self._sift_down(0)
        return item, priority

    def remove(self, item: Any) -> Optional[Any]:
        """Remove ``item`` if present; return its priority or None."""
        pos = self._index.pop(item, None)
        if pos is None:
            return None
        priority = self._heap[pos][0]
        last = self._heap.pop()
        if pos < len(self._heap):
            self._heap[pos] = last
            self._index[last[1]] = pos
            self._sift_down(pos)
            self._sift_up(pos)
        return priority

    def _sift_up(self, pos: int) -> None:
        heap = self._heap
        entry = heap[pos]
        while pos > 0:
            parent = (pos - 1) >> 1
            if heap[parent][0] <= entry[0]:
                break
            heap[pos] = heap[parent]
            self._index[heap[pos][1]] = pos
            pos = parent
        heap[pos] = entry
        self._index[entry[1]] = pos

    def _sift_down(self, pos: int) -> None:
        heap = self._heap
        size = len(heap)
        entry = heap[pos]
        while True:
            child = 2 * pos + 1
            if child >= size:
                break
            right = child + 1
            if right < size and heap[right][0] < heap[child][0]:
                child = right
            if entry[0] <= heap[child][0]:
                break
            heap[pos] = heap[child]
            self._index[heap[pos][1]] = pos
            pos = child
        heap[pos] = entry
        self._index[entry[1]] = pos
