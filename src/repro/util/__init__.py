"""Generic data structures used across the BonnRoute reproduction.

These are the low-level substrates the paper's data structures are built on:
an AVL tree (the shape grid stores its interval rows in AVL trees, Sec. 3.3),
an addressable binary heap (priority queue for all Dijkstra variants), a
union-find structure (net connectivity components, Sec. 4.4), and seeded
random-number helpers (randomized rounding, Sec. 2.4, and the synthetic chip
generator).
"""

from repro.util.avl import AVLTree
from repro.util.heap import AddressableHeap
from repro.util.unionfind import UnionFind
from repro.util.rng import make_rng

__all__ = ["AVLTree", "AddressableHeap", "UnionFind", "make_rng"]
