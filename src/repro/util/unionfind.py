"""Union-find (disjoint sets) with path compression and union by rank.

Used to track the connected components of a net while the detailed router
closes one connection at a time (Sec. 4.4), and by the opens counter of the
DRC checker ("number of connected components minus number of nets").
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List


class UnionFind:
    """Disjoint sets over arbitrary hashable elements.

    Elements are added lazily on first use; ``find`` on an unseen element
    creates a singleton set for it.
    """

    def __init__(self, elements: Iterable[Any] = ()) -> None:
        self._parent: Dict[Any, Any] = {}
        self._rank: Dict[Any, int] = {}
        self._count = 0
        for element in elements:
            self.add(element)

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, element: Any) -> bool:
        return element in self._parent

    @property
    def component_count(self) -> int:
        """Number of disjoint sets currently tracked."""
        return self._count

    def add(self, element: Any) -> None:
        if element not in self._parent:
            self._parent[element] = element
            self._rank[element] = 0
            self._count += 1

    def find(self, element: Any) -> Any:
        if element not in self._parent:
            self.add(element)
            return element
        root = element
        parent = self._parent
        while parent[root] is not root and parent[root] != root:
            root = parent[root]
        while parent[element] != root:
            parent[element], element = root, parent[element]
        return root

    def union(self, a: Any, b: Any) -> bool:
        """Merge the sets of a and b; return True if they were separate."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        self._count -= 1
        return True

    def connected(self, a: Any, b: Any) -> bool:
        return self.find(a) == self.find(b)

    def components(self) -> List[List[Any]]:
        """Return all sets as lists (order deterministic by insertion)."""
        groups: Dict[Any, List[Any]] = {}
        for element in self._parent:
            groups.setdefault(self.find(element), []).append(element)
        return list(groups.values())
