"""Seeded random-number helpers.

Every stochastic component (randomized rounding of the fractional global
routing, Sec. 2.4, and the synthetic chip generator) takes an explicit seed
so that tests and benchmarks are reproducible run to run.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence


def make_rng(seed: Optional[int]) -> random.Random:
    """Return a ``random.Random`` seeded deterministically.

    ``None`` maps to a fixed default seed rather than OS entropy: the
    reproduction must be deterministic unless the caller explicitly varies
    the seed.
    """
    return random.Random(0xB0A2 if seed is None else seed)


def weighted_choice(rng: random.Random, weights: Sequence[float]) -> int:
    """Sample an index proportionally to non-negative ``weights``.

    Used by randomized rounding to pick one Steiner forest from the convex
    combination returned by the resource sharing algorithm.
    """
    total = float(sum(weights))
    if total <= 0.0:
        raise ValueError("weighted_choice needs a positive total weight")
    pick = rng.random() * total
    acc = 0.0
    for index, weight in enumerate(weights):
        acc += weight
        if pick < acc:
            return index
    return len(weights) - 1


def sample_distinct(rng: random.Random, population: int, k: int) -> List[int]:
    """k distinct integers from range(population), sorted, deterministic."""
    if k > population:
        raise ValueError("cannot sample more items than the population size")
    return sorted(rng.sample(range(population), k))
