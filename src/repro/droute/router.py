"""Detailed router facade.

Orchestrates the full detailed-routing flow of the paper:

1. pin access preprocessing: per-circuit conflict-free access paths are
   computed and reserved (Sec. 4.3);
2. critical nets (weight > 1) route first (Sec. 5.1);
3. remaining nets route in partition rounds (Sec. 5.1), each restricted
   to its global-routing corridor when one is given (Sec. 4.4);
4. failed nets climb the escalation ladder: growing ripup effort and
   expanded routing areas (the paper's retry discipline), then forced
   off-track access, then the ISR-baseline node search as a fallback
   engine; nets ripped out by others re-enter the queue.

A net that exhausts the ladder is recorded as a structured
:class:`~repro.flow.resilience.NetFailure` instead of raising, so one
pathological net cannot abort the whole chip.  Per-net soft deadlines
and a hard per-stage wall-clock budget bound how long any of this may
take.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.chip.design import Chip
from repro.chip.net import Net
from repro.droute.area import RoutingArea
from repro.droute.connect import ConnectionStats, NetConnector
from repro.droute.future_cost import SearchCosts
from repro.droute.partition import assign_nets_to_rounds, partition_sequence
from repro.droute.pinaccess import PinAccessPlanner
from repro.droute.route import ViaInstance
from repro.droute.space import RoutingSpace
from repro.tech.wiring import StickFigure
from repro.flow.resilience import (
    Deadline,
    EscalationRung,
    NetFailure,
    NetRetryPolicy,
    REASON_EXCEPTION,
    REASON_STAGE_BUDGET,
    REASON_TIMEOUT,
    REASON_UNROUTABLE,
    escalation_ladder,
)
from repro.obs import OBS

#: Stage label used in :class:`NetFailure` records from this router.
STAGE_NAME = "detailed"


class DetailedRoutingResult:
    """Outcome and metrics of a detailed-routing run."""

    def __init__(self, chip: Chip) -> None:
        self.chip = chip
        self.routed: Set[str] = set()
        self.failed: Set[str] = set()
        self.open_connections = 0
        self.wire_length = 0
        self.via_count = 0
        self.runtime = 0.0
        self.stats = ConnectionStats()
        self.ripup_events = 0
        self.access_cache_hits = 0
        self.access_cache_misses = 0
        #: net name -> structured failure record for every failed net.
        self.failures: Dict[str, NetFailure] = {}
        #: Nets that failed at least one attempt but eventually routed,
        #: mapped to the ladder rung that succeeded.
        self.recovered: Dict[str, str] = {}
        #: Total retry attempts (queue re-entries past the first try).
        self.retries = 0
        #: Attempts run on a rung beyond the baseline retry discipline.
        self.escalations = 0
        #: Set when the hard stage budget expired with nets still queued.
        self.stage_budget_exhausted = False
        #: Worker-pool incidents (crashes, timeouts, degradations) when
        #: the run executed with ``workers > 1``; plain dicts, folded
        #: into :class:`~repro.flow.resilience.FlowFailureReport`.
        self.pool_events: List[Dict[str, object]] = []
        #: Set when the worker pool degraded to in-process serial
        #: execution for the remainder of the run.
        self.pool_degraded = False

    @property
    def opens(self) -> int:
        """Connected components minus nets (the error metric of Table I)."""
        return self.open_connections

    def summary(self) -> Dict[str, float]:
        return {
            "nets": len(self.chip.nets),
            "routed": len(self.routed),
            "failed": len(self.failed),
            "opens": self.open_connections,
            "wire_length": self.wire_length,
            "vias": self.via_count,
            "runtime": self.runtime,
            "searches": self.stats.searches,
            "ripup_events": self.ripup_events,
            "retries": self.retries,
            "escalations": self.escalations,
            "recovered": len(self.recovered),
            "stage_budget_exhausted": self.stage_budget_exhausted,
            "pool_events": len(self.pool_events),
            "pool_degraded": self.pool_degraded,
        }


class _RunState:
    """Cross-queue bookkeeping of one detailed-routing run.

    The retry ladder may be driven by several queue drains (critical
    nets, then per-round serial or post-merge redo queues); attempt
    counts, rung histories and the ripped-net log must survive across
    them so the ping-pong guard and failure records see the whole run.
    """

    __slots__ = (
        "nets_by_name",
        "attempt_counts",
        "rungs_tried",
        "last_error",
        "ripped_names",
    )

    def __init__(self, nets: Sequence[Net]) -> None:
        self.nets_by_name: Dict[str, Net] = {net.name: net for net in nets}
        self.attempt_counts: Dict[str, int] = {}
        #: Ladder rungs attempted and last error text, per net.
        self.rungs_tried: Dict[str, List[str]] = {}
        self.last_error: Dict[str, Optional[str]] = {}
        #: Nets whose previous wiring was ripped out at least once.
        self.ripped_names: Set[str] = set()

    def merge_worker(self, attempts: Dict[str, int]) -> None:
        """Fold a worker's attempt counts in (workers start fresh, so
        the larger count is the true total for each net)."""
        for name, count in attempts.items():
            if count > self.attempt_counts.get(name, 0):
                self.attempt_counts[name] = count


class DetailedRouter:
    """Track-based detailed router (Sec. 4)."""

    def __init__(
        self,
        space: RoutingSpace,
        corridors: Optional[Dict[str, RoutingArea]] = None,
        corridor_detours: Optional[Dict[str, float]] = None,
        costs: Optional[SearchCosts] = None,
        threads: int = 4,
        max_retry_rounds: int = 2,
        use_interval_search: bool = True,
        enable_pin_access: bool = True,
        spreading=None,
        fault_injector=None,
        net_deadline_s: Optional[float] = None,
        stage_budget_s: Optional[float] = None,
        retry_policy: Optional[NetRetryPolicy] = None,
        session=None,
        workers: int = 1,
        region_timeout_s: Optional[float] = None,
        round_checkpoint=None,
        search_kernel=None,
    ) -> None:
        self.space = space
        self.chip = space.chip
        #: Number of real worker processes for the partition rounds
        #: (Sec. 5.1); 1 keeps the historical single-process path.
        #: ``threads`` still controls the partition *structure* (region
        #: counts per round), so the net order — and therefore the
        #: routing result — is independent of the worker count.
        self.workers = max(1, int(workers))
        #: Per-region wall-clock deadline the pool supervisor enforces on
        #: workers (None: no deadline; hung workers are then only bounded
        #: by the stage budget).
        self.region_timeout_s = region_timeout_s
        #: Optional callable ``(round_index, result) -> None`` invoked
        #: after each completed partition round (parallel path only);
        #: the flow uses it for round-granular checkpoints.
        self.round_checkpoint = round_checkpoint
        #: Optional :class:`repro.engine.session.RoutingSession`.  When
        #: set, corridors/detours come from the session records, the pin
        #: access planner and reserved access paths persist on the
        #: session across reroutes, and nets ripped up during an ECO pass
        #: are pulled back in from the chip even when outside the given
        #: net subset.
        self.session = session
        if session is not None:
            if corridors is None:
                corridors = session.corridor_map()
            if corridor_detours is None:
                corridor_detours = session.detour_map()
        #: Per-net routing areas from global routing (Sec. 4.4); nets
        #: without an entry route in the whole chip.
        self.corridors = corridors if corridors is not None else {}
        self.corridor_detours = corridor_detours if corridor_detours is not None else {}
        self.costs = costs if costs is not None else SearchCosts()
        self.threads = threads
        self.max_retry_rounds = max_retry_rounds
        self.use_interval_search = use_interval_search
        self.enable_pin_access = enable_pin_access
        self.fault_injector = fault_injector
        self.net_deadline_s = net_deadline_s
        self.stage_budget_s = stage_budget_s
        self.ladder: List[EscalationRung] = escalation_ladder(max_retry_rounds)
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else NetRetryPolicy(max_attempts=len(self.ladder))
        )
        if session is not None and session.planner is not None:
            self.planner = session.planner
        else:
            self.planner = PinAccessPlanner(space, fault_injector=fault_injector)
            if session is not None:
                session.planner = self.planner
        access_paths = session.access_paths if session is not None else {}
        #: Queue/label engine for the path searches (``heap`` or
        #: ``bucket``, see droute/pathsearch.py); forked workers inherit
        #: it with the router, so parallel rounds use the same kernel.
        self.search_kernel = search_kernel
        self.connector = NetConnector(
            space,
            costs=self.costs,
            access_paths=access_paths,
            planner=self.planner,
            use_interval_search=use_interval_search,
            spreading=spreading,
            fault_injector=fault_injector,
            search_kernel=search_kernel,
        )
        #: Lazily built node-search connector for the isr_fallback rung.
        #: It shares the access paths and planner with the primary
        #: connector but carries no fault injector and always runs the
        #: reference ``heap`` kernel: it is the independent engine that
        #: survives faults in the interval machinery *and* in the tuned
        #: bucket kernel.
        self._fallback: Optional[NetConnector] = None

    def _fallback_connector(self) -> NetConnector:
        if self._fallback is None:
            self._fallback = NetConnector(
                self.space,
                costs=self.costs,
                access_paths=self.connector.access_paths,
                planner=self.planner,
                use_interval_search=False,
                search_kernel="heap",
            )
        return self._fallback

    # ------------------------------------------------------------------
    # Pin access preprocessing (Sec. 4.3)
    # ------------------------------------------------------------------
    def preprocess_pin_access(self, nets: Sequence[Net]) -> None:
        by_circuit: Dict[int, List] = {}
        for net in nets:
            for pin in net.pins:
                if pin.circuit_id is None:
                    continue
                if pin.name in self.connector.access_paths:
                    # Already reserved (a session reroute reuses the
                    # previous run's catalogue); reserving again would
                    # double-insert the path's shapes.
                    continue
                by_circuit.setdefault(pin.circuit_id, []).append(pin)
        circuits = {c.instance_id: c for c in self.chip.circuits}
        for circuit_id, pins in sorted(by_circuit.items()):
            circuit = circuits.get(circuit_id)
            if circuit is None:
                continue
            try:
                catalogues = self.planner.circuit_catalogues(circuit, pins)
                solution = self.planner.conflict_free_solution(catalogues)
            except Exception:  # noqa: BLE001 - isolation boundary
                # A fault while preprocessing one circuit costs only its
                # reserved access paths; the connector generates dynamic
                # access for those pins during routing instead.
                continue
            if solution is None:
                continue
            for pin_name, path in solution.items():
                self.planner.reserve(path)
                self.connector.access_paths[pin_name] = path

    # ------------------------------------------------------------------
    # Net ordering
    # ------------------------------------------------------------------
    def _order_nets(self, nets: Sequence[Net]) -> List[Net]:
        """Critical nets first (Sec. 5.1), then partition-round order."""
        critical = sorted(
            (n for n in nets if n.weight > 1.0),
            key=lambda n: (-n.weight, n.half_perimeter()),
        )
        ordinary = [n for n in nets if n.weight <= 1.0]
        sequence = partition_sequence(self.chip, self.threads)
        rounds = assign_nets_to_rounds(self.chip, sequence, ordinary)
        ordered: List[Net] = list(critical)
        for round_nets in rounds:
            round_sorted = sorted(
                round_nets, key=lambda item: (item[0], item[1].half_perimeter())
            )
            ordered.extend(net for _region, net in round_sorted)
        return ordered

    def _area_for(
        self, net: Net, expansion: Optional[int] = 0
    ) -> Tuple[RoutingArea, float]:
        area = self.corridors.get(net.name)
        if area is None:
            return RoutingArea.everywhere(), 1.0
        detour = self.corridor_detours.get(net.name, 1.0)
        if expansion is None or expansion >= self.max_retry_rounds:
            # Last chance: drop the corridor entirely (Sec. 4.4, "extended
            # routing area").
            return RoutingArea.everywhere(), detour
        if expansion > 0:
            pitch = self.chip.stack[self.chip.stack.bottom].pitch
            area = area.expanded(expansion * 8 * pitch)
        return area, detour

    def _rung_for(self, attempt: int) -> EscalationRung:
        return self.ladder[min(attempt, len(self.ladder) - 1)]

    def _attempt_deadline(
        self, stage_deadline: Optional[Deadline]
    ) -> Optional[Deadline]:
        net_deadline = (
            Deadline(self.net_deadline_s) if self.net_deadline_s is not None else None
        )
        return Deadline.soonest(net_deadline, stage_deadline)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, nets: Optional[Sequence[Net]] = None) -> DetailedRoutingResult:
        start = time.time()
        if nets is None:
            nets = self.chip.nets
        result = DetailedRoutingResult(self.chip)
        stage_deadline = (
            Deadline(self.stage_budget_s) if self.stage_budget_s is not None else None
        )
        if self.enable_pin_access:
            with OBS.trace("droute.pin_access", nets=len(nets)):
                self.preprocess_pin_access(nets)
        state = _RunState(nets)
        if self.workers > 1:
            self._run_parallel(list(nets), result, state, stage_deadline)
        else:
            queue = [(net, 0) for net in self._order_nets(nets)]
            self._route_queue(queue, result, state, stage_deadline)
        result.wire_length = self.space.total_wire_length()
        result.via_count = self.space.total_via_count()
        result.runtime = time.time() - start
        result.access_cache_hits = self.planner.cache_hits
        result.access_cache_misses = self.planner.cache_misses
        return result

    def _record_failure(
        self,
        result: DetailedRoutingResult,
        state: _RunState,
        net: Net,
        reason: str,
        open_connections: int = 0,
    ) -> None:
        result.failed.add(net.name)
        result.routed.discard(net.name)
        result.failures[net.name] = NetFailure(
            net.name,
            STAGE_NAME,
            reason,
            attempts=state.attempt_counts.get(net.name, 0),
            rungs_tried=state.rungs_tried.get(net.name, []),
            error=state.last_error.get(net.name),
            open_connections=open_connections,
        )
        OBS.flight_note(
            "resilience.net_failure",
            net=net.name,
            reason=reason,
            attempts=state.attempt_counts.get(net.name, 0),
        )
        if OBS.enabled:
            OBS.count("droute.nets_failed")
            OBS.event(
                "resilience.net_failure",
                net=net.name,
                reason=reason,
                attempts=state.attempt_counts.get(net.name, 0),
                opens=open_connections,
            )

    def _route_queue(
        self,
        queue: List[Tuple[Net, int]],
        result: DetailedRoutingResult,
        state: _RunState,
        stage_deadline: Optional[Deadline],
        defer: Optional[List[Tuple[Net, int]]] = None,
    ) -> None:
        """Drain ``queue`` through the escalation ladder.

        This is the historical serial main loop.  ``defer`` changes one
        thing only: retries and re-queued ripped nets append to that
        list instead of ``queue``.  The parallel path routes sub-queues
        (critical nets, per-round serial redo) with a shared ``defer``
        list and drains it at the very end — which lands every deferred
        net in exactly the position the single-queue serial run would
        have given it (appends always land behind all first attempts).
        """
        retry_sink = defer if defer is not None else queue
        while queue:
            if stage_deadline is not None and stage_deadline.expired:
                # Hard budget: everything still queued becomes a
                # structured open instead of silently vanishing.
                result.stage_budget_exhausted = True
                for net, _attempt in queue:
                    if net.name in result.routed or net.name in result.failed:
                        continue
                    self._record_failure(
                        result, state, net, REASON_STAGE_BUDGET, open_connections=1
                    )
                    result.open_connections += 1
                break
            net, attempt = queue.pop(0)
            state.attempt_counts[net.name] = (
                state.attempt_counts.get(net.name, 0) + 1
            )
            if state.attempt_counts[net.name] > len(self.ladder) + 2:
                # Ripup ping-pong guard: a net bounced around this often
                # is declared open rather than looping forever.
                self._record_failure(
                    result, state, net, REASON_UNROUTABLE, open_connections=1
                )
                result.open_connections += 1
                continue
            if attempt > 0:
                result.retries += 1
                self.retry_policy.backoff(attempt)
            rung = self._rung_for(attempt)
            escalated = attempt >= len(self.ladder) - 2 and rung.name != "baseline"
            if escalated:
                result.escalations += 1
            if OBS.enabled:
                if attempt > 0:
                    OBS.count("droute.retries")
                    OBS.event(
                        "resilience.retry",
                        net=net.name, attempt=attempt, rung=rung.name,
                    )
                if escalated:
                    OBS.count("droute.escalations")
                    OBS.event(
                        "resilience.escalation", net=net.name, rung=rung.name
                    )
            state.rungs_tried.setdefault(net.name, [])
            if (
                not state.rungs_tried[net.name]
                or state.rungs_tried[net.name][-1] != rung.name
            ):
                state.rungs_tried[net.name].append(rung.name)
            area, detour = self._area_for(net, expansion=rung.corridor_expansion)
            connector = (
                self._fallback_connector()
                if rung.engine == "isr"
                else self.connector
            )
            deadline = self._attempt_deadline(stage_deadline)
            failure_reason: Optional[str] = None
            connection = None
            try:
                with OBS.trace(
                    "droute.net", net=net.name, attempt=attempt, rung=rung.name
                ):
                    connection = connector.connect_net(
                        net,
                        area,
                        max_ripup_level=rung.ripup_level,
                        corridor_detour=detour,
                        deadline=deadline,
                        force_off_track_access=rung.force_off_track_access,
                    )
            except Exception as error:  # noqa: BLE001 - isolation boundary
                # Per-net isolation: an injected or genuine fault in the
                # search machinery costs one attempt, not the chip.
                state.last_error[net.name] = f"{type(error).__name__}: {error}"
                failure_reason = REASON_EXCEPTION
            if connection is not None:
                result.stats.merge(connection.stats)
                if connection.ripped_nets:
                    result.ripup_events += len(connection.ripped_nets)
                    if OBS.enabled:
                        OBS.count(
                            "droute.ripup_events", len(connection.ripped_nets)
                        )
                    for ripped_name in connection.ripped_nets:
                        ripped_net = state.nets_by_name.get(ripped_name)
                        if ripped_net is None and self.session is not None:
                            # ECO pass: a clean net outside the dirty
                            # subset was ripped; pull it into this run so
                            # its wiring is restored, and record the
                            # propagation.
                            ripped_net = self.session.net_or_none(ripped_name)
                            if ripped_net is not None:
                                state.nets_by_name[ripped_name] = ripped_net
                                self.session.mark_ripup_propagated(ripped_name)
                        if ripped_net is None:
                            continue
                        state.ripped_names.add(ripped_name)
                        result.routed.discard(ripped_name)
                        retry_sink.append(
                            (ripped_net, state.attempt_counts.get(ripped_name, 0))
                        )
                if connection.deadline_expired:
                    state.last_error[net.name] = "soft deadline expired mid-search"
                    failure_reason = REASON_TIMEOUT
                elif connection.success:
                    result.routed.add(net.name)
                    result.failed.discard(net.name)
                    result.failures.pop(net.name, None)
                    if OBS.enabled:
                        OBS.count("droute.nets_routed")
                    if attempt > 0:
                        result.recovered[net.name] = rung.name
                        if OBS.enabled:
                            OBS.event(
                                "resilience.recovery",
                                net=net.name, rung=rung.name,
                            )
                    continue
                else:
                    failure_reason = REASON_UNROUTABLE
            next_attempt = attempt + 1
            if next_attempt < len(self.ladder) and self.retry_policy.allows(
                next_attempt
            ):
                retry_sink.append((net, next_attempt))
            else:
                opens = (
                    connection.open_connections
                    if connection is not None and connection.open_connections
                    else 1
                )
                self._record_failure(
                    result, state, net, failure_reason or REASON_UNROUTABLE, opens
                )
                result.open_connections += opens

    # ------------------------------------------------------------------
    # Parallel execution (Sec. 5.1 with real worker processes)
    # ------------------------------------------------------------------
    def _run_parallel(
        self,
        nets: List[Net],
        result: DetailedRoutingResult,
        state: _RunState,
        stage_deadline: Optional[Deadline],
    ) -> None:
        """Partition rounds on a crash-tolerant worker pool.

        Workers run *first attempts only* (the baseline rung forbids
        ripup, so first attempts never disturb other nets' wiring); every
        failed first attempt is deferred to a parent-side queue drained
        serially after the last round.  Appends to the single serial
        queue always land behind all first attempts, so this split
        reproduces the serial net order exactly — N-worker output is
        bit-identical to serial whenever the Sec. 5.1 safety margins keep
        the regions' first attempts independent (merge detects and
        serially redoes the rare violations).
        """
        from repro.droute import pool as pool_mod

        if not pool_mod.fork_available():
            result.pool_degraded = True
            result.pool_events.append(
                {"kind": "pool_unavailable", "detail": "fork start method unavailable"}
            )
            if OBS.enabled:
                OBS.count("pool.degraded")
                OBS.event("pool.degraded", reason="no_fork")
            queue = [(net, 0) for net in self._order_nets(nets)]
            self._route_queue(queue, result, state, stage_deadline)
            return
        critical = sorted(
            (n for n in nets if n.weight > 1.0),
            key=lambda n: (-n.weight, n.half_perimeter()),
        )
        ordinary = [n for n in nets if n.weight <= 1.0]
        sequence = partition_sequence(self.chip, self.threads)
        rounds = assign_nets_to_rounds(self.chip, sequence, ordinary)
        deferred: List[Tuple[Net, int]] = []
        if critical:
            self._route_queue(
                [(net, 0) for net in critical],
                result, state, stage_deadline, defer=deferred,
            )
        supervisor = pool_mod.PoolSupervisor(
            self,
            result,
            workers=self.workers,
            region_timeout_s=self.region_timeout_s,
        )
        for round_index, round_nets in enumerate(rounds):
            ordered = sorted(
                round_nets, key=lambda item: (item[0], item[1].half_perimeter())
            )
            by_region: Dict[int, List[Net]] = {}
            for region, net in ordered:
                by_region.setdefault(region, []).append(net)
            budget_left = stage_deadline is None or not stage_deadline.expired
            self._prefetch_shards(sequence[round_index], by_region)
            if ordered and len(by_region) > 1 and budget_left and not supervisor.degraded:
                round_start = time.time()
                with OBS.trace(
                    "pool.round",
                    round=round_index,
                    regions=len(by_region),
                    nets=len(ordered),
                ):
                    outcomes = supervisor.run_round(
                        round_index, by_region, stage_deadline
                    )
                if OBS.enabled:
                    OBS.count("pool.rounds_parallel")
                    OBS.observe("pool.round_wall_s", time.time() - round_start)
                self._merge_outcomes(
                    by_region, outcomes, result, state, stage_deadline, deferred
                )
            elif ordered:
                if OBS.enabled:
                    OBS.count("pool.rounds_serial")
                self._route_queue(
                    [(net, 0) for _region, net in ordered],
                    result, state, stage_deadline, defer=deferred,
                )
            if self.round_checkpoint is not None:
                self.round_checkpoint(round_index, result)
        result.pool_degraded = result.pool_degraded or supervisor.degraded
        # Global drain: retries, escalations and re-queued ripped nets,
        # in the exact order the single-queue serial run appends them.
        self._route_queue(deferred, result, state, stage_deadline)

    def _prefetch_shards(self, partition_round, by_region: Dict[int, List[Net]]) -> None:
        """Warm the session's shard store for this round's active regions.

        A bounded-residency :class:`repro.io.shards.ShardStore` evicts
        least-recently-used shards; touching each active region's shards
        up front keeps the round's geometry sources resident while it
        runs.  Purely a cache hint — routing reads only the already
        constructed in-memory space, so this never affects results.
        """
        session = self.session
        store = getattr(session, "shard_store", None) if session is not None else None
        if store is None or not by_region:
            return
        for region_index in sorted(by_region):
            if 0 <= region_index < len(partition_round.regions):
                store.prefetch(partition_round.regions[region_index])

    def _merge_outcomes(
        self,
        by_region: Dict[int, List[Net]],
        outcomes: Dict[int, Optional[Dict[str, object]]],
        result: DetailedRoutingResult,
        state: _RunState,
        stage_deadline: Optional[Deadline],
        deferred: List[Tuple[Net, int]],
    ) -> None:
        """Fold one round's worker outcomes back into the parent state.

        Regions merge in index order (the serial processing order).  A
        worker-routed net commits only if its wiring is still DRC-legal
        against everything merged before it; conflicts — possible only
        when the safety margins were too tight — are redone in-process
        immediately, at the net's serial queue position.
        """
        merged = 0
        conflicts = 0
        with OBS.trace("pool.merge", regions=len(by_region)):
            for region_index in sorted(by_region):
                region_nets = by_region[region_index]
                outcome = outcomes.get(region_index)
                if outcome is None:
                    # The region's worker(s) died beyond the retry budget
                    # (or the pool degraded): route it in-process at its
                    # serial position.
                    self._route_queue(
                        [(net, 0) for net in region_nets],
                        result, state, stage_deadline, defer=deferred,
                    )
                    continue
                result.stats.merge(outcome["stats"])
                state.merge_worker(outcome["attempts"])
                state.last_error.update(outcome["errors"])
                redo: List[Tuple[Net, int]] = []
                for name in outcome["order"]:
                    state.rungs_tried.setdefault(name, [])
                    if (
                        not state.rungs_tried[name]
                        or state.rungs_tried[name][-1] != "baseline"
                    ):
                        state.rungs_tried[name].append("baseline")
                    payload = outcome["routed"].get(name)
                    if payload is None:
                        # Failed first attempt: defer exactly like the
                        # serial loop's `queue.append((net, 1))`.
                        deferred.append((state.nets_by_name[name], 1))
                        continue
                    if self._replay_worker_route(name, payload):
                        merged += 1
                        result.routed.add(name)
                    else:
                        conflicts += 1
                        redo.append((state.nets_by_name[name], 0))
                        if OBS.enabled:
                            OBS.event(
                                "pool.merge_conflict",
                                net=name, region=region_index,
                            )
                if OBS.enabled:
                    # Repatriate the worker's telemetry for this region:
                    # span/event records fold into the parent's trace
                    # (and sink), metrics merge kind-appropriately —
                    # counters add, histograms merge their states,
                    # ``resource.*`` gauges keep the process-tree max.
                    OBS.adopt_records(outcome.get("obs_records") or [])
                    OBS.merge_worker_metrics(
                        counters=outcome.get("obs_counters"),
                        gauges=outcome.get("obs_gauges"),
                        histograms=outcome.get("obs_histograms"),
                    )
                if redo:
                    # The worker's route no longer fits: re-search in the
                    # parent.  Attempt counts already include the
                    # worker's try, so pre-decrement to keep the ladder
                    # arithmetic identical to a single in-process attempt.
                    for net, _attempt in redo:
                        state.attempt_counts[net.name] = max(
                            0, state.attempt_counts.get(net.name, 0) - 1
                        )
                    self._route_queue(
                        redo, result, state, stage_deadline, defer=deferred
                    )
        if OBS.enabled:
            OBS.count("pool.nets_merged", merged)
            if conflicts:
                OBS.count("pool.merge_conflicts", conflicts)

    def _replay_worker_route(self, name: str, payload) -> bool:
        """Commit a worker's serialized route if still DRC-legal here."""
        wires, vias = payload
        for type_name, level, layer, x0, y0, x1, y1 in wires:
            stick = StickFigure(layer, x0, y0, x1, y1)
            if not self.space.check_wire(type_name, stick, name).legal:
                return False
        for type_name, level, via_layer, x, y in vias:
            via = ViaInstance(via_layer, x, y)
            if not self.space.check_via(type_name, via, name).legal:
                return False
        for type_name, level, layer, x0, y0, x1, y1 in wires:
            self.space.add_wire(
                name, type_name, StickFigure(layer, x0, y0, x1, y1),
                level, off_track=True,
            )
        for type_name, level, via_layer, x, y in vias:
            self.space.add_via(
                name, type_name, ViaInstance(via_layer, x, y),
                level, off_track=True,
            )
        return True

    def first_attempt(self, net: Net, stage_deadline: Optional[Deadline] = None):
        """One baseline-rung attempt; the worker-process routing step.

        Returns ``(connection_or_None, error_text_or_None)``; commits
        wiring into ``self.space`` on success, exactly like the first
        iteration of :meth:`_route_queue` for a fresh net.
        """
        rung = self.ladder[0]
        area, detour = self._area_for(net, expansion=rung.corridor_expansion)
        deadline = self._attempt_deadline(stage_deadline)
        try:
            with OBS.trace(
                "droute.net", net=net.name, attempt=0, rung=rung.name
            ):
                connection = self.connector.connect_net(
                    net,
                    area,
                    max_ripup_level=rung.ripup_level,
                    corridor_detour=detour,
                    deadline=deadline,
                    force_off_track_access=rung.force_off_track_access,
                )
        except Exception as error:  # noqa: BLE001 - isolation boundary
            return None, f"{type(error).__name__}: {error}"
        return connection, None
