"""Detailed router facade.

Orchestrates the full detailed-routing flow of the paper:

1. pin access preprocessing: per-circuit conflict-free access paths are
   computed and reserved (Sec. 4.3);
2. critical nets (weight > 1) route first (Sec. 5.1);
3. remaining nets route in partition rounds (Sec. 5.1), each restricted
   to its global-routing corridor when one is given (Sec. 4.4);
4. failed nets are retried with growing ripup effort and expanded
   routing areas; nets ripped out by others re-enter the queue.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.chip.design import Chip
from repro.chip.net import Net
from repro.droute.area import RoutingArea
from repro.droute.connect import ConnectionStats, NetConnector
from repro.droute.future_cost import SearchCosts
from repro.droute.partition import assign_nets_to_rounds, partition_sequence
from repro.droute.pinaccess import PinAccessPlanner
from repro.droute.space import RoutingSpace
from repro.grid.shapegrid import RipupLevel


class DetailedRoutingResult:
    """Outcome and metrics of a detailed-routing run."""

    def __init__(self, chip: Chip) -> None:
        self.chip = chip
        self.routed: Set[str] = set()
        self.failed: Set[str] = set()
        self.open_connections = 0
        self.wire_length = 0
        self.via_count = 0
        self.runtime = 0.0
        self.stats = ConnectionStats()
        self.ripup_events = 0
        self.access_cache_hits = 0
        self.access_cache_misses = 0

    @property
    def opens(self) -> int:
        """Connected components minus nets (the error metric of Table I)."""
        return self.open_connections

    def summary(self) -> Dict[str, float]:
        return {
            "nets": len(self.chip.nets),
            "routed": len(self.routed),
            "failed": len(self.failed),
            "opens": self.open_connections,
            "wire_length": self.wire_length,
            "vias": self.via_count,
            "runtime": self.runtime,
            "searches": self.stats.searches,
            "ripup_events": self.ripup_events,
        }


class DetailedRouter:
    """Track-based detailed router (Sec. 4)."""

    def __init__(
        self,
        space: RoutingSpace,
        corridors: Optional[Dict[str, RoutingArea]] = None,
        corridor_detours: Optional[Dict[str, float]] = None,
        costs: Optional[SearchCosts] = None,
        threads: int = 4,
        max_retry_rounds: int = 2,
        use_interval_search: bool = True,
        enable_pin_access: bool = True,
        spreading=None,
    ) -> None:
        self.space = space
        self.chip = space.chip
        #: Per-net routing areas from global routing (Sec. 4.4); nets
        #: without an entry route in the whole chip.
        self.corridors = corridors if corridors is not None else {}
        self.corridor_detours = corridor_detours if corridor_detours is not None else {}
        self.costs = costs if costs is not None else SearchCosts()
        self.threads = threads
        self.max_retry_rounds = max_retry_rounds
        self.use_interval_search = use_interval_search
        self.enable_pin_access = enable_pin_access
        self.planner = PinAccessPlanner(space)
        self.connector = NetConnector(
            space,
            costs=self.costs,
            access_paths={},
            planner=self.planner,
            use_interval_search=use_interval_search,
            spreading=spreading,
        )

    # ------------------------------------------------------------------
    # Pin access preprocessing (Sec. 4.3)
    # ------------------------------------------------------------------
    def preprocess_pin_access(self, nets: Sequence[Net]) -> None:
        by_circuit: Dict[int, List] = {}
        for net in nets:
            for pin in net.pins:
                if pin.circuit_id is None:
                    continue
                by_circuit.setdefault(pin.circuit_id, []).append(pin)
        circuits = {c.instance_id: c for c in self.chip.circuits}
        for circuit_id, pins in sorted(by_circuit.items()):
            circuit = circuits.get(circuit_id)
            if circuit is None:
                continue
            catalogues = self.planner.circuit_catalogues(circuit, pins)
            solution = self.planner.conflict_free_solution(catalogues)
            if solution is None:
                continue
            for pin_name, path in solution.items():
                self.planner.reserve(path)
                self.connector.access_paths[pin_name] = path

    # ------------------------------------------------------------------
    # Net ordering
    # ------------------------------------------------------------------
    def _order_nets(self, nets: Sequence[Net]) -> List[Net]:
        """Critical nets first (Sec. 5.1), then partition-round order."""
        critical = sorted(
            (n for n in nets if n.weight > 1.0),
            key=lambda n: (-n.weight, n.half_perimeter()),
        )
        ordinary = [n for n in nets if n.weight <= 1.0]
        sequence = partition_sequence(self.chip, self.threads)
        rounds = assign_nets_to_rounds(self.chip, sequence, ordinary)
        ordered: List[Net] = list(critical)
        for round_nets in rounds:
            round_sorted = sorted(
                round_nets, key=lambda item: (item[0], item[1].half_perimeter())
            )
            ordered.extend(net for _region, net in round_sorted)
        return ordered

    def _area_for(self, net: Net, expansion: int = 0) -> Tuple[RoutingArea, float]:
        area = self.corridors.get(net.name)
        if area is None:
            return RoutingArea.everywhere(), 1.0
        detour = self.corridor_detours.get(net.name, 1.0)
        if expansion >= self.max_retry_rounds:
            # Last chance: drop the corridor entirely (Sec. 4.4, "extended
            # routing area").
            return RoutingArea.everywhere(), detour
        if expansion > 0:
            pitch = self.chip.stack[self.chip.stack.bottom].pitch
            area = area.expanded(expansion * 8 * pitch)
        return area, detour

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, nets: Optional[Sequence[Net]] = None) -> DetailedRoutingResult:
        start = time.time()
        if nets is None:
            nets = self.chip.nets
        result = DetailedRoutingResult(self.chip)
        if self.enable_pin_access:
            self.preprocess_pin_access(nets)
        queue: List[Tuple[Net, int]] = [(net, 0) for net in self._order_nets(nets)]
        nets_by_name = {net.name: net for net in nets}
        attempt_counts: Dict[str, int] = {}
        while queue:
            net, attempt = queue.pop(0)
            attempt_counts[net.name] = attempt_counts.get(net.name, 0) + 1
            if attempt_counts[net.name] > self.max_retry_rounds + 2:
                result.failed.add(net.name)
                result.routed.discard(net.name)
                continue
            area, detour = self._area_for(net, expansion=attempt)
            # Retry rounds allow deeper ripup (Sec. 4.4: "reconsidered
            # later with higher ripup effort and extended routing area").
            if attempt == 0:
                ripup = -2
            elif attempt == 1:
                ripup = int(RipupLevel.RESERVED)
            else:
                ripup = int(RipupLevel.NORMAL)
            connection = self.connector.connect_net(
                net, area, max_ripup_level=ripup, corridor_detour=detour
            )
            result.stats.merge(connection.stats)
            if connection.ripped_nets:
                result.ripup_events += len(connection.ripped_nets)
                for ripped_name in connection.ripped_nets:
                    ripped_net = nets_by_name.get(ripped_name)
                    if ripped_net is None:
                        continue
                    result.routed.discard(ripped_name)
                    queue.append((ripped_net, attempt_counts.get(ripped_name, 0)))
            if connection.success:
                result.routed.add(net.name)
                result.failed.discard(net.name)
            elif attempt < self.max_retry_rounds:
                queue.append((net, attempt + 1))
            else:
                result.failed.add(net.name)
                result.open_connections += connection.open_connections
        result.wire_length = self.space.total_wire_length()
        result.via_count = self.space.total_via_count()
        result.runtime = time.time() - start
        result.access_cache_hits = self.planner.cache_hits
        result.access_cache_misses = self.planner.cache_misses
        return result
