"""Routing areas: the vertex subsets path searches are restricted to.

The net connection procedure (Sec. 4.4) restricts each on-track path
search to the union of the global routing tiles its corridor passes
through (plus neighbouring layers).  A routing area is a per-layer set of
rectangles; ``None`` means the whole chip.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.geometry.rect import Rect
from repro.grid.trackgraph import TrackGraph, Vertex


class RoutingArea:
    """Union of per-layer rectangles restricting a path search."""

    def __init__(self, boxes: Optional[Dict[int, List[Rect]]] = None) -> None:
        #: layer -> list of rectangles; None = unrestricted.
        self.boxes = boxes

    @staticmethod
    def everywhere() -> "RoutingArea":
        return RoutingArea(None)

    @staticmethod
    def from_boxes(boxes: Sequence[Tuple[int, Rect]]) -> "RoutingArea":
        per_layer: Dict[int, List[Rect]] = {}
        for layer, rect in boxes:
            per_layer.setdefault(layer, []).append(rect)
        return RoutingArea(per_layer)

    def expanded(self, amount: int) -> "RoutingArea":
        if self.boxes is None:
            return self
        return RoutingArea(
            {
                layer: [rect.expanded(amount) for rect in rects]
                for layer, rects in self.boxes.items()
            }
        )

    def allows_layer(self, layer: int) -> bool:
        return self.boxes is None or layer in self.boxes

    def contains(self, x: int, y: int, z: int) -> bool:
        if self.boxes is None:
            return True
        rects = self.boxes.get(z)
        if not rects:
            return False
        return any(rect.contains_point(x, y) for rect in rects)

    def contains_vertex(self, graph: TrackGraph, vertex: Vertex) -> bool:
        x, y, z = graph.position(vertex)
        return self.contains(x, y, z)

    def cross_ranges(self, graph: TrackGraph, z: int, t: int) -> List[Tuple[int, int]]:
        """Closed cross-index ranges of track (z, t) inside the area."""
        if self.boxes is None:
            count = len(graph.crosses[z])
            return [(0, count - 1)] if count else []
        rects = self.boxes.get(z)
        if not rects:
            return []
        track_coord = graph.tracks[z][t]
        horizontal = graph.stack.direction(z).value == "horizontal"
        ranges: List[Tuple[int, int]] = []
        for rect in rects:
            if horizontal:
                if not (rect.y_lo <= track_coord <= rect.y_hi):
                    continue
                indices = graph.crosses_in_range(z, rect.x_lo, rect.x_hi)
            else:
                if not (rect.x_lo <= track_coord <= rect.x_hi):
                    continue
                indices = graph.crosses_in_range(z, rect.y_lo, rect.y_hi)
            if indices:
                ranges.append((indices[0], indices[-1]))
        if not ranges:
            return []
        ranges.sort()
        merged = [ranges[0]]
        for lo, hi in ranges[1:]:
            if lo <= merged[-1][1] + 1:
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        return merged

    def track_indices(self, graph: TrackGraph, z: int) -> List[int]:
        """Track indices of layer z that intersect the area."""
        if self.boxes is None:
            return list(range(len(graph.tracks[z])))
        rects = self.boxes.get(z)
        if not rects:
            return []
        horizontal = graph.stack.direction(z).value == "horizontal"
        indices = set()
        for rect in rects:
            if horizontal:
                indices.update(graph.tracks_in_range(z, rect.y_lo, rect.y_hi))
            else:
                indices.update(graph.tracks_in_range(z, rect.x_lo, rect.x_hi))
        return sorted(indices)
