"""Wire spreading (Sec. 4.2).

If there is unused space in a region, spreading wires apart improves
timing and manufacturing yield (fewer extra-material shorts, room to
enlarge vias in postprocessing).  BonnRoute implements this by letting
the on-track path search "impose extra costs on intervals that should be
kept free, based on congestion observed by global routing".

This module derives the keep-free intervals from the global routing
result: in tiles whose edge utilization is below a threshold, every
second routing track carries a spreading penalty, so the searches prefer
the unpenalized tracks and leave gaps - exactly the alternating-track
spreading pattern classical spreaders produce.  In congested tiles no
penalty applies (capacity is needed more than spacing).
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.groute.graph import GlobalRoutingGraph
from repro.grid.trackgraph import TrackGraph


class WireSpreading:
    """Per-interval spreading penalties from global congestion."""

    def __init__(
        self,
        graph: TrackGraph,
        low_utilization_tiles: Set[Tuple[int, int, int]],
        global_graph: GlobalRoutingGraph,
        penalty: int = 0,
    ) -> None:
        self.graph = graph
        #: (tile_x, tile_y, layer) triples with spare capacity.
        self.low_utilization_tiles = low_utilization_tiles
        self.global_graph = global_graph
        if penalty <= 0:
            # The penalty must clearly exceed a jog pair's cost, or paths
            # shrug it off and the keep-free tracks stay occupied.
            stack = graph.stack
            penalty = 6 * stack[stack.bottom].pitch
        self.penalty = penalty

    @staticmethod
    def from_global_result(
        space_graph: TrackGraph,
        global_result,
        threshold: float = 0.5,
        penalty: int = 0,
    ) -> "WireSpreading":
        """Derive keep-free tiles from a GlobalRoutingResult.

        A (tile, layer) is low-utilization when every incident wire edge
        of the global graph uses less than ``threshold`` of its capacity.
        """
        graph = global_result.graph
        usage: Dict[object, float] = {}
        for route in global_result.routes.values():
            for edge in route.edges:
                usage[edge] = usage.get(edge, 0.0) + 1.0 + route.extra_space.get(
                    edge, 0.0
                )
        low: Set[Tuple[int, int, int]] = set()
        for tx in range(graph.nx):
            for ty in range(graph.ny):
                for z in graph.chip.stack.indices:
                    node = (tx, ty, z)
                    spare = True
                    for _other, edge in graph.neighbors(node):
                        if graph.is_via_edge(edge):
                            continue
                        capacity = graph.capacity(edge)
                        if capacity <= 0:
                            continue
                        if usage.get(edge, 0.0) / capacity >= threshold:
                            spare = False
                            break
                    if spare:
                        low.add(node)
        return WireSpreading(space_graph, low, graph, penalty)

    def interval_penalty(self, interval) -> int:
        """Extra cost for entering ``interval`` (Sec. 4.2).

        Odd-indexed tracks in low-utilization tiles are kept free; a
        search entering such an interval pays the spreading penalty, so
        wires pack on alternating tracks where space allows.
        """
        if interval.t % 2 == 0:
            return 0
        z = interval.z
        # Locate the interval's midpoint tile.
        mid_c = (interval.c_lo + interval.c_hi) // 2
        x, y, _z = self.graph.position((z, interval.t, mid_c))
        tx, ty = self.global_graph.tile_of_point(x, y)
        if (tx, ty, z) in self.low_utilization_tiles:
            return self.penalty
        return 0
