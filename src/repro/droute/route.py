"""Routed-net containers.

A net's detailed route is a set of wire stick figures and via instances
under one wire type (Sec. 3.2: everything representable by stick figures
plus a wire type).  The containers also provide the metrics reported in
the paper's tables: wire length and via count.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.geometry.rect import Rect
from repro.tech.wiring import StickFigure


class ViaInstance:
    """A via of the route: anchored at (x, y) on ``via_layer``."""

    __slots__ = ("via_layer", "x", "y")

    def __init__(self, via_layer: int, x: int, y: int) -> None:
        self.via_layer = via_layer
        self.x = x
        self.y = y

    def __repr__(self) -> str:
        return f"ViaInstance(V{self.via_layer}, {self.x}, {self.y})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ViaInstance)
            and (self.via_layer, self.x, self.y)
            == (other.via_layer, other.x, other.y)
        )

    def __hash__(self) -> int:
        return hash((self.via_layer, self.x, self.y))


class NetRoute:
    """All wiring placed for one net."""

    def __init__(self, net_name: str, wire_type: str = "default") -> None:
        self.net_name = net_name
        #: The net's nominal wire type (reporting / long-haul wiring).
        self.wire_type = wire_type
        self.wires: List[StickFigure] = []
        self.vias: List[ViaInstance] = []
        #: Ripup level each wire / via was inserted with; parallel lists.
        #: The shape grid stores the level inside the shape metadata, so
        #: removal must repeat the exact level of insertion.
        self.wire_levels: List[int] = []
        self.via_levels: List[int] = []
        #: Wire type each item was inserted with.  Layer-restricted nets
        #: (Sec. 1.1) escape their pins with the standard type on the
        #: lower layers and switch to their own type above, so a route
        #: can mix wire types.
        self.wire_types: List[str] = []
        self.via_types: List[str] = []

    def __repr__(self) -> str:
        return (
            f"NetRoute({self.net_name}, {len(self.wires)} wires, "
            f"{len(self.vias)} vias)"
        )

    @property
    def wire_length(self) -> int:
        return sum(w.length for w in self.wires)

    @property
    def via_count(self) -> int:
        return len(self.vias)

    def is_empty(self) -> bool:
        return not self.wires and not self.vias

    def add_wire(
        self, stick: StickFigure, level: int = 3, wire_type: Optional[str] = None
    ) -> None:
        self.wires.append(stick)
        self.wire_levels.append(level)
        self.wire_types.append(wire_type if wire_type is not None else self.wire_type)

    def add_via(
        self, via: ViaInstance, level: int = 3, wire_type: Optional[str] = None
    ) -> None:
        self.vias.append(via)
        self.via_levels.append(level)
        self.via_types.append(wire_type if wire_type is not None else self.wire_type)

    def wire_level(self, stick: StickFigure) -> int:
        return self.wire_levels[self.wires.index(stick)]

    def via_level(self, via: ViaInstance) -> int:
        return self.via_levels[self.vias.index(via)]

    def wire_items(self) -> List[Tuple[StickFigure, int, str]]:
        """(stick, ripup_level, wire_type_name) triples."""
        return list(zip(self.wires, self.wire_levels, self.wire_types))

    def via_items(self) -> List[Tuple[ViaInstance, int, str]]:
        return list(zip(self.vias, self.via_levels, self.via_types))

    def remove_wire(self, stick: StickFigure) -> Tuple[int, str]:
        """Remove a wire; returns its (ripup_level, wire_type_name)."""
        index = self.wires.index(stick)
        self.wires.pop(index)
        type_name = self.wire_types.pop(index)
        return self.wire_levels.pop(index), type_name

    def remove_via(self, via: ViaInstance) -> Tuple[int, str]:
        index = self.vias.index(via)
        self.vias.pop(index)
        type_name = self.via_types.pop(index)
        return self.via_levels.pop(index), type_name

    def extend(self, other: "NetRoute") -> None:
        self.wires.extend(other.wires)
        self.wire_levels.extend(other.wire_levels)
        self.wire_types.extend(other.wire_types)
        self.vias.extend(other.vias)
        self.via_levels.extend(other.via_levels)
        self.via_types.extend(other.via_types)

    def bounding_box(self) -> Optional[Rect]:
        rects = [w.as_rect() for w in self.wires]
        rects += [Rect(v.x, v.y, v.x, v.y) for v in self.vias]
        if not rects:
            return None
        return Rect.bounding(rects)

    def layers_used(self) -> List[int]:
        layers = {w.layer for w in self.wires}
        for via in self.vias:
            layers.add(via.via_layer)
            layers.add(via.via_layer + 1)
        return sorted(layers)
