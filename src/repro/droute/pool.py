"""Crash-tolerant worker pool for parallel detailed routing (Sec. 5.1).

Each :class:`~repro.droute.partition.PartitionRound` hands its regions
to real ``multiprocessing`` workers forked from the parent, so every
worker starts from the identical round-start snapshot of the
:class:`~repro.droute.space.RoutingSpace` for free (copy-on-write).
Workers run *first attempts only* — the baseline escalation rung forbids
ripup, so a first attempt never disturbs another region's wiring — and
send serialized route deltas back over a queue; the parent merges them
in region-index order (:meth:`repro.droute.router.DetailedRouter.
_merge_outcomes`), which reproduces the serial net order bit for bit.

The supervisor assumes workers can die at any instant:

* a worker that exits without its ``exit`` message is a **crash**
  (segfault, OOM kill, or an injected ``kill`` fault,
  :data:`repro.flow.faults.KILLED_EXIT_CODE`);
* a worker that blows its per-region :class:`Deadline` is **hung** and
  is killed;
* a worker that reports a region-level exception **failed** that region
  but keeps running.

Every incident charges the dead region's nets against the fault plan
(:meth:`repro.flow.faults.FaultInjector.charge` — the corpse cannot
report which transient fault killed it), re-enqueues the region on a
fresh worker, and past the retry budget degrades the region — and past
the incident budget the whole pool — to in-process serial execution.
Incidents are recorded as ``pool.*`` events/counters and as entries in
``DetailedRoutingResult.pool_events``.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
from typing import Dict, List, Optional, Sequence, Tuple

from repro.droute.connect import ConnectionStats
from repro.flow.faults import SITE_WORKER
from repro.flow.resilience import Deadline
from repro.obs import OBS, MemorySink
from repro.obs.resource import ResourceSampler


def fork_available() -> bool:
    """Can this platform fork workers that inherit the parent snapshot?"""
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # noqa: BLE001 - platform probing
        return False


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _serialize_route_delta(route, wires_before: int, vias_before: int):
    """Plain-tuple form of the wiring a worker added for one net."""
    wires = [
        (type_name, level, stick.layer, stick.x0, stick.y0, stick.x1, stick.y1)
        for stick, level, type_name in route.wire_items()[wires_before:]
    ]
    vias = [
        (type_name, level, via.via_layer, via.x, via.y)
        for via, level, type_name in route.via_items()[vias_before:]
    ]
    return wires, vias


def _route_region(
    router,
    net_names: Sequence[str],
    fired_base: int,
    stage_deadline: Optional[Deadline] = None,
) -> Dict[str, object]:
    """First-attempt sweep over one region's nets (inside a worker)."""
    chip = router.chip
    injector = router.fault_injector
    stats = ConnectionStats()
    routed: Dict[str, object] = {}
    errors: Dict[str, Optional[str]] = {}
    attempts: Dict[str, int] = {}
    for name in net_names:
        net = chip.net(name)
        if injector is not None:
            # May raise (region fails), stall (supervisor kills on the
            # region deadline), or exit the process (supervisor sees the
            # corpse).
            injector.check(SITE_WORKER, name)
        attempts[name] = 1
        existing = router.space.routes.get(name)
        wires_before = len(existing.wires) if existing is not None else 0
        vias_before = len(existing.vias) if existing is not None else 0
        connection, error = router.first_attempt(net, stage_deadline)
        if error is not None:
            errors[name] = error
            continue
        stats.merge(connection.stats)
        if connection.deadline_expired:
            errors[name] = "soft deadline expired mid-search"
        elif connection.success:
            if OBS.enabled:
                OBS.count("droute.nets_routed")
            routed[name] = _serialize_route_delta(
                router.space.routes[name], wires_before, vias_before
            )
    return {
        "order": list(net_names),
        "routed": routed,
        "errors": errors,
        "attempts": attempts,
        "stats": stats,
        "faults": injector.state(fired_base) if injector is not None else None,
    }


def _worker_main(
    router, worker_id, tasks, result_queue, obs_enabled,
    stage_deadline=None, trace_ctx=None,
) -> None:
    """Entry point of a forked worker: route assigned regions, report."""
    # The forked child inherited the parent's observer *and its JSONL
    # sink file handle* — writing there would interleave corrupt lines
    # into the parent's trace.  reset() detaches the sink unclosed;
    # keep_epoch keeps the parent's clock epoch so worker span
    # timestamps land on the parent's timeline.  Records buffer in a
    # MemorySink and travel back with each region's outcome, alongside
    # per-region counter/gauge/histogram deltas.  The inherited handle
    # must also be *disowned*: the parent's buffered-but-unflushed
    # records live in the child's copy of the buffer, and interpreter
    # shutdown would flush them into the shared file a second time.
    inherited_sink = getattr(OBS, "_sink", None)
    if inherited_sink is not None and hasattr(inherited_sink, "disinherit"):
        inherited_sink.disinherit()
    OBS.reset(keep_epoch=True)
    sink = MemorySink() if obs_enabled else None
    OBS.configure(enabled=obs_enabled, sink=sink)
    OBS.set_context(
        trace_id=(trace_ctx or {}).get("trace_id"),
        process="worker",
        worker_id=worker_id,
        root_parent_id=(trace_ctx or {}).get("parent_span_id"),
    )
    sampler = ResourceSampler() if obs_enabled else None
    # Session bookkeeping (ripup propagation into ECO runs) is a
    # parent-side concern; the merge re-derives it from the outcome.
    router.session = None
    injector = router.fault_injector
    if injector is not None:
        injector.enter_worker()
    for region_index, net_names in tasks:
        result_queue.put(("begin", worker_id, region_index))
        fired_base = len(injector.fired) if injector is not None else 0
        # Per-region metric scope: ship absolute values as the deltas.
        OBS.counters.clear()
        OBS.gauges.clear()
        OBS.histograms.clear()
        OBS.region = region_index
        try:
            outcome = _route_region(
                router, net_names, fired_base, stage_deadline
            )
        except BaseException as error:  # noqa: BLE001 - isolation boundary
            OBS.flight_note(
                "pool.region_exception",
                region=region_index,
                error=f"{type(error).__name__}: {error}",
            )
            state = (
                injector.state(fired_base) if injector is not None else None
            )
            result_queue.put((
                "failed", worker_id, region_index,
                f"{type(error).__name__}: {error}", state,
                OBS.flight.dump(),
            ))
            continue
        finally:
            OBS.region = None
        if sampler is not None:
            sampler.sample()
        outcome["obs_counters"] = dict(OBS.counters)
        outcome["obs_gauges"] = dict(OBS.gauges)
        outcome["obs_histograms"] = {
            name: histogram.state()
            for name, histogram in OBS.histograms.items()
        }
        outcome["obs_records"] = sink.take() if sink is not None else []
        result_queue.put(("done", worker_id, region_index, outcome))
    result_queue.put(("exit", worker_id))


# ----------------------------------------------------------------------
# Supervisor (parent process)
# ----------------------------------------------------------------------
class _WorkerHandle:
    __slots__ = ("process", "regions", "current", "deadline", "exited", "handled")

    def __init__(self, process, regions: List[int]) -> None:
        self.process = process
        self.regions = regions
        self.current: Optional[int] = None
        self.deadline: Optional[Deadline] = None
        self.exited = False
        #: Set once an incident for this worker has been processed, so a
        #: killed worker is not charged twice.
        self.handled = False


class PoolSupervisor:
    """Forks, watches, and replaces detailed-routing workers.

    One supervisor serves a whole run; workers are forked per round (the
    fork must capture the round-start snapshot, and a replacement forked
    mid-round still sees that snapshot because merging happens only
    after the round completes).
    """

    def __init__(
        self,
        router,
        result,
        workers: int,
        region_timeout_s: Optional[float] = None,
        max_region_retries: int = 1,
        max_incidents: Optional[int] = None,
    ) -> None:
        self.router = router
        self.result = result
        self.workers = max(1, int(workers))
        self.region_timeout_s = region_timeout_s
        #: Re-dispatches of one region to a fresh worker before the
        #: region degrades to in-process serial execution.
        self.max_region_retries = max_region_retries
        #: Incidents (crashes + timeouts + region failures) across the
        #: run before the whole pool degrades to serial.
        self.max_incidents = (
            max_incidents if max_incidents is not None else max(4, 2 * workers)
        )
        self.incidents = 0
        #: Shard store backing the chip, when the session has one.  The
        #: router prefetches each round's shards *before* the fork, so
        #: workers inherit the warm shards copy-on-write instead of each
        #: re-reading them from disk; the supervisor only reports the
        #: residency it forked with.
        self.shard_store = getattr(
            getattr(router, "session", None), "shard_store", None
        )
        #: Once true, the router stops dispatching rounds to the pool.
        self.degraded = False
        #: Worker ids are unique across the whole run (not per round):
        #: each forked process mints span ids ``w<worker_id>-<seq>``, so
        #: reusing an id across rounds would collide in the merged trace.
        self._next_worker_id = 0
        self._ctx = multiprocessing.get_context("fork")

    # ------------------------------------------------------------------
    def _event(
        self,
        kind: str,
        attach_flight: bool = False,
        extra: Optional[Dict[str, object]] = None,
        **attrs,
    ) -> None:
        """Record a pool incident/event everywhere it needs to land.

        ``attach_flight`` snapshots the *parent's* flight-recorder ring
        into the event (used for crashes/timeouts — the corpse cannot
        report its own); ``extra`` carries payload that belongs in the
        pool-event record but not in the trace event (e.g. the flight
        dump a live worker shipped with its region failure).
        """
        OBS.flight_note("pool." + kind, **attrs)
        record: Dict[str, object] = {"kind": kind}
        record.update(attrs)
        if attach_flight:
            record["flight"] = OBS.flight.dump()
        if extra:
            record.update(extra)
        self.result.pool_events.append(record)
        if OBS.enabled:
            OBS.event("pool." + kind, **attrs)

    def _degrade_pool(self, reason: str) -> None:
        self.degraded = True
        self.result.pool_degraded = True
        self._event("degraded", reason=reason, incidents=self.incidents)
        if OBS.enabled:
            OBS.count("pool.degraded")

    def _charge_faults(self, region_names: Sequence[str]) -> List[str]:
        injector = self.router.fault_injector
        if injector is None:
            return []
        return injector.charge(SITE_WORKER, region_names)

    # ------------------------------------------------------------------
    def run_round(
        self,
        round_index: int,
        by_region: Dict[int, List],
        stage_deadline: Optional[Deadline] = None,
    ) -> Dict[int, Optional[Dict[str, object]]]:
        """Execute one round's regions; returns region -> outcome.

        A ``None`` outcome means the region exhausted its retries (or
        the pool degraded) and must be routed in-process by the caller.
        """
        region_names = {
            region: [net.name for net in nets]
            for region, nets in sorted(by_region.items())
        }
        if self.shard_store is not None:
            OBS.flight_note(
                "pool.shards_resident",
                round=round_index,
                resident=self.shard_store.resident_count,
            )
        outcomes: Dict[int, Optional[Dict[str, object]]] = {}
        retries: Dict[int, int] = {region: 0 for region in region_names}
        result_queue = self._ctx.Queue()
        handles: Dict[int, _WorkerHandle] = {}

        # Trace context rides into every fork (including respawns): the
        # current open span — ``pool.round`` — becomes the root parent
        # of all worker spans, so the merged trace forms one tree.
        trace_ctx = {
            "trace_id": OBS.trace_id,
            "parent_span_id": OBS.current_span_id(),
        }

        def spawn(regions: List[int]) -> None:
            worker_id = self._next_worker_id
            self._next_worker_id += 1
            process = self._ctx.Process(
                target=_worker_main,
                args=(
                    self.router,
                    worker_id,
                    [(region, region_names[region]) for region in regions],
                    result_queue,
                    OBS.enabled,
                    stage_deadline,
                    trace_ctx,
                ),
                daemon=True,
            )
            process.start()
            handles[worker_id] = _WorkerHandle(process, list(regions))
            if OBS.enabled:
                OBS.count("pool.workers_forked")

        def unresolved(handle: _WorkerHandle) -> List[int]:
            return [r for r in handle.regions if r not in outcomes]

        def incident(
            handle: _WorkerHandle,
            kind: str,
            only_region: Optional[int] = None,
            attach_flight: bool = False,
            extra: Optional[Dict[str, object]] = None,
            **attrs,
        ) -> None:
            """Shared crash/timeout/region-failure bookkeeping.

            ``only_region`` restricts the retry to one region (a live
            worker reported a region-level failure and keeps the rest of
            its assignment); otherwise every unresolved region of the
            dead worker is re-dispatched.
            """
            if only_region is None:
                handle.handled = True
            self.incidents += 1
            if only_region is not None:
                remaining = [only_region]
                region: Optional[int] = only_region
            else:
                remaining = unresolved(handle)
                region = (
                    handle.current
                    if handle.current is not None and handle.current in remaining
                    else (remaining[0] if remaining else None)
                )
            charged: List[str] = []
            if region is not None:
                charged = self._charge_faults(region_names[region])
            self._event(
                kind,
                attach_flight=attach_flight,
                extra=extra,
                round=round_index,
                region=region,
                charged_nets=charged,
                **attrs,
            )
            if self.incidents >= self.max_incidents and not self.degraded:
                self._degrade_pool("incident budget exhausted")
            if self.degraded:
                return
            respawn: List[int] = []
            for r in remaining:
                if r == region:
                    retries[r] += 1
                    if retries[r] > self.max_region_retries:
                        outcomes[r] = None
                        self._event("region_degraded", round=round_index, region=r)
                        if OBS.enabled:
                            OBS.count("pool.regions_degraded")
                        continue
                    if OBS.enabled:
                        OBS.count("pool.region_retries")
                respawn.append(r)
            if respawn:
                spawn(respawn)

        def kill_all() -> None:
            for handle in handles.values():
                if handle.process.is_alive():
                    handle.process.kill()
                handle.handled = True

        # Static round-robin dispatch keeps worker assignment (and the
        # retry bookkeeping) deterministic.
        pending = sorted(region_names)
        count = min(self.workers, len(pending))
        for offset in range(count):
            spawn(pending[offset::count])
        if OBS.enabled:
            OBS.count("pool.regions_dispatched", len(pending))
            OBS.gauge("pool.queue_depth", len(pending))

        while len(outcomes) < len(region_names):
            if stage_deadline is not None and stage_deadline.expired:
                self._event("stage_budget", round=round_index)
                kill_all()
                break
            # Drain everything queued before judging worker health, so a
            # dead worker's last messages are honoured first.
            drained = True
            while drained:
                try:
                    message = result_queue.get(timeout=0.05)
                except queue_mod.Empty:
                    drained = False
                    continue
                except (EOFError, OSError, Exception):  # noqa: B014,BLE001
                    # A worker killed mid-put can leave a corrupt pickle
                    # in the pipe; drop it — the health check below will
                    # account for the worker itself.
                    continue
                kind = message[0]
                if kind == "begin":
                    _, worker_id, region = message
                    handle = handles.get(worker_id)
                    if handle is not None and not handle.handled:
                        handle.current = region
                        handle.deadline = (
                            Deadline(self.region_timeout_s)
                            if self.region_timeout_s is not None
                            else None
                        )
                elif kind == "done":
                    _, worker_id, region, outcome = message
                    handle = handles.get(worker_id)
                    if handle is not None:
                        handle.current = None
                        handle.deadline = None
                    if region not in outcomes:
                        outcomes[region] = outcome
                        injector = self.router.fault_injector
                        if injector is not None and outcome.get("faults"):
                            injector.merge_child_state(outcome["faults"])
                        if OBS.enabled:
                            OBS.count("pool.regions_completed")
                            OBS.gauge(
                                "pool.queue_depth",
                                len(region_names) - len(outcomes),
                            )
                elif kind == "failed":
                    _, worker_id, region, error, fault_state, flight = message
                    handle = handles.get(worker_id)
                    injector = self.router.fault_injector
                    if injector is not None and fault_state:
                        injector.merge_child_state(fault_state)
                    if handle is not None and region not in outcomes:
                        # The worker survives; only this region is hurt.
                        # It shipped its own flight-recorder dump with
                        # the failure message.
                        incident(
                            handle, "region_failure",
                            only_region=region, error=error,
                            extra={"flight": flight} if flight else None,
                        )
                        handle.current = None
                        handle.deadline = None
                elif kind == "exit":
                    _, worker_id = message
                    handle = handles.get(worker_id)
                    if handle is not None:
                        handle.exited = True
            if self.degraded:
                kill_all()
                break
            # Health checks: corpses and hangs.
            for handle in list(handles.values()):
                if handle.handled or handle.exited:
                    continue
                if not handle.process.is_alive():
                    if OBS.enabled:
                        OBS.count("pool.worker_crashes")
                    incident(
                        handle, "worker_crash",
                        attach_flight=True,
                        exitcode=handle.process.exitcode,
                    )
                elif handle.deadline is not None and handle.deadline.expired:
                    handle.process.kill()
                    if OBS.enabled:
                        OBS.count("pool.worker_timeouts")
                    incident(
                        handle, "worker_timeout",
                        attach_flight=True,
                        timeout_s=self.region_timeout_s,
                    )
            if self.degraded:
                kill_all()
                break
            if not any(
                not h.handled and not h.exited and h.process.is_alive()
                for h in handles.values()
            ) and len(outcomes) < len(region_names):
                # No runnable worker left and nothing respawned (every
                # region over budget): fall back to serial for the rest.
                break
        for region in region_names:
            outcomes.setdefault(region, None)
        # Reap: workers are per-round, nothing persists beyond here.
        for handle in handles.values():
            if handle.process.is_alive() and not handle.exited:
                handle.process.join(timeout=1.0)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=1.0)
        result_queue.close()
        return outcomes

    def close(self) -> None:
        """Workers are per-round; nothing persistent to tear down."""
