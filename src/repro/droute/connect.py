"""Connecting nets (Sec. 4.4).

The connector iteratively picks a connected component of a not yet fully
routed net as the source, builds the source vertex set S (on-track
connection vertices of the component plus endpoints of off-track access
paths), the target set T from the other components, temporarily removes
the net's own shapes from routing space, and runs the on-track path
search restricted to the routing area.  Found paths are postprocessed for
same-net rules and committed; on failure a ripup sequence allows the
search to cross foreign wiring at increasing penalties, and the affected
nets are returned to the caller for rerouting.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.chip.net import Net, Pin
from repro.droute.area import RoutingArea
from repro.droute.future_cost import (
    FutureCostGR,
    FutureCostH,
    FutureCostP,
    SearchCosts,
)
from repro.droute.intervals import GraphView
from repro.droute.pathsearch import (
    KernelSpec,
    SearchResult,
    interval_path_search,
    node_path_search,
    path_to_moves,
    resolve_kernel,
)
from repro.obs import OBS
from repro.droute.pinaccess import AccessPath
from repro.droute.route import ViaInstance
from repro.droute.samenet import postprocess_path
from repro.droute.space import RoutingSpace, effective_via_type, effective_wire_type
from repro.flow.resilience import DeadlineExceeded
from repro.grid.shapegrid import RipupLevel
from repro.grid.trackgraph import Vertex
from repro.tech.wiring import StickFigure
from repro.util.unionfind import UnionFind


class ConnectionStats:
    """Counters for one net's routing."""

    def __init__(self) -> None:
        self.searches = 0
        self.failed_searches = 0
        self.ripup_searches = 0
        self.labels = 0
        self.used_pi_p = 0
        self.used_pi_gr = 0

    def merge(self, other: "ConnectionStats") -> None:
        self.searches += other.searches
        self.failed_searches += other.failed_searches
        self.ripup_searches += other.ripup_searches
        self.labels += other.labels
        self.used_pi_p += other.used_pi_p
        self.used_pi_gr += other.used_pi_gr


class ConnectionResult:
    def __init__(self, net_name: str) -> None:
        self.net_name = net_name
        self.success = False
        self.open_connections = 0
        self.ripped_nets: Set[str] = set()
        self.stats = ConnectionStats()
        #: Set when a soft deadline expired mid-search; no new wiring was
        #: committed for this net (the routing space stays consistent).
        self.deadline_expired = False

    def __repr__(self) -> str:
        return (
            f"ConnectionResult({self.net_name}, success={self.success}, "
            f"opens={self.open_connections}, ripped={sorted(self.ripped_nets)})"
        )


class NetConnector:
    """Routes one net at a time over a shared :class:`RoutingSpace`."""

    def __init__(
        self,
        space: RoutingSpace,
        costs: Optional[SearchCosts] = None,
        access_paths: Optional[Dict[str, AccessPath]] = None,
        planner=None,
        use_interval_search: bool = True,
        ripup_base_penalty: int = 0,
        detour_threshold: float = 1.8,
        spreading=None,
        fault_injector=None,
        search_kernel: KernelSpec = None,
    ) -> None:
        self.space = space
        self.costs = costs if costs is not None else SearchCosts()
        #: The queue/label engine behind every path search of this
        #: connector (``route --search-kernel``); the kernel also decides
        #: whether searches use the corridor future cost pi_GR.
        self.search_kernel = resolve_kernel(search_kernel)
        #: Primary (reserved) access path per pin name (Sec. 4.3).
        self.access_paths = access_paths if access_paths is not None else {}
        #: Pin access planner for dynamically generated paths (Sec. 4.4:
        #: "we dynamically generate new access paths").
        self.planner = planner
        self.use_interval_search = use_interval_search
        self.ripup_base_penalty = (
            ripup_base_penalty
            if ripup_base_penalty > 0
            else 20 * space.chip.stack[space.chip.stack.bottom].pitch
        )
        #: Per-vertex ripup history: penalties grow on reuse (Sec. 4.2).
        self.ripup_history: Dict[Vertex, int] = {}
        #: Use pi_P when the GR corridor detour exceeds this factor over
        #: the l1 distance (Sec. 4.1: "only if the global routing for this
        #: connection already contains a large detour").
        self.detour_threshold = detour_threshold
        #: Optional WireSpreading model: extra costs on keep-free
        #: intervals (Sec. 4.2).
        self.spreading = spreading
        #: Optional FaultInjector checked at the path-search boundary.
        self.fault_injector = fault_injector

    # ------------------------------------------------------------------
    # Component connection vertices
    # ------------------------------------------------------------------
    def _pin_vertices(self, pin: Pin) -> Set[Vertex]:
        """On-track vertices where the pin can be contacted directly."""
        graph = self.space.graph
        out: Set[Vertex] = set()
        for layer, rect in pin.shapes:
            if not graph.stack.has_layer(layer):
                continue
            out.update(
                graph.vertices_in_rect(layer, rect.x_lo, rect.y_lo, rect.x_hi, rect.y_hi)
            )
        access = self.access_paths.get(pin.name)
        if access is not None and self._access_still_valid(access):
            out.add(access.endpoint)
        return out

    def _access_still_valid(self, access: AccessPath) -> bool:
        """Re-check a reserved access path against later-routed nets.

        The paper re-validates reserved paths "for diff-net rule
        violations to earlier routed nets" before using them (Sec. 4.4);
        a stale endpoint would let the search connect through blocked
        metal.
        """
        # Access paths are always built with the standard wire type
        # (escape wiring, Sec. 4.3).
        for stick in access.sticks():
            if not self.space.check_wire("default", stick, access.net_name).legal:
                return False
        if access.via is not None:
            if not self.space.check_via(
                "default", access.via, access.net_name
            ).legal:
                return False
        return True

    def _stick_vertices(self, stick: StickFigure) -> Set[Vertex]:
        graph = self.space.graph
        rect = stick.as_rect()
        if not graph.stack.has_layer(stick.layer):
            return set()
        return set(
            graph.vertices_in_rect(
                stick.layer, rect.x_lo, rect.y_lo, rect.x_hi, rect.y_hi
            )
        )

    def _via_vertices(self, via: ViaInstance) -> Set[Vertex]:
        graph = self.space.graph
        out = set()
        for z in (via.via_layer, via.via_layer + 1):
            vertex = graph.vertex_at(via.x, via.y, z)
            if vertex is not None:
                out.add(vertex)
        return out

    # ------------------------------------------------------------------
    # Path conversion
    # ------------------------------------------------------------------
    def _path_to_route_items(
        self, vertices: Sequence[Vertex]
    ) -> Tuple[List[StickFigure], List[ViaInstance]]:
        graph = self.space.graph
        sticks: List[StickFigure] = []
        vias: List[ViaInstance] = []
        moves = path_to_moves(graph, vertices)
        # Compress runs of wire moves on the same track into single sticks.
        index = 0
        while index < len(moves):
            kind, v, w = moves[index]
            if kind == "via":
                x, y, _ = graph.position(v)
                vias.append(ViaInstance(min(v[0], w[0]), x, y))
                index += 1
                continue
            # Merge consecutive same-kind moves along the same line.
            start = v
            end = w
            while index + 1 < len(moves):
                nkind, nv, nw = moves[index + 1]
                if nkind != kind or nv != end:
                    break
                same_line = (
                    (nv[0] == end[0] and nv[1] == end[1] and kind == "wire")
                    or (nv[0] == end[0] and nv[2] == end[2] and kind == "jog")
                )
                if not same_line:
                    break
                end = nw
                index += 1
            x0, y0, z0 = graph.position(start)
            x1, y1, _z1 = graph.position(end)
            sticks.append(StickFigure(z0, x0, y0, x1, y1))
            index += 1
        return sticks, vias

    # ------------------------------------------------------------------
    # One source-target connection
    # ------------------------------------------------------------------
    def _search(
        self,
        net: Net,
        sources: Set[Vertex],
        targets: Set[Vertex],
        area: RoutingArea,
        ripup_level: int,
        use_pi_p: bool,
        stats: ConnectionStats,
        deadline=None,
    ) -> Optional[SearchResult]:
        if self.fault_injector is not None:
            self.fault_injector.check("path_search", net=net.name)
        view = GraphView(
            self.space,
            net.wire_type,
            area,
            ripup_level=ripup_level,
            forced_vertices=set(sources) | set(targets),
            ripup_history=self.ripup_history,
            ripup_base_penalty=self.ripup_base_penalty,
            spreading_penalty=(
                self.spreading.interval_penalty if self.spreading else None
            ),
        )
        target_list = sorted(targets)
        kernel = self.search_kernel
        if kernel.corridor_future_cost and area.boxes is not None:
            # The corridor-tightened bound (arXiv:2111.06169): cheap
            # enough to build for every corridor-restricted connection,
            # and it dominates both classic bounds, so the pi_P detour
            # gate becomes moot on this path.  Passing the view reuses
            # its interval decomposition as the open-vertex set (every
            # blockage and foreign wire accounted for), and the sources
            # bound the backward sweep.
            pi = FutureCostGR(
                self.space.graph, target_list, self.costs, area,
                view=view, stop_vertices=sources,
            )
            stats.used_pi_gr += 1
            if OBS.enabled:
                OBS.count("pathsearch.kernel.pi_gr_searches")
        elif use_pi_p:
            large = [
                (layer, rect)
                for layer, rect, _owner in self.space.chip.obstruction_shapes()
            ]
            pi = FutureCostP(self.space.graph, target_list, self.costs, area, large)
            stats.used_pi_p += 1
        else:
            pi = FutureCostH(self.space.graph, target_list, self.costs)
        search = interval_path_search if self.use_interval_search else node_path_search
        stats.searches += 1
        result = search(
            view, {s: 0 for s in sources}, targets, self.costs, pi,
            deadline=deadline, kernel=kernel,
        )
        if result is not None:
            stats.labels += result.stats.labels_pushed
        else:
            stats.failed_searches += 1
        return result

    def rip_net(self, net_name: str) -> None:
        """Remove a net's wiring *and* forget its reserved access paths.

        A ripped reservation must not keep feeding stale endpoints into
        later S/T constructions; the rerouted net regenerates access
        dynamically (Sec. 4.4).
        """
        self.space.remove_net_route(net_name)
        stale = [
            pin_name
            for pin_name, access in self.access_paths.items()
            if access.net_name == net_name
        ]
        for pin_name in stale:
            del self.access_paths[pin_name]

    def _blockers_of_path(
        self, net: Net, sticks: Sequence[StickFigure], vias: Sequence[ViaInstance]
    ) -> Set[str]:
        blockers: Set[str] = set()
        chip = self.space.chip
        for stick in sticks:
            type_name = effective_wire_type(chip, net.wire_type, stick.layer)
            if type_name is None:
                continue
            check = self.space.check_wire(type_name, stick, net.name)
            blockers.update(check.blockers)
        for via in vias:
            type_name = effective_via_type(chip, net.wire_type, via.via_layer)
            if type_name is None:
                continue
            check = self.space.check_via(type_name, via, net.name)
            blockers.update(check.blockers)
        blockers.discard(net.name)
        return blockers

    # ------------------------------------------------------------------
    # Full net connection
    # ------------------------------------------------------------------
    def connect_net(
        self,
        net: Net,
        area: Optional[RoutingArea] = None,
        max_ripup_level: int = -2,
        corridor_detour: float = 1.0,
        deadline=None,
        force_off_track_access: bool = False,
    ) -> ConnectionResult:
        """Connect all pins of ``net`` inside ``area``.

        ``max_ripup_level``: -2 forbids ripup; otherwise the deepest
        foreign ripup level the searches may cross.  ``corridor_detour``
        is the GR corridor's detour factor, used to pick pi_P over pi_H.
        ``deadline`` aborts searches mid-run without committing any new
        wiring; ``force_off_track_access`` generates off-track access
        paths even for pins with on-track vertices (escalation rung b).
        """
        result = ConnectionResult(net.name)
        if area is None:
            area = RoutingArea.everywhere()
        use_pi_p = corridor_detour >= self.detour_threshold

        # Component bookkeeping: pins grouped by what is already connected.
        vertex_sets: Dict[int, Set[Vertex]] = {
            i: self._pin_vertices(pin) for i, pin in enumerate(net.pins)
        }
        # Pre-existing route wiring (e.g. a track-assignment segment or a
        # partially ripped route) forms additional components that must be
        # tied in, or it would end up floating.
        existing = self.space.routes.get(net.name)
        member_count = len(net.pins)
        if existing is not None:
            for stick in existing.wires:
                vertices = self._stick_vertices(stick)
                if vertices:
                    vertex_sets[member_count] = vertices
                    member_count += 1
            for via in existing.vias:
                vertices = self._via_vertices(via)
                if vertices:
                    vertex_sets[member_count] = vertices
                    member_count += 1
        components = UnionFind(range(member_count))
        # Dynamically generated access paths for pins without reserved
        # access: their endpoints join S/T, and the chosen path is
        # committed once a search actually connects through it.
        dynamic_access: Dict[Vertex, AccessPath] = {}
        if self.planner is not None:
            for i, pin in enumerate(net.pins):
                if vertex_sets[i] and not force_off_track_access:
                    continue
                paths = self.planner.build_catalogue(pin)
                if not paths:
                    paths = self.planner.build_catalogue(
                        pin, radius_pitches=2 * self.planner.radius_pitches
                    )
                if not paths:
                    paths = self.planner.jumper_fallback(pin)
                if not paths:
                    # Concede a violating jumper to the DRC cleanup step
                    # rather than leaving the pin open (Sec. 5.2).
                    paths = self.planner.jumper_fallback(pin, require_legal=False)
                for path in paths:
                    dynamic_access[path.endpoint] = path
                    vertex_sets[i].add(path.endpoint)
        # Existing route pieces (reserved access paths) belong to their
        # pin's component; the main route is built fresh here.
        token = self.space.suspend_net(net.name)
        try:
            new_sticks_all: List[Tuple[StickFigure, bool]] = []
            new_vias_all: List[Tuple[ViaInstance, bool]] = []
            failed_sources: Set[int] = set()
            guard = 0
            try:
                self._connect_components(
                    net, area, max_ripup_level, use_pi_p, deadline,
                    vertex_sets, member_count, components, dynamic_access,
                    failed_sources, new_sticks_all, new_vias_all, result,
                    guard_limit=member_count * 3,
                )
            except DeadlineExceeded:
                # Abort without committing anything found so far: the
                # space holds no half-inserted wires (searches never
                # mutate it), and ripped victims are reported so the
                # router requeues them.
                result.deadline_expired = True
                new_sticks_all.clear()
                new_vias_all.clear()
            result.success = components.component_count == 1
            if not result.success:
                result.open_connections = max(
                    result.open_connections, components.component_count - 1
                )
        finally:
            self.space.restore_net(token)
        if result.deadline_expired:
            return result
        level = (
            int(RipupLevel.CRITICAL) if net.weight > 1.0 else int(RipupLevel.NORMAL)
        )
        chip = self.space.chip
        for stick, off_track in new_sticks_all:
            type_name = (
                effective_wire_type(chip, net.wire_type, stick.layer)
                or net.wire_type
            )
            self.space.add_wire(net.name, type_name, stick, level, off_track=off_track)
        for via, off_track in new_vias_all:
            type_name = (
                effective_via_type(chip, net.wire_type, via.via_layer)
                or net.wire_type
            )
            self.space.add_via(net.name, type_name, via, level, off_track=off_track)
        return result

    def _connect_components(
        self,
        net: Net,
        area: RoutingArea,
        max_ripup_level: int,
        use_pi_p: bool,
        deadline,
        vertex_sets: Dict[int, Set[Vertex]],
        member_count: int,
        components: UnionFind,
        dynamic_access: Dict[Vertex, "AccessPath"],
        failed_sources: Set[int],
        new_sticks_all: List[Tuple[StickFigure, bool]],
        new_vias_all: List[Tuple[ViaInstance, bool]],
        result: ConnectionResult,
        guard_limit: int,
    ) -> None:
        """The source/target iteration of Sec. 4.4 (extracted so a
        deadline can abort it as one unit)."""
        guard = 0
        while components.component_count > 1 and guard <= guard_limit:
            if deadline is not None:
                deadline.check()
            guard += 1
            comp_vertices: Dict[int, Set[Vertex]] = {}
            for i in range(member_count):
                root = components.find(i)
                in_area = {
                    v for v in vertex_sets[i]
                    if area.contains_vertex(self.space.graph, v)
                }
                comp_vertices.setdefault(root, set()).update(in_area)
            viable = sorted(r for r, vs in comp_vertices.items() if vs)
            if len(viable) < 2:
                # At most one component is reachable at all: the rest
                # stay open (counted below).
                result.open_connections = components.component_count - 1
                break
            candidates = [r for r in viable if r not in failed_sources]
            if not candidates:
                result.open_connections = components.component_count - 1
                break
            source_root = candidates[0]
            sources = comp_vertices[source_root]
            target_map: Dict[Vertex, int] = {}
            for i in range(member_count):
                root = components.find(i)
                if root == source_root or root not in viable:
                    continue
                for vertex in vertex_sets[i]:
                    if area.contains_vertex(self.space.graph, vertex):
                        target_map[vertex] = i
            targets = set(target_map)
            search_result = self._search(
                net, sources, targets, area, -2, use_pi_p, result.stats,
                deadline=deadline,
            )
            ripped_this_path: Set[str] = set()
            if search_result is None and max_ripup_level >= 0:
                result.stats.ripup_searches += 1
                search_result = self._search(
                    net, sources, targets, area, max_ripup_level,
                    use_pi_p, result.stats, deadline=deadline,
                )
            if search_result is None:
                # This component cannot reach the others; try another
                # source before giving up.
                failed_sources.add(source_root)
                continue
            sticks, vias = self._path_to_route_items(search_result.vertices)
            for vertex in search_result.ripup_vertices:
                self.ripup_history[vertex] = self.ripup_history.get(vertex, 0) + 1
            blockers = self._blockers_of_path(net, sticks, vias)
            for blocker in blockers:
                self.rip_net(blocker)
                ripped_this_path.add(blocker)
            result.ripped_nets |= ripped_this_path
            sticks = postprocess_path(
                self.space, net.name,
                lambda z: effective_wire_type(self.space.chip, net.wire_type, z)
                or net.wire_type,
                sticks,
            )
            # New shapes are committed only after the whole net is
            # done (and its suspended shapes restored), so the net's
            # own fresh wiring never blocks its remaining searches.
            new_sticks_all.extend((stick, False) for stick in sticks)
            new_vias_all.extend((via, False) for via in vias)
            # Commit dynamically generated access paths the search
            # actually connected through (Sec. 4.4).
            for endpoint_vertex in (
                search_result.vertices[0],
                search_result.vertices[-1],
            ):
                access = dynamic_access.pop(endpoint_vertex, None)
                if access is None:
                    continue
                # Fallback jumpers over removable foreign wiring rip
                # that wiring out; the router requeues those nets.
                for blocker in access.blockers:
                    if blocker == net.name:
                        continue
                    self.rip_net(blocker)
                    result.ripped_nets.add(blocker)
                new_sticks_all.extend(
                    (stick, True) for stick in access.sticks()
                )
                if access.via is not None:
                    new_vias_all.append((access.via, True))
            # Merge components: the reached target belongs to one pin.
            reached = search_result.vertices[-1]
            target_pin = target_map.get(reached)
            if target_pin is None:
                # Bulk-processed run endpoint: find any target vertex
                # on the final path.
                for vertex in reversed(search_result.vertices):
                    if vertex in target_map:
                        target_pin = target_map[vertex]
                        break
            if target_pin is None:
                result.open_connections = components.component_count - 1
                break
            source_pin = next(
                i for i in range(member_count)
                if components.find(i) == source_root
            )
            components.union(source_pin, target_pin)
            failed_sources.clear()  # a merge changes reachability
            # The new path's vertices join the merged component.
            merged_root = components.find(source_pin)
            path_vertices = set(search_result.vertices)
            for i in range(member_count):
                if components.find(i) == merged_root:
                    vertex_sets[i] |= path_vertices
