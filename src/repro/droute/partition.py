"""Region partitioning for (modelled) parallel detailed routing (Sec. 5.1).

BonnRoute's detailed routing parallelizes by partitioning the chip area
into regions assigned to threads; each thread may only make changes that
cannot affect other threads' regions, so nets crossing region borders
must wait for later rounds with fewer, larger regions.  The partition
sequence balances the estimated workload (pin count) per region and
shrinks the region count geometrically until a single region remains.

This module reproduces the partitioning logic; execution is serial in
Python, but the round structure (which nets become routable when) and the
balance statistics are the paper's.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chip.design import Chip
from repro.chip.net import Net
from repro.geometry.rect import Rect


class PartitionRound:
    """One round: disjoint regions, each routed by one (modelled) thread."""

    def __init__(self, regions: List[Rect], safety_margin: int) -> None:
        self.regions = regions
        #: Nets must stay this far inside a region to be routable in it
        #: (changes near borders could affect neighbouring threads).
        self.safety_margin = safety_margin
        #: Cut x-coordinates between consecutive regions, when the
        #: regions form the x-slab partition :func:`partition_sequence`
        #: builds (sorted, contiguous, full-height).  ``region_of`` then
        #: bisects instead of scanning; irregular region lists (hand
        #: built in tests) keep the linear scan.
        self._cut_xs: Optional[List[int]] = self._slab_cuts(regions)

    @staticmethod
    def _slab_cuts(regions: Sequence[Rect]) -> Optional[List[int]]:
        if not regions:
            return None
        first = regions[0]
        for prev, here in zip(regions, regions[1:]):
            if here.x_lo != prev.x_hi:
                return None
            if here.y_lo != first.y_lo or here.y_hi != first.y_hi:
                return None
        return [region.x_hi for region in regions[:-1]]

    def _safe_interior(self, index: int) -> Rect:
        region = self.regions[index]
        if (
            region.width > 2 * self.safety_margin
            and region.height > 2 * self.safety_margin
        ):
            return Rect(
                region.x_lo + self.safety_margin if region.x_lo > 0 else region.x_lo,
                region.y_lo + self.safety_margin if region.y_lo > 0 else region.y_lo,
                region.x_hi - self.safety_margin,
                region.y_hi - self.safety_margin,
            )
        return region

    def region_of(self, box: Rect) -> Optional[int]:
        """Region index whose safe interior contains ``box``, or None.

        The regions tile the x-axis, so only the slab containing
        ``box.x_lo`` can contain the box; bisection over the stored cut
        coordinates finds it in O(log regions).  When ``box.x_lo`` sits
        exactly on a cut, the slab left of the cut is checked too (its
        closed upper edge also covers the coordinate), preserving the
        first-match order of the former linear scan.
        """
        if self._cut_xs is None:
            return self._region_of_linear(box)
        candidate = bisect_right(self._cut_xs, box.x_lo)
        if candidate > 0 and self._cut_xs[candidate - 1] == box.x_lo:
            if self._safe_interior(candidate - 1).contains_rect(box):
                return candidate - 1
        if candidate < len(self.regions):
            if self._safe_interior(candidate).contains_rect(box):
                return candidate
        return None

    def _region_of_linear(self, box: Rect) -> Optional[int]:
        """Reference O(regions) scan (kept for irregular regions and as
        the oracle for the bisection's equivalence test)."""
        for index in range(len(self.regions)):
            if self._safe_interior(index).contains_rect(box):
                return index
        return None


def _balanced_cuts(weights: Sequence[int], parts: int) -> List[int]:
    """Cut positions splitting ``weights`` into ``parts`` balanced chunks.

    Greedy prefix-sum splitting: each cut is placed where the running
    total first reaches the next multiple of total/parts.
    """
    total = sum(weights)
    if total == 0 or parts <= 1:
        return []
    cuts = []
    target = total / parts
    running = 0
    next_threshold = target
    for index, weight in enumerate(weights):
        running += weight
        if running >= next_threshold and len(cuts) < parts - 1:
            cuts.append(index + 1)
            next_threshold += target
    return cuts


def partition_sequence(
    chip: Chip,
    threads: int,
    rounds: Optional[int] = None,
    safety_margin: Optional[int] = None,
) -> List[PartitionRound]:
    """The shrinking partition sequence of Sec. 5.1.

    Round k uses roughly threads / 2^k regions, cut along the x-axis at
    pin-weight-balanced positions; the final round is a single region so
    every remaining connection can be closed.
    """
    if threads < 1:
        raise ValueError("need at least one thread")
    if safety_margin is None:
        bottom = chip.stack[chip.stack.bottom]
        safety_margin = 8 * bottom.pitch
    # Pin-count histogram along x (workload estimate).
    buckets = 64
    die = chip.die
    width = max(die.width, 1)
    weights = [0] * buckets
    for pin in chip.all_pins():
        x = pin.reference_point()[0]
        bucket = min(buckets - 1, max(0, (x - die.x_lo) * buckets // width))
        weights[bucket] += 1
    sequence: List[PartitionRound] = []
    region_count = threads
    while region_count > 1:
        cuts = _balanced_cuts(weights, region_count)
        borders = (
            [die.x_lo]
            + [die.x_lo + cut * width // buckets for cut in cuts]
            + [die.x_hi]
        )
        regions = [
            Rect(borders[i], die.y_lo, borders[i + 1], die.y_hi)
            for i in range(len(borders) - 1)
            if borders[i] < borders[i + 1]
        ]
        sequence.append(PartitionRound(regions, safety_margin))
        region_count //= 2
    sequence.append(PartitionRound([die], 0))
    if rounds is not None:
        sequence = sequence[-rounds:]
    return sequence


def assign_nets_to_rounds(
    chip: Chip,
    sequence: Sequence[PartitionRound],
    nets: Optional[Sequence] = None,
) -> List[List[Tuple[int, Net]]]:
    """Assign each net to the earliest round whose safe region contains it.

    ``nets`` restricts the assignment to a subset — e.g. the dirty set of
    an ECO reroute (:meth:`repro.engine.session.RoutingSession.reroute`)
    — and accepts :class:`Net` objects or net names interchangeably;
    names are resolved against the chip and duplicates are dropped.
    Defaults to every chip net.

    Returns per round a list of (region_index, net); within a round,
    different regions model concurrent threads.  Every net is routable by
    the final single-region round at the latest.
    """
    if nets is None:
        nets = chip.nets
    remaining: List[Net] = []
    seen = set()
    for item in nets:
        net = chip.net(item) if isinstance(item, str) else item
        if net.name not in seen:
            seen.add(net.name)
            remaining.append(net)
    assignment: List[List[Tuple[int, Net]]] = []
    for round_index, part in enumerate(sequence):
        this_round: List[Tuple[int, Net]] = []
        still_remaining = []
        last_round = round_index == len(sequence) - 1
        for net in remaining:
            box = net.bounding_box()
            region = part.region_of(box)
            if region is not None or last_round:
                this_round.append((region if region is not None else 0, net))
            else:
                still_remaining.append(net)
        assignment.append(this_round)
        remaining = still_remaining
    return assignment


def balance_report(
    assignment: Sequence[Sequence[Tuple[int, Net]]]
) -> List[Dict[str, float]]:
    """Per-round workload balance: pins per region vs the ideal share."""
    report = []
    for round_nets in assignment:
        per_region: Dict[int, int] = {}
        for region, net in round_nets:
            per_region[region] = per_region.get(region, 0) + net.terminal_count
        if not per_region:
            report.append({"regions": 0, "max_share": 0.0, "nets": 0})
            continue
        total = sum(per_region.values())
        ideal = total / max(len(per_region), 1)
        report.append(
            {
                "regions": len(per_region),
                "max_share": max(per_region.values()) / ideal if ideal else 0.0,
                "nets": len(round_nets),
            }
        )
    return report
