"""Future costs for the on-track path search (Sec. 4.1).

A future cost pi is a consistent potential: c_pi((v, w)) = c((v, w)) -
pi(v) + pi(w) >= 0 for every edge and pi(t) = 0 for every target.  Then
pi(v) lower-bounds the distance from v to the target set, and Dijkstra on
the reduced costs labels far fewer vertices.

* ``FutureCostH`` (Hetzel): l1 distance to the targets' bounding
  rectangles plus the cheapest via chain to a target layer.  Independent
  of the graph's blockage structure.
* ``FutureCostP`` (Peyer et al.): shortest-path distances in a coarse
  supergraph that keeps large blockages, always >= pi_H; used when the
  global route already contains a large detour.
* ``FutureCostGR`` (after Ahrens-Henke-Rabenstein-Vygen,
  arXiv:2111.06169): exact backward distances over the net's *global
  routing corridor*, with large blockages kept.  The detailed search is
  restricted to that corridor anyway, so the corridor distances are a
  valid - and much tighter - lower bound whenever the corridor bends,
  jogs cost more than preferred-direction wire, or a blockage forces a
  detour; and because the corridor is a small slice of the chip, it is
  cheap enough to build for *every* connection, not only the heavily
  detoured ones that justify pi_P.

Admissibility argument for pi_GR: it is computed as exact shortest-path
distances from the target set in a supergraph G' of the corridor-
restricted search graph G (same vertices inside the corridor minus large
blockages, every G-edge present with cost <= its G-cost, because interval
/ripup/spreading penalties only ever *add*).  Exact distances in a
supergraph lower-bound distances in the graph, and are consistent:
dist'(v) <= c'(v,w) + dist'(w) <= c(v,w) + dist'(w).  Taking
max(pi_H, dist') keeps both properties since pi_H is itself consistent.
Forced vertices outside the corridor get UNREACHABLE, exactly like pi_P.

>>> from repro.chip.generator import ChipSpec, generate_chip
>>> from repro.droute.space import RoutingSpace
>>> space = RoutingSpace(generate_chip(
...     ChipSpec("fcdoc", rows=1, row_width_cells=3, net_count=2, seed=7)))
>>> graph = space.graph
>>> z = graph.stack.bottom + 1
>>> t = (z, 1, 4)
>>> pi_h = FutureCostH(graph, [t], SearchCosts())
>>> pi_h(t)
0
>>> from repro.droute.area import RoutingArea
>>> pi_gr = FutureCostGR(graph, [t], SearchCosts(), RoutingArea.everywhere())
>>> pi_gr(t)
0
>>> s = (z, 0, 0)
>>> pi_gr(s) >= pi_h(s)  # the corridor bound dominates plain l1
True
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.droute.area import RoutingArea
from repro.geometry.rect import Rect
from repro.grid.trackgraph import TrackGraph, Vertex
from repro.util.heap import AddressableHeap


class SearchCosts:
    """Edge cost parameters of the track-graph metric (Sec. 4.1).

    Wires in preferred direction cost their l1 length; jogs cost
    ``jog_factor`` times their length (beta_z); a via costs ``via_cost``
    (gamma).  A single factor per layer kind keeps the example technology
    simple; per-layer overrides are possible via the dicts.
    """

    def __init__(
        self,
        jog_factor: int = 2,
        via_cost: int = 160,
        jog_factor_per_layer: Optional[Dict[int, int]] = None,
        via_cost_per_layer: Optional[Dict[int, int]] = None,
    ) -> None:
        if jog_factor < 1:
            raise ValueError("jog factor below 1 breaks the l1 lower bound")
        if via_cost < 0:
            raise ValueError("via cost must be non-negative")
        self.jog_factor = jog_factor
        self.via_cost = via_cost
        self._jog_per_layer = dict(jog_factor_per_layer or {})
        self._via_per_layer = dict(via_cost_per_layer or {})

    def jog(self, layer: int, length: int) -> int:
        return self._jog_per_layer.get(layer, self.jog_factor) * length

    def wire(self, layer: int, length: int) -> int:
        return length

    def via(self, via_layer: int) -> int:
        return self._via_per_layer.get(via_layer, self.via_cost)

    def edge_cost(self, kind: str, layer_or_via: int, length: int) -> int:
        if kind == "wire":
            return self.wire(layer_or_via, length)
        if kind == "jog":
            return self.jog(layer_or_via, length)
        return self.via(layer_or_via)


def _point_rect_l1(x: int, y: int, rect: Rect) -> int:
    dx = max(rect.x_lo - x, 0, x - rect.x_hi)
    dy = max(rect.y_lo - y, 0, y - rect.y_hi)
    return dx + dy


class FutureCostH:
    """pi_H: l1 distance to target rectangles + cheapest via chain.

    ``lb_wire(x, y)`` is the minimum l1 distance from (x, y) to any
    target's projection; ``lb_via(z)`` the minimum via-chain cost from
    layer z to a layer containing targets.  Computation is
    O(|T_rect|) per query; with the small target-rect counts of routing
    connections this matches the paper's point-location bound in practice.
    """

    def __init__(
        self,
        graph: TrackGraph,
        targets: Iterable[Vertex],
        costs: SearchCosts,
    ) -> None:
        self.graph = graph
        self.costs = costs
        self.target_rects: List[Rect] = []
        target_layers = set()
        for vertex in targets:
            x, y, z = graph.position(vertex)
            self.target_rects.append(Rect(x, y, x, y))
            target_layers.add(z)
        if not self.target_rects:
            raise ValueError("future cost needs at least one target")
        self.target_rects = _coalesce_rects(self.target_rects)
        self._lb_via = self._via_lower_bounds(target_layers)

    def _via_lower_bounds(self, target_layers) -> Dict[int, int]:
        out: Dict[int, int] = {}
        for z in self.graph.stack.indices:
            best = None
            for zt in target_layers:
                lo, hi = min(z, zt), max(z, zt)
                chain = sum(self.costs.via(v) for v in range(lo, hi))
                best = chain if best is None else min(best, chain)
            out[z] = best if best is not None else 0
        return out

    def __call__(self, vertex: Vertex) -> int:
        x, y, z = self.graph.position(vertex)
        lb_wire = min(_point_rect_l1(x, y, rect) for rect in self.target_rects)
        return lb_wire + self._lb_via[z]

    def lb_wire(self, x: int, y: int) -> int:
        return min(_point_rect_l1(x, y, rect) for rect in self.target_rects)


def _coalesce_rects(rects: List[Rect]) -> List[Rect]:
    """Merge target point-rects that touch into fewer boxes (keeps the
    lower bound valid: a bigger box only lowers distances)."""
    rects = sorted(rects, key=lambda r: (r.y_lo, r.x_lo))
    merged: List[Rect] = []
    for rect in rects:
        if merged and merged[-1].expanded(1).intersects(rect):
            merged[-1] = merged[-1].hull(rect)
        else:
            merged.append(rect)
    return merged


UNREACHABLE = 1 << 50


class FutureCostP:
    """pi_P: blockage-aware future cost (Peyer et al. [2009]).

    Computes exact backward distances from the target set in a
    *supergraph* G' of the search graph: the same track graph and edge
    costs, but with only the *large* blockages kept (obstacles whose
    smaller dimension is below ``small_blockage_threshold`` are ignored).
    Every edge of the real search graph exists in G' with equal cost, so
    dist_{G'}(v, T) is a consistent potential with dist_{G'} <= dist_G,
    and by construction pi_P >= pi_H would hold if G' had no extra
    freedom - we return max(pi_H, dist_{G'}) to guarantee it.

    As the paper notes, computing pi_P costs a full (cheap-usability)
    Dijkstra over the routing area, so it is only worth it for
    connections whose global route already contains a large detour.
    """

    def __init__(
        self,
        graph: TrackGraph,
        targets: Sequence[Vertex],
        costs: SearchCosts,
        area: RoutingArea,
        large_blockages: Sequence[Tuple[int, Rect]],
        small_blockage_threshold: int = 0,
    ) -> None:
        self.graph = graph
        self.pi_h = FutureCostH(graph, targets, costs)
        self.costs = costs
        if small_blockage_threshold <= 0:
            stack = graph.stack
            small_blockage_threshold = 4 * stack[stack.bottom].pitch
        self._blocked = _large_blockage_map(
            large_blockages, small_blockage_threshold
        )
        self._dist: Dict[Vertex, int] = {}
        self._build(targets, area)

    def _vertex_open(self, vertex: Vertex, area: RoutingArea) -> bool:
        x, y, z = self.graph.position(vertex)
        if not area.contains(x, y, z):
            return False
        for rect in self._blocked.get(z, ()):
            # Interior containment: wires may run on blockage borders.
            if rect.x_lo < x < rect.x_hi and rect.y_lo < y < rect.y_hi:
                return False
        return True

    def _build(self, targets: Sequence[Vertex], area: RoutingArea) -> None:
        graph = self.graph
        heap = AddressableHeap()
        dist = self._dist
        for vertex in targets:
            dist[vertex] = 0
            heap.push(vertex, 0)
        while heap:
            vertex, d = heap.pop()
            if d > dist.get(vertex, UNREACHABLE):
                continue
            z, _t, _c = vertex
            for neighbour, kind, length in graph.neighbors(vertex):
                if not self._vertex_open(neighbour, area):
                    continue
                layer_or_via = min(z, neighbour[0]) if kind == "via" else z
                nd = d + self.costs.edge_cost(kind, layer_or_via, length)
                if nd < dist.get(neighbour, UNREACHABLE):
                    dist[neighbour] = nd
                    heap.push(neighbour, nd)

    def __call__(self, vertex: Vertex) -> int:
        h = self.pi_h(vertex)
        d = self._dist.get(vertex)
        if d is None:
            # Not reachable even ignoring small blockages: the real search
            # cannot reach the targets from here either.
            return UNREACHABLE
        return max(h, d)


def _large_blockage_map(
    large_blockages: Sequence[Tuple[int, Rect]], threshold: int
) -> Dict[int, List[Rect]]:
    out: Dict[int, List[Rect]] = {}
    for layer, rect in large_blockages:
        if min(rect.width, rect.height) >= threshold:
            out.setdefault(layer, []).append(rect)
    return out


class FutureCostGR:
    """pi_GR: corridor-tightened future cost (arXiv:2111.06169 direction).

    Backward Dijkstra from the targets over the vertices of the net's
    global-routing corridor (minus large blockages), using the real edge
    costs.  See the module docstring for the admissibility argument.

    Construction differs from :class:`FutureCostP` in two ways that make
    it cheap enough to run on every connection:

    * the explored vertex set is *enumerated once* from the corridor's
      per-track cross ranges (``RoutingArea.cross_ranges``) instead of
      being re-tested rectangle-by-rectangle at every edge relaxation;
    * the Dijkstra runs over that precomputed set with a plain C heap.

    Queries return ``max(pi_H, corridor distance)`` so pi_GR dominates
    the classic bound; vertices outside the corridor (only forced
    sources can be) get UNREACHABLE, matching pi_P's convention.
    """

    def __init__(
        self,
        graph: TrackGraph,
        targets: Sequence[Vertex],
        costs: SearchCosts,
        corridor: RoutingArea,
        large_blockages: Sequence[Tuple[int, Rect]] = (),
        small_blockage_threshold: int = 0,
        view=None,
        stop_vertices: Iterable[Vertex] = (),
    ) -> None:
        self.graph = graph
        self.pi_h = FutureCostH(graph, targets, costs)
        self.costs = costs
        if small_blockage_threshold <= 0:
            stack = graph.stack
            small_blockage_threshold = 4 * stack[stack.bottom].pitch
        self._dist: Dict[Vertex, int] = {}
        #: Truncation bound: when the backward Dijkstra stopped early
        #: (every stop vertex settled), unsettled corridor vertices are
        #: at distance >= this, so max(pi_H, bound) stays admissible.
        self._truncated_at: Optional[int] = None
        self._view = view
        self._open: Set[Vertex] = set()
        #: In view mode the backward sweep covers *exactly* the forward
        #: search's vertex set, so UNREACHABLE is a proof of
        #: disconnection and the search may prune such labels instead of
        #: exhausting the frontier.  In corridor-set mode forced
        #: vertices outside the corridor make UNREACHABLE merely a
        #: penalty, as with pi_P.
        self.unreachable_is_proof = view is not None
        if view is not None:
            # The forward search's own interval decomposition is the
            # exact open-vertex set (area-restricted *and* usability-
            # filtered at vertex granularity) plus the interval entry
            # penalties the forward metric charges; its lazy per-track
            # cache is shared with the forward search, so openness is
            # probed on demand instead of pre-enumerated.  Through the
            # view, both sweeps also share the space's cross-search
            # IntervalCache: a track already scanned by any earlier
            # search at the same epoch is reused here without touching
            # the fast grid.
            self._build_view(targets, view, stop_vertices)
        else:
            blocked = _large_blockage_map(
                large_blockages, small_blockage_threshold
            )
            open_set = self._corridor_vertices(corridor, blocked)
            open_set.update(targets)
            self._open = open_set
            self._build(targets, open_set, stop_vertices)

    def _corridor_vertices(
        self, corridor: RoutingArea, blocked: Dict[int, List[Rect]]
    ) -> Set[Vertex]:
        graph = self.graph
        out: Set[Vertex] = set()
        for z in graph.stack.indices:
            if not corridor.allows_layer(z):
                continue
            layer_blocked = blocked.get(z, ())
            for t in corridor.track_indices(graph, z):
                for c_lo, c_hi in corridor.cross_ranges(graph, z, t):
                    for c in range(c_lo, c_hi + 1):
                        vertex = (z, t, c)
                        if layer_blocked:
                            x, y, _z = graph.position(vertex)
                            # Interior containment: wires may run on
                            # blockage borders (as in pi_P).
                            if any(
                                rect.x_lo < x < rect.x_hi
                                and rect.y_lo < y < rect.y_hi
                                for rect in layer_blocked
                            ):
                                continue
                        out.add(vertex)
        return out

    def _build_view(
        self,
        targets: Sequence[Vertex],
        view,
        stop_vertices: Iterable[Vertex],
    ) -> None:
        """Backward Dijkstra over the view's open vertices.

        Edge costs match the forward metric exactly where both graphs
        have the edge: base cost plus the entry penalty of the interval
        the *forward* step moves into (the popped vertex's interval,
        seen backward).  Edge usability is ignored - a supergraph - so
        distances stay lower bounds; penalties are charged identically,
        so the bound is tight even on spreading- or ripup-penalised
        terrain.
        """
        graph = self.graph
        costs = self.costs
        dist = self._dist
        interval_at = view.interval_at
        #: Truncate at the *first* settled source: every vertex within
        #: that backward radius - in particular the whole optimal path
        #: from the nearest source - already has its exact distance, and
        #: the sweep stays as small as the forward search region.
        stop_set = set(stop_vertices)
        settled: Set[Vertex] = set()
        heap: List[Tuple[int, Vertex]] = []
        for vertex in targets:
            dist[vertex] = 0
            heap.append((0, vertex))
        heapq.heapify(heap)
        while heap:
            d, vertex = heapq.heappop(heap)
            if d > dist.get(vertex, UNREACHABLE):
                continue
            if stop_set:
                settled.add(vertex)
                if vertex in stop_set:
                    self._truncated_at = d
                    self._dist = {
                        v: dv for v, dv in dist.items() if v in settled
                    }
                    return
            interval = interval_at(vertex)
            penalty = interval.penalty if interval is not None else 0
            z = vertex[0]
            for neighbour, kind, length in graph.neighbors(vertex):
                n_interval = interval_at(neighbour)
                if n_interval is None:
                    continue
                layer_or_via = min(z, neighbour[0]) if kind == "via" else z
                nd = d + costs.edge_cost(kind, layer_or_via, length)
                if n_interval is not interval:
                    # The forward step neighbour -> vertex enters the
                    # popped vertex's interval and pays its penalty.
                    nd += penalty
                if nd < dist.get(neighbour, UNREACHABLE):
                    dist[neighbour] = nd
                    heapq.heappush(heap, (nd, neighbour))

    def _build(
        self,
        targets: Sequence[Vertex],
        open_set: Set[Vertex],
        stop_vertices: Iterable[Vertex],
    ) -> None:
        graph = self.graph
        costs = self.costs
        dist = self._dist
        stop_set = set(stop_vertices) & open_set
        settled: Set[Vertex] = set()
        heap: List[Tuple[int, Vertex]] = []
        for vertex in targets:
            dist[vertex] = 0
            heap.append((0, vertex))
        heapq.heapify(heap)
        while heap:
            d, vertex = heapq.heappop(heap)
            if d > dist.get(vertex, UNREACHABLE):
                continue
            if stop_set:
                settled.add(vertex)
                if vertex in stop_set:
                    # First source settled: every *unsettled* vertex is
                    # at distance >= d, so d is a valid bound for them.
                    # Tentative labels still in ``dist`` may overestimate
                    # the true backward distance - drop them so queries
                    # fall through to the truncation bound.
                    self._truncated_at = d
                    self._dist = {v: dv for v, dv in dist.items() if v in settled}
                    return
            z = vertex[0]
            for neighbour, kind, length in graph.neighbors(vertex):
                if neighbour not in open_set:
                    continue
                layer_or_via = min(z, neighbour[0]) if kind == "via" else z
                nd = d + costs.edge_cost(kind, layer_or_via, length)
                if nd < dist.get(neighbour, UNREACHABLE):
                    dist[neighbour] = nd
                    heapq.heappush(heap, (nd, neighbour))

    def _is_open(self, vertex: Vertex) -> bool:
        if self._view is not None:
            return self._view.interval_at(vertex) is not None
        return vertex in self._open

    def __call__(self, vertex: Vertex) -> int:
        h = self.pi_h(vertex)
        d = self._dist.get(vertex)
        if d is None:
            if self._truncated_at is not None and self._is_open(vertex):
                # In the corridor but beyond the truncation frontier:
                # dist' >= the frontier bound, still a valid lower bound.
                return max(h, self._truncated_at)
            return UNREACHABLE
        return max(h, d)
