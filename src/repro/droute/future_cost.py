"""Future costs for the on-track path search (Sec. 4.1).

A future cost pi is a consistent potential: c_pi((v, w)) = c((v, w)) -
pi(v) + pi(w) >= 0 for every edge and pi(t) = 0 for every target.  Then
pi(v) lower-bounds the distance from v to the target set, and Dijkstra on
the reduced costs labels far fewer vertices.

* ``FutureCostH`` (Hetzel): l1 distance to the targets' bounding
  rectangles plus the cheapest via chain to a target layer.  Independent
  of the graph's blockage structure.
* ``FutureCostP`` (Peyer et al.): shortest-path distances in a coarse
  supergraph that keeps large blockages, always >= pi_H; used when the
  global route already contains a large detour.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.droute.area import RoutingArea
from repro.geometry.rect import Rect
from repro.grid.trackgraph import TrackGraph, Vertex
from repro.util.heap import AddressableHeap


class SearchCosts:
    """Edge cost parameters of the track-graph metric (Sec. 4.1).

    Wires in preferred direction cost their l1 length; jogs cost
    ``jog_factor`` times their length (beta_z); a via costs ``via_cost``
    (gamma).  A single factor per layer kind keeps the example technology
    simple; per-layer overrides are possible via the dicts.
    """

    def __init__(
        self,
        jog_factor: int = 2,
        via_cost: int = 160,
        jog_factor_per_layer: Optional[Dict[int, int]] = None,
        via_cost_per_layer: Optional[Dict[int, int]] = None,
    ) -> None:
        if jog_factor < 1:
            raise ValueError("jog factor below 1 breaks the l1 lower bound")
        if via_cost < 0:
            raise ValueError("via cost must be non-negative")
        self.jog_factor = jog_factor
        self.via_cost = via_cost
        self._jog_per_layer = dict(jog_factor_per_layer or {})
        self._via_per_layer = dict(via_cost_per_layer or {})

    def jog(self, layer: int, length: int) -> int:
        return self._jog_per_layer.get(layer, self.jog_factor) * length

    def wire(self, layer: int, length: int) -> int:
        return length

    def via(self, via_layer: int) -> int:
        return self._via_per_layer.get(via_layer, self.via_cost)

    def edge_cost(self, kind: str, layer_or_via: int, length: int) -> int:
        if kind == "wire":
            return self.wire(layer_or_via, length)
        if kind == "jog":
            return self.jog(layer_or_via, length)
        return self.via(layer_or_via)


def _point_rect_l1(x: int, y: int, rect: Rect) -> int:
    dx = max(rect.x_lo - x, 0, x - rect.x_hi)
    dy = max(rect.y_lo - y, 0, y - rect.y_hi)
    return dx + dy


class FutureCostH:
    """pi_H: l1 distance to target rectangles + cheapest via chain.

    ``lb_wire(x, y)`` is the minimum l1 distance from (x, y) to any
    target's projection; ``lb_via(z)`` the minimum via-chain cost from
    layer z to a layer containing targets.  Computation is
    O(|T_rect|) per query; with the small target-rect counts of routing
    connections this matches the paper's point-location bound in practice.
    """

    def __init__(
        self,
        graph: TrackGraph,
        targets: Iterable[Vertex],
        costs: SearchCosts,
    ) -> None:
        self.graph = graph
        self.costs = costs
        self.target_rects: List[Rect] = []
        target_layers = set()
        for vertex in targets:
            x, y, z = graph.position(vertex)
            self.target_rects.append(Rect(x, y, x, y))
            target_layers.add(z)
        if not self.target_rects:
            raise ValueError("future cost needs at least one target")
        self.target_rects = _coalesce_rects(self.target_rects)
        self._lb_via = self._via_lower_bounds(target_layers)

    def _via_lower_bounds(self, target_layers) -> Dict[int, int]:
        out: Dict[int, int] = {}
        for z in self.graph.stack.indices:
            best = None
            for zt in target_layers:
                lo, hi = min(z, zt), max(z, zt)
                chain = sum(self.costs.via(v) for v in range(lo, hi))
                best = chain if best is None else min(best, chain)
            out[z] = best if best is not None else 0
        return out

    def __call__(self, vertex: Vertex) -> int:
        x, y, z = self.graph.position(vertex)
        lb_wire = min(_point_rect_l1(x, y, rect) for rect in self.target_rects)
        return lb_wire + self._lb_via[z]

    def lb_wire(self, x: int, y: int) -> int:
        return min(_point_rect_l1(x, y, rect) for rect in self.target_rects)


def _coalesce_rects(rects: List[Rect]) -> List[Rect]:
    """Merge target point-rects that touch into fewer boxes (keeps the
    lower bound valid: a bigger box only lowers distances)."""
    rects = sorted(rects, key=lambda r: (r.y_lo, r.x_lo))
    merged: List[Rect] = []
    for rect in rects:
        if merged and merged[-1].expanded(1).intersects(rect):
            merged[-1] = merged[-1].hull(rect)
        else:
            merged.append(rect)
    return merged


UNREACHABLE = 1 << 50


class FutureCostP:
    """pi_P: blockage-aware future cost (Peyer et al. [2009]).

    Computes exact backward distances from the target set in a
    *supergraph* G' of the search graph: the same track graph and edge
    costs, but with only the *large* blockages kept (obstacles whose
    smaller dimension is below ``small_blockage_threshold`` are ignored).
    Every edge of the real search graph exists in G' with equal cost, so
    dist_{G'}(v, T) is a consistent potential with dist_{G'} <= dist_G,
    and by construction pi_P >= pi_H would hold if G' had no extra
    freedom - we return max(pi_H, dist_{G'}) to guarantee it.

    As the paper notes, computing pi_P costs a full (cheap-usability)
    Dijkstra over the routing area, so it is only worth it for
    connections whose global route already contains a large detour.
    """

    def __init__(
        self,
        graph: TrackGraph,
        targets: Sequence[Vertex],
        costs: SearchCosts,
        area: RoutingArea,
        large_blockages: Sequence[Tuple[int, Rect]],
        small_blockage_threshold: int = 0,
    ) -> None:
        self.graph = graph
        self.pi_h = FutureCostH(graph, targets, costs)
        self.costs = costs
        if small_blockage_threshold <= 0:
            stack = graph.stack
            small_blockage_threshold = 4 * stack[stack.bottom].pitch
        self._blocked: Dict[int, List[Rect]] = {}
        for layer, rect in large_blockages:
            if min(rect.width, rect.height) >= small_blockage_threshold:
                self._blocked.setdefault(layer, []).append(rect)
        self._dist: Dict[Vertex, int] = {}
        self._build(targets, area)

    def _vertex_open(self, vertex: Vertex, area: RoutingArea) -> bool:
        x, y, z = self.graph.position(vertex)
        if not area.contains(x, y, z):
            return False
        for rect in self._blocked.get(z, ()):
            # Interior containment: wires may run on blockage borders.
            if rect.x_lo < x < rect.x_hi and rect.y_lo < y < rect.y_hi:
                return False
        return True

    def _build(self, targets: Sequence[Vertex], area: RoutingArea) -> None:
        graph = self.graph
        heap = AddressableHeap()
        dist = self._dist
        for vertex in targets:
            dist[vertex] = 0
            heap.push(vertex, 0)
        while heap:
            vertex, d = heap.pop()
            if d > dist.get(vertex, UNREACHABLE):
                continue
            z, _t, _c = vertex
            for neighbour, kind, length in graph.neighbors(vertex):
                if not self._vertex_open(neighbour, area):
                    continue
                layer_or_via = min(z, neighbour[0]) if kind == "via" else z
                nd = d + self.costs.edge_cost(kind, layer_or_via, length)
                if nd < dist.get(neighbour, UNREACHABLE):
                    dist[neighbour] = nd
                    heap.push(neighbour, nd)

    def __call__(self, vertex: Vertex) -> int:
        h = self.pi_h(vertex)
        d = self._dist.get(vertex)
        if d is None:
            # Not reachable even ignoring small blockages: the real search
            # cannot reach the targets from here either.
            return UNREACHABLE
        return max(h, d)
