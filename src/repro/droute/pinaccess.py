"""Off-track pin access (Sec. 4.3, Fig. 7).

Most pins are not aligned with the track grid.  For each pin we build a
*catalogue* of DRC-clean tau-feasible access paths (via the blockage grid
of Sec. 3.8) connecting the pin to on-track points within a small radius.
Per circuit, one primary access path per pin is chosen such that the set
forms a *conflict-free solution* - pairwise DRC-clean - using a
branch-and-bound enumeration ("destructive bounding") that scores
solutions by endpoint spreading, blocked tracks, feasible on-track
continuations and length.  Chosen paths are reserved in the routing space
before routing starts so later wires cannot invalidate them.

Because placed circuits come from few library prototypes, catalogues are
cached per *circuit class*: template, orientation, track phase, and the
neighbourhood's foreign geometry (Sec. 4.3).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.chip.net import Pin
from repro.droute.route import ViaInstance
from repro.droute.space import RoutingSpace
from repro.obs import OBS
from repro.geometry.l1 import rect_l2_gap, run_length
from repro.geometry.rect import Rect
from repro.grid.blockgrid import BlockageGrid
from repro.grid.shapegrid import RipupLevel
from repro.grid.trackgraph import Vertex
from repro.tech.wiring import ShapeKind, StickFigure


class AccessPath:
    """One off-track connection from a pin to an on-track endpoint."""

    __slots__ = (
        "pin_name", "net_name", "layer", "points", "via", "endpoint",
        "length", "blockers",
    )

    def __init__(
        self,
        pin_name: str,
        net_name: str,
        layer: int,
        points: List[Tuple[int, int]],
        via: Optional[ViaInstance],
        endpoint: Vertex,
        length: int,
        blockers: Optional[Set[str]] = None,
    ) -> None:
        self.pin_name = pin_name
        self.net_name = net_name
        #: Layer the polyline runs on (the pin's layer).
        self.layer = layer
        #: Polyline from the pin to the endpoint's (x, y).
        self.points = points
        #: Optional via lifting the endpoint to the layer above.
        self.via = via
        #: Track-graph vertex where on-track routing continues.
        self.endpoint = endpoint
        self.length = length
        #: Foreign nets whose wiring must be ripped out before this path
        #: is legal (fallback jumpers over removable reservations).
        self.blockers: Set[str] = blockers or set()

    def __repr__(self) -> str:
        return f"AccessPath({self.pin_name} -> {self.endpoint}, len={self.length})"

    def sticks(self) -> List[StickFigure]:
        out = []
        for (x0, y0), (x1, y1) in zip(self.points, self.points[1:]):
            out.append(StickFigure(self.layer, x0, y0, x1, y1))
        if not out and self.points:
            x, y = self.points[0]
            out.append(StickFigure(self.layer, x, y, x, y))
        return out

    def shapes(self, space: RoutingSpace, wire_type_name: str) -> List[Tuple[int, Rect]]:
        """Metal rectangles (wiring layers only) the path induces."""
        wire_type = space.chip.wire_type(wire_type_name)
        shapes = []
        for stick in self.sticks():
            rect, _cls, _kind = wire_type.wire_shape(stick, space.chip.stack)
            shapes.append((stick.layer, rect))
        if self.via is not None:
            model = wire_type.via_model(self.via.via_layer)
            for kind, layer, rect, _cls, _sk in model.shapes(
                self.via.x, self.via.y, self.via.via_layer
            ):
                if kind == "wiring":
                    shapes.append((layer, rect))
        return shapes


class PinAccessPlanner:
    """Catalogue construction + conflict-free selection + reservation."""

    def __init__(
        self,
        space: RoutingSpace,
        wire_type_name: str = "default",
        radius_pitches: int = 4,
        max_endpoints: int = 10,
        max_paths: int = 6,
        fault_injector=None,
        memo_capacity: Optional[int] = None,
    ) -> None:
        self.space = space
        self.wire_type_name = wire_type_name
        self.radius_pitches = radius_pitches
        self.max_endpoints = max_endpoints
        self.max_paths = max_paths
        #: Catalogue-memo entry budget (LRU beyond it); defaults to the
        #: ``REPRO_PINACCESS_MEMO_CAP`` environment variable or 4096.
        if memo_capacity is None:
            memo_capacity = int(os.environ.get("REPRO_PINACCESS_MEMO_CAP", "4096"))
        self.memo_capacity = max(1, memo_capacity)
        #: Optional :class:`repro.flow.faults.FaultInjector` probed at the
        #: "pin_access" site (deterministic fault-injection harness).
        self.fault_injector = fault_injector
        #: Catalogue cache per circuit class (Sec. 4.3); key includes the
        #: track phase and the neighbourhood geometry.
        self._class_cache: Dict[Tuple, Dict[str, List[AccessPath]]] = {}
        #: Exact-input memo for :meth:`build_catalogue`: key = (pin,
        #: radius, all shape-grid geometry any of its checks can read).
        #: Identical inputs make the blockage-grid Dijkstras and via
        #: checks deterministic, so replaying the cached result is
        #: bit-identical to rebuilding — it only skips the work.  The
        #: store is an LRU bounded at :attr:`memo_capacity` entries
        #: (``pinaccess.evictions`` counts the drops); eviction can only
        #: cost a rebuild, never change its result.
        self._catalogue_memo: "OrderedDict[Tuple, List[AccessPath]]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    # Catalogue construction
    # ------------------------------------------------------------------
    def _obstacles_near(self, pin: Pin, layer: int, window: Rect) -> List[Rect]:
        """Foreign shapes near the pin, expanded by wire clearance."""
        chip = self.space.chip
        wire_type = chip.wire_type(self.wire_type_name)
        model = wire_type.preferred_model(layer)
        wire_width = model.shape_class.rule_width
        rule = chip.rules.spacing_rule(layer)
        net_name = pin.net.name if pin.net is not None else None
        obstacles = []
        for entry in self.space.shape_grid.query("wiring", layer, window):
            if entry.net == net_name:
                continue
            run = max(entry.rect.width, entry.rect.height)
            # Centerline clearance: half width + spacing + the pessimistic
            # line-end extension the final metal will carry (Fig. 2).
            clearance = (
                wire_width // 2
                + rule.spacing(wire_width, entry.rule_width, run)
                + model.line_end_extension
            )
            obstacles.append(entry.rect.expanded(clearance))
        return obstacles

    def _endpoint_candidates(self, pin: Pin, window: Rect) -> List[Vertex]:
        graph = self.space.graph
        layers = []
        pin_layer = pin.layers[0]
        layers.append(pin_layer)
        if graph.stack.has_layer(pin_layer + 1):
            layers.append(pin_layer + 1)
        cx, cy = pin.reference_point()
        candidates: List[Tuple[int, Vertex]] = []
        for z in layers:
            for vertex in graph.vertices_in_rect(
                z, window.x_lo, window.y_lo, window.x_hi, window.y_hi
            ):
                x, y, _ = graph.position(vertex)
                candidates.append((abs(x - cx) + abs(y - cy), vertex))
        candidates.sort()
        return [v for _, v in candidates[: self.max_endpoints]]

    def _catalogue_fingerprint(self, pin: Pin, window: Rect, tau: int) -> Tuple:
        """Every shape-grid entry a catalogue build can read.

        Covers the obstacle window plus the interaction reach of the
        endpoint via checks on the pin layer and its neighbours; two
        builds with equal fingerprints see identical geometry, so their
        results are identical.
        """
        chip = self.space.chip
        stack = chip.stack
        pin_layer = pin.layers[0]
        entries = []
        for layer in (pin_layer - 1, pin_layer, pin_layer + 1):
            if not stack.has_layer(layer):
                continue
            reach = (
                tau
                + chip.rules.max_interaction_distance(layer)
                + 2 * stack[layer].pitch
            )
            for entry in self.space.shape_grid.query(
                "wiring", layer, window.expanded(reach)
            ):
                r = entry.rect
                entries.append((
                    "wiring", layer, r.x_lo, r.y_lo, r.x_hi, r.y_hi,
                    entry.net, str(entry.shape_kind), entry.ripup_level,
                    entry.rule_width,
                ))
        for via_layer in (pin_layer - 1, pin_layer):
            if via_layer not in stack.via_layers():
                continue
            reach = tau + 4 * stack[via_layer].pitch
            for entry in self.space.shape_grid.query(
                "via", via_layer, window.expanded(reach)
            ):
                r = entry.rect
                entries.append((
                    "via", via_layer, r.x_lo, r.y_lo, r.x_hi, r.y_hi,
                    entry.net, str(entry.shape_kind), entry.ripup_level,
                    entry.rule_width,
                ))
        return tuple(sorted(entries, key=repr))

    @staticmethod
    def _copy_path(path: AccessPath) -> AccessPath:
        return AccessPath(
            path.pin_name, path.net_name, path.layer, list(path.points),
            path.via, path.endpoint, path.length, set(path.blockers),
        )

    def build_catalogue(
        self, pin: Pin, radius_pitches: Optional[int] = None
    ) -> List[AccessPath]:
        """DRC-clean tau-feasible access paths for one pin.

        Builds are memoized on (pin, radius, neighbourhood geometry): the
        per-endpoint blockage-grid Dijkstras dominate the planner's cost,
        and re-routed nets usually ask for the same pin over unchanged
        geometry.  A hit replays copies of the cached paths — exactly
        what a rebuild would produce.
        """
        if self.fault_injector is not None:
            net_name = pin.net.name if pin.net is not None else None
            self.fault_injector.check("pin_access", net=net_name)
        chip = self.space.chip
        pin_layer = pin.layers[0]
        pitch = chip.stack[pin_layer].pitch
        radius = (radius_pitches or self.radius_pitches) * pitch
        bbox = pin.bounding_box()
        window = bbox.expanded(radius)
        tau = chip.rules.same_net_rules(pin_layer).min_segment_length
        memo_key = (
            pin.name, radius, self._catalogue_fingerprint(pin, window, tau)
        )
        cached = self._catalogue_memo.get(memo_key)
        if cached is not None:
            self._catalogue_memo.move_to_end(memo_key)
            if OBS.enabled:
                OBS.count("pinaccess.catalogue_memo_hits")
            return [self._copy_path(p) for p in cached]
        if OBS.enabled:
            OBS.count("pinaccess.catalogues_built")
        obstacles = self._obstacles_near(pin, pin_layer, window.expanded(tau))
        endpoints = self._endpoint_candidates(pin, window)
        if not endpoints:
            return []
        net_name = pin.net.name if pin.net is not None else ""
        source = pin.reference_point()
        graph = self.space.graph
        paths: List[AccessPath] = []
        wire_type = chip.wire_type(self.wire_type_name)
        for endpoint in endpoints:
            ex, ey, ez = graph.position(endpoint)
            grid = BlockageGrid(
                obstacles, tau, window.expanded(tau), [source, (ex, ey)]
            )
            result = grid.shortest_path([source], [(ex, ey)])
            if result is None:
                continue
            length, points = result
            via: Optional[ViaInstance] = None
            if ez == pin_layer + 1:
                if not wire_type.has_via_layer(pin_layer):
                    continue
                via = ViaInstance(pin_layer, ex, ey)
                check = self.space.check_via(self.wire_type_name, via, net_name)
                if not check.legal:
                    continue
            paths.append(
                AccessPath(pin.name, net_name, pin_layer, points, via, endpoint, length)
            )
            if len(paths) >= self.max_paths:
                break
        paths.sort(key=lambda p: p.length)
        while len(self._catalogue_memo) >= self.memo_capacity:
            self._catalogue_memo.popitem(last=False)
            if OBS.enabled:
                OBS.count("pinaccess.evictions")
        self._catalogue_memo[memo_key] = [self._copy_path(p) for p in paths]
        return paths

    def jumper_fallback(self, pin: Pin, require_legal: bool = True) -> List[AccessPath]:
        """Last-resort pin access: a short L-shaped jumper to the nearest
        usable vertices, ignoring tau (the same-net postprocess and the
        external DRC cleanup handle the residue, Sec. 5.2).

        With ``require_legal=False`` even diff-net-violating jumpers are
        returned: conceding a violation to the cleanup step beats leaving
        the pin open (the error counts of Table I include both).
        """
        chip = self.space.chip
        pin_layer = pin.layers[0]
        pitch = chip.stack[pin_layer].pitch
        window = pin.bounding_box().expanded(6 * pitch)
        endpoints = self._endpoint_candidates(pin, window)
        net_name = pin.net.name if pin.net is not None else ""
        cx, cy = pin.reference_point()
        graph = self.space.graph
        wire_type = chip.wire_type(self.wire_type_name)
        paths: List[AccessPath] = []
        rippable: List[AccessPath] = []
        conceded: List[AccessPath] = []
        for endpoint in endpoints:
            ex, ey, ez = graph.position(endpoint)
            for corner in ((ex, cy), (cx, ey)):
                points = [(cx, cy), corner, (ex, ey)]
                sticks = [
                    StickFigure(pin_layer, a[0], a[1], b[0], b[1])
                    for a, b in zip(points, points[1:])
                    if a != b
                ]
                checks = [
                    self.space.check_wire(self.wire_type_name, stick, net_name)
                    for stick in sticks
                ]
                via: Optional[ViaInstance] = None
                if ez == pin_layer + 1:
                    if not wire_type.has_via_layer(pin_layer):
                        continue
                    via = ViaInstance(pin_layer, ex, ey)
                    checks.append(
                        self.space.check_via(self.wire_type_name, via, net_name)
                    )
                legal = all(c.legal for c in checks)
                if require_legal and not legal:
                    continue
                blockers: Set[str] = set()
                hits_fixed = any(
                    not c.legal and c.max_ripup_needed < 0 for c in checks
                )
                if not legal and not hits_fixed:
                    # Jumpers over removable wiring: the connector rips
                    # the blocker nets instead of conceding a violation.
                    for c in checks:
                        blockers |= c.blockers
                    blockers.discard(net_name)
                length = abs(ex - cx) + abs(ey - cy)
                path = AccessPath(
                    pin.name, net_name, pin_layer, points, via, endpoint,
                    length, blockers,
                )
                if legal:
                    paths.append(path)
                elif hits_fixed:
                    conceded.append(path)
                else:
                    rippable.append(path)
                break
            if len(paths) >= 2:
                break
        if paths:
            return paths
        if rippable:
            return rippable[:2]
        # Very last resort: concede a violation to the DRC cleanup rather
        # than leaving the pin open (both enter Table I's error count).
        return conceded[:1]

    # ------------------------------------------------------------------
    # Circuit-class caching
    # ------------------------------------------------------------------
    def _neighbourhood_key(self, circuit, window: Rect) -> Tuple:
        entries = []
        for layer in (1, 2):
            if not self.space.chip.stack.has_layer(layer):
                continue
            for entry in self.space.shape_grid.query("wiring", layer, window):
                entries.append(
                    (
                        layer,
                        entry.rect.x_lo - circuit.x,
                        entry.rect.y_lo - circuit.y,
                        entry.rect.x_hi - circuit.x,
                        entry.rect.y_hi - circuit.y,
                        entry.shape_kind,
                        entry.net is not None,
                    )
                )
        return tuple(sorted(entries))

    def _track_phase(self, circuit) -> Tuple:
        graph = self.space.graph
        phases = []
        for z in (1, 2):
            if not graph.stack.has_layer(z):
                continue
            pitch = graph.stack[z].pitch
            tracks = graph.tracks[z]
            anchor = tracks[0] if tracks else 0
            origin = circuit.y if graph.stack.direction(z).value == "horizontal" else circuit.x
            phases.append((z, (origin - anchor) % pitch))
        return tuple(phases)

    def circuit_catalogues(
        self, circuit, pins: Sequence[Pin]
    ) -> Dict[str, List[AccessPath]]:
        """Catalogues for all pins of one placed circuit, class-cached."""
        window = circuit.bounding_box().expanded(
            self.radius_pitches * self.space.chip.stack[1].pitch
        )
        key = (
            circuit.circuit_class_key(),
            self._track_phase(circuit),
            self._neighbourhood_key(circuit, window),
            tuple(sorted(pin.name.split("/")[-1] for pin in pins)),
        )
        cached = self._class_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            if OBS.enabled:
                OBS.count("pinaccess.catalogue_hits")
            # Translate the cached relative solution to this instance.
            out: Dict[str, List[AccessPath]] = {}
            by_template_pin: Dict[str, Pin] = {
                pin.name.split("/")[-1]: pin for pin in pins
            }
            for template_pin, rel_paths in cached.items():
                pin = by_template_pin.get(template_pin)
                if pin is None:
                    continue
                out[pin.name] = [
                    self._translate(rel, circuit, pin) for rel in rel_paths
                ]
                out[pin.name] = [p for p in out[pin.name] if p is not None]
            return out
        self.cache_misses += 1
        if OBS.enabled:
            OBS.count("pinaccess.catalogue_misses")
        catalogues: Dict[str, List[AccessPath]] = {}
        relative: Dict[str, List[AccessPath]] = {}
        for pin in pins:
            paths = self.build_catalogue(pin)
            catalogues[pin.name] = paths
            relative[pin.name.split("/")[-1]] = paths
        self._class_cache[key] = relative
        return catalogues

    def _translate(self, path: AccessPath, circuit, pin: Pin) -> Optional[AccessPath]:
        """Re-anchor a cached path for another instance of the class.

        Cached instances share exact geometry relative to the circuit, so
        translation amounts to re-deriving the endpoint vertex; if the
        vertex does not exist here (different track cut), drop the path.
        """
        graph = self.space.graph
        ex, ey, ez = graph.position(path.endpoint)
        vertex = graph.vertex_at(ex, ey, ez)
        if vertex is None:
            return None
        return AccessPath(
            pin.name,
            pin.net.name if pin.net is not None else "",
            path.layer,
            list(path.points),
            path.via,
            vertex,
            path.length,
        )

    # ------------------------------------------------------------------
    # Conflict-free selection (destructive bounding)
    # ------------------------------------------------------------------
    def paths_conflict(self, a: AccessPath, b: AccessPath) -> bool:
        """Pairwise diff-net DRC check between two access paths."""
        if a.net_name == b.net_name:
            return False
        shapes_a = a.shapes(self.space, self.wire_type_name)
        shapes_b = b.shapes(self.space, self.wire_type_name)
        rules = self.space.chip.rules
        for layer_a, rect_a in shapes_a:
            for layer_b, rect_b in shapes_b:
                if layer_a != layer_b:
                    continue
                rule = rules.spacing_rule(layer_a)
                width = min(rect_a.width, rect_a.height)
                width_b = min(rect_b.width, rect_b.height)
                required = rule.spacing(width, width_b, run_length(rect_a, rect_b))
                if rect_l2_gap(rect_a, rect_b) < required:
                    return True
        return False

    def _score(self, chosen: Sequence[AccessPath]) -> float:
        """Lower is better: length, endpoint crowding, blocked tracks,
        missing continuations (the Sec. 4.3 criteria)."""
        total = sum(p.length for p in chosen)
        crowding = 0.0
        for i, a in enumerate(chosen):
            ax, ay, _ = self.space.graph.position(a.endpoint)
            for b in chosen[i + 1:]:
                bx, by, _ = self.space.graph.position(b.endpoint)
                d = abs(ax - bx) + abs(ay - by)
                pitch = self.space.chip.stack[1].pitch
                if d < 2 * pitch:
                    crowding += (2 * pitch - d)
        continuation_penalty = 0.0
        for path in chosen:
            usable_directions = 0
            for shape_type in ("wire", "jog"):
                if self.space.fast_grid.vertex_usable(
                    self.wire_type_name, path.endpoint, shape_type
                ):
                    usable_directions += 1
            continuation_penalty += (2 - usable_directions) * 100
        blocked = 0
        for path in chosen:
            blocked += max(0, len(path.points) - 2) * 50  # bends block tracks
        return total + 2.0 * crowding + continuation_penalty + blocked

    #: Score penalty for leaving a pin without a reserved access path:
    #: dominates every geometric score term, so the branch-and-bound
    #: maximizes pin coverage first and only then optimizes quality.
    UNASSIGNED_PENALTY = 1_000_000.0

    def conflict_free_solution(
        self, catalogues: Dict[str, List[AccessPath]]
    ) -> Optional[Dict[str, AccessPath]]:
        """Branch-and-bound over one path per pin, pairwise conflict-free.

        Every pin additionally has the "unassigned" option at a penalty
        dominating all geometric terms, so the enumeration finds a
        maximum-coverage conflict-free solution and, among those, the
        best-scored one (destructive bounding prunes the search).
        Fig. 7's greedy failure mode cannot occur: whenever a full
        conflict-free solution exists, it is found.
        """
        pin_names = sorted(catalogues, key=lambda name: len(catalogues[name]))
        if not pin_names or all(not catalogues[name] for name in pin_names):
            return None
        best: List[Optional[Dict[str, AccessPath]]] = [None]
        best_score = [float("inf")]

        def lower_bound(chosen: List[Optional[AccessPath]], index: int) -> float:
            value = sum(
                self.UNASSIGNED_PENALTY if path is None else path.length
                for path in chosen
            )
            for name in pin_names[index:]:
                options = catalogues[name]
                value += min(p.length for p in options) if options else (
                    self.UNASSIGNED_PENALTY
                )
            return value

        def recurse(index: int, chosen: List[Optional[AccessPath]]) -> None:
            if lower_bound(chosen, index) >= best_score[0]:
                return  # destructive bounding
            if index == len(pin_names):
                assigned = [p for p in chosen if p is not None]
                score = self._score(assigned) + self.UNASSIGNED_PENALTY * (
                    len(chosen) - len(assigned)
                )
                if score < best_score[0]:
                    best_score[0] = score
                    best[0] = {
                        name: path
                        for name, path in zip(pin_names, chosen)
                        if path is not None
                    }
                return
            name = pin_names[index]
            for path in catalogues[name]:
                if any(
                    self.paths_conflict(path, other)
                    for other in chosen
                    if other is not None
                ):
                    continue
                chosen.append(path)
                recurse(index + 1, chosen)
                chosen.pop()
            # The unassigned branch (explored last: it can never beat a
            # same-prefix assignment on score).
            chosen.append(None)
            recurse(index + 1, chosen)
            chosen.pop()

        recurse(0, [])
        return best[0] if best[0] else None

    # ------------------------------------------------------------------
    # Reservation (Sec. 4.3: add primary paths before routing starts)
    # ------------------------------------------------------------------
    def reserve(self, path: AccessPath) -> None:
        if OBS.enabled:
            OBS.count("pinaccess.paths_reserved")
        for stick in path.sticks():
            self.space.add_wire(
                path.net_name,
                self.wire_type_name,
                stick,
                ripup_level=int(RipupLevel.RESERVED),
                off_track=True,
            )
        if path.via is not None:
            self.space.add_via(
                path.net_name,
                self.wire_type_name,
                path.via,
                ripup_level=int(RipupLevel.RESERVED),
                off_track=True,
            )
