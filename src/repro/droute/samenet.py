"""Same-net rule postprocessing (Sec. 3.7, Sec. 4.4).

On-track path search pays no attention to same-net rules; violations occur
particularly where on-track and off-track paths meet.  After each path
search BonnRoute immediately postprocesses the new path:

* collinear adjacent segments are merged;
* segments shorter than the layer's minimum segment length tau are
  extended where legally possible (their line-end is padded so notch /
  short-edge configurations disappear);
* metal polygons below the minimum area get a stub extension.

Extensions are only applied when the distance rule checker confirms they
do not create diff-net violations; anything unfixable is left to the
external DRC cleanup, matching the paper's philosophy (Sec. 5.2, item 2:
violations that need extra space are avoided "as much as possible").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.droute.route import NetRoute, ViaInstance
from repro.droute.space import RoutingSpace
from repro.geometry.polygon import rectilinear_area
from repro.geometry.rect import Rect
from repro.tech.layers import Direction
from repro.tech.wiring import StickFigure


def merge_collinear(sticks: Sequence[StickFigure]) -> List[StickFigure]:
    """Merge overlapping / abutting collinear stick figures per layer.

    Reduces segment count and removes zero-length artefacts; a shorter
    stick fully contained in a longer one disappears.
    """
    horizontal: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    vertical: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    points: List[StickFigure] = []
    for stick in sticks:
        if stick.is_point:
            points.append(stick)
        elif stick.y0 == stick.y1:
            horizontal.setdefault((stick.layer, stick.y0), []).append(
                (stick.x0, stick.x1)
            )
        else:
            vertical.setdefault((stick.layer, stick.x0), []).append(
                (stick.y0, stick.y1)
            )
    merged: List[StickFigure] = []
    for (layer, y), spans in sorted(horizontal.items()):
        spans.sort()
        lo, hi = spans[0]
        for a, b in spans[1:]:
            if a <= hi:
                hi = max(hi, b)
            else:
                merged.append(StickFigure(layer, lo, y, hi, y))
                lo, hi = a, b
        merged.append(StickFigure(layer, lo, y, hi, y))
    for (layer, x), spans in sorted(vertical.items()):
        spans.sort()
        lo, hi = spans[0]
        for a, b in spans[1:]:
            if a <= hi:
                hi = max(hi, b)
            else:
                merged.append(StickFigure(layer, x, lo, x, hi))
                lo, hi = a, b
        merged.append(StickFigure(layer, x, lo, x, hi))
    # Point sticks that are covered by a segment are dropped.
    covered = []
    for point in points:
        keep = True
        for stick in merged:
            if stick.layer == point.layer and stick.as_rect().contains_point(
                point.x0, point.y0
            ):
                keep = False
                break
        if keep:
            covered.append(point)
    return merged + covered


def min_segment_violations(
    space: RoutingSpace, sticks: Sequence[StickFigure]
) -> List[StickFigure]:
    """Sticks shorter than their layer's minimum segment length.

    Zero-length (point) sticks under vias are exempt: the via pads supply
    the metal.
    """
    out = []
    for stick in sticks:
        if stick.is_point:
            continue
        tau = space.chip.rules.same_net_rules(stick.layer).min_segment_length
        if stick.length < tau:
            out.append(stick)
    return out


def _try_extend(
    space: RoutingSpace,
    net_name: str,
    wire_type_name: str,
    stick: StickFigure,
    tau: int,
) -> Optional[StickFigure]:
    """A legal extension of ``stick`` to length >= tau, or None."""
    deficit = tau - stick.length
    if stick.direction is Direction.VERTICAL or (
        stick.direction is None
        and space.chip.stack.direction(stick.layer) is Direction.VERTICAL
    ):
        candidates = [
            StickFigure(stick.layer, stick.x0, stick.y0 - deficit, stick.x1, stick.y1),
            StickFigure(stick.layer, stick.x0, stick.y0, stick.x1, stick.y1 + deficit),
            StickFigure(
                stick.layer,
                stick.x0,
                stick.y0 - deficit // 2,
                stick.x1,
                stick.y1 + (deficit - deficit // 2),
            ),
        ]
    else:
        candidates = [
            StickFigure(stick.layer, stick.x0 - deficit, stick.y0, stick.x1, stick.y1),
            StickFigure(stick.layer, stick.x0, stick.y0, stick.x1 + deficit, stick.y1),
            StickFigure(
                stick.layer,
                stick.x0 - deficit // 2,
                stick.y0,
                stick.x1 + (deficit - deficit // 2),
                stick.y1,
            ),
        ]
    die = space.chip.die
    for candidate in candidates:
        if not die.contains_rect(candidate.as_rect()):
            continue
        if space.check_wire(wire_type_name, candidate, net_name).legal:
            return candidate
    return None


def fix_min_segment_lengths(
    space: RoutingSpace,
    net_name: str,
    wire_type_name,
    sticks: Sequence[StickFigure],
) -> List[StickFigure]:
    """Extend too-short segments where legally possible.

    ``wire_type_name`` is a type name or a ``layer -> type name``
    resolver (layer-restricted nets mix types, Sec. 1.1).
    """
    resolve = (
        wire_type_name if callable(wire_type_name) else (lambda _z: wire_type_name)
    )
    out: List[StickFigure] = []
    for stick in sticks:
        if stick.is_point:
            out.append(stick)
            continue
        tau = space.chip.rules.same_net_rules(stick.layer).min_segment_length
        if stick.length >= tau:
            out.append(stick)
            continue
        extended = _try_extend(space, net_name, resolve(stick.layer), stick, tau)
        out.append(extended if extended is not None else stick)
    return merge_collinear(out)


def min_area_deficits(
    space: RoutingSpace, route: NetRoute
) -> List[Tuple[int, int]]:
    """(layer, missing_area) for layers violating the minimum area rule.

    Computed per layer over the whole route's metal (wire shapes plus via
    pads); a finer per-polygon analysis is done by the DRC checker.
    """
    shapes_per_layer: Dict[int, List[Rect]] = {}
    for stick, _level, type_name in route.wire_items():
        wire_type = space.chip.wire_type(type_name)
        shape, _cls, _kind = wire_type.wire_shape(stick, space.chip.stack)
        shapes_per_layer.setdefault(stick.layer, []).append(shape)
    for via, _level, type_name in route.via_items():
        model = space.chip.wire_type(type_name).via_model(via.via_layer)
        for kind, layer, rect, _cls, _sk in model.shapes(via.x, via.y, via.via_layer):
            if kind == "wiring":
                shapes_per_layer.setdefault(layer, []).append(rect)
    deficits = []
    for layer, shapes in sorted(shapes_per_layer.items()):
        required = space.chip.rules.same_net_rules(layer).min_area
        area = rectilinear_area(shapes)
        if 0 < area < required:
            deficits.append((layer, required - area))
    return deficits


def postprocess_path(
    space: RoutingSpace,
    net_name: str,
    wire_type_name,
    sticks: Sequence[StickFigure],
) -> List[StickFigure]:
    """The immediate post-path cleanup of Sec. 4.4.

    ``wire_type_name`` may be a name or a per-layer resolver.
    """
    merged = merge_collinear(sticks)
    return fix_min_segment_lengths(space, net_name, wire_type_name, merged)
