"""The routing space: all routing-space data structures behind one facade.

Bundles the shape grid (ground truth), the distance rule checking module,
the optimized track plan with its track graph, and the fast grid cache.
Loads the chip's fixed geometry (blockages, circuit obstructions, pin
shapes) on construction and offers transactional insertion / removal of
wires and vias with consistent fast-grid invalidation.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.chip.design import Chip
from repro.obs import OBS
from repro.droute.route import NetRoute, ViaInstance
from repro.geometry.rect import Rect
from repro.grid.drc_query import DistanceRuleChecker, PlacementCheck
from repro.grid.fastgrid import FastGrid, IntervalCache
from repro.grid.shapegrid import RIPUP_FIXED, RipupLevel, ShapeGrid
from repro.grid.trackgraph import TrackGraph, Vertex
from repro.grid.tracks import TrackPlan, build_track_plan
from repro.tech.wiring import ShapeKind, StickFigure, WireType


def effective_wire_type(chip: Chip, type_name: str, layer: int) -> Optional[str]:
    """Wire type actually usable on ``layer`` for a net of ``type_name``.

    Layer-restricted nets escape their pins with the standard type on
    layers their own type excludes (Sec. 1.1).
    """
    wire_type = chip.wire_types[type_name]
    if wire_type.has_layer(layer):
        return type_name
    default = chip.wire_types.get("default")
    if default is not None and default.has_layer(layer):
        return "default"
    return None


def effective_via_type(chip: Chip, type_name: str, via_layer: int) -> Optional[str]:
    wire_type = chip.wire_types[type_name]
    if wire_type.has_via_layer(via_layer):
        return type_name
    default = chip.wire_types.get("default")
    if default is not None and default.has_via_layer(via_layer):
        return "default"
    return None


class RoutingSpace:
    """Mutable routing space of one chip."""

    def __init__(
        self,
        chip: Chip,
        track_plan: Optional[TrackPlan] = None,
        fast_grid_enabled: bool = True,
        fast_grid_vectorized: Optional[bool] = None,
        lazy_fixed: Optional[bool] = None,
    ) -> None:
        self.chip = chip
        #: Lazy fixed geometry (default on; ``REPRO_LAZY_ROWS=0``
        #: disables): blockages and pin shapes are registered with the
        #: shape grid but only folded into a row's interval tree when
        #: something first touches that row, so untouched die area costs
        #: no interval memory.  Query results are identical either way
        #: (cell configurations are multisets), so routing is too.
        if lazy_fixed is None:
            lazy_fixed = os.environ.get("REPRO_LAZY_ROWS", "1") != "0"
        self.lazy_fixed = lazy_fixed
        self.shape_grid = ShapeGrid(chip.die, chip.stack)
        self.checker = DistanceRuleChecker(self.shape_grid, chip.stack, chip.rules)
        self.track_plan = track_plan if track_plan is not None else build_track_plan(chip)
        self.graph = TrackGraph(chip.stack, self.track_plan)
        self.fast_grid = FastGrid(
            self.graph,
            self.checker,
            list(chip.wire_types.values()),
            enabled=fast_grid_enabled,
            vectorized=fast_grid_vectorized,
        )
        #: Cross-search cache of track interval decompositions, shared by
        #: every GraphView over this space; epoch-validated, so mutations
        #: need no explicit eviction.
        self.interval_cache = IntervalCache()
        #: Routed wiring per net name.
        self.routes: Dict[str, NetRoute] = {}
        self._load_fixed_geometry()

    # ------------------------------------------------------------------
    # Fixed geometry
    # ------------------------------------------------------------------
    def _load_fixed_geometry(self) -> None:
        add = (
            self.shape_grid.add_fixed_shape
            if self.lazy_fixed
            else self.shape_grid.add_shape
        )
        registered = 0
        for layer, rect, _owner in self.chip.obstruction_shapes():
            if not self.chip.stack.has_layer(layer):
                continue
            add(
                "wiring", layer, rect, None, "blockage", ShapeKind.BLOCKAGE,
                RIPUP_FIXED, min(rect.width, rect.height),
            )
            registered += 1
        for net in self.chip.nets:
            for pin in net.pins:
                for layer, rect in pin.shapes:
                    if not self.chip.stack.has_layer(layer):
                        continue
                    add(
                        "wiring", layer, rect, net.name, "pin", ShapeKind.PIN,
                        RIPUP_FIXED, min(rect.width, rect.height),
                    )
                    registered += 1
        if OBS.enabled:
            OBS.gauge("space.fixed_shapes_registered", registered)

    # ------------------------------------------------------------------
    # Wire / via shape expansion
    # ------------------------------------------------------------------
    def _wire_shapes(
        self, wire_type: WireType, stick: StickFigure
    ) -> List[Tuple[str, int, Rect, str, ShapeKind, int]]:
        shape, cls, kind = wire_type.wire_shape(stick, self.chip.stack)
        return [("wiring", stick.layer, shape, cls.name, kind, cls.rule_width)]

    def _via_shapes(
        self, wire_type: WireType, via: ViaInstance
    ) -> List[Tuple[str, int, Rect, str, ShapeKind, int]]:
        model = wire_type.via_model(via.via_layer)
        out = []
        for kind, layer, rect, cls, shape_kind in model.shapes(
            via.x, via.y, via.via_layer
        ):
            out.append((kind, layer, rect, cls.name, shape_kind, cls.rule_width))
        return out

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def add_wire(
        self,
        net_name: str,
        wire_type_name: str,
        stick: StickFigure,
        ripup_level: int = int(RipupLevel.NORMAL),
        off_track: bool = False,
    ) -> None:
        wire_type = self.chip.wire_type(wire_type_name)
        for kind, layer, rect, cls_name, shape_kind, width in self._wire_shapes(
            wire_type, stick
        ):
            self.shape_grid.add_shape(
                kind, layer, rect, net_name, cls_name, shape_kind, ripup_level, width
            )
            self.fast_grid.invalidate_region(layer, rect, off_track=off_track)
        route = self.routes.setdefault(net_name, NetRoute(net_name, wire_type_name))
        route.add_wire(stick, ripup_level, wire_type_name)

    def add_via(
        self,
        net_name: str,
        wire_type_name: str,
        via: ViaInstance,
        ripup_level: int = int(RipupLevel.NORMAL),
        off_track: bool = False,
    ) -> None:
        wire_type = self.chip.wire_type(wire_type_name)
        for kind, layer, rect, cls_name, shape_kind, width in self._via_shapes(
            wire_type, via
        ):
            self.shape_grid.add_shape(
                kind, layer, rect, net_name, cls_name, shape_kind, ripup_level, width
            )
            if kind == "wiring":
                self.fast_grid.invalidate_region(layer, rect, off_track=off_track)
        route = self.routes.setdefault(net_name, NetRoute(net_name, wire_type_name))
        route.add_via(via, ripup_level, wire_type_name)

    def _erase_wire_shapes(
        self, net_name: str, wire_type_name: str, stick: StickFigure, level: int
    ) -> None:
        wire_type = self.chip.wire_type(wire_type_name)
        for kind, layer, rect, cls_name, shape_kind, width in self._wire_shapes(
            wire_type, stick
        ):
            self.shape_grid.remove_shape(
                kind, layer, rect, net_name, cls_name, shape_kind, level, width
            )
            self.fast_grid.invalidate_region(layer, rect)

    def _erase_via_shapes(
        self, net_name: str, wire_type_name: str, via: ViaInstance, level: int
    ) -> None:
        wire_type = self.chip.wire_type(wire_type_name)
        for kind, layer, rect, cls_name, shape_kind, width in self._via_shapes(
            wire_type, via
        ):
            self.shape_grid.remove_shape(
                kind, layer, rect, net_name, cls_name, shape_kind, level, width
            )
            if kind == "wiring":
                self.fast_grid.invalidate_region(layer, rect)

    def remove_wire(self, net_name: str, stick: StickFigure) -> None:
        route = self.routes[net_name]
        level, type_name = route.remove_wire(stick)
        self._erase_wire_shapes(net_name, type_name, stick, level)

    def remove_via(self, net_name: str, via: ViaInstance) -> None:
        route = self.routes[net_name]
        level, type_name = route.remove_via(via)
        self._erase_via_shapes(net_name, type_name, via, level)

    def remove_net_route(self, net_name: str) -> NetRoute:
        """Rip out everything routed for ``net_name``; returns the old route."""
        route = self.routes.get(net_name)
        removed = NetRoute(net_name, route.wire_type if route else "default")
        if route is None:
            return removed
        removed.extend(route)
        for stick in list(route.wires):
            self.remove_wire(net_name, stick)
        for via in list(route.vias):
            self.remove_via(net_name, via)
        return removed

    # ------------------------------------------------------------------
    # Net suspension (temporary removal of a net's shapes, Sec. 4.4)
    # ------------------------------------------------------------------
    def suspend_net(self, net_name: str) -> Tuple:
        """Temporarily remove the net's pin and route shapes from the grid.

        The route record is kept; :meth:`restore_net` reinserts all
        shapes.  Used by the path search so a net's own geometry never
        blocks access to its connection vertices.
        """
        pin_shapes = self.remove_pin_shapes_temporarily(net_name)
        route = self.routes.get(net_name)
        suspended_wires: List[Tuple[StickFigure, int, str]] = []
        suspended_vias: List[Tuple[ViaInstance, int, str]] = []
        if route is not None:
            for stick, level, type_name in route.wire_items():
                self._erase_wire_shapes(net_name, type_name, stick, level)
                suspended_wires.append((stick, level, type_name))
            for via, level, type_name in route.via_items():
                self._erase_via_shapes(net_name, type_name, via, level)
                suspended_vias.append((via, level, type_name))
        return (net_name, pin_shapes, suspended_wires, suspended_vias)

    def restore_net(self, token: Tuple) -> None:
        net_name, pin_shapes, suspended_wires, suspended_vias = token
        self.reinsert_pin_shapes(net_name, pin_shapes)
        for stick, level, type_name in suspended_wires:
            wire_type = self.chip.wire_type(type_name)
            for kind, layer, rect, cls_name, shape_kind, width in self._wire_shapes(
                wire_type, stick
            ):
                self.shape_grid.add_shape(
                    kind, layer, rect, net_name, cls_name, shape_kind, level, width
                )
                self.fast_grid.invalidate_region(layer, rect, off_track=True)
        for via, level, type_name in suspended_vias:
            wire_type = self.chip.wire_type(type_name)
            for kind, layer, rect, cls_name, shape_kind, width in self._via_shapes(
                wire_type, via
            ):
                self.shape_grid.add_shape(
                    kind, layer, rect, net_name, cls_name, shape_kind, level, width
                )
                if kind == "wiring":
                    self.fast_grid.invalidate_region(layer, rect, off_track=True)

    # ------------------------------------------------------------------
    # Temporary removal of component shapes (Sec. 4.4)
    # ------------------------------------------------------------------
    def remove_pin_shapes_temporarily(self, net_name: str) -> List[Tuple[int, Rect]]:
        """Remove the net's pin shapes from the grid; returns them for
        reinsertion (the S/T construction of Sec. 4.4 removes component
        shapes so they do not block access to their own vertices)."""
        removed: List[Tuple[int, Rect]] = []
        net = self.chip.net(net_name)
        for pin in net.pins:
            for layer, rect in pin.shapes:
                if not self.chip.stack.has_layer(layer):
                    continue
                self.shape_grid.remove_shape(
                    "wiring", layer, rect, net_name, "pin", ShapeKind.PIN,
                    RIPUP_FIXED, min(rect.width, rect.height),
                )
                self.fast_grid.invalidate_region(layer, rect)
                removed.append((layer, rect))
        return removed

    def reinsert_pin_shapes(self, net_name: str, shapes: Iterable[Tuple[int, Rect]]):
        for layer, rect in shapes:
            self.shape_grid.add_shape(
                "wiring", layer, rect, net_name, "pin", ShapeKind.PIN,
                RIPUP_FIXED, min(rect.width, rect.height),
            )
            self.fast_grid.invalidate_region(layer, rect)

    # ------------------------------------------------------------------
    # ECO geometry edits (repro.engine)
    # ------------------------------------------------------------------
    def replace_blockage_shape(self, layer: int, old: Rect, new: Rect) -> None:
        """Swap a fixed blockage rectangle in place.

        Both regions are invalidated with ``off_track=True``: routed
        wiring near the old extent may sit off-grid relative to the new
        legality words, so the fast grid must fall back to exact
        shape-grid checks there until the region is re-verified.
        """
        if not self.chip.stack.has_layer(layer):
            return
        self.shape_grid.remove_shape(
            "wiring", layer, old, None, "blockage", ShapeKind.BLOCKAGE,
            RIPUP_FIXED, min(old.width, old.height),
        )
        self.shape_grid.add_shape(
            "wiring", layer, new, None, "blockage", ShapeKind.BLOCKAGE,
            RIPUP_FIXED, min(new.width, new.height),
        )
        self.fast_grid.invalidate_region(layer, old, off_track=True)
        self.fast_grid.invalidate_region(layer, new, off_track=True)

    def conflicting_nets(
        self, layer: int, rect: Rect, margin: Optional[int] = None
    ) -> Set[str]:
        """Nets with removable wiring within interaction distance of
        ``rect`` on ``layer`` and its via-coupled neighbours.

        Pin shapes and blockages are fixed (never removable) and are
        skipped; the result is exactly the set an ECO edit at ``rect``
        may force to re-route.
        """
        out: Set[str] = set()
        stack = self.chip.stack
        for z in (layer - 1, layer, layer + 1):
            if not stack.has_layer(z):
                continue
            if margin is None:
                reach = self.chip.rules.max_interaction_distance(z)
            else:
                reach = margin
            window = rect.expanded(reach)
            for entry in self.shape_grid.query("wiring", z, window):
                if entry.net and entry.removable:
                    out.add(entry.net)
        return out

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def check_wire(
        self, wire_type_name: str, stick: StickFigure, net_name: Optional[str]
    ) -> PlacementCheck:
        wire_type = self.chip.wire_type(wire_type_name)
        return self.checker.check_wire(wire_type, stick, net_name)

    def check_via(
        self, wire_type_name: str, via: ViaInstance, net_name: Optional[str]
    ) -> PlacementCheck:
        wire_type = self.chip.wire_type(wire_type_name)
        return self.checker.check_via(wire_type, via.via_layer, via.x, via.y, net_name)

    def total_wire_length(self) -> int:
        return sum(route.wire_length for route in self.routes.values())

    def total_via_count(self) -> int:
        return sum(route.via_count for route in self.routes.values())
