"""Detailed routing (Sec. 4 of the paper).

* :mod:`repro.droute.space` - the routing space: shape grid + distance
  rule checker + track graph + fast grid, with wire/via insertion and
  removal;
* :mod:`repro.droute.route` - routed-net containers (stick figures + vias);
* :mod:`repro.droute.pathsearch` - the interval-based on-track Dijkstra
  (Algorithm 4) and the node-based reference implementation;
* :mod:`repro.droute.future_cost` - the future costs pi_H and pi_P;
* :mod:`repro.droute.pinaccess` - off-track pin access with catalogues
  and conflict-free solutions (Sec. 4.3);
* :mod:`repro.droute.samenet` - same-net rule postprocessing (Sec. 3.7);
* :mod:`repro.droute.connect` - the net connection procedure with ripup
  sequences (Sec. 4.4);
* :mod:`repro.droute.partition` - the region-partitioning scheduler
  modelling the paper's shared-memory parallelization (Sec. 5.1);
* :mod:`repro.droute.router` - the DetailedRouter facade.
"""

from repro.droute.route import NetRoute, ViaInstance
from repro.droute.space import RoutingSpace
from repro.droute.router import DetailedRouter, DetailedRoutingResult

__all__ = [
    "NetRoute",
    "ViaInstance",
    "RoutingSpace",
    "DetailedRouter",
    "DetailedRoutingResult",
]
