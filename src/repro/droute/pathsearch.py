"""On-track shortest path search (Sec. 4.1, Algorithm 4).

Two search procedures over the same :class:`GraphView`:

* :func:`interval_path_search` - the interval-based goal-oriented
  Dijkstra of Hetzel [1998] / Peyer et al. [2009].  Queue events are
  *labels* anchored at interval vertices; when a label is settled, the
  whole zero-reduced-cost run it induces inside its interval is processed
  in bulk (the J_I(delta) frontier of Algorithm 4), and one lazy
  continuation label per climbing direction keeps the remaining interval
  vertices implicit.  Vertices whose distance never reaches the frontier
  before termination are never touched - the source of the paper's >= 6x
  speed-up over node labelling.
* :func:`node_path_search` - the classical one-vertex-per-label Dijkstra
  used as the correctness reference and the ablation baseline.

Both use a future cost (potential) pi with pi(t) = 0 on targets and
reduced edge costs c_pi >= 0; both return the same optimal costs.

Search kernels
--------------

Both procedures run on top of a narrow :class:`SearchKernel` contract:
the kernel owns the priority queue and the per-vertex label store
(distance, parent) of one search, nothing else.  Two kernels ship:

* ``heap`` (:class:`HeapKernel`) - the reference oracle: a C ``heapq``
  binary heap with lazy deletion and dict-backed labels.
* ``bucket`` (:class:`BucketKernel`, the default) - a bucketed monotone
  queue (Dial [1969]): edge costs are bounded small integers, so labels
  are grouped into FIFO buckets keyed by their integer priority and a
  tiny heap orders only the *distinct* priorities; labels live in dense
  numpy arrays indexed by ``base[z] + t*len(crosses[z]) + c`` instead of
  per-label dict entries, and generation stamps make resets O(1).

Label semantics: a label is ``(vertex, d)`` where ``d`` is the reduced
distance ``dist(s, v) + pi(v)`` (plus source offsets and interval
penalties).  Ties are broken FIFO by insertion order in *both* kernels,
so the two kernels pop labels in the identical order and return not just
equal costs but the identical vertex path - the equivalence the property
tests and this doctest pin down:

>>> from repro.chip.generator import ChipSpec, generate_chip
>>> from repro.droute.area import RoutingArea
>>> from repro.droute.future_cost import FutureCostH, SearchCosts
>>> from repro.droute.intervals import GraphView
>>> from repro.droute.space import RoutingSpace
>>> space = RoutingSpace(generate_chip(
...     ChipSpec("doc", rows=1, row_width_cells=3, net_count=2, seed=7)))
>>> z = space.graph.stack.bottom + 1
>>> s, t = (z, 0, 0), (z, 1, 4)
>>> costs, pi = SearchCosts(), FutureCostH(space.graph, [t], SearchCosts())
>>> view = GraphView(space, "default", RoutingArea.everywhere(),
...                  forced_vertices={s, t})
>>> a = interval_path_search(view, {s: 0}, {t}, costs, pi, kernel="heap")
>>> b = interval_path_search(view, {s: 0}, {t}, costs, pi, kernel="bucket")
>>> a.cost == b.cost and a.vertices == b.vertices
True
>>> a.vertices[0] == s and a.vertices[-1] == t
True
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.droute.future_cost import UNREACHABLE, SearchCosts
from repro.droute.intervals import GraphView, SearchInterval
from repro.grid.trackgraph import Vertex
from repro.obs import OBS

try:  # numpy backs the bucket kernel's label arrays; the stdlib
    import numpy as _np  # ``array`` module stands in where it is absent.
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

INFINITY = 1 << 60

#: A soft deadline is polled once per this many queue pops: frequent
#: enough that an expiring search stops promptly, rare enough that the
#: clock read never shows up in profiles.
DEADLINE_CHECK_STRIDE = 64


class SearchStats:
    """Instrumentation for the interval-vs-node comparison (Sec. 4.1)."""

    __slots__ = (
        "labels_pushed",
        "vertices_processed",
        "pops",
        "interval_runs",
        "stale_pops",
    )

    def __init__(self) -> None:
        self.labels_pushed = 0
        self.vertices_processed = 0
        self.pops = 0
        #: Zero-reduced-cost runs processed in bulk (interval search only);
        #: each run settles ``vertices_processed / interval_runs`` vertices
        #: per heap pop on average — the Fig. 6 labelling economy.
        self.interval_runs = 0
        #: Queue entries discarded because a better label for the same
        #: vertex was pushed later (both kernels replace decrease-key with
        #: lazy deletion; ``pops`` counts only the fruitful pops).
        self.stale_pops = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "labels_pushed": self.labels_pushed,
            "vertices_processed": self.vertices_processed,
            "pops": self.pops,
            "interval_runs": self.interval_runs,
            "stale_pops": self.stale_pops,
        }


# ----------------------------------------------------------------------
# Search kernels: priority queue + label store behind one contract
# ----------------------------------------------------------------------
class SearchKernel:
    """Factory for the queue/label-store of one search (the kernel contract).

    A kernel is long-lived (one per :class:`NetConnector`); each call to
    :meth:`new_search` returns a fresh *frontier* holding one search's
    mutable state.  The frontier contract the search loops rely on:

    * ``improve(vertex, d, parent, kind) -> bool`` — record the label if
      ``d`` beats the current distance (no enqueue);
    * ``push(vertex, d)`` — enqueue a recorded label;
    * ``pop() -> (vertex, d) | None`` — pop the minimum live label, FIFO
      among equal priorities, skipping stale entries;
    * ``get_dist(vertex)`` / ``is_processed`` / ``mark_processed``;
    * ``reconstruct(target)`` — parent-chain path to ``target``;
    * ``kernel_counters()`` — per-search ``pathsearch.kernel.*`` deltas.

    ``corridor_future_cost`` advertises whether searches through this
    kernel should use the corridor-tightened future cost pi_GR
    (:class:`repro.droute.future_cost.FutureCostGR`); the ``bucket``
    kernel turns it on, the ``heap`` reference oracle keeps the classic
    pi_H / pi_P policy.
    """

    name: str = "?"
    #: Whether NetConnector._search should build FutureCostGR from the
    #: net's GR corridor instead of the classic pi_H / pi_P choice.
    corridor_future_cost: bool = False

    def new_search(self, graph):
        raise NotImplementedError


class _HeapFrontier:
    """Reference frontier: C heapq + dict labels, lazy deletion.

    Entries are ``(priority, seq, vertex)``; ``seq`` is the global
    insertion counter, so equal-priority labels pop FIFO — the same
    deterministic tie-breaking order as the bucket kernel.
    """

    __slots__ = ("_dist", "_parent", "_processed", "_heap", "_seq", "stale_pops")
    kernel_name = "heap"

    def __init__(self) -> None:
        self._dist: Dict[Vertex, int] = {}
        self._parent: Dict[Vertex, Optional[Vertex]] = {}
        self._processed: Set[Vertex] = set()
        self._heap: List[Tuple[int, int, Vertex]] = []
        self._seq = 0
        self.stale_pops = 0

    def get_dist(self, vertex: Vertex) -> int:
        return self._dist.get(vertex, INFINITY)

    def improve(
        self, vertex: Vertex, d: int, parent: Optional[Vertex], kind: str
    ) -> bool:
        if d >= self._dist.get(vertex, INFINITY):
            return False
        self._dist[vertex] = d
        self._parent[vertex] = parent
        return True

    def push(self, vertex: Vertex, d: int) -> None:
        heapq.heappush(self._heap, (d, self._seq, vertex))
        self._seq += 1

    def pop(self) -> Optional[Tuple[Vertex, int]]:
        heap = self._heap
        dist = self._dist
        processed = self._processed
        while heap:
            d, _seq, vertex = heapq.heappop(heap)
            if vertex in processed or d > dist.get(vertex, INFINITY):
                self.stale_pops += 1
                continue
            return vertex, d
        return None

    def is_processed(self, vertex: Vertex) -> bool:
        return vertex in self._processed

    def mark_processed(self, vertex: Vertex) -> None:
        self._processed.add(vertex)

    def reconstruct(self, target: Vertex) -> List[Vertex]:
        path = [target]
        vertex = target
        while True:
            prev = self._parent[vertex]
            if prev is None:
                break
            path.append(prev)
            vertex = prev
        path.reverse()
        return path

    def kernel_counters(self) -> Dict[str, int]:
        return {"heap_searches": 1, "stale_pops": self.stale_pops}


class HeapKernel(SearchKernel):
    """The reference oracle: binary heap + dict labels."""

    name = "heap"
    corridor_future_cost = False

    def new_search(self, graph) -> _HeapFrontier:
        return _HeapFrontier()


class _VertexIndex:
    """Dense integer ids for the ``(z, t, c)`` vertices of one TrackGraph.

    ``id = base[z] + t * len(crosses[z]) + c`` — contiguous per layer, so
    one flat array per attribute covers the whole graph.
    """

    __slots__ = ("base", "ncross", "size", "_layers")

    def __init__(self, graph) -> None:
        self.base: Dict[int, int] = {}
        self.ncross: Dict[int, int] = {}
        #: (base, z, ncross) descending by base, for id -> vertex.
        self._layers: List[Tuple[int, int, int]] = []
        offset = 0
        for z in graph.stack.indices:
            ncross = len(graph.crosses[z])
            self.base[z] = offset
            self.ncross[z] = ncross
            self._layers.append((offset, z, ncross))
            offset += len(graph.tracks[z]) * ncross
        self._layers.reverse()
        self.size = offset

    def id_of(self, vertex: Vertex) -> int:
        z, t, c = vertex
        return self.base[z] + t * self.ncross[z] + c

    def vertex_of(self, vid: int) -> Vertex:
        # Layer stacks are shallow (<= ~10 layers): a linear scan over
        # the descending base list beats bisect's call overhead.
        for base, z, ncross, in self._layers:
            if vid >= base:
                t, c = divmod(vid - base, ncross)
                return (z, t, c)
        raise IndexError(f"vertex id {vid} out of range")


def _make_int64(size: int):
    """A zero-filled signed 64-bit array: numpy when available."""
    if _np is not None:
        return _np.zeros(size, dtype=_np.int64)
    from array import array

    return array("q", bytes(8 * size))


class _BucketArrays:
    """Per-graph label arrays shared by all of one kernel's searches.

    ``stamp``/``pstamp`` hold the generation that last wrote the vertex's
    label / processed flag: bumping ``generation`` invalidates every
    entry at once, so a new search never pays an O(V) clear.
    """

    __slots__ = ("index", "dist", "parent", "stamp", "pstamp", "generation")

    def __init__(self, index: _VertexIndex) -> None:
        self.index = index
        self.dist = _make_int64(index.size)
        self.parent = _make_int64(index.size)
        self.stamp = _make_int64(index.size)
        self.pstamp = _make_int64(index.size)
        #: Stamps start at 0 == generation, so the first search must
        #: bump to 1 before trusting any entry.
        self.generation = 0


class _BucketFrontier:
    """Bucketed monotone queue over dense label arrays (Dial-style).

    Labels of equal integer priority share one FIFO bucket; a small C
    heap orders only the distinct priorities, so a pop inside the
    current bucket is O(1) and the heap is touched once per *priority*,
    not once per label.
    """

    __slots__ = (
        "_arrays",
        "_index",
        "_gen",
        "_buckets",
        "_prios",
        "stale_pops",
        "buckets_created",
    )
    kernel_name = "bucket"

    def __init__(self, arrays: _BucketArrays) -> None:
        arrays.generation += 1
        self._arrays = arrays
        self._index = arrays.index
        self._gen = arrays.generation
        self._buckets: Dict[int, deque] = {}
        self._prios: List[int] = []
        self.stale_pops = 0
        self.buckets_created = 0

    def get_dist(self, vertex: Vertex) -> int:
        arrays = self._arrays
        i = self._index.id_of(vertex)
        if arrays.stamp[i] != self._gen:
            return INFINITY
        return int(arrays.dist[i])

    def improve(
        self, vertex: Vertex, d: int, parent: Optional[Vertex], kind: str
    ) -> bool:
        arrays = self._arrays
        index = self._index
        i = index.id_of(vertex)
        if arrays.stamp[i] == self._gen and arrays.dist[i] <= d:
            return False
        arrays.dist[i] = d
        arrays.parent[i] = -1 if parent is None else index.id_of(parent)
        arrays.stamp[i] = self._gen
        return True

    def push(self, vertex: Vertex, d: int) -> None:
        bucket = self._buckets.get(d)
        if bucket is None:
            self._buckets[d] = bucket = deque()
            heapq.heappush(self._prios, d)
            self.buckets_created += 1
        bucket.append(vertex)

    def pop(self) -> Optional[Tuple[Vertex, int]]:
        arrays = self._arrays
        index = self._index
        gen = self._gen
        prios = self._prios
        buckets = self._buckets
        while prios:
            priority = prios[0]
            bucket = buckets[priority]
            while bucket:
                vertex = bucket.popleft()
                i = index.id_of(vertex)
                if (
                    arrays.pstamp[i] == gen
                    or arrays.stamp[i] != gen
                    or arrays.dist[i] < priority
                ):
                    self.stale_pops += 1
                    continue
                return vertex, priority
            heapq.heappop(prios)
            del buckets[priority]
        return None

    def is_processed(self, vertex: Vertex) -> bool:
        return self._arrays.pstamp[self._index.id_of(vertex)] == self._gen

    def mark_processed(self, vertex: Vertex) -> None:
        self._arrays.pstamp[self._index.id_of(vertex)] = self._gen

    def reconstruct(self, target: Vertex) -> List[Vertex]:
        arrays = self._arrays
        index = self._index
        ids = [index.id_of(target)]
        while True:
            prev = int(arrays.parent[ids[-1]])
            if prev < 0:
                break
            ids.append(prev)
        ids.reverse()
        return [index.vertex_of(i) for i in ids]

    def kernel_counters(self) -> Dict[str, int]:
        return {
            "bucket_searches": 1,
            "stale_pops": self.stale_pops,
            "bucket_priorities": self.buckets_created,
        }


class BucketKernel(SearchKernel):
    """The default kernel: bucketed queue + dense label arrays + pi_GR.

    ``corridor_future_cost=False`` keeps the bucket queue but the classic
    future-cost policy — the middle rung of the heap / bucket /
    bucket+pi_GR ablation in EXPERIMENTS.md.
    """

    name = "bucket"

    def __init__(self, corridor_future_cost: bool = True) -> None:
        self.corridor_future_cost = corridor_future_cost
        import weakref

        #: TrackGraph -> _BucketArrays, dropped with the graph.
        self._arrays = weakref.WeakKeyDictionary()

    def new_search(self, graph) -> _BucketFrontier:
        arrays = self._arrays.get(graph)
        if arrays is None:
            arrays = _BucketArrays(_VertexIndex(graph))
            self._arrays[graph] = arrays
        return _BucketFrontier(arrays)


DEFAULT_KERNEL = "bucket"
KERNEL_NAMES = ("heap", "bucket")

KernelSpec = Union[None, str, SearchKernel]


def resolve_kernel(spec: KernelSpec = None) -> SearchKernel:
    """Kernel instance for a ``--search-kernel`` name (or pass-through)."""
    if spec is None:
        spec = DEFAULT_KERNEL
    if isinstance(spec, SearchKernel):
        return spec
    if spec == "heap":
        return HeapKernel()
    if spec == "bucket":
        return BucketKernel()
    raise ValueError(
        f"unknown search kernel {spec!r} (choose from {KERNEL_NAMES})"
    )


def _publish(stats: SearchStats, engine: str, frontier=None) -> None:
    """Fold one search's stats into the global registry (Sec. 4.1 counters).

    Called once per search so the hot loops stay free of observability
    branches; the whole function is behind the caller's ``OBS.enabled``
    check.
    """
    OBS.count("pathsearch.searches")
    OBS.count(f"pathsearch.{engine}_searches")
    OBS.count("pathsearch.labels_pushed", stats.labels_pushed)
    OBS.count("pathsearch.heap_pops", stats.pops)
    OBS.count("pathsearch.vertices_processed", stats.vertices_processed)
    OBS.count("pathsearch.interval_runs", stats.interval_runs)
    OBS.observe("pathsearch.labels_per_search", stats.labels_pushed)
    if frontier is not None:
        for name, value in frontier.kernel_counters().items():
            OBS.count(f"pathsearch.kernel.{name}", value)


class SearchResult:
    """A shortest S-T path in the search graph."""

    __slots__ = ("cost", "vertices", "stats", "ripup_vertices")

    def __init__(
        self,
        cost: int,
        vertices: List[Vertex],
        stats: SearchStats,
        ripup_vertices: List[Vertex],
    ) -> None:
        #: Total cost including jog/via penalties and ripup penalties.
        self.cost = cost
        #: Vertex sequence from a source to a target.
        self.vertices = vertices
        self.stats = stats
        #: Vertices on the path that require ripping out foreign wiring.
        self.ripup_vertices = ripup_vertices

    def __repr__(self) -> str:
        return f"SearchResult(cost={self.cost}, {len(self.vertices)} vertices)"


def _collect_ripups(view: GraphView, vertices: Sequence[Vertex]) -> List[Vertex]:
    out = []
    for vertex in vertices:
        interval = view.interval_at(vertex)
        if interval is not None and interval.needs_ripup:
            out.append(vertex)
    return out


def interval_path_search(
    view: GraphView,
    sources: Dict[Vertex, int],
    targets: Set[Vertex],
    costs: SearchCosts,
    pi: Callable[[Vertex], int],
    deadline=None,
    kernel: KernelSpec = None,
) -> Optional[SearchResult]:
    """Shortest path by interval labelling (Algorithm 4).

    ``sources`` maps source vertices to non-negative start offsets;
    ``targets`` is the target vertex set (pi must vanish there).
    ``deadline`` (a :class:`repro.flow.resilience.Deadline`) is polled
    every few pops; expiry raises ``DeadlineExceeded`` mid-search, which
    is safe because the search never mutates the routing space.
    ``kernel`` selects the queue/label engine (``"heap"``, ``"bucket"``,
    or a :class:`SearchKernel`); ``None`` means :data:`DEFAULT_KERNEL`.
    """
    graph = view.graph
    stats = SearchStats()
    frontier = resolve_kernel(kernel).new_search(graph)
    #: A pi that *proves* disconnection (pi_GR in view mode) lets the
    #: search drop labels at UNREACHABLE priority instead of exhausting
    #: the frontier when no path exists.
    prune = getattr(pi, "unreachable_is_proof", False)

    def push(vertex: Vertex, d: int, prev: Optional[Vertex], kind: str) -> None:
        if prune and d >= UNREACHABLE:
            return
        if frontier.improve(vertex, d, prev, kind):
            frontier.push(vertex, d)
            stats.labels_pushed += 1

    for source, offset in sources.items():
        interval = view.interval_at(source)
        if interval is None:
            continue
        push(source, offset + pi(source) + interval.penalty, None, "source")

    #: The four cross-edge families out of an on-track vertex: jogs to the
    #: two adjacent tracks, vias to the two adjacent layers.
    _CROSS_DIRECTIONS = (("jog", -1), ("jog", 1), ("via", -1), ("via", 1))

    def cross_neighbour(vertex: Vertex, kind: str, sign: int):
        """The (neighbour, edge_cost) in one cross direction, or None."""
        z, t, c = vertex
        if kind == "jog":
            nt = t + sign
            tracks = graph.tracks[z]
            if nt < 0 or nt >= len(tracks):
                return None
            length = abs(tracks[nt] - tracks[t])
            return ((z, nt, c), costs.jog(z, length))
        partner = graph.via_partner(vertex, z + sign)
        if partner is None:
            return None
        return (partner, costs.via(min(z, z + sign)))

    def relax_run_cross_edges(
        run: List[Tuple[Vertex, int]], interval: SearchInterval
    ) -> None:
        """Relax one edge per (neighbouring interval, usability run).

        This is line 13 of Algorithm 4: for each neighbouring interval the
        edge from the pi-maximum frontier vertex is relaxed; the remaining
        parallel entries are covered exactly by the within-interval label
        function because the frontier run has reduced cost 0 (pi slope -1),
        which cancels against travel inside the neighbour.  A change of
        jog/via usability along the run starts a new relaxation (the
        property-(ii) splits of Sec. 4.1).
        """
        for kind, sign in _CROSS_DIRECTIONS:
            previous_key = None
            for vertex, vertex_dist in run:
                edge = cross_neighbour(vertex, kind, sign)
                if edge is None:
                    previous_key = None
                    continue
                neighbour, cost = edge
                n_interval = view.interval_at(neighbour)
                if n_interval is None or not view.edge_usable(vertex, neighbour, kind):
                    previous_key = None
                    continue
                key = n_interval.index
                if key == previous_key:
                    continue
                previous_key = key
                nd = vertex_dist + cost - pi(vertex) + pi(neighbour)
                if n_interval is not interval:
                    nd += n_interval.penalty
                push(neighbour, nd, vertex, kind)
        # Wire edges across interval boundaries: they exist when two
        # intervals are adjacent on the same track (e.g. a ripup
        # singleton splitting an ordinary run, Sec. 4.2).
        for vertex, vertex_dist in run:
            z, t, c = vertex
            for nc in (c - 1, c + 1):
                if nc in interval:
                    continue
                if nc < 0 or nc >= len(graph.crosses[z]):
                    continue
                neighbour = (z, t, nc)
                n_interval = view.interval_at(neighbour)
                if n_interval is None:
                    continue
                if not view.edge_usable(vertex, neighbour, "wire"):
                    continue
                step = abs(graph.crosses[z][nc] - graph.crosses[z][c])
                nd = (
                    vertex_dist + costs.wire(z, step)
                    - pi(vertex) + pi(neighbour) + n_interval.penalty
                )
                push(neighbour, nd, vertex, "wire")

    best: Optional[Tuple[Vertex, int]] = None
    while True:
        popped = frontier.pop()
        if popped is None:
            break
        vertex, d = popped
        stats.pops += 1
        if deadline is not None and stats.pops % DEADLINE_CHECK_STRIDE == 0:
            deadline.check()
        interval = view.interval_at(vertex)
        if interval is None:
            continue
        # Bulk-collect the zero-reduced-cost run induced by this label,
        # i.e. the frontier J_I(delta) of Algorithm 4.  pi is 1-Lipschitz,
        # so the run extends in at most one direction from the anchor.
        run: List[Tuple[Vertex, int]] = [(vertex, d)]
        stats.interval_runs += 1
        for direction in (-1, 1):
            z, t, c = vertex
            prev = vertex
            nc = c + direction
            nd = d
            while interval.c_lo <= nc <= interval.c_hi:
                nxt = (z, t, nc)
                step = abs(
                    graph.crosses[z][nc] - graph.crosses[z][nc - direction]
                )
                rc = step - pi(prev) + pi(nxt)
                if not view.edge_usable(prev, nxt, "wire"):
                    break
                nd = nd + rc
                if prune and nd >= UNREACHABLE:
                    break
                if frontier.is_processed(nxt) or not frontier.improve(
                    nxt, nd, prev, "wire"
                ):
                    break
                if rc == 0:
                    run.append((nxt, nd))
                    prev = nxt
                    nc += direction
                    continue
                # Climbing direction: one lazy continuation label.
                frontier.push(nxt, nd)
                stats.labels_pushed += 1
                break
        hit: Optional[Tuple[Vertex, int]] = None
        for run_vertex, run_dist in run:
            frontier.mark_processed(run_vertex)
            stats.vertices_processed += 1
            if run_vertex in targets:
                hit = (run_vertex, run_dist)
                break
        if hit is not None:
            best = hit
            break
        relax_run_cross_edges(run, interval)
    stats.stale_pops = frontier.stale_pops
    if OBS.enabled:
        _publish(stats, "interval", frontier)
    if best is None:
        return None
    target, cost = best
    path = frontier.reconstruct(target)
    return SearchResult(cost, path, stats, _collect_ripups(view, path))


def node_path_search(
    view: GraphView,
    sources: Dict[Vertex, int],
    targets: Set[Vertex],
    costs: SearchCosts,
    pi: Callable[[Vertex], int],
    deadline=None,
    kernel: KernelSpec = None,
) -> Optional[SearchResult]:
    """Classical node-labelling Dijkstra (the ablation baseline)."""
    graph = view.graph
    stats = SearchStats()
    frontier = resolve_kernel(kernel).new_search(graph)
    prune = getattr(pi, "unreachable_is_proof", False)

    def push(vertex: Vertex, d: int, prev: Optional[Vertex], kind: str) -> None:
        if prune and d >= UNREACHABLE:
            return
        if frontier.improve(vertex, d, prev, kind):
            frontier.push(vertex, d)
            stats.labels_pushed += 1

    for source, offset in sources.items():
        interval = view.interval_at(source)
        if interval is None:
            continue
        push(source, offset + pi(source) + interval.penalty, None, "source")

    while True:
        popped = frontier.pop()
        if popped is None:
            break
        vertex, d = popped
        stats.pops += 1
        if deadline is not None and stats.pops % DEADLINE_CHECK_STRIDE == 0:
            deadline.check()
        frontier.mark_processed(vertex)
        stats.vertices_processed += 1
        if vertex in targets:
            stats.stale_pops = frontier.stale_pops
            if OBS.enabled:
                _publish(stats, "node", frontier)
            path = frontier.reconstruct(vertex)
            return SearchResult(d, path, stats, _collect_ripups(view, path))
        z, t, c = vertex
        pi_v = pi(vertex)
        current = view.interval_at(vertex)
        for neighbour, kind, length in graph.neighbors(vertex):
            n_interval = view.interval_at(neighbour)
            if n_interval is None:
                continue
            if not view.edge_usable(vertex, neighbour, kind):
                continue
            layer_or_via = min(z, neighbour[0]) if kind == "via" else z
            cost = costs.edge_cost(kind, layer_or_via, length)
            nd = d + cost - pi_v + pi(neighbour)
            if n_interval is not current:
                nd += n_interval.penalty
            push(neighbour, nd, vertex, kind)
    stats.stale_pops = frontier.stale_pops
    if OBS.enabled:
        _publish(stats, "node", frontier)
    return None


def path_to_moves(
    graph, vertices: Sequence[Vertex]
) -> List[Tuple[str, Vertex, Vertex]]:
    """Classify consecutive path steps as wire / jog / via moves."""
    moves = []
    for v, w in zip(vertices, vertices[1:]):
        if v[0] != w[0]:
            moves.append(("via", v, w))
        elif v[1] != w[1]:
            moves.append(("jog", v, w))
        else:
            moves.append(("wire", v, w))
    return moves
