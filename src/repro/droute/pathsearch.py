"""On-track shortest path search (Sec. 4.1, Algorithm 4).

Two implementations over the same :class:`GraphView`:

* :func:`interval_path_search` - the interval-based goal-oriented
  Dijkstra of Hetzel [1998] / Peyer et al. [2009].  Heap events are
  *labels* anchored at interval vertices; when a label is settled, the
  whole zero-reduced-cost run it induces inside its interval is processed
  in bulk (the J_I(delta) frontier of Algorithm 4), and one lazy
  continuation label per climbing direction keeps the remaining interval
  vertices implicit.  Vertices whose distance never reaches the frontier
  before termination are never touched - the source of the paper's >= 6x
  speed-up over node labelling.
* :func:`node_path_search` - the classical one-vertex-per-label Dijkstra
  used as the correctness reference and the ablation baseline.

Both use a future cost (potential) pi with pi(t) = 0 on targets and
reduced edge costs c_pi >= 0; both return the same optimal costs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.droute.future_cost import SearchCosts
from repro.droute.intervals import GraphView, SearchInterval
from repro.grid.trackgraph import Vertex
from repro.obs import OBS
from repro.util.heap import AddressableHeap

INFINITY = 1 << 60

#: A soft deadline is polled once per this many heap pops: frequent
#: enough that an expiring search stops promptly, rare enough that the
#: clock read never shows up in profiles.
DEADLINE_CHECK_STRIDE = 64


class SearchStats:
    """Instrumentation for the interval-vs-node comparison (Sec. 4.1)."""

    __slots__ = ("labels_pushed", "vertices_processed", "pops", "interval_runs")

    def __init__(self) -> None:
        self.labels_pushed = 0
        self.vertices_processed = 0
        self.pops = 0
        #: Zero-reduced-cost runs processed in bulk (interval search only);
        #: each run settles ``vertices_processed / interval_runs`` vertices
        #: per heap pop on average — the Fig. 6 labelling economy.
        self.interval_runs = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "labels_pushed": self.labels_pushed,
            "vertices_processed": self.vertices_processed,
            "pops": self.pops,
            "interval_runs": self.interval_runs,
        }


def _publish(stats: SearchStats, engine: str) -> None:
    """Fold one search's stats into the global registry (Sec. 4.1 counters).

    Called once per search so the hot loops stay free of observability
    branches; the whole function is behind the caller's ``OBS.enabled``
    check.
    """
    OBS.count("pathsearch.searches")
    OBS.count(f"pathsearch.{engine}_searches")
    OBS.count("pathsearch.labels_pushed", stats.labels_pushed)
    OBS.count("pathsearch.heap_pops", stats.pops)
    OBS.count("pathsearch.vertices_processed", stats.vertices_processed)
    OBS.count("pathsearch.interval_runs", stats.interval_runs)
    OBS.observe("pathsearch.labels_per_search", stats.labels_pushed)


class SearchResult:
    """A shortest S-T path in the search graph."""

    __slots__ = ("cost", "vertices", "stats", "ripup_vertices")

    def __init__(
        self,
        cost: int,
        vertices: List[Vertex],
        stats: SearchStats,
        ripup_vertices: List[Vertex],
    ) -> None:
        #: Total cost including jog/via penalties and ripup penalties.
        self.cost = cost
        #: Vertex sequence from a source to a target.
        self.vertices = vertices
        self.stats = stats
        #: Vertices on the path that require ripping out foreign wiring.
        self.ripup_vertices = ripup_vertices

    def __repr__(self) -> str:
        return f"SearchResult(cost={self.cost}, {len(self.vertices)} vertices)"


def _reconstruct(
    parent: Dict[Vertex, Tuple[Optional[Vertex], str]], target: Vertex
) -> List[Vertex]:
    path = [target]
    vertex = target
    while True:
        prev, _kind = parent[vertex]
        if prev is None:
            break
        path.append(prev)
        vertex = prev
    path.reverse()
    return path


def _collect_ripups(view: GraphView, vertices: Sequence[Vertex]) -> List[Vertex]:
    out = []
    for vertex in vertices:
        interval = view.interval_at(vertex)
        if interval is not None and interval.needs_ripup:
            out.append(vertex)
    return out


def interval_path_search(
    view: GraphView,
    sources: Dict[Vertex, int],
    targets: Set[Vertex],
    costs: SearchCosts,
    pi: Callable[[Vertex], int],
    deadline=None,
) -> Optional[SearchResult]:
    """Shortest path by interval labelling (Algorithm 4).

    ``sources`` maps source vertices to non-negative start offsets;
    ``targets`` is the target vertex set (pi must vanish there).
    ``deadline`` (a :class:`repro.flow.resilience.Deadline`) is polled
    every few pops; expiry raises ``DeadlineExceeded`` mid-search, which
    is safe because the search never mutates the routing space.
    """
    graph = view.graph
    stats = SearchStats()
    dist: Dict[Vertex, int] = {}
    parent: Dict[Vertex, Tuple[Optional[Vertex], str]] = {}
    processed: Set[Vertex] = set()
    heap = AddressableHeap()

    def push(vertex: Vertex, d: int, prev: Optional[Vertex], kind: str) -> None:
        if d < dist.get(vertex, INFINITY):
            dist[vertex] = d
            parent[vertex] = (prev, kind)
            heap.push(vertex, d)
            stats.labels_pushed += 1

    for source, offset in sources.items():
        interval = view.interval_at(source)
        if interval is None:
            continue
        push(source, offset + pi(source) + interval.penalty, None, "source")

    #: The four cross-edge families out of an on-track vertex: jogs to the
    #: two adjacent tracks, vias to the two adjacent layers.
    _CROSS_DIRECTIONS = (("jog", -1), ("jog", 1), ("via", -1), ("via", 1))

    def cross_neighbour(vertex: Vertex, kind: str, sign: int):
        """The (neighbour, edge_cost) in one cross direction, or None."""
        z, t, c = vertex
        if kind == "jog":
            nt = t + sign
            tracks = graph.tracks[z]
            if nt < 0 or nt >= len(tracks):
                return None
            length = abs(tracks[nt] - tracks[t])
            return ((z, nt, c), costs.jog(z, length))
        partner = graph.via_partner(vertex, z + sign)
        if partner is None:
            return None
        return (partner, costs.via(min(z, z + sign)))

    def relax_run_cross_edges(run: List[Vertex], interval: SearchInterval) -> None:
        """Relax one edge per (neighbouring interval, usability run).

        This is line 13 of Algorithm 4: for each neighbouring interval the
        edge from the pi-maximum frontier vertex is relaxed; the remaining
        parallel entries are covered exactly by the within-interval label
        function because the frontier run has reduced cost 0 (pi slope -1),
        which cancels against travel inside the neighbour.  A change of
        jog/via usability along the run starts a new relaxation (the
        property-(ii) splits of Sec. 4.1).
        """
        for kind, sign in _CROSS_DIRECTIONS:
            previous_key = None
            for vertex in run:
                edge = cross_neighbour(vertex, kind, sign)
                if edge is None:
                    previous_key = None
                    continue
                neighbour, cost = edge
                n_interval = view.interval_at(neighbour)
                if n_interval is None or not view.edge_usable(vertex, neighbour, kind):
                    previous_key = None
                    continue
                key = n_interval.index
                if key == previous_key:
                    continue
                previous_key = key
                nd = dist[vertex] + cost - pi(vertex) + pi(neighbour)
                if n_interval is not interval:
                    nd += n_interval.penalty
                push(neighbour, nd, vertex, kind)
        # Wire edges across interval boundaries: they exist when two
        # intervals are adjacent on the same track (e.g. a ripup
        # singleton splitting an ordinary run, Sec. 4.2).
        for vertex in run:
            z, t, c = vertex
            for nc in (c - 1, c + 1):
                if nc in interval:
                    continue
                if nc < 0 or nc >= len(graph.crosses[z]):
                    continue
                neighbour = (z, t, nc)
                n_interval = view.interval_at(neighbour)
                if n_interval is None:
                    continue
                if not view.edge_usable(vertex, neighbour, "wire"):
                    continue
                step = abs(graph.crosses[z][nc] - graph.crosses[z][c])
                nd = (
                    dist[vertex] + costs.wire(z, step)
                    - pi(vertex) + pi(neighbour) + n_interval.penalty
                )
                push(neighbour, nd, vertex, "wire")

    best: Optional[Tuple[Vertex, int]] = None
    while heap:
        vertex, d = heap.pop()
        stats.pops += 1
        if deadline is not None and stats.pops % DEADLINE_CHECK_STRIDE == 0:
            deadline.check()
        if vertex in processed:
            continue
        if d > dist.get(vertex, INFINITY):
            continue
        interval = view.interval_at(vertex)
        if interval is None:
            continue
        # Bulk-collect the zero-reduced-cost run induced by this label,
        # i.e. the frontier J_I(delta) of Algorithm 4.  pi is 1-Lipschitz,
        # so the run extends in at most one direction from the anchor.
        run = [vertex]
        stats.interval_runs += 1
        for direction in (-1, 1):
            z, t, c = vertex
            prev = vertex
            nc = c + direction
            while interval.c_lo <= nc <= interval.c_hi:
                nxt = (z, t, nc)
                step = abs(
                    graph.crosses[z][nc] - graph.crosses[z][nc - direction]
                )
                rc = step - pi(prev) + pi(nxt)
                if not view.edge_usable(prev, nxt, "wire"):
                    break
                nd = d + rc
                if nd >= dist.get(nxt, INFINITY) or nxt in processed:
                    break
                dist[nxt] = nd
                parent[nxt] = (prev, "wire")
                if rc == 0:
                    run.append(nxt)
                    prev = nxt
                    nc += direction
                    continue
                # Climbing direction: one lazy continuation label.
                heap.push(nxt, nd)
                stats.labels_pushed += 1
                break
        hit: Optional[Vertex] = None
        for run_vertex in run:
            processed.add(run_vertex)
            stats.vertices_processed += 1
            if run_vertex in targets:
                hit = run_vertex
                break
        if hit is not None:
            best = (hit, dist[hit])
            break
        relax_run_cross_edges(run, interval)
    if OBS.enabled:
        _publish(stats, "interval")
    if best is None:
        return None
    target, cost = best
    path = _reconstruct(parent, target)
    return SearchResult(cost, path, stats, _collect_ripups(view, path))


def node_path_search(
    view: GraphView,
    sources: Dict[Vertex, int],
    targets: Set[Vertex],
    costs: SearchCosts,
    pi: Callable[[Vertex], int],
    deadline=None,
) -> Optional[SearchResult]:
    """Classical node-labelling Dijkstra (the ablation baseline)."""
    graph = view.graph
    stats = SearchStats()
    dist: Dict[Vertex, int] = {}
    parent: Dict[Vertex, Tuple[Optional[Vertex], str]] = {}
    processed: Set[Vertex] = set()
    heap = AddressableHeap()

    def push(vertex: Vertex, d: int, prev: Optional[Vertex], kind: str) -> None:
        if d < dist.get(vertex, INFINITY):
            dist[vertex] = d
            parent[vertex] = (prev, kind)
            heap.push(vertex, d)
            stats.labels_pushed += 1

    for source, offset in sources.items():
        interval = view.interval_at(source)
        if interval is None:
            continue
        push(source, offset + pi(source) + interval.penalty, None, "source")

    while heap:
        vertex, d = heap.pop()
        stats.pops += 1
        if deadline is not None and stats.pops % DEADLINE_CHECK_STRIDE == 0:
            deadline.check()
        if vertex in processed:
            continue
        processed.add(vertex)
        stats.vertices_processed += 1
        if vertex in targets:
            if OBS.enabled:
                _publish(stats, "node")
            path = _reconstruct(parent, vertex)
            return SearchResult(d, path, stats, _collect_ripups(view, path))
        z, t, c = vertex
        pi_v = pi(vertex)
        current = view.interval_at(vertex)
        for neighbour, kind, length in graph.neighbors(vertex):
            n_interval = view.interval_at(neighbour)
            if n_interval is None:
                continue
            if not view.edge_usable(vertex, neighbour, kind):
                continue
            layer_or_via = min(z, neighbour[0]) if kind == "via" else z
            cost = costs.edge_cost(kind, layer_or_via, length)
            nd = d + cost - pi_v + pi(neighbour)
            if n_interval is not current:
                nd += n_interval.penalty
            push(neighbour, nd, vertex, kind)
    if OBS.enabled:
        _publish(stats, "node")
    return None


def path_to_moves(
    graph, vertices: Sequence[Vertex]
) -> List[Tuple[str, Vertex, Vertex]]:
    """Classify consecutive path steps as wire / jog / via moves."""
    moves = []
    for v, w in zip(vertices, vertices[1:]):
        if v[0] != w[0]:
            moves.append(("via", v, w))
        elif v[1] != w[1]:
            moves.append(("jog", v, w))
        else:
            moves.append(("wire", v, w))
    return moves
