"""Search-graph view and track intervals for the on-track path search.

A :class:`GraphView` fixes one path search's context: the routing space,
the wire type, the routing area, the allowed ripup level and the forced
(source/target) vertices.  It answers vertex and edge usability through
the fast grid and lazily decomposes each track into the maximal usable
*intervals* that Algorithm 4 labels (Sec. 4.1).

Interval kinds:

* ordinary intervals - maximal runs of wire-usable vertices;
* ripup intervals - singleton intervals around vertices that are only
  usable if foreign wiring is ripped out; entering one costs an extra
  penalty that grows with the vertex's ripup history (Sec. 4.2);
* spreading penalties - per-interval extra costs for intervals global
  routing wants kept free (wire spreading, Sec. 4.2).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.droute.area import RoutingArea
from repro.droute.space import RoutingSpace, effective_via_type, effective_wire_type
from repro.grid.trackgraph import Vertex

try:
    import numpy as _np
except ImportError:  # pragma: no cover - pure-python fallback
    _np = None


class SearchInterval:
    """A maximal labelled run of usable vertices on one track."""

    __slots__ = ("index", "z", "t", "c_lo", "c_hi", "penalty", "needs_ripup")

    def __init__(
        self,
        index: int,
        z: int,
        t: int,
        c_lo: int,
        c_hi: int,
        penalty: int = 0,
        needs_ripup: bool = False,
    ) -> None:
        self.index = index
        self.z = z
        self.t = t
        self.c_lo = c_lo
        self.c_hi = c_hi
        self.penalty = penalty
        self.needs_ripup = needs_ripup

    def __repr__(self) -> str:
        return (
            f"SearchInterval#{self.index}(z={self.z}, t={self.t}, "
            f"c=[{self.c_lo},{self.c_hi}], penalty={self.penalty})"
        )

    def __contains__(self, c: int) -> bool:
        return self.c_lo <= c <= self.c_hi

    def __len__(self) -> int:
        return self.c_hi - self.c_lo + 1


class GraphView:
    """One path search's restricted, usability-filtered track graph."""

    def __init__(
        self,
        space: RoutingSpace,
        wire_type_name: str,
        area: RoutingArea,
        ripup_level: int = -2,
        forced_vertices: Optional[Set[Vertex]] = None,
        ripup_history: Optional[Dict[Vertex, int]] = None,
        ripup_base_penalty: int = 0,
        spreading_penalty: Optional[Callable[[SearchInterval], int]] = None,
    ) -> None:
        self.space = space
        self.graph = space.graph
        self.wire_type_name = wire_type_name
        self.area = area
        #: -2: no ripup; >= 0: vertices needing ripup of shapes with level
        #: <= ripup_level are usable at a penalty.
        self.ripup_level = ripup_level
        self.forced: Set[Vertex] = forced_vertices or set()
        self.ripup_history = ripup_history if ripup_history is not None else {}
        self.ripup_base_penalty = ripup_base_penalty
        self.spreading_penalty = spreading_penalty
        self._intervals: List[SearchInterval] = []
        # (z, t) -> sorted list of (c_lo, interval_index)
        self._track_runs: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        # (z, t) -> per-cross interval-index map (-1 where no interval);
        # replaces the bisect in interval_at on its ~10^5-call hot path.
        self._track_maps: Dict[Tuple[int, int], object] = {}

    # ------------------------------------------------------------------
    # Per-layer wire type resolution
    # ------------------------------------------------------------------
    def type_for_layer(self, z: int) -> Optional[str]:
        """Effective wire type on layer z (escape wiring for
        layer-restricted nets, Sec. 1.1)."""
        return effective_wire_type(self.space.chip, self.wire_type_name, z)

    def type_for_via(self, via_layer: int) -> Optional[str]:
        return effective_via_type(self.space.chip, self.wire_type_name, via_layer)

    # ------------------------------------------------------------------
    # Usability
    # ------------------------------------------------------------------
    def _wire_state(self, vertex: Vertex) -> Tuple[bool, bool]:
        """(usable, needs_ripup) for pass-through wiring at ``vertex``."""
        if vertex in self.forced:
            return True, False
        if not self.area.contains_vertex(self.graph, vertex):
            return False, False
        fast = self.space.fast_grid
        if not self.graph.stack.has_layer(vertex[0]):
            return False, False
        type_name = self.type_for_layer(vertex[0])
        if type_name is None:
            return False, False
        if fast.vertex_usable(type_name, vertex, "wire"):
            return True, False
        if self.ripup_level >= 0 and fast.vertex_usable(
            type_name, vertex, "wire", self.ripup_level
        ):
            return True, True
        return False, False

    def edge_usable(self, v: Vertex, w: Vertex, kind: str) -> bool:
        level = self.ripup_level if self.ripup_level >= 0 else -2
        if kind == "via":
            if v in self.forced and w in self.forced:
                return True
            type_name = self.type_for_via(min(v[0], w[0]))
            if type_name is None:
                return False
            return self.space.fast_grid.edge_usable(type_name, v, w, kind, level)
        type_name = self.type_for_layer(v[0])
        if type_name is None:
            return False
        if kind == "wire":
            # Within-interval edges: both endpoints' usability is already
            # established by interval construction; dirty bits still force
            # a direct segment check.
            if v in self.forced or w in self.forced:
                return True
            return self.space.fast_grid.edge_usable(type_name, v, w, "wire", level)
        if v in self.forced and w in self.forced:
            return True
        return self.space.fast_grid.edge_usable(type_name, v, w, kind, level)

    # ------------------------------------------------------------------
    # Interval decomposition (lazy per track)
    # ------------------------------------------------------------------
    def _ripup_penalty(self, vertex: Vertex) -> int:
        history = self.ripup_history.get(vertex, 0)
        return self.ripup_base_penalty * (1 + history)

    def _build_track(self, z: int, t: int) -> List[Tuple[int, int]]:
        """Decompose track (z, t) into intervals via word-level scans.

        The raw runs come from :meth:`FastGrid.scan_track_runs` over the
        packed word arrays; for views without forced vertices on the
        track they are additionally reused across searches through the
        space's :class:`IntervalCache` (validated by the track epoch).
        Penalties are applied here, per view, so cached runs stay
        view-independent.
        """
        runs: List[Tuple[int, int]] = []
        layer_type = self.type_for_layer(z)
        if layer_type is None:
            return runs
        ranges = tuple(self.area.cross_ranges(self.graph, z, t))
        if not ranges:
            return runs
        fast = self.space.fast_grid
        forced_cs = {v[2] for v in self.forced if v[0] == z and v[1] == t}
        cache = self.space.interval_cache
        raw = None
        key = None
        # Forced (source/target) vertices override their words, so those
        # tracks bypass the cross-search cache; so does a disabled grid
        # (every scan would recompute anyway).
        if cache is not None and not forced_cs and fast.enabled:
            key = (self.wire_type_name, self.ripup_level, z, t, ranges)
            raw = cache.lookup(key, fast.track_epoch(z, t))
        if raw is None:
            raw = fast.scan_track_runs(
                layer_type, z, t, ranges,
                self.ripup_level if self.ripup_level >= 0 else -2,
                forced_cs or None,
            )
            if key is not None:
                cache.store(key, fast.track_epoch(z, t), raw)
        for c_lo, c_hi, needs_ripup in raw:
            if needs_ripup:
                runs.append(
                    self._new_interval(
                        z, t, c_lo, c_hi,
                        penalty=self._ripup_penalty((z, t, c_lo)),
                        needs_ripup=True,
                    )
                )
            else:
                runs.append(self._new_interval(z, t, c_lo, c_hi))
        return runs

    def _new_interval(
        self, z: int, t: int, c_lo: int, c_hi: int,
        penalty: int = 0, needs_ripup: bool = False,
    ) -> Tuple[int, int]:
        interval = SearchInterval(
            len(self._intervals), z, t, c_lo, c_hi, penalty, needs_ripup
        )
        if self.spreading_penalty is not None:
            interval.penalty += self.spreading_penalty(interval)
        self._intervals.append(interval)
        return (c_lo, interval.index)

    def track_intervals(self, z: int, t: int) -> List[Tuple[int, int]]:
        key = (z, t)
        runs = self._track_runs.get(key)
        if runs is None:
            runs = self._build_track(z, t)
            self._track_runs[key] = runs
            self._track_maps[key] = self._build_track_map(z, runs)
        return runs

    def _build_track_map(self, z: int, runs: List[Tuple[int, int]]):
        """Per-cross map c -> interval index (-1 outside any interval)."""
        ncross = len(self.graph.crosses[z])
        if _np is not None and self.space.fast_grid.vectorized:
            cmap = _np.full(ncross, -1, dtype=_np.int32)
        else:
            cmap = [-1] * ncross
        intervals = self._intervals
        if _np is not None and isinstance(cmap, _np.ndarray):
            for _c_lo, index in runs:
                interval = intervals[index]
                cmap[interval.c_lo:interval.c_hi + 1] = index
        else:
            for _c_lo, index in runs:
                interval = intervals[index]
                for c in range(interval.c_lo, interval.c_hi + 1):
                    cmap[c] = index
        return cmap

    def interval(self, index: int) -> SearchInterval:
        return self._intervals[index]

    def interval_at(self, vertex: Vertex) -> Optional[SearchInterval]:
        z, t, c = vertex
        if t < 0 or t >= len(self.graph.tracks[z]):
            return None
        key = (z, t)
        cmap = self._track_maps.get(key)
        if cmap is None:
            self.track_intervals(z, t)
            cmap = self._track_maps[key]
        if c < 0 or c >= len(cmap):
            return None
        index = cmap[c]
        return self._intervals[index] if index >= 0 else None

    @property
    def interval_count(self) -> int:
        return len(self._intervals)
