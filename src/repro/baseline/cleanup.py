"""Local DRC cleanup (Sec. 5.2 / 5.3).

Both flows of Table I end with this pass: the "BR+ISR" flow hands
BonnRoute's wiring to it, and the plain "ISR" flow uses it as its own
finisher.  Only local changes are made:

* **min_segment / min_area**: stub extensions where legally possible
  (the fixes BonnRoute itself tries to avoid needing, Sec. 5.2 item 2);
* **spacing**: the cheaper offender (less wiring ripped) is removed and
  rerouted inside a small window around the violation;
* remaining violations are reported (the error column of Table I).

As in the paper, the cleanup often takes longer than BonnRoute itself
despite touching only local windows (Sec. 5.3).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.chip.net import Net
from repro.drc.checker import DrcChecker, DrcReport, Violation
from repro.droute.area import RoutingArea
from repro.droute.connect import NetConnector
from repro.droute.pinaccess import PinAccessPlanner
from repro.droute.samenet import _try_extend, merge_collinear
from repro.droute.space import RoutingSpace
from repro.geometry.rect import Rect
from repro.grid.shapegrid import RipupLevel


class CleanupReport:
    def __init__(self) -> None:
        self.fixed_min_segment = 0
        self.fixed_min_area = 0
        self.fixed_spacing = 0
        self.rerouted_nets = 0
        self.remaining_errors = 0
        self.runtime = 0.0
        self.final_report: Optional[DrcReport] = None

    def summary(self) -> Dict[str, float]:
        return {
            "fixed_min_segment": self.fixed_min_segment,
            "fixed_min_area": self.fixed_min_area,
            "fixed_spacing": self.fixed_spacing,
            "rerouted_nets": self.rerouted_nets,
            "remaining_errors": self.remaining_errors,
            "runtime": self.runtime,
        }


class DrcCleanup:
    """Violation-driven local repair over a routed space."""

    def __init__(
        self,
        space: RoutingSpace,
        max_passes: int = 2,
        search_kernel=None,
    ) -> None:
        self.space = space
        self.chip = space.chip
        self.max_passes = max_passes
        self.planner = PinAccessPlanner(space)
        self.connector = NetConnector(
            space, planner=self.planner, search_kernel=search_kernel
        )

    # ------------------------------------------------------------------
    # Individual fixes
    # ------------------------------------------------------------------
    def _fix_min_segment(self, violation: Violation) -> bool:
        net_name = violation.nets[0]
        route = self.space.routes.get(net_name)
        if route is None:
            return False
        tau = self.chip.rules.same_net_rules(violation.layer).min_segment_length
        for stick, _level, type_name in route.wire_items():
            if stick.layer != violation.layer or stick.is_point:
                continue
            if stick.length >= tau:
                continue
            if not stick.as_rect().intersects(violation.rect):
                continue
            extended = _try_extend(self.space, net_name, type_name, stick, tau)
            if extended is not None and extended != stick:
                self.space.remove_wire(net_name, stick)
                self.space.add_wire(net_name, type_name, extended)
                return True
        return False

    def _fix_min_area(self, violation: Violation) -> bool:
        """Grow the polygon with a stub wire along the preferred axis."""
        net_name = violation.nets[0]
        route = self.space.routes.get(net_name)
        if route is None:
            return False
        same_net = self.chip.rules.same_net_rules(violation.layer)
        deficit_length = max(
            same_net.min_area // max(self.chip.stack[violation.layer].min_width, 1),
            same_net.min_segment_length,
        )
        for stick, _level, type_name in route.wire_items():
            if stick.layer != violation.layer:
                continue
            if not stick.as_rect().intersects(violation.rect):
                continue
            extended = _try_extend(
                self.space, net_name, type_name, stick,
                stick.length + deficit_length,
            )
            if extended is not None and extended != stick:
                self.space.remove_wire(net_name, stick)
                self.space.add_wire(net_name, type_name, extended)
                return True
        return False

    def _fix_spacing(self, violation: Violation, nets_by_name) -> bool:
        """Rip the lighter offender and reroute it in a local window."""
        candidates = [name for name in violation.nets if name is not None]
        if not candidates:
            return False
        candidates.sort(
            key=lambda name: self.space.routes[name].wire_length
            if name in self.space.routes
            else 0
        )
        victim = candidates[0]
        net = nets_by_name.get(victim)
        if net is None or victim not in self.space.routes:
            return False
        self.connector.rip_net(victim)
        # Local change only: reroute within a window around the violation,
        # widened by the net's own bounding box so its pins stay reachable.
        window = violation.rect.expanded(16 * self.chip.stack[1].pitch)
        window = window.hull(net.bounding_box().expanded(8 * self.chip.stack[1].pitch))
        clipped = window.intersection(self.chip.die) or self.chip.die
        area = RoutingArea.from_boxes(
            [(z, clipped) for z in self.chip.stack.indices]
        )
        connection = self.connector.connect_net(net, area, max_ripup_level=-2)
        return connection.success

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> CleanupReport:
        start = time.time()
        report = CleanupReport()
        nets_by_name = {net.name: net for net in self.chip.nets}
        for _pass in range(self.max_passes):
            checker = DrcChecker(self.space)
            drc = checker.run(opens=False)
            if not drc.violations:
                break
            progressed = False
            for violation in drc.violations:
                if violation.kind == "min_segment":
                    if self._fix_min_segment(violation):
                        report.fixed_min_segment += 1
                        progressed = True
                elif violation.kind == "min_area":
                    if self._fix_min_area(violation):
                        report.fixed_min_area += 1
                        progressed = True
                elif violation.kind == "spacing":
                    if self._fix_spacing(violation, nets_by_name):
                        report.fixed_spacing += 1
                        report.rerouted_nets += 1
                        progressed = True
            if not progressed:
                break
        final = DrcChecker(self.space).run()
        report.final_report = final
        report.remaining_errors = final.error_count
        report.runtime = time.time() - start
        return report
