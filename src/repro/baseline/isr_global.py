"""ISR global routing: 2D negotiation + layer assignment.

The contemporary standard the paper contrasts with (Sec. 1.2): solve a 2D
projection first with negotiation-based rip-up-and-reroute (history +
present congestion costs, PathFinder / NTHU-Route style), then map wires
to layers in a separate greedy step (Lee & Wang [2008]), inserting vias
at direction changes and pin connections.  Compared to BonnRoute's 3D
resource sharing this typically needs more vias and achieves less even
congestion - the effect Table III shows.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.chip.design import Chip
from repro.chip.net import Net
from repro.groute.graph import (
    Edge,
    GlobalRoute,
    GlobalRoutingGraph,
    Node,
    canonical_edge,
)
from repro.groute.steiner_oracle import path_composition_steiner_tree
from repro.tech.layers import Direction

#: 2D nodes are (tx, ty); 2D edges canonical node pairs.
Node2D = Tuple[int, int]
Edge2D = Tuple[Node2D, Node2D]


def _edge2d(a: Node2D, b: Node2D) -> Edge2D:
    return (a, b) if a < b else (b, a)


class _Grid2D:
    """Collapsed 2D view of the global routing graph."""

    def __init__(self, graph: GlobalRoutingGraph) -> None:
        self.graph = graph
        self.nx = graph.nx
        self.ny = graph.ny
        self.capacity: Dict[Edge2D, float] = {}
        self.layers_for: Dict[Edge2D, List[int]] = {}
        chip = graph.chip
        for edge in graph.edges():
            if graph.is_via_edge(edge):
                continue
            (ax, ay, z), (bx, by, _z) = edge
            edge2d = _edge2d((ax, ay), (bx, by))
            self.capacity[edge2d] = self.capacity.get(edge2d, 0.0) + graph.capacity(edge)
            self.layers_for.setdefault(edge2d, []).append(z)

    def neighbors(self, node: Node2D):
        x, y = node
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nx, ny = x + dx, y + dy
            if 0 <= nx < self.nx and 0 <= ny < self.ny:
                other = (nx, ny)
                edge = _edge2d(node, other)
                if self.capacity.get(edge, 0.0) > 0:
                    yield other, edge

    def edge_length(self, edge: Edge2D) -> int:
        (ax, ay), (bx, by) = edge
        ca = self.graph.tile_center(ax, ay)
        cb = self.graph.tile_center(bx, by)
        return abs(ca[0] - cb[0]) + abs(ca[1] - cb[1])


class IsrGlobalResult:
    def __init__(self, chip: Chip, graph: GlobalRoutingGraph) -> None:
        self.chip = chip
        self.graph = graph
        self.routes: Dict[str, GlobalRoute] = {}
        self.local_nets: Set[str] = set()
        self.total_runtime = 0.0
        self.negotiation_iterations = 0
        self.overflow = 0.0

    def wire_length(self) -> int:
        return sum(r.wire_length(self.graph) for r in self.routes.values())

    def via_count(self) -> int:
        return sum(r.via_count() for r in self.routes.values())

    def summary(self) -> Dict[str, float]:
        return {
            "nets": len(self.routes),
            "wire_length": self.wire_length(),
            "vias": self.via_count(),
            "runtime": self.total_runtime,
            "iterations": self.negotiation_iterations,
            "overflow": self.overflow,
        }


class IsrGlobalRouter:
    """Negotiation-based 2D global router with layer assignment."""

    def __init__(
        self,
        chip: Chip,
        graph: Optional[GlobalRoutingGraph] = None,
        max_iterations: int = 12,
        history_increment: float = 0.5,
        present_factor: float = 2.0,
    ) -> None:
        self.chip = chip
        if graph is None:
            from repro.grid.tracks import build_track_plan
            from repro.groute.capacity import estimate_capacities

            graph = GlobalRoutingGraph(chip)
            estimate_capacities(graph, build_track_plan(chip))
        self.graph = graph
        self.grid = _Grid2D(graph)
        self.max_iterations = max_iterations
        self.history_increment = history_increment
        self.present_factor = present_factor
        self.history: Dict[Edge2D, float] = {}

    # ------------------------------------------------------------------
    # 2D routing
    # ------------------------------------------------------------------
    def _terminals_2d(self, net: Net) -> List[Set[Node2D]]:
        terminals = []
        for pin in net.pins:
            nodes = {
                (node[0], node[1]) for node in self.graph.pin_nodes(pin)
            }
            terminals.append(nodes)
        return terminals

    def _route_2d(
        self, net: Net, usage: Dict[Edge2D, float]
    ) -> Optional[Set[Edge2D]]:
        grid = self.grid

        class _Shim:
            """Adapts the 2D grid to the Steiner oracle's graph protocol."""

            tile_size = self.graph.tile_size

            @staticmethod
            def neighbors(node):
                for other, edge in grid.neighbors(node):
                    yield other, edge

            @staticmethod
            def capacity(edge):
                return grid.capacity.get(edge, 0.0)

            @staticmethod
            def node_center(node):
                return self.graph.tile_center(node[0], node[1])

            @staticmethod
            def edge_length(edge):
                return grid.edge_length(edge)

        def edge_cost(_net_name: str, edge: Edge2D) -> Tuple[float, float]:
            length = grid.edge_length(edge)
            capacity = max(grid.capacity.get(edge, 0.0), 1e-9)
            used = usage.get(edge, 0.0)
            present = 1.0
            if used >= capacity:
                present = self.present_factor * (1.0 + used - capacity)
            history = 1.0 + self.history.get(edge, 0.0)
            return length * history * present, 0.0

        result = path_composition_steiner_tree(
            _Shim, net.name, self._terminals_2d(net), edge_cost
        )
        if result is None:
            return None
        return set(result.edges)

    def _usage_of(
        self, routes2d: Dict[str, Set[Edge2D]], width: Dict[str, float]
    ) -> Dict[Edge2D, float]:
        usage: Dict[Edge2D, float] = {}
        for name, edges in routes2d.items():
            for edge in edges:
                usage[edge] = usage.get(edge, 0.0) + width[name]
        return usage

    # ------------------------------------------------------------------
    # Layer assignment (greedy, bottom-up)
    # ------------------------------------------------------------------
    def _assign_layers(self, net: Net, edges2d: Set[Edge2D]) -> GlobalRoute:
        """Map 2D edges to layers greedily; vias join segments and pins.

        Each 2D edge needs a layer of matching preferred direction; the
        greedy pass prefers the lowest feasible layer (classic layer
        assignment), which strings vias at every direction change.
        """
        stack = self.chip.stack
        route_edges: Set[Edge] = set()
        layer_usage: Dict[Edge, float] = {}
        chosen_layer: Dict[Edge2D, int] = {}
        for edge2d in sorted(edges2d):
            (ax, ay), (bx, by) = edge2d
            horizontal = ay == by
            wanted = (
                Direction.HORIZONTAL if horizontal else Direction.VERTICAL
            )
            candidates = [
                z for z in stack.indices if stack.direction(z) is wanted
            ]
            best = None
            for z in candidates:
                edge3d = canonical_edge((ax, ay, z), (bx, by, z))
                load = layer_usage.get(edge3d, 0.0)
                if load < self.graph.capacity(edge3d):
                    best = z
                    break
            if best is None and candidates:
                best = candidates[0]
            if best is None:
                continue
            chosen_layer[edge2d] = best
            edge3d = canonical_edge((ax, ay, best), (bx, by, best))
            route_edges.add(edge3d)
            layer_usage[edge3d] = layer_usage.get(edge3d, 0.0) + 1.0
        # Vias: connect edges sharing a 2D node but on different layers,
        # and connect pin layers to the lowest wire layer at the pin tile.
        at_node: Dict[Node2D, Set[int]] = {}
        for edge2d, z in chosen_layer.items():
            for node in edge2d:
                at_node.setdefault(node, set()).add(z)
        for pin in net.pins:
            for node in self.graph.pin_nodes(pin):
                at_node.setdefault((node[0], node[1]), set()).add(node[2])
        for (tx, ty), layers in at_node.items():
            if len(layers) < 2:
                continue
            lo, hi = min(layers), max(layers)
            for z in range(lo, hi):
                route_edges.add(canonical_edge((tx, ty, z), (tx, ty, z + 1)))
        return GlobalRoute(net.name, route_edges)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, nets: Optional[Sequence[Net]] = None) -> IsrGlobalResult:
        start = time.time()
        if nets is None:
            nets = self.chip.nets
        result = IsrGlobalResult(self.chip, self.graph)
        routable: List[Net] = []
        for net in nets:
            if self.graph.is_local_net(net):
                result.local_nets.add(net.name)
            else:
                routable.append(net)
        width = {
            net.name: (2.0 if net.wire_type == "wide" else 1.0)
            for net in routable
        }
        routes2d: Dict[str, Set[Edge2D]] = {}
        usage: Dict[Edge2D, float] = {}
        # Initial congestion-blind routing.
        for net in routable:
            edges = self._route_2d(net, usage)
            if edges is not None:
                routes2d[net.name] = edges
                for edge in edges:
                    usage[edge] = usage.get(edge, 0.0) + width[net.name]
        # Negotiation iterations.
        nets_by_name = {net.name: net for net in routable}
        for iteration in range(self.max_iterations):
            overflowed = {
                edge
                for edge, used in usage.items()
                if used > self.grid.capacity.get(edge, 0.0) + 1e-9
            }
            if not overflowed:
                break
            result.negotiation_iterations = iteration + 1
            for edge in overflowed:
                self.history[edge] = (
                    self.history.get(edge, 0.0) + self.history_increment
                )
            for name, edges in sorted(routes2d.items()):
                if not (edges & overflowed):
                    continue
                for edge in edges:
                    usage[edge] -= width[name]
                new_edges = self._route_2d(nets_by_name[name], usage)
                if new_edges is None:
                    new_edges = edges
                routes2d[name] = new_edges
                for edge in new_edges:
                    usage[edge] = usage.get(edge, 0.0) + width[name]
        result.overflow = sum(
            max(0.0, used - self.grid.capacity.get(edge, 0.0))
            for edge, used in usage.items()
        )
        for name, edges in routes2d.items():
            result.routes[name] = self._assign_layers(nets_by_name[name], edges)
        result.total_runtime = time.time() - start
        return result
