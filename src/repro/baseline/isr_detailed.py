"""ISR detailed routing: track assignment + node-based maze completion.

The paper describes ISR as using "a track assignment step to cover long
distances" and completing the routing "in purely gridless fashion"
(Sec. 5.3).  This stand-in:

* assigns the long straight portion of each net's global route to a free
  track up front (track assignment; poorly placed segments later force
  detours - one source of ISR's scenic nets);
* completes every connection with the classical node-labelling Dijkstra
  (no interval bulk processing, no fast-grid-assisted interval reuse);
* accesses pins greedily (first feasible access path per pin, no
  conflict-free solution - Fig. 7's failure mode);
* prices vias low, which packs more vias than BonnRoute's searches.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.chip.net import Net
from repro.droute.area import RoutingArea
from repro.droute.connect import NetConnector
from repro.droute.future_cost import SearchCosts
from repro.droute.pinaccess import PinAccessPlanner
from repro.droute.router import DetailedRouter, DetailedRoutingResult
from repro.droute.space import RoutingSpace
from repro.grid.shapegrid import RipupLevel
from repro.tech.layers import Direction
from repro.tech.wiring import StickFigure


class IsrDetailedRouter(DetailedRouter):
    """ISR-style detailed router built on the shared routing space."""

    def __init__(
        self,
        space: RoutingSpace,
        corridors: Optional[Dict[str, RoutingArea]] = None,
        corridor_detours: Optional[Dict[str, float]] = None,
        threads: int = 4,
        max_retry_rounds: int = 2,
        track_assignment: bool = True,
    ) -> None:
        # Vias priced at a quarter of BonnRoute's default: the search
        # hops layers freely, creating ISR's higher via counts.
        costs = SearchCosts(jog_factor=2, via_cost=40)
        super().__init__(
            space,
            corridors=corridors,
            corridor_detours=corridor_detours,
            costs=costs,
            threads=threads,
            max_retry_rounds=max_retry_rounds,
            use_interval_search=False,  # node labelling only
            enable_pin_access=False,  # greedy dynamic access only
        )
        self.track_assignment = track_assignment
        # Greedy pin access: normal catalogue breadth, but no reserved
        # conflict-free solution (paths are chosen first-fit at use time).
        self.planner = PinAccessPlanner(space)
        self.connector = NetConnector(
            space,
            costs=costs,
            access_paths={},
            planner=self.planner,
            use_interval_search=False,
        )

    # ------------------------------------------------------------------
    # Track assignment (the intermediate step BonnRoute does not have)
    # ------------------------------------------------------------------
    def _assign_track_segment(self, net: Net) -> bool:
        """Reserve a straight track segment spanning the net's bounding
        box middle on the lowest feasible layer."""
        box = net.bounding_box()
        stack = self.chip.stack
        graph = self.space.graph
        span = max(box.width, box.height)
        if span < 4 * self.space.chip.stack[stack.bottom].pitch:
            return False
        horizontal = box.width >= box.height
        wanted = Direction.HORIZONTAL if horizontal else Direction.VERTICAL
        cx, cy = box.center
        for z in stack.indices:
            if stack.direction(z) is not wanted:
                continue
            if not self.chip.wire_type(net.wire_type).has_layer(z):
                continue
            vertex = graph.nearest_vertex(cx, cy, z)
            if vertex is None:
                continue
            track_coord = graph.tracks[z][vertex[1]]
            if horizontal:
                stick = StickFigure(z, box.x_lo, track_coord, box.x_hi, track_coord)
            else:
                stick = StickFigure(z, track_coord, box.y_lo, track_coord, box.y_hi)
            check = self.space.check_wire(net.wire_type, stick, net.name)
            if check.legal:
                self.space.add_wire(
                    net.name, net.wire_type, stick, int(RipupLevel.NORMAL)
                )
                return True
        return False

    # ------------------------------------------------------------------
    # Main loop: track assignment first, then the standard queue
    # ------------------------------------------------------------------
    def run(self, nets: Optional[Sequence[Net]] = None) -> DetailedRoutingResult:
        if nets is None:
            nets = self.chip.nets
        if self.track_assignment:
            # Longest nets claim tracks first.
            for net in sorted(nets, key=lambda n: -n.half_perimeter()):
                self._assign_track_segment(net)
        return super().run(nets)
