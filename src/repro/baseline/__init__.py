"""The "industry standard router" (ISR) stand-in.

The paper compares BonnRoute against a commercial router it calls ISR,
described as a negotiation-congestion global router followed by a track
assignment step and gridless completion (Sec. 5.3).  This package
implements that architecture - the documented substitution of DESIGN.md:

* :mod:`repro.baseline.isr_global` - 2D negotiation-based (PathFinder
  style) global routing with history costs, followed by greedy layer
  assignment (the classic contemporary academic/industrial approach the
  paper contrasts with its 3D resource sharing);
* :mod:`repro.baseline.isr_detailed` - track assignment for long
  connections plus node-based maze routing with greedy pin access;
* :mod:`repro.baseline.cleanup` - the local DRC cleanup pass used both
  as the second half of the "BR+ISR" flow and as ISR's own finishing
  step.
"""

from repro.baseline.isr_global import IsrGlobalRouter, IsrGlobalResult
from repro.baseline.isr_detailed import IsrDetailedRouter
from repro.baseline.cleanup import DrcCleanup, CleanupReport

__all__ = [
    "IsrGlobalRouter",
    "IsrGlobalResult",
    "IsrDetailedRouter",
    "DrcCleanup",
    "CleanupReport",
]
