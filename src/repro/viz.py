"""ASCII visualization of routed layers.

Renders one wiring layer of a routed chip as a character grid - enough to
eyeball routes, congestion and pin access in a terminal or a test log
without plotting dependencies.

Legend: ``.`` empty, ``#`` blockage, ``P`` pin, lowercase letters cycle
through nets' wires, ``+`` via landing, ``*`` overlap of several nets
(a diff-net short - should not appear in clean results).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.droute.space import RoutingSpace
from repro.geometry.rect import Rect

_NET_GLYPHS = "abcdefghijklmnopqrstuvwxyz0123456789"


def render_layer(
    space: RoutingSpace,
    layer: int,
    width: int = 100,
    window: Optional[Rect] = None,
) -> str:
    """ASCII rendering of one wiring layer.

    ``width``: number of character columns; the scale follows from the
    window (default: the whole die).  The vertical scale matches the
    horizontal one, so the aspect ratio is roughly preserved in a
    terminal with ~2:1 character cells.
    """
    chip = space.chip
    wiring_layers = chip.stack.indices
    if layer not in wiring_layers:
        raise ValueError(
            f"layer M{layer} is not a wiring layer of {chip.name}; "
            f"valid layers: M{wiring_layers[0]}..M{wiring_layers[-1]}"
        )
    if window is None:
        window = chip.die
    scale = max(1, window.width // max(width, 1))
    cols = max(1, window.width // scale + 1)
    rows = max(1, window.height // (2 * scale) + 1)
    v_scale = 2 * scale
    canvas = [["."] * cols for _ in range(rows)]

    def paint(rect: Rect, glyph: str, overlap=None) -> None:
        rows_ = len(canvas)
        cols_ = len(canvas[0])
        col_lo = max(0, (rect.x_lo - window.x_lo) // scale)
        col_hi = min(cols_ - 1, (rect.x_hi - window.x_lo) // scale)
        row_lo = max(0, (rect.y_lo - window.y_lo) // v_scale)
        row_hi = min(rows_ - 1, (rect.y_hi - window.y_lo) // v_scale)
        for row in range(row_lo, row_hi + 1):
            for col in range(col_lo, col_hi + 1):
                current = canvas[row][col]
                if (
                    overlap is not None
                    and current in _NET_GLYPHS
                    and glyph in _NET_GLYPHS
                    and current != glyph
                ):
                    canvas[row][col] = overlap
                else:
                    canvas[row][col] = glyph

    for obs_layer, rect, _owner in chip.obstruction_shapes():
        if obs_layer == layer:
            paint(rect, "#")
    glyph_of: Dict[str, str] = {}
    for index, net in enumerate(chip.nets):
        glyph_of[net.name] = _NET_GLYPHS[index % len(_NET_GLYPHS)]
    for net in chip.nets:
        for pin_layer, rect in (
            (pl, r) for pin in net.pins for pl, r in pin.shapes
        ):
            if pin_layer == layer:
                paint(rect, "P")
    for net_name, route in space.routes.items():
        glyph = glyph_of.get(net_name, "?")
        for stick, _level, type_name in route.wire_items():
            if stick.layer != layer:
                continue
            wire_type = chip.wire_type(type_name)
            shape, _cls, _kind = wire_type.wire_shape(stick, chip.stack)
            paint(shape, glyph, overlap="*")
        for via, _level, _tn in route.via_items():
            if layer in (via.via_layer, via.via_layer + 1):
                paint(Rect(via.x, via.y, via.x, via.y), "+")
    # Flip vertically: row 0 should be the top of the die.
    lines = ["".join(row) for row in reversed(canvas)]
    header = f"layer M{layer}  window={window.as_tuple()}  1 char = {scale} dbu"
    return "\n".join([header] + lines)


def render_summary(space: RoutingSpace, width: int = 80) -> str:
    """All wiring layers stacked into one report string."""
    parts = []
    for layer in space.chip.stack.indices:
        parts.append(render_layer(space, layer, width=width))
        parts.append("")
    return "\n".join(parts)
