"""Flow metrics: the columns of Table I.

A net is *scenic* (Sec. 5.3) if its routed wiring length is at least
a threshold (100 um in the paper; scaled to our instance sizes) and its
detour over the (near-)minimum Steiner length is at least 25 % or 50 %.
The Steiner baseline is exact for <= 9 terminals and heuristic above,
identical for all compared flows.
"""

from __future__ import annotations

import resource
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chip.design import Chip
from repro.drc.checker import DrcChecker, DrcReport
from repro.droute.space import RoutingSpace
from repro.obs import OBS
from repro.steiner.rsmt import steiner_length

#: Minimum routed length for a net to count as scenic, in dbu.  The paper
#: uses 100 um on mm-sized chips; our chips are ~100x smaller.
SCENIC_LENGTH_THRESHOLD = 2000


def net_route_length(space: RoutingSpace, net_name: str) -> int:
    route = space.routes.get(net_name)
    return route.wire_length if route is not None else 0


def net_detours(space: RoutingSpace) -> List[Tuple[str, int, int]]:
    """Per routed net: ``(name, routed_length, steiner_baseline)``.

    One Steiner evaluation per net, shared by both scenic thresholds and
    the observability histograms.  Nets without wiring or with a
    degenerate (<= 0) baseline are skipped.
    """
    out: List[Tuple[str, int, int]] = []
    for net in space.chip.nets:
        routed = net_route_length(space, net.name)
        if routed <= 0:
            continue
        baseline = steiner_length(net.terminal_points())
        if baseline <= 0:
            continue
        out.append((net.name, routed, baseline))
    return out


def _scenic_from_detours(
    detours: Sequence[Tuple[str, int, int]],
    threshold: float,
    length_threshold: int = SCENIC_LENGTH_THRESHOLD,
) -> List[str]:
    return [
        name
        for name, routed, baseline in detours
        if routed >= length_threshold and routed >= (1.0 + threshold) * baseline
    ]


def scenic_nets(
    space: RoutingSpace,
    threshold: float,
    length_threshold: int = SCENIC_LENGTH_THRESHOLD,
) -> List[str]:
    """Nets with routed length >= length_threshold and detour >= threshold."""
    return _scenic_from_detours(net_detours(space), threshold, length_threshold)


class FlowMetrics:
    """One row of Table I."""

    def __init__(self) -> None:
        self.chip_name = ""
        self.nets = 0
        self.runtime_total = 0.0
        self.runtime_bonnroute = 0.0  # the "BR" sub-column
        self.memory_mb = 0.0
        self.netlength = 0
        self.vias = 0
        self.scenic_25 = 0
        self.scenic_50 = 0
        self.errors = 0
        self.drc_report: Optional[DrcReport] = None
        # Resilience columns (PR 1): structured failure/degradation data
        # from the fault-tolerant runtime.
        self.failed_nets: List[str] = []
        self.failure_reasons: Dict[str, int] = {}
        self.retries = 0
        self.escalations = 0
        self.recovered_nets: Dict[str, str] = {}
        self.degraded_stages: Dict[str, str] = {}
        self.resumed_from: Optional[str] = None
        # Observability section (ISSUE 2): the end-of-run aggregate of
        # the ``repro.obs`` registry (counters / gauges / histograms /
        # span totals) when observability was enabled for the run, so
        # Table I benchmarks can record internal counters alongside the
        # paper columns.  Empty when disabled.
        self.obs: Dict[str, object] = {}
        # ECO section (ISSUE 5): the :meth:`EcoReport.as_dict` payload of
        # an incremental reroute run after the full route (``route
        # --eco``).  Empty when the run was batch-only.
        self.eco: Dict[str, object] = {}

    def as_dict(self) -> Dict[str, object]:
        """All Table I columns (plus resilience and obs sections) as one dict.

        Values are heterogeneous — numbers for the paper columns,
        strings/lists/dicts for chip name, failure and observability
        data — hence ``Dict[str, object]``, not ``Dict[str, float]``.
        """
        out: Dict[str, object] = {
            "chip": self.chip_name,
            "nets": self.nets,
            "time_total_s": round(self.runtime_total, 2),
            "time_br_s": round(self.runtime_bonnroute, 2),
            "memory_mb": round(self.memory_mb, 1),
            "netlength": self.netlength,
            "vias": self.vias,
            "scenic_25": self.scenic_25,
            "scenic_50": self.scenic_50,
            "errors": self.errors,
            "failed_nets": list(self.failed_nets),
            "failure_reasons": dict(self.failure_reasons),
            "retries": self.retries,
            "escalations": self.escalations,
            "recovered_nets": dict(self.recovered_nets),
            "degraded_stages": dict(self.degraded_stages),
            "resumed_from": self.resumed_from,
        }
        if self.obs:
            out["obs"] = self.obs
        if self.eco:
            out["eco"] = self.eco
        return out


def peak_memory_mb() -> float:
    """Peak RSS of the process in MiB (the Table I memory column)."""
    usage = resource.getrusage(resource.RUSAGE_SELF)
    return usage.ru_maxrss / 1024.0


def collect_metrics(
    space: RoutingSpace,
    runtime_total: float,
    runtime_bonnroute: float = 0.0,
    drc_report: Optional[DrcReport] = None,
    failure_report=None,
) -> FlowMetrics:
    metrics = FlowMetrics()
    metrics.chip_name = space.chip.name
    metrics.nets = len(space.chip.nets)
    metrics.runtime_total = runtime_total
    metrics.runtime_bonnroute = runtime_bonnroute
    metrics.memory_mb = peak_memory_mb()
    metrics.netlength = space.total_wire_length()
    metrics.vias = space.total_via_count()
    detours = net_detours(space)
    metrics.scenic_25 = len(_scenic_from_detours(detours, 0.25))
    metrics.scenic_50 = len(_scenic_from_detours(detours, 0.50))
    if OBS.enabled:
        # Per-net distributions for the HTML report (``--report-out``):
        # routed length in dbu and detour ratio over the Steiner baseline.
        for _name, routed, baseline in detours:
            OBS.observe("flow.net_length_dbu", routed)
            OBS.observe("flow.net_detour_ratio", routed / baseline)
    if drc_report is None:
        drc_report = DrcChecker(space).run()
    metrics.drc_report = drc_report
    metrics.errors = drc_report.error_count
    if failure_report is not None:
        metrics.failed_nets = sorted(failure_report.net_failures)
        metrics.failure_reasons = failure_report.reasons_histogram()
        metrics.retries = failure_report.retries
        metrics.escalations = failure_report.escalations
        metrics.recovered_nets = dict(failure_report.recovered_nets)
        metrics.degraded_stages = dict(failure_report.degraded_stages)
        metrics.resumed_from = failure_report.resumed_from
    return metrics
