"""The plain "ISR" flow of Table I.

Negotiation-based 2D global routing with layer assignment, track
assignment plus node-based maze detailed routing with greedy pin access,
and the same local DRC cleanup finisher as the BR+ISR flow.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.baseline.cleanup import DrcCleanup
from repro.baseline.isr_detailed import IsrDetailedRouter
from repro.baseline.isr_global import IsrGlobalRouter
from repro.chip.design import Chip
from repro.droute.area import RoutingArea
from repro.droute.space import RoutingSpace
from repro.flow.bonnroute import FlowResult
from repro.flow.stats import collect_metrics
from repro.obs import OBS


class IsrFlow:
    """The industry-standard-router stand-in flow."""

    def __init__(
        self,
        chip: Chip,
        threads: int = 4,
        cleanup: bool = True,
        corridor_margin_tiles: int = 2,
    ) -> None:
        self.chip = chip
        self.threads = threads
        self.cleanup = cleanup
        self.corridor_margin_tiles = corridor_margin_tiles

    def run(self) -> FlowResult:
        """Run the baseline flow (same span/obs shape as BonnRouteFlow)."""
        with OBS.trace(
            "flow.run", chip=self.chip.name, nets=len(self.chip.nets),
            flow="isr",
        ):
            result = self._run_impl()
        if OBS.enabled and result.metrics is not None:
            result.metrics.obs = OBS.summary()
        return result

    def _run_impl(self) -> FlowResult:
        from repro.engine.session import RoutingSession

        start = time.time()
        result = FlowResult(self.chip)
        # Light session integration: the baseline flow shares the engine
        # record model (status/corridor per net) but keeps its own
        # negotiation-based global router; ECO reroutes are BR-only.
        session = RoutingSession(
            self.chip,
            threads=self.threads,
            corridor_margin_tiles=self.corridor_margin_tiles,
        )
        result.session = session
        space = session.space
        result.space = space

        global_router = IsrGlobalRouter(self.chip)
        with OBS.trace("flow.global"):
            global_result = global_router.run()
        result.global_result = global_result

        corridors: Dict[str, RoutingArea] = {}
        graph = global_router.graph
        for name, route in global_result.routes.items():
            boxes = []
            for node in route.nodes():
                tx, ty, z = node
                rect = graph.tile_rect(tx, ty).expanded(
                    self.corridor_margin_tiles * graph.tile_size
                )
                for layer in (z - 1, z, z + 1):
                    if self.chip.stack.has_layer(layer):
                        boxes.append((layer, rect))
            if boxes:
                corridors[name] = RoutingArea.from_boxes(boxes)
        for name in global_result.local_nets:
            net = self.chip.net(name)
            box = net.bounding_box().expanded(2 * graph.tile_size)
            clipped = box.intersection(self.chip.die) or self.chip.die
            corridors[name] = RoutingArea.from_boxes(
                [(z, clipped) for z in self.chip.stack.indices]
            )

        for name, route in global_result.routes.items():
            record = session.record(name)
            record.global_route = route
            record.corridor = corridors.get(name)
        for name in global_result.local_nets:
            record = session.record(name)
            record.is_local = True
            record.corridor = corridors.get(name)

        detailed = IsrDetailedRouter(
            space, corridors=corridors, threads=self.threads
        )
        with OBS.trace("flow.detailed"):
            detailed_result = detailed.run()
        session.ingest_detailed(detailed_result)
        result.detailed_result = detailed_result
        result.runtime_router = time.time() - start

        if self.cleanup:
            cleaner = DrcCleanup(space)
            with OBS.trace("flow.cleanup"):
                result.cleanup_report = cleaner.run()
        result.runtime_total = time.time() - start
        drc = (
            result.cleanup_report.final_report
            if result.cleanup_report is not None
            else None
        )
        result.metrics = collect_metrics(
            space,
            runtime_total=result.runtime_total,
            runtime_bonnroute=0.0,
            drc_report=drc,
        )
        return result
