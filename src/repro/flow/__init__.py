"""End-to-end flows, metrics, and the fault-tolerant runtime (Sec. 5).

* :mod:`repro.flow.stats` - the Table I metrics: netlength, via counts,
  scenic nets (>= 25 % / >= 50 % detour), error counts, memory;
* :mod:`repro.flow.bonnroute` - the "BR+ISR" flow: BonnRoute global +
  detailed routing, then the local DRC cleanup;
* :mod:`repro.flow.isr_flow` - the plain "ISR" flow: negotiation global
  routing, track assignment + maze detailed routing, cleanup;
* :mod:`repro.flow.resilience` - deadlines, retry policies, the
  escalation ladder and structured failure reports;
* :mod:`repro.flow.faults` - deterministic seeded fault injection.

Attributes are resolved lazily (PEP 562): the low-level routers import
:mod:`repro.flow.resilience` at module scope, so this package must not
eagerly import the flow facades (which import the routers back).
"""

from typing import Dict, Tuple

_EXPORTS: Dict[str, Tuple[str, str]] = {
    "FlowMetrics": ("repro.flow.stats", "FlowMetrics"),
    "collect_metrics": ("repro.flow.stats", "collect_metrics"),
    "scenic_nets": ("repro.flow.stats", "scenic_nets"),
    "BonnRouteFlow": ("repro.flow.bonnroute", "BonnRouteFlow"),
    "FlowResult": ("repro.flow.bonnroute", "FlowResult"),
    "IsrFlow": ("repro.flow.isr_flow", "IsrFlow"),
    "Deadline": ("repro.flow.resilience", "Deadline"),
    "DeadlineExceeded": ("repro.flow.resilience", "DeadlineExceeded"),
    "NetRetryPolicy": ("repro.flow.resilience", "NetRetryPolicy"),
    "NetFailure": ("repro.flow.resilience", "NetFailure"),
    "FlowFailureReport": ("repro.flow.resilience", "FlowFailureReport"),
    "escalation_ladder": ("repro.flow.resilience", "escalation_ladder"),
    "FaultPlan": ("repro.flow.faults", "FaultPlan"),
    "FaultSpec": ("repro.flow.faults", "FaultSpec"),
    "FaultInjector": ("repro.flow.faults", "FaultInjector"),
    "InjectedFault": ("repro.flow.faults", "InjectedFault"),
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), attr)
