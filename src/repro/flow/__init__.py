"""End-to-end flows and metrics (Sec. 5).

* :mod:`repro.flow.stats` - the Table I metrics: netlength, via counts,
  scenic nets (>= 25 % / >= 50 % detour), error counts, memory;
* :mod:`repro.flow.bonnroute` - the "BR+ISR" flow: BonnRoute global +
  detailed routing, then the local DRC cleanup;
* :mod:`repro.flow.isr_flow` - the plain "ISR" flow: negotiation global
  routing, track assignment + maze detailed routing, cleanup.
"""

from repro.flow.stats import FlowMetrics, collect_metrics, scenic_nets
from repro.flow.bonnroute import BonnRouteFlow, FlowResult
from repro.flow.isr_flow import IsrFlow

__all__ = [
    "FlowMetrics",
    "collect_metrics",
    "scenic_nets",
    "BonnRouteFlow",
    "FlowResult",
    "IsrFlow",
]
