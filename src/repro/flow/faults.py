"""Deterministic, seeded fault injection for the routing flow.

Every recovery path of the resilience layer must be testable without
waiting for a real failure, so the flow can be run with a
:class:`FaultPlan` that makes chosen subsystems raise or stall on chosen
nets.  Injection sites are checked at the natural isolation boundaries:

* ``steiner_oracle`` — the per-net block oracle of the resource sharing
  solver (:mod:`repro.groute.sharing`);
* ``rounding``      — per-net randomized rounding
  (:mod:`repro.groute.rounding`);
* ``path_search``   — the detailed router's per-net path search
  (:mod:`repro.droute.connect`);
* ``pin_access``    — catalogue construction per pin
  (:mod:`repro.droute.pinaccess`);
* ``worker``        — the parallel detailed-routing worker loop
  (:mod:`repro.droute.pool`); only fires inside pool worker processes
  (:meth:`FaultInjector.enter_worker`), so a plan carrying worker
  faults behaves identically under ``--workers 1``.

Net selection is deterministic: explicit name lists, or a fraction of
nets picked by a seeded stable hash, so the same plan + seed injects the
same faults run after run.  Worker processes inherit the injector by
fork and additionally receive the plan + fire-state explicitly
(:meth:`FaultInjector.state` / :meth:`FaultInjector.merge_child_state`),
so per-net transient budgets stay consistent across process boundaries.
"""

from __future__ import annotations

import os
import time
import zlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Valid injection sites.
FAULT_SITES = (
    "steiner_oracle", "rounding", "path_search", "pin_access", "worker",
)
#: The site checked inside pool worker processes only.
SITE_WORKER = "worker"

KIND_RAISE = "raise"
KIND_STALL = "stall"
#: Simulated hard crash: the worker process exits immediately without
#: cleanup (``os._exit``), as a segfault or OOM kill would.  Only
#: meaningful at the ``worker`` site; ignored outside worker processes.
KIND_KILL = "kill"

#: Exit code of a worker killed by an injected ``kill`` fault, so tests
#: and the pool supervisor can tell injected crashes from genuine ones.
KILLED_EXIT_CODE = 43


class InjectedFault(Exception):
    """Raised by the injector at a chosen site (a simulated crash)."""

    def __init__(self, site: str, net: Optional[str]) -> None:
        super().__init__(f"injected fault at {site} for net {net!r}")
        self.site = site
        self.net = net


def _stable_fraction(seed: int, site: str, name: str) -> float:
    """Deterministic pseudo-uniform value in [0, 1) for (seed, site, name)."""
    digest = zlib.crc32(f"{seed}:{site}:{name}".encode("utf-8"))
    return (digest & 0xFFFFFFFF) / 4294967296.0


class FaultSpec:
    """One injection rule.

    ``nets`` selects explicit net names; ``fraction`` instead selects
    that share of all nets by stable hash.  ``kind`` is ``"raise"`` or
    ``"stall"`` (``stall_s`` busy time).  ``fires_per_net`` bounds how
    often the fault fires per net (default 1: a *transient* fault that a
    retry survives); ``None`` means it fires on every check (a
    *persistent* fault that only a different engine or giving up
    resolves).
    """

    def __init__(
        self,
        site: str,
        nets: Optional[Iterable[str]] = None,
        fraction: Optional[float] = None,
        kind: str = KIND_RAISE,
        stall_s: float = 0.0,
        fires_per_net: Optional[int] = 1,
    ) -> None:
        if site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {site!r}; valid sites: {FAULT_SITES}"
            )
        if kind not in (KIND_RAISE, KIND_STALL, KIND_KILL):
            raise ValueError(f"unknown fault kind {kind!r}")
        if kind == KIND_KILL and site != SITE_WORKER:
            raise ValueError(
                f"kind {KIND_KILL!r} is only valid at site {SITE_WORKER!r} "
                f"(got {site!r}); a kill outside a worker process would "
                "abort the whole run"
            )
        if (nets is None) == (fraction is None):
            raise ValueError("specify exactly one of nets= or fraction=")
        self.site = site
        self.nets = frozenset(nets) if nets is not None else None
        self.fraction = fraction
        self.kind = kind
        self.stall_s = stall_s
        self.fires_per_net = fires_per_net

    def matches(self, seed: int, net: Optional[str]) -> bool:
        if net is None:
            return False
        if self.nets is not None:
            return net in self.nets
        return _stable_fraction(seed, self.site, net) < float(self.fraction)

    def as_dict(self) -> Dict[str, object]:
        return {
            "site": self.site,
            "nets": sorted(self.nets) if self.nets is not None else None,
            "fraction": self.fraction,
            "kind": self.kind,
            "stall_s": self.stall_s,
            "fires_per_net": self.fires_per_net,
        }


class FaultPlan:
    """A seeded collection of :class:`FaultSpec` rules."""

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0) -> None:
        self.specs: List[FaultSpec] = list(specs)
        self.seed = seed

    def add(self, spec: FaultSpec) -> "FaultPlan":
        self.specs.append(spec)
        return self

    @classmethod
    def parse(cls, texts: Sequence[str], seed: int = 0) -> "FaultPlan":
        """Parse CLI specs: ``site:fraction[:kind[:fires[:stall_s]]]``.

        Examples: ``path_search:0.1``, ``steiner_oracle:0.05:raise``,
        ``path_search:0.1:stall:2``, ``worker:0.2:stall:1:30``.
        ``fires`` of ``inf`` makes the fault persistent; ``stall_s``
        gives stall faults a duration (how long the victim hangs —
        without it a stall only records that it fired).
        """
        plan = cls(seed=seed)
        for text in texts:
            parts = text.split(":")
            if len(parts) < 2:
                raise ValueError(
                    f"bad fault spec {text!r}; expected "
                    "site:fraction[:kind[:fires[:stall_s]]]"
                )
            site = parts[0]
            fraction = float(parts[1])
            kind = parts[2] if len(parts) > 2 else KIND_RAISE
            fires: Optional[int] = 1
            if len(parts) > 3:
                fires = None if parts[3] == "inf" else int(parts[3])
            stall_s = float(parts[4]) if len(parts) > 4 else 0.0
            plan.add(
                FaultSpec(
                    site,
                    fraction=fraction,
                    kind=kind,
                    fires_per_net=fires,
                    stall_s=stall_s,
                )
            )
        return plan

    def injected_nets(self, site: str, net_names: Iterable[str]) -> List[str]:
        """Which of ``net_names`` this plan will fault at ``site``."""
        return [
            name
            for name in net_names
            if any(
                spec.site == site and spec.matches(self.seed, name)
                for spec in self.specs
            )
        ]

    def as_dict(self) -> Dict[str, object]:
        """JSON/pickle-safe form, for propagation into worker processes."""
        return {
            "seed": self.seed,
            "specs": [spec.as_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        plan = cls(seed=int(data.get("seed", 0)))
        for record in data.get("specs", ()):
            nets = record.get("nets")
            plan.add(
                FaultSpec(
                    str(record["site"]),
                    nets=nets if nets is not None else None,
                    fraction=record.get("fraction"),
                    kind=str(record.get("kind", KIND_RAISE)),
                    stall_s=float(record.get("stall_s", 0.0)),
                    fires_per_net=record.get("fires_per_net"),
                )
            )
        return plan


class FaultInjector:
    """Stateful executor of a :class:`FaultPlan`.

    One injector is shared by all subsystems of a flow run; it counts
    fires per (spec, net) so transient faults stop firing after their
    budget, and records every fired event for assertions.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._fires: Dict[Tuple[int, str], int] = {}
        #: Every fired event as (site, net, kind), in order.
        self.fired: List[Tuple[str, Optional[str], str]] = []
        #: Set inside pool worker processes (:meth:`enter_worker`);
        #: ``worker``-site faults only fire when this is true, so the
        #: same plan behaves identically at ``--workers 1``.
        self.in_worker = False

    def enter_worker(self) -> None:
        """Arm ``worker``-site faults: we now run inside a pool worker."""
        self.in_worker = True

    def check(self, site: str, net: Optional[str] = None) -> None:
        """Fire any matching fault: raise :class:`InjectedFault`, stall,
        or (``worker`` site, ``kill`` kind) exit the process."""
        if site == SITE_WORKER and not self.in_worker:
            return
        for index, spec in enumerate(self.plan.specs):
            if spec.site != site or not spec.matches(self.plan.seed, net):
                continue
            key = (index, net or "")
            count = self._fires.get(key, 0)
            if spec.fires_per_net is not None and count >= spec.fires_per_net:
                continue
            self._fires[key] = count + 1
            self.fired.append((site, net, spec.kind))
            if spec.kind == KIND_STALL:
                if spec.stall_s > 0.0:
                    time.sleep(spec.stall_s)
                continue
            if spec.kind == KIND_KILL:
                # A simulated hard crash: no exception, no cleanup, no
                # result message — the supervisor must notice the corpse.
                os._exit(KILLED_EXIT_CODE)
            raise InjectedFault(site, net)

    def fire_count(self, site: Optional[str] = None) -> int:
        if site is None:
            return len(self.fired)
        return sum(1 for fired_site, _net, _kind in self.fired if fired_site == site)

    # ------------------------------------------------------------------
    # Cross-process propagation (repro.droute.pool)
    # ------------------------------------------------------------------
    def state(self, fired_since: int = 0) -> Dict[str, object]:
        """Picklable snapshot of plan + fire-state.

        ``fired_since`` trims the ``fired`` log to entries appended after
        that index, so a forked worker (which inherits the parent's whole
        log) reports only its own deltas back.
        """
        return {
            "plan": self.plan.as_dict(),
            "fires": {
                f"{index}:{net}": count
                for (index, net), count in self._fires.items()
            },
            "fired": [list(entry) for entry in self.fired[fired_since:]],
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "FaultInjector":
        """Rebuild an injector in a process that did not inherit one."""
        injector = cls(FaultPlan.from_dict(state.get("plan") or {}))
        injector.merge_child_state(state)
        return injector

    def merge_child_state(self, state: Dict[str, object]) -> None:
        """Fold a worker's fire-state back into this injector.

        Fire counts merge by max (each net is routed by exactly one
        process, so the larger count is the true one); the child's fired
        deltas append to the log in arrival order.
        """
        for key, count in (state.get("fires") or {}).items():
            index_text, _, net = key.partition(":")
            fires_key = (int(index_text), net)
            if count > self._fires.get(fires_key, 0):
                self._fires[fires_key] = count
        for entry in state.get("fired") or ():
            site, net, kind = entry
            self.fired.append((site, net, kind))

    def charge(self, site: str, net_names: Iterable[str]) -> List[str]:
        """Consume matching transient faults without executing them.

        Called by the pool supervisor when a worker died: the corpse
        cannot report which fault killed it, so the parent charges the
        dead region's nets against the plan.  A transient (bounded
        ``fires_per_net``) fault is thereby spent, and the retry on a
        fresh worker survives — matching the single-process semantics
        where a transient fault fires once and the retry succeeds.
        Returns the net names charged.
        """
        charged: List[str] = []
        for index, spec in enumerate(self.plan.specs):
            if spec.site != site or spec.fires_per_net is None:
                continue
            for net in net_names:
                if not spec.matches(self.plan.seed, net):
                    continue
                key = (index, net)
                count = self._fires.get(key, 0)
                if count >= spec.fires_per_net:
                    continue
                self._fires[key] = count + 1
                self.fired.append((site, net, spec.kind))
                charged.append(net)
        return charged
