"""Deterministic, seeded fault injection for the routing flow.

Every recovery path of the resilience layer must be testable without
waiting for a real failure, so the flow can be run with a
:class:`FaultPlan` that makes chosen subsystems raise or stall on chosen
nets.  Injection sites are checked at the natural isolation boundaries:

* ``steiner_oracle`` — the per-net block oracle of the resource sharing
  solver (:mod:`repro.groute.sharing`);
* ``rounding``      — per-net randomized rounding
  (:mod:`repro.groute.rounding`);
* ``path_search``   — the detailed router's per-net path search
  (:mod:`repro.droute.connect`);
* ``pin_access``    — catalogue construction per pin
  (:mod:`repro.droute.pinaccess`).

Net selection is deterministic: explicit name lists, or a fraction of
nets picked by a seeded stable hash, so the same plan + seed injects the
same faults run after run.
"""

from __future__ import annotations

import time
import zlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Valid injection sites.
FAULT_SITES = ("steiner_oracle", "rounding", "path_search", "pin_access")

KIND_RAISE = "raise"
KIND_STALL = "stall"


class InjectedFault(Exception):
    """Raised by the injector at a chosen site (a simulated crash)."""

    def __init__(self, site: str, net: Optional[str]) -> None:
        super().__init__(f"injected fault at {site} for net {net!r}")
        self.site = site
        self.net = net


def _stable_fraction(seed: int, site: str, name: str) -> float:
    """Deterministic pseudo-uniform value in [0, 1) for (seed, site, name)."""
    digest = zlib.crc32(f"{seed}:{site}:{name}".encode("utf-8"))
    return (digest & 0xFFFFFFFF) / 4294967296.0


class FaultSpec:
    """One injection rule.

    ``nets`` selects explicit net names; ``fraction`` instead selects
    that share of all nets by stable hash.  ``kind`` is ``"raise"`` or
    ``"stall"`` (``stall_s`` busy time).  ``fires_per_net`` bounds how
    often the fault fires per net (default 1: a *transient* fault that a
    retry survives); ``None`` means it fires on every check (a
    *persistent* fault that only a different engine or giving up
    resolves).
    """

    def __init__(
        self,
        site: str,
        nets: Optional[Iterable[str]] = None,
        fraction: Optional[float] = None,
        kind: str = KIND_RAISE,
        stall_s: float = 0.0,
        fires_per_net: Optional[int] = 1,
    ) -> None:
        if site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {site!r}; valid sites: {FAULT_SITES}"
            )
        if kind not in (KIND_RAISE, KIND_STALL):
            raise ValueError(f"unknown fault kind {kind!r}")
        if (nets is None) == (fraction is None):
            raise ValueError("specify exactly one of nets= or fraction=")
        self.site = site
        self.nets = frozenset(nets) if nets is not None else None
        self.fraction = fraction
        self.kind = kind
        self.stall_s = stall_s
        self.fires_per_net = fires_per_net

    def matches(self, seed: int, net: Optional[str]) -> bool:
        if net is None:
            return False
        if self.nets is not None:
            return net in self.nets
        return _stable_fraction(seed, self.site, net) < float(self.fraction)

    def as_dict(self) -> Dict[str, object]:
        return {
            "site": self.site,
            "nets": sorted(self.nets) if self.nets is not None else None,
            "fraction": self.fraction,
            "kind": self.kind,
            "stall_s": self.stall_s,
            "fires_per_net": self.fires_per_net,
        }


class FaultPlan:
    """A seeded collection of :class:`FaultSpec` rules."""

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0) -> None:
        self.specs: List[FaultSpec] = list(specs)
        self.seed = seed

    def add(self, spec: FaultSpec) -> "FaultPlan":
        self.specs.append(spec)
        return self

    @classmethod
    def parse(cls, texts: Sequence[str], seed: int = 0) -> "FaultPlan":
        """Parse CLI specs of the form ``site:fraction[:kind[:fires]]``.

        Examples: ``path_search:0.1``, ``steiner_oracle:0.05:raise``,
        ``path_search:0.1:stall:2``.  ``fires`` of ``inf`` makes the
        fault persistent.
        """
        plan = cls(seed=seed)
        for text in texts:
            parts = text.split(":")
            if len(parts) < 2:
                raise ValueError(
                    f"bad fault spec {text!r}; expected site:fraction[:kind[:fires]]"
                )
            site = parts[0]
            fraction = float(parts[1])
            kind = parts[2] if len(parts) > 2 else KIND_RAISE
            fires: Optional[int] = 1
            if len(parts) > 3:
                fires = None if parts[3] == "inf" else int(parts[3])
            plan.add(
                FaultSpec(site, fraction=fraction, kind=kind, fires_per_net=fires)
            )
        return plan

    def injected_nets(self, site: str, net_names: Iterable[str]) -> List[str]:
        """Which of ``net_names`` this plan will fault at ``site``."""
        return [
            name
            for name in net_names
            if any(
                spec.site == site and spec.matches(self.seed, name)
                for spec in self.specs
            )
        ]


class FaultInjector:
    """Stateful executor of a :class:`FaultPlan`.

    One injector is shared by all subsystems of a flow run; it counts
    fires per (spec, net) so transient faults stop firing after their
    budget, and records every fired event for assertions.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._fires: Dict[Tuple[int, str], int] = {}
        #: Every fired event as (site, net, kind), in order.
        self.fired: List[Tuple[str, Optional[str], str]] = []

    def check(self, site: str, net: Optional[str] = None) -> None:
        """Fire any matching fault: raise :class:`InjectedFault` or stall."""
        for index, spec in enumerate(self.plan.specs):
            if spec.site != site or not spec.matches(self.plan.seed, net):
                continue
            key = (index, net or "")
            count = self._fires.get(key, 0)
            if spec.fires_per_net is not None and count >= spec.fires_per_net:
                continue
            self._fires[key] = count + 1
            self.fired.append((site, net, spec.kind))
            if spec.kind == KIND_STALL:
                if spec.stall_s > 0.0:
                    time.sleep(spec.stall_s)
                continue
            raise InjectedFault(site, net)

    def fire_count(self, site: Optional[str] = None) -> int:
        if site is None:
            return len(self.fired)
        return sum(1 for fired_site, _net, _kind in self.fired if fired_site == site)
