"""The BonnRoute ("BR+ISR") flow (Sec. 5.2 / 5.3).

1. Track plan + routing space construction.
2. Prerouting of single-tile nets by the detailed router in a slightly
   enlarged tile area (Sec. 2.5), *before* capacity estimation, so their
   wiring is accounted for as blocked track capacity.
3. Global routing: min-max resource sharing, rounding, R&R.
4. Detailed routing restricted to the global corridors, critical nets
   first.
5. External-style local DRC cleanup.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.baseline.cleanup import CleanupReport, DrcCleanup
from repro.chip.design import Chip
from repro.chip.net import Net
from repro.droute.area import RoutingArea
from repro.droute.router import DetailedRouter, DetailedRoutingResult
from repro.droute.space import RoutingSpace
from repro.flow.stats import FlowMetrics, collect_metrics
from repro.grid.tracks import build_track_plan
from repro.groute.router import GlobalRouter, GlobalRoutingResult


class FlowResult:
    """All artefacts of one flow run."""

    def __init__(self, chip: Chip) -> None:
        self.chip = chip
        self.space: Optional[RoutingSpace] = None
        self.global_result: Optional[GlobalRoutingResult] = None
        self.detailed_result: Optional[DetailedRoutingResult] = None
        self.cleanup_report: Optional[CleanupReport] = None
        self.metrics: Optional[FlowMetrics] = None
        self.runtime_total = 0.0
        self.runtime_router = 0.0  # routing without cleanup ("BR" column)


class BonnRouteFlow:
    """BonnRoute global + detailed routing followed by DRC cleanup."""

    def __init__(
        self,
        chip: Chip,
        gr_phases: int = 30,
        gr_tile_size: Optional[int] = None,
        threads: int = 4,
        seed: Optional[int] = None,
        cleanup: bool = True,
        corridor_margin_tiles: int = 1,
        preroute_local_nets: bool = True,
    ) -> None:
        self.chip = chip
        self.gr_phases = gr_phases
        self.gr_tile_size = gr_tile_size
        self.threads = threads
        self.seed = seed
        self.cleanup = cleanup
        self.corridor_margin_tiles = corridor_margin_tiles
        self.preroute_local_nets = preroute_local_nets

    def run(self) -> FlowResult:
        start = time.time()
        result = FlowResult(self.chip)
        plan = build_track_plan(self.chip)
        space = RoutingSpace(self.chip, track_plan=plan)
        result.space = space

        # Prerouting of single-tile nets (Sec. 2.5): route them inside a
        # slightly enlarged tile area before capacity estimation, then
        # feed their wiring to the estimator as extra obstacles.
        prerouted: set = set()
        extra_obstacles = []
        if self.preroute_local_nets:
            from repro.groute.graph import GlobalRoutingGraph

            probe = GlobalRoutingGraph(self.chip, self.gr_tile_size)
            local_nets = [
                net for net in self.chip.nets if probe.is_local_net(net)
            ]
            if local_nets:
                corridors = {}
                for net in local_nets:
                    box = net.bounding_box().expanded(2 * probe.tile_size)
                    clipped = box.intersection(self.chip.die) or self.chip.die
                    corridors[net.name] = RoutingArea.from_boxes(
                        [(z, clipped) for z in self.chip.stack.indices]
                    )
                pre_router = DetailedRouter(
                    space, corridors=corridors, threads=self.threads
                )
                pre_result = pre_router.run(local_nets)
                prerouted = set(pre_result.routed)
                for name in prerouted:
                    route = space.routes.get(name)
                    if route is None:
                        continue
                    for stick, _lvl, type_name in route.wire_items():
                        wire_type = self.chip.wire_type(type_name)
                        shape, _c, _k = wire_type.wire_shape(
                            stick, self.chip.stack
                        )
                        extra_obstacles.append((stick.layer, shape))

        # Global routing (local nets are filtered inside).
        global_router = GlobalRouter(
            self.chip,
            tile_size=self.gr_tile_size,
            phases=self.gr_phases,
            seed=self.seed,
            track_plan=plan,
            extra_obstacles=extra_obstacles or None,
        )
        global_result = global_router.run()
        result.global_result = global_result

        # Corridors; local nets route inside their (enlarged) tile.
        corridors: Dict[str, RoutingArea] = global_result.corridors(
            self.corridor_margin_tiles
        )
        detours: Dict[str, float] = {}
        for name in global_result.routes:
            detours[name] = global_result.corridor_detour(name)
        for name in global_result.local_nets:
            net = self.chip.net(name)
            box = net.bounding_box().expanded(2 * global_router.graph.tile_size)
            clipped = box.intersection(self.chip.die) or self.chip.die
            corridors[name] = RoutingArea.from_boxes(
                [(z, clipped) for z in self.chip.stack.indices]
            )

        remaining = [
            net for net in self.chip.nets if net.name not in prerouted
        ]
        detailed = DetailedRouter(
            space,
            corridors=corridors,
            corridor_detours=detours,
            threads=self.threads,
        )
        detailed_result = detailed.run(remaining)
        # Fold the prerouted nets into the reported coverage.
        detailed_result.routed |= prerouted
        detailed_result.wire_length = space.total_wire_length()
        detailed_result.via_count = space.total_via_count()
        result.detailed_result = detailed_result
        result.runtime_router = time.time() - start

        if self.cleanup:
            cleaner = DrcCleanup(space)
            result.cleanup_report = cleaner.run()
        result.runtime_total = time.time() - start
        drc = (
            result.cleanup_report.final_report
            if result.cleanup_report is not None
            else None
        )
        result.metrics = collect_metrics(
            space,
            runtime_total=result.runtime_total,
            runtime_bonnroute=result.runtime_router,
            drc_report=drc,
        )
        return result
