"""The BonnRoute ("BR+ISR") flow (Sec. 5.2 / 5.3).

1. Track plan + routing space construction.
2. Prerouting of single-tile nets by the detailed router in a slightly
   enlarged tile area (Sec. 2.5), *before* capacity estimation, so their
   wiring is accounted for as blocked track capacity.
3. Global routing: min-max resource sharing, rounding, R&R.
4. Detailed routing restricted to the global corridors, critical nets
   first.
5. External-style local DRC cleanup.

The flow is fault tolerant (PR 1): each stage runs behind an isolation
boundary, per-net failures surface as structured
:class:`~repro.flow.resilience.NetFailure` records instead of
exceptions, stage progress is checkpointed to disk so a killed run
resumes, and a seeded :class:`~repro.flow.faults.FaultInjector` can be
attached to exercise all of it deterministically.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.baseline.cleanup import CleanupReport, DrcCleanup
from repro.chip.design import Chip
from repro.chip.net import Net
from repro.droute.route import NetRoute
from repro.droute.router import DetailedRouter, DetailedRoutingResult
from repro.droute.space import RoutingSpace
from repro.flow.faults import FaultInjector, FaultPlan
from repro.flow.resilience import (
    Deadline,
    FlowFailureReport,
    NetFailure,
)
from repro.flow.stats import FlowMetrics, collect_metrics
from repro.groute.graph import GlobalRoutingGraph
from repro.groute.router import GlobalRouter, GlobalRoutingResult
from repro.obs import OBS
from repro.obs.resource import ResourceSampler
from repro.io.checkpoint import (
    STAGE_DETAILED,
    STAGE_GLOBAL,
    build_checkpoint,
    checkpoint_routes,
    global_routes_from_data,
    load_checkpoint,
    save_checkpoint,
    stage_reached,
)


class FlowResult:
    """All artefacts of one flow run."""

    def __init__(self, chip: Chip) -> None:
        self.chip = chip
        #: The engine session that owns the routing state; survives the
        #: flow and accepts ECO changes afterwards.
        self.session = None
        self.space: Optional[RoutingSpace] = None
        self.global_result: Optional[GlobalRoutingResult] = None
        self.detailed_result: Optional[DetailedRoutingResult] = None
        self.cleanup_report: Optional[CleanupReport] = None
        self.metrics: Optional[FlowMetrics] = None
        self.failure_report: FlowFailureReport = FlowFailureReport()
        self.runtime_total = 0.0
        self.runtime_router = 0.0  # routing without cleanup ("BR" column)


class BonnRouteFlow:
    """BonnRoute global + detailed routing followed by DRC cleanup."""

    def __init__(
        self,
        chip: Chip,
        gr_phases: int = 30,
        gr_tile_size: Optional[int] = None,
        threads: int = 4,
        seed: Optional[int] = None,
        cleanup: bool = True,
        corridor_margin_tiles: int = 1,
        preroute_local_nets: bool = True,
        fault_plan: Optional[FaultPlan] = None,
        net_timeout_s: Optional[float] = None,
        stage_budget_s: Optional[float] = None,
        checkpoint_path: Optional[str] = None,
        resume: bool = False,
        session=None,
        workers: int = 1,
        region_timeout_s: Optional[float] = None,
        search_kernel=None,
        shard_store=None,
    ) -> None:
        self.chip = chip
        #: Optional shard store backing ``chip`` (see repro.io.shards);
        #: forwarded to the session so partition rounds can prefetch the
        #: shards each region needs.
        self.shard_store = shard_store
        #: The engine session this flow writes into.  Created lazily in
        #: :meth:`_run_impl` when none is given; pass one to route into
        #: existing session state (e.g. from
        #: :meth:`repro.engine.session.RoutingSession.route`).
        self.session = session
        self.gr_phases = gr_phases
        self.gr_tile_size = gr_tile_size
        self.threads = threads
        self.seed = seed
        self.cleanup = cleanup
        self.corridor_margin_tiles = corridor_margin_tiles
        self.preroute_local_nets = preroute_local_nets
        self.fault_injector = (
            FaultInjector(fault_plan) if fault_plan is not None else None
        )
        self.net_timeout_s = net_timeout_s
        self.stage_budget_s = stage_budget_s
        self.checkpoint_path = checkpoint_path
        self.resume = resume
        #: Worker processes for the main detailed stage (Sec. 5.1);
        #: 1 keeps the single-process path.  ``threads`` still defines
        #: the partition structure, so results are worker-count
        #: independent.
        self.workers = max(1, int(workers))
        self.region_timeout_s = region_timeout_s
        #: Path-search kernel name/instance (``heap``/``bucket``; see
        #: droute/pathsearch.py) used by every detailed-routing stage.
        self.search_kernel = search_kernel

    # ------------------------------------------------------------------
    # Checkpoint helpers
    # ------------------------------------------------------------------
    def _load_resume_checkpoint(self) -> Optional[Dict[str, object]]:
        if not self.resume or self.checkpoint_path is None:
            return None
        return load_checkpoint(
            self.checkpoint_path, chip_name=self.chip.name, seed=self.seed
        )

    def _replay_routes(
        self, space: RoutingSpace, checkpoint: Dict[str, object]
    ) -> None:
        """Re-commit the checkpointed wiring into a fresh routing space.

        ``off_track=True`` marks every touched fast-grid region dirty, so
        usability is re-derived from the shape grid on first use — the
        replayed space behaves identically to the one the original run
        had in memory.
        """
        for route in checkpoint_routes(checkpoint).values():
            for stick, level, type_name in route.wire_items():
                space.add_wire(
                    route.net_name, type_name, stick, level, off_track=True
                )
            for via, level, type_name in route.via_items():
                space.add_via(
                    route.net_name, type_name, via, level, off_track=True
                )

    def _save_checkpoint(
        self,
        stage: str,
        space: RoutingSpace,
        tile_size: int,
        global_routes,
        local_nets: Sequence[str],
        prerouted: Sequence[str],
        detailed: Optional[Dict[str, object]] = None,
        detailed_partial: Optional[Dict[str, object]] = None,
        wiring: Optional[Dict[str, NetRoute]] = None,
    ) -> None:
        """``wiring`` overrides the dumped routes (default: all of
        ``space.routes``); round-granular checkpoints use it to drop
        unresolved nets' reserved access paths, which the resumed run
        re-plans itself."""
        if self.checkpoint_path is None:
            return
        checkpoint = build_checkpoint(
            stage,
            self.chip.name,
            self.seed,
            tile_size,
            space.routes if wiring is None else wiring,
            global_routes,
            sorted(local_nets),
            sorted(prerouted),
            detailed=detailed,
            session=(
                self.session.session_state()
                if self.session is not None
                else None
            ),
            detailed_partial=detailed_partial,
        )
        save_checkpoint(self.checkpoint_path, checkpoint)

    @staticmethod
    def _detailed_summary_data(
        detailed_result: DetailedRoutingResult,
    ) -> Dict[str, object]:
        return {
            "routed": sorted(detailed_result.routed),
            "failed": sorted(detailed_result.failed),
            "open_connections": detailed_result.open_connections,
            "retries": detailed_result.retries,
            "escalations": detailed_result.escalations,
            "recovered": dict(detailed_result.recovered),
            "failures": [
                failure.as_dict()
                for failure in detailed_result.failures.values()
            ],
        }

    @staticmethod
    def _fold_partial(
        into: DetailedRoutingResult, partial: DetailedRoutingResult
    ) -> None:
        """Fold a resumed mid-detailed partial result into ``into``.

        The partial's nets were excluded from the resumed run, so the
        current run's records always win on overlap (a net can only
        overlap when the partial had it failed and a later phase pulled
        it back in).
        """
        into.routed |= partial.routed
        into.failed |= partial.failed - into.routed
        for name, failure in partial.failures.items():
            if name not in into.routed:
                into.failures.setdefault(name, failure)
        into.open_connections += partial.open_connections
        into.retries += partial.retries
        into.escalations += partial.escalations
        for name, rung in partial.recovered.items():
            into.recovered.setdefault(name, rung)

    def _detailed_result_from_data(
        self, data: Dict[str, object]
    ) -> DetailedRoutingResult:
        result = DetailedRoutingResult(self.chip)
        result.routed = set(data.get("routed", ()))
        result.failed = set(data.get("failed", ()))
        result.open_connections = int(data.get("open_connections", 0))
        result.retries = int(data.get("retries", 0))
        result.escalations = int(data.get("escalations", 0))
        result.recovered = dict(data.get("recovered", {}))
        for record in data.get("failures", ()):
            failure = NetFailure.from_dict(record)
            result.failures[failure.net_name] = failure
        return result

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------
    def _preroute(
        self, space: RoutingSpace, report: FlowFailureReport
    ) -> Tuple[Set[str], List]:
        """Preroute single-tile nets (Sec. 2.5); returns (names, obstacles)."""
        prerouted: Set[str] = set()
        extra_obstacles: List = []
        if not self.preroute_local_nets:
            return prerouted, extra_obstacles
        session = self.session
        probe = session.graph
        local_nets = [net for net in self.chip.nets if probe.is_local_net(net)]
        if not local_nets:
            return prerouted, extra_obstacles
        corridors = {
            net.name: session.local_corridor(net) for net in local_nets
        }
        pre_router = DetailedRouter(
            space,
            corridors=corridors,
            threads=self.threads,
            fault_injector=self.fault_injector,
            net_deadline_s=self.net_timeout_s,
            search_kernel=self.search_kernel,
        )
        pre_result = pre_router.run(local_nets)
        # Unrouted local nets re-enter the main detailed stage, so only
        # retries/escalations/recoveries are folded in here.
        report.absorb_detailed(pre_result, include_failures=False)
        prerouted = set(pre_result.routed)
        session.set_prerouted(sorted(prerouted))
        for name in prerouted:
            route = space.routes.get(name)
            if route is None:
                continue
            for stick, _lvl, type_name in route.wire_items():
                wire_type = self.chip.wire_type(type_name)
                shape, _c, _k = wire_type.wire_shape(stick, self.chip.stack)
                extra_obstacles.append((stick.layer, shape))
        return prerouted, extra_obstacles

    def _run_global(
        self,
        plan,
        extra_obstacles: List,
        report: FlowFailureReport,
    ) -> GlobalRoutingResult:
        """Global routing behind a stage isolation boundary.

        A fault that escapes the per-net isolation inside the solver
        degrades the stage: detailed routing proceeds without corridors
        (every net may route anywhere), which is slower but correct.
        """
        deadline = (
            Deadline(self.stage_budget_s)
            if self.stage_budget_s is not None
            else None
        )
        try:
            global_router = GlobalRouter(
                self.chip,
                tile_size=self.gr_tile_size,
                phases=self.gr_phases,
                seed=self.seed,
                track_plan=plan,
                extra_obstacles=extra_obstacles or None,
                fault_injector=self.fault_injector,
                session=self.session,
            )
            global_result = global_router.run(deadline=deadline)
        except Exception as error:  # noqa: BLE001 - stage isolation
            report.degraded_stages[STAGE_GLOBAL] = (
                f"global routing failed ({type(error).__name__}: {error}); "
                "detailed routing runs without corridors"
            )
            if OBS.enabled:
                OBS.event(
                    "resilience.stage_degraded",
                    stage=STAGE_GLOBAL,
                    error=f"{type(error).__name__}: {error}",
                )
            graph = GlobalRoutingGraph(self.chip, self.gr_tile_size)
            fallback = GlobalRoutingResult(self.chip, graph)
            for net in self.chip.nets:
                if graph.is_local_net(net):
                    fallback.local_nets.add(net.name)
            self.session.ingest_global(fallback)
            return fallback
        fractional = global_result.fractional
        if fractional is not None:
            report.global_faults += fractional.oracle_faults
            if fractional.deadline_hit:
                report.degraded_stages[STAGE_GLOBAL] = (
                    f"stage budget cut resource sharing short after "
                    f"{fractional.phases_run} phases"
                )
        if global_result.rounding_stats is not None:
            report.global_faults += global_result.rounding_stats.rounding_faults
        return global_result

    def _detailed_router(self, space: RoutingSpace, session) -> DetailedRouter:
        """Build the main-stage detailed router (overridable test seam;
        runs between the global-stage checkpoint and detailed routing)."""
        return DetailedRouter(
            space,
            threads=self.threads,
            fault_injector=self.fault_injector,
            net_deadline_s=self.net_timeout_s,
            stage_budget_s=self.stage_budget_s,
            session=session,
            workers=self.workers,
            region_timeout_s=self.region_timeout_s,
            search_kernel=self.search_kernel,
        )

    # ------------------------------------------------------------------
    # Main entry
    # ------------------------------------------------------------------
    def run(self) -> FlowResult:
        """Run the full flow; see :meth:`_run_impl` for the stages.

        The wrapper exists so the ``flow.run`` span covers the whole run
        and its total still lands in ``result.metrics.obs``.  An
        unhandled exception escaping the flow carries the flight
        recorder's last moments on its ``flight_recorder`` attribute for
        post-mortems.
        """
        try:
            with OBS.trace(
                "flow.run", chip=self.chip.name, nets=len(self.chip.nets)
            ):
                result = self._run_impl()
        except BaseException as error:
            OBS.flight_note(
                "flow.exception", error=f"{type(error).__name__}: {error}"
            )
            try:
                error.flight_recorder = OBS.flight.dump()
            except Exception:  # noqa: BLE001 - attribute-hostile exceptions
                pass
            raise
        if OBS.enabled and result.metrics is not None:
            result.metrics.obs = OBS.summary()
        return result

    def _run_impl(self) -> FlowResult:
        start = time.time()
        sampler = ResourceSampler()
        result = FlowResult(self.chip)
        report = result.failure_report
        if self.session is None:
            from repro.engine.session import RoutingSession

            self.session = RoutingSession(
                self.chip,
                gr_phases=self.gr_phases,
                gr_tile_size=self.gr_tile_size,
                threads=self.threads,
                seed=self.seed,
                corridor_margin_tiles=self.corridor_margin_tiles,
                workers=self.workers,
                region_timeout_s=self.region_timeout_s,
                search_kernel=self.search_kernel,
                shard_store=self.shard_store,
            )
        session = self.session
        result.session = session
        plan = session.plan
        space = session.space
        result.space = space

        checkpoint = self._load_resume_checkpoint()
        detailed_result: Optional[DetailedRoutingResult] = None
        if checkpoint is not None:
            # Resume: re-commit the checkpointed wiring and rebuild the
            # global routing state instead of recomputing it.
            report.resumed_from = str(checkpoint.get("stage"))
            self._replay_routes(space, checkpoint)
            tile_size = int(checkpoint["tile_size"])
            graph = GlobalRoutingGraph(self.chip, tile_size)
            global_data = checkpoint.get("global", {})
            global_result = GlobalRoutingResult(self.chip, graph)
            global_result.routes = global_routes_from_data(
                global_data.get("routes", {})
            )
            global_result.local_nets = set(global_data.get("local_nets", ()))
            prerouted = set(global_data.get("prerouted", ()))
            result.global_result = global_result
            # Rebuild the session's corridors/records from the restored
            # global result, then overlay the checkpointed scalar state
            # (statuses, prerouted flags, dirty set).
            session.ingest_global(global_result)
            session.restore_state(checkpoint.get("session") or {})
            session.set_prerouted(sorted(prerouted))
            if stage_reached(checkpoint, STAGE_DETAILED):
                detailed_result = self._detailed_result_from_data(
                    checkpoint.get("detailed") or {}
                )
        else:
            OBS.flight_note("flow.stage", stage="preroute")
            with OBS.trace("flow.preroute"):
                prerouted, extra_obstacles = self._preroute(space, report)
            if OBS.enabled:
                sampler.sample()
            OBS.flight_note("flow.stage", stage="global")
            with OBS.trace("flow.global"):
                global_result = self._run_global(plan, extra_obstacles, report)
            if OBS.enabled:
                sampler.sample()
            result.global_result = global_result
            self._save_checkpoint(
                STAGE_GLOBAL,
                space,
                global_result.graph.tile_size,
                global_result.routes,
                global_result.local_nets,
                prerouted,
            )

        if detailed_result is None:
            # A round-granular partial (written by the parallel pool
            # after each partition round) lets the resume skip nets
            # already resolved before the kill; their wiring was
            # re-committed by _replay_routes above.
            partial_result: Optional[DetailedRoutingResult] = None
            if checkpoint is not None and checkpoint.get("detailed_partial"):
                partial_data = checkpoint["detailed_partial"]
                partial_result = self._detailed_result_from_data(
                    partial_data.get("summary") or {}
                )
                report.resumed_from = (
                    f"{STAGE_GLOBAL}+round{int(partial_data.get('rounds_done', 0))}"
                )
            resolved = (
                partial_result.routed | partial_result.failed
                if partial_result is not None
                else set()
            )
            remaining = [
                net
                for net in self.chip.nets
                if net.name not in prerouted and net.name not in resolved
            ]
            detailed = self._detailed_router(space, session)
            if self.checkpoint_path is not None:

                def _round_checkpoint(round_index, running_result):
                    snapshot = self._detailed_result_from_data(
                        self._detailed_summary_data(running_result)
                    )
                    if partial_result is not None:
                        self._fold_partial(snapshot, partial_result)
                    # Unresolved nets only hold reserved pin-access
                    # wiring at this point; the resumed run re-plans and
                    # re-reserves those itself, so dumping them would
                    # duplicate that wiring on replay.
                    unresolved = {
                        net.name for net in self.chip.nets
                    } - snapshot.routed - snapshot.failed - set(prerouted)
                    self._save_checkpoint(
                        STAGE_GLOBAL,
                        space,
                        global_result.graph.tile_size,
                        global_result.routes,
                        global_result.local_nets,
                        prerouted,
                        detailed_partial={
                            "rounds_done": round_index + 1,
                            "summary": self._detailed_summary_data(snapshot),
                        },
                        wiring={
                            name: route
                            for name, route in space.routes.items()
                            if name not in unresolved
                        },
                    )

                detailed.round_checkpoint = _round_checkpoint
            OBS.flight_note("flow.stage", stage="detailed")
            with OBS.trace("flow.detailed", nets=len(remaining)):
                detailed_result = detailed.run(remaining)
            if OBS.enabled:
                sampler.sample()
            if partial_result is not None:
                self._fold_partial(detailed_result, partial_result)
            session.ingest_detailed(detailed_result)
            self._save_checkpoint(
                STAGE_DETAILED,
                space,
                global_result.graph.tile_size,
                global_result.routes,
                global_result.local_nets,
                prerouted,
                detailed=self._detailed_summary_data(detailed_result),
            )
        else:
            session.ingest_detailed(detailed_result)
        # Fold the prerouted nets into the reported coverage.
        detailed_result.routed |= prerouted
        detailed_result.wire_length = space.total_wire_length()
        detailed_result.via_count = space.total_via_count()
        result.detailed_result = detailed_result
        result.runtime_router = time.time() - start

        # Aggregate the failure report.
        report.absorb_detailed(detailed_result)
        if detailed_result.stage_budget_exhausted:
            report.degraded_stages[STAGE_DETAILED] = (
                "stage budget expired with nets still queued"
            )
            if OBS.enabled:
                OBS.event(
                    "resilience.stage_degraded",
                    stage=STAGE_DETAILED,
                    error="stage budget expired with nets still queued",
                )

        if self.cleanup:
            cleaner = DrcCleanup(space, search_kernel=self.search_kernel)
            OBS.flight_note("flow.stage", stage="cleanup")
            with OBS.trace("flow.cleanup"):
                result.cleanup_report = cleaner.run()
            if OBS.enabled:
                sampler.sample()
        result.runtime_total = time.time() - start
        drc = (
            result.cleanup_report.final_report
            if result.cleanup_report is not None
            else None
        )
        if (
            report.net_failures
            or report.degraded_stages
            or report.pool_events
            or report.global_faults
        ):
            # Something went wrong somewhere: preserve the recorder's
            # last moments in the report for post-mortems.
            report.flight_recorder = OBS.flight.dump()
        result.metrics = collect_metrics(
            space,
            runtime_total=result.runtime_total,
            runtime_bonnroute=result.runtime_router,
            drc_report=drc,
            failure_report=report,
        )
        return result
