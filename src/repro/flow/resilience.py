"""Fault-tolerant runtime layer for the routing flow.

Industrial routing flows are long pipelines; one net whose path search
throws, stalls, or returns an infeasible corridor must not abort the
whole chip.  This module provides the building blocks the flow uses to
isolate and degrade instead of crashing:

* :class:`Deadline` — soft per-net deadlines (checked inside the path
  search loop) and hard per-stage wall-clock budgets;
* :class:`NetRetryPolicy` — bounded retries with deterministic seeded
  backoff/jitter (via :func:`repro.util.rng.make_rng`);
* the **escalation ladder** — on failure of a net, retry with
  (a) an expanded corridor margin, (b) off-track access enabled and the
  corridor dropped, (c) the ISR-baseline node search as a fallback
  engine, and finally (d) record the net as an *open* with a structured
  :class:`NetFailure` instead of raising;
* :class:`NetFailure` / :class:`FlowFailureReport` — structured records
  of what failed, why, and what degraded modes were used.

The detailed router (:mod:`repro.droute.router`) executes the ladder;
the flow (:mod:`repro.flow.bonnroute`) aggregates the report and
serializes checkpoints between stages.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.grid.shapegrid import RipupLevel
from repro.obs import OBS
from repro.util.rng import make_rng


class DeadlineExceeded(Exception):
    """A soft deadline or hard stage budget expired."""

    def __init__(self, message: str = "deadline exceeded") -> None:
        super().__init__(message)


class Deadline:
    """Wall-clock budget with an injectable clock (for deterministic tests).

    A ``None`` budget never expires; :meth:`check` raises
    :class:`DeadlineExceeded` once the budget is spent.  Deadlines are
    cheap to poll, so the path search checks one every few heap pops.
    """

    __slots__ = ("budget_s", "_clock", "_start")

    def __init__(
        self,
        budget_s: Optional[float],
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.budget_s = budget_s
        self._clock = clock if clock is not None else time.monotonic
        self._start = self._clock()

    @classmethod
    def never(cls) -> "Deadline":
        return cls(None)

    @property
    def elapsed(self) -> float:
        return self._clock() - self._start

    @property
    def remaining(self) -> Optional[float]:
        if self.budget_s is None:
            return None
        return self.budget_s - self.elapsed

    @property
    def expired(self) -> bool:
        remaining = self.remaining
        return remaining is not None and remaining <= 0.0

    def check(self) -> None:
        if self.expired:
            OBS.flight_note(
                "resilience.deadline_expired",
                budget_s=self.budget_s,
                elapsed_s=self.elapsed,
            )
            if OBS.enabled:
                OBS.count("resilience.deadlines_expired")
                OBS.event(
                    "resilience.deadline_expired",
                    budget_s=self.budget_s,
                    elapsed_s=self.elapsed,
                )
            raise DeadlineExceeded(
                f"deadline of {self.budget_s:.3f}s expired "
                f"({self.elapsed:.3f}s elapsed)"
            )

    @staticmethod
    def soonest(*deadlines: Optional["Deadline"]) -> Optional["Deadline"]:
        """The deadline that will expire first (``None`` entries ignored)."""
        best: Optional[Deadline] = None
        best_remaining: Optional[float] = None
        for deadline in deadlines:
            if deadline is None or deadline.budget_s is None:
                continue
            remaining = deadline.remaining
            if best_remaining is None or remaining < best_remaining:
                best = deadline
                best_remaining = remaining
        return best


class NetRetryPolicy:
    """Bounded retries with deterministic seeded backoff and jitter.

    ``base_delay_s == 0`` (the default) keeps the policy purely logical:
    attempts are still bounded and jitters are still computed (and
    recorded, so tests can assert the schedule), but no wall-clock time
    is spent sleeping.  Delays grow exponentially with the attempt index
    and carry a multiplicative jitter in ``[0.5, 1.5)`` drawn from a
    seeded RNG, so two runs with the same seed sleep identically.
    """

    def __init__(
        self,
        max_attempts: int = 8,
        base_delay_s: float = 0.0,
        max_delay_s: float = 2.0,
        seed: Optional[int] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.max_attempts = max_attempts
        self.base_delay_s = base_delay_s
        self.max_delay_s = max_delay_s
        self._rng = make_rng(seed)
        self._sleep = sleep
        #: Delays actually applied, for reporting/testing.
        self.applied_delays: List[float] = []

    def allows(self, attempt: int) -> bool:
        """May attempt number ``attempt`` (0-based) still run?"""
        return attempt < self.max_attempts

    def delay_for(self, attempt: int) -> float:
        """Deterministic backoff delay before retry number ``attempt``."""
        jitter = 0.5 + self._rng.random()
        delay = self.base_delay_s * (2.0 ** max(attempt - 1, 0)) * jitter
        return min(delay, self.max_delay_s)

    def backoff(self, attempt: int) -> float:
        """Sleep (if configured) before retry ``attempt``; returns the delay."""
        delay = self.delay_for(attempt)
        self.applied_delays.append(delay)
        if OBS.enabled:
            OBS.event("resilience.backoff", attempt=attempt, delay_s=delay)
        if delay > 0.0:
            self._sleep(delay)
        return delay


# ----------------------------------------------------------------------
# Escalation ladder
# ----------------------------------------------------------------------
class EscalationRung:
    """One recovery step for a failing net.

    ``corridor_expansion`` counts corridor-margin expansion steps
    (``None`` drops the corridor entirely); ``ripup_level`` is the
    deepest foreign ripup level searches may cross (-2 forbids ripup);
    ``force_off_track_access`` additionally generates off-track
    (tau-feasible) access paths even for pins that have on-track
    vertices; ``engine`` selects the path search implementation
    ("interval", or "isr" for the node-based baseline search).
    """

    __slots__ = (
        "name",
        "corridor_expansion",
        "ripup_level",
        "force_off_track_access",
        "engine",
    )

    def __init__(
        self,
        name: str,
        corridor_expansion: Optional[int] = 0,
        ripup_level: int = -2,
        force_off_track_access: bool = False,
        engine: str = "interval",
    ) -> None:
        self.name = name
        self.corridor_expansion = corridor_expansion
        self.ripup_level = ripup_level
        self.force_off_track_access = force_off_track_access
        self.engine = engine

    def __repr__(self) -> str:
        return f"EscalationRung({self.name})"


def escalation_ladder(max_retry_rounds: int = 2) -> List[EscalationRung]:
    """The default ladder (Sec. 4.4 retries, then degraded modes).

    Rungs 0..max_retry_rounds replicate the paper's retry discipline:
    growing ripup effort and expanded routing areas, ending with the
    corridor dropped.  Beyond those, rung (b) enables off-track access
    everywhere, and rung (c) falls back to the ISR-baseline node search,
    a separate engine that survives faults in the interval machinery.
    """
    rungs: List[EscalationRung] = [EscalationRung("baseline")]
    for expansion in range(1, max_retry_rounds + 1):
        level = (
            int(RipupLevel.RESERVED)
            if expansion == 1
            else int(RipupLevel.NORMAL)
        )
        rungs.append(
            EscalationRung(
                f"expanded_corridor_{expansion}",
                corridor_expansion=expansion,
                ripup_level=level,
            )
        )
    rungs.append(
        EscalationRung(
            "off_track",
            corridor_expansion=None,
            ripup_level=int(RipupLevel.NORMAL),
            force_off_track_access=True,
        )
    )
    rungs.append(
        EscalationRung(
            "isr_fallback",
            corridor_expansion=None,
            ripup_level=int(RipupLevel.NORMAL),
            force_off_track_access=True,
            engine="isr",
        )
    )
    return rungs


# ----------------------------------------------------------------------
# Structured failures
# ----------------------------------------------------------------------
#: Failure reason vocabulary (the values of ``NetFailure.reason``).
REASON_EXCEPTION = "exception"
REASON_TIMEOUT = "timeout"
REASON_UNROUTABLE = "unroutable"
REASON_STAGE_BUDGET = "stage-budget"
REASON_RETRIES_EXHAUSTED = "retries-exhausted"


class NetFailure:
    """A net recorded as *open* instead of aborting the flow."""

    __slots__ = (
        "net_name",
        "stage",
        "reason",
        "attempts",
        "rungs_tried",
        "error",
        "open_connections",
    )

    def __init__(
        self,
        net_name: str,
        stage: str,
        reason: str,
        attempts: int = 0,
        rungs_tried: Sequence[str] = (),
        error: Optional[str] = None,
        open_connections: int = 0,
    ) -> None:
        self.net_name = net_name
        self.stage = stage
        self.reason = reason
        self.attempts = attempts
        self.rungs_tried = list(rungs_tried)
        self.error = error
        self.open_connections = open_connections

    def as_dict(self) -> Dict[str, object]:
        return {
            "net": self.net_name,
            "stage": self.stage,
            "reason": self.reason,
            "attempts": self.attempts,
            "rungs_tried": list(self.rungs_tried),
            "error": self.error,
            "open_connections": self.open_connections,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "NetFailure":
        return cls(
            str(data["net"]),
            str(data["stage"]),
            str(data["reason"]),
            attempts=int(data.get("attempts", 0)),
            rungs_tried=list(data.get("rungs_tried", ())),
            error=data.get("error"),
            open_connections=int(data.get("open_connections", 0)),
        )

    def __repr__(self) -> str:
        return (
            f"NetFailure({self.net_name}, stage={self.stage}, "
            f"reason={self.reason}, attempts={self.attempts})"
        )


class FlowFailureReport:
    """Aggregated failure/retry/degradation report of one flow run."""

    def __init__(self) -> None:
        #: net name -> NetFailure for every net recorded as open.
        self.net_failures: Dict[str, NetFailure] = {}
        #: stage name -> human-readable degradation description.
        self.degraded_stages: Dict[str, str] = {}
        self.retries = 0
        self.escalations = 0
        #: Nets recovered by a ladder rung beyond the baseline attempt.
        self.recovered_nets: Dict[str, str] = {}
        #: Checkpoint stage this run resumed from, if any.
        self.resumed_from: Optional[str] = None
        #: Oracle / rounding faults absorbed during global routing.
        self.global_faults = 0
        #: Worker-pool incidents (crashes, timeouts, region/pool
        #: degradations) from parallel detailed routing, as plain dicts
        #: with at least a ``kind`` key.
        self.pool_events: List[Dict[str, object]] = []
        #: Flight-recorder dump (most recent spans/events/notes, oldest
        #: first) captured at the end of a run that recorded failures —
        #: the last-moments context for post-mortems.  Empty on clean
        #: runs.
        self.flight_recorder: List[Dict[str, object]] = []

    def record_failure(self, failure: NetFailure) -> None:
        self.net_failures[failure.net_name] = failure

    def record_recovery(self, net_name: str, rung_name: str) -> None:
        self.recovered_nets[net_name] = rung_name
        self.net_failures.pop(net_name, None)

    def absorb_detailed(self, result, include_failures: bool = True) -> None:
        """Fold a detailed-routing result into this report.

        Used by the full flow and by session ECO reroutes; the preroute
        pass sets ``include_failures=False`` because its unrouted nets
        re-enter the main detailed stage rather than ending up open.
        """
        self.retries += result.retries
        self.escalations += result.escalations
        self.pool_events.extend(result.pool_events)
        if result.pool_degraded:
            self.degraded_stages.setdefault(
                "detailed-pool",
                "worker pool degraded to in-process serial execution",
            )
        for name, rung in result.recovered.items():
            self.record_recovery(name, rung)
        if include_failures:
            for failure in result.failures.values():
                self.record_failure(failure)

    def reasons_histogram(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for failure in self.net_failures.values():
            histogram[failure.reason] = histogram.get(failure.reason, 0) + 1
        return histogram

    def as_dict(self) -> Dict[str, object]:
        return {
            "failed_nets": sorted(self.net_failures),
            "failures": [
                self.net_failures[name].as_dict()
                for name in sorted(self.net_failures)
            ],
            "reasons": self.reasons_histogram(),
            "retries": self.retries,
            "escalations": self.escalations,
            "recovered_nets": dict(sorted(self.recovered_nets.items())),
            "degraded_stages": dict(self.degraded_stages),
            "resumed_from": self.resumed_from,
            "global_faults": self.global_faults,
            "pool_events": list(self.pool_events),
            "flight_recorder": list(self.flight_recorder),
        }
