"""Cell configuration table of the shape grid (Sec. 3.3, Fig. 3).

Each shape-grid cell stores the intersections of shapes with its area,
with coordinates relative to the cell's anchor point.  Because this *cell
configuration* is typically identical in a large number of cells, cells
hold only a *configuration number* indexing a lookup table with the actual
data.  Configuration number 0 is the empty configuration and is never
stored explicitly.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, NamedTuple, Tuple


class CellShape(NamedTuple):
    """One clipped shape inside a cell, relative to the cell anchor.

    ``rule_width`` is the effective width of the *original* shape (carried
    by its shape class, Sec. 3.2), so clipping does not weaken spacing
    lookups.  ``ripup_level`` follows the paper's convention: the
    ripup-and-reroute algorithm may only remove shapes of at most the
    currently allowed level; fixed objects carry ``RIPUP_FIXED``.
    """

    x_lo: int
    y_lo: int
    x_hi: int
    y_hi: int
    net: object  # net name (str) or None for blockages
    class_name: str
    shape_kind: str
    ripup_level: int
    rule_width: int


Config = FrozenSet[CellShape]

EMPTY_CONFIG_ID = 0


class ConfigTable:
    """Interning table mapping cell configurations to small integers."""

    def __init__(self) -> None:
        self._by_config: Dict[Config, int] = {frozenset(): EMPTY_CONFIG_ID}
        self._by_id: List[Config] = [frozenset()]

    def __len__(self) -> int:
        return len(self._by_id)

    def intern(self, config: Config) -> int:
        config_id = self._by_config.get(config)
        if config_id is None:
            config_id = len(self._by_id)
            self._by_config[config] = config_id
            self._by_id.append(config)
        return config_id

    def lookup(self, config_id: int) -> Config:
        return self._by_id[config_id]

    def with_shape(self, config_id: int, shape: CellShape) -> int:
        """Configuration id after adding ``shape`` to ``config_id``."""
        config = self._by_id[config_id]
        if shape in config:
            return config_id
        return self.intern(config | {shape})

    def without_shape(self, config_id: int, shape: CellShape) -> int:
        config = self._by_id[config_id]
        if shape not in config:
            return config_id
        return self.intern(config - {shape})
