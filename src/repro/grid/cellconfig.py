"""Cell configuration table of the shape grid (Sec. 3.3, Fig. 3).

Each shape-grid cell stores the intersections of shapes with its area,
with coordinates relative to the cell's anchor point.  Because this *cell
configuration* is typically identical in a large number of cells, cells
hold only a *configuration number* indexing a lookup table with the actual
data.  Configuration number 0 is the empty configuration and is never
stored explicitly.

A configuration is a true **multiset**: identical clipped shapes (same
geometry *and* metadata) are reference-counted, so adding the same shape
twice and removing it once leaves one copy behind.  Internally a
configuration is a frozenset of ``(CellShape, count)`` pairs with
``count >= 1``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, NamedTuple, Tuple


class CellShape(NamedTuple):
    """One clipped shape inside a cell, relative to the cell anchor.

    ``rule_width`` is the effective width of the *original* shape (carried
    by its shape class, Sec. 3.2), so clipping does not weaken spacing
    lookups.  ``ripup_level`` follows the paper's convention: the
    ripup-and-reroute algorithm may only remove shapes of at most the
    currently allowed level; fixed objects carry ``RIPUP_FIXED``.
    """

    x_lo: int
    y_lo: int
    x_hi: int
    y_hi: int
    net: object  # net name (str) or None for blockages
    class_name: str
    shape_kind: str
    ripup_level: int
    rule_width: int


#: A cell configuration: reference-counted shapes as (shape, count) pairs.
Config = FrozenSet[Tuple[CellShape, int]]

EMPTY_CONFIG_ID = 0


def _shape_sort_key(shape: CellShape) -> Tuple:
    """Total order over cell shapes (``net`` may be ``None``)."""
    return (
        shape.x_lo,
        shape.y_lo,
        shape.x_hi,
        shape.y_hi,
        shape.net is not None,
        shape.net or "",
        shape.class_name,
        shape.shape_kind,
        shape.ripup_level,
        shape.rule_width,
    )


def _normalize(config: Iterable) -> Config:
    """Accept bare CellShapes or (shape, count) pairs; merge duplicates."""
    counts: Dict[CellShape, int] = {}
    for item in config:
        if isinstance(item, CellShape):
            shape, count = item, 1
        else:
            shape, count = item
        if count <= 0:
            raise ValueError(f"non-positive count {count} for {shape}")
        counts[shape] = counts.get(shape, 0) + count
    return frozenset(counts.items())


class ConfigTable:
    """Interning table mapping cell configurations to small integers."""

    def __init__(self) -> None:
        self._by_config: Dict[Config, int] = {frozenset(): EMPTY_CONFIG_ID}
        self._by_id: List[Config] = [frozenset()]
        self._shapes_by_id: List[Tuple[CellShape, ...]] = [()]

    def __len__(self) -> int:
        return len(self._by_id)

    def intern(self, config: Iterable) -> int:
        """Intern a configuration given as shapes or (shape, count) pairs."""
        normalized = _normalize(config)
        config_id = self._by_config.get(normalized)
        if config_id is None:
            config_id = len(self._by_id)
            self._by_config[normalized] = config_id
            self._by_id.append(normalized)
            self._shapes_by_id.append(
                tuple(
                    sorted(
                        (shape for shape, _count in normalized),
                        key=_shape_sort_key,
                    )
                )
            )
        return config_id

    def lookup(self, config_id: int) -> Config:
        """The stored (shape, count) pairs of ``config_id``."""
        return self._by_id[config_id]

    def shapes(self, config_id: int) -> Iterator[CellShape]:
        """The distinct shapes of ``config_id`` (counts ignored).

        Yields in a canonical sorted order so iteration never depends on
        the order shapes were interned — lazily materialized grids build
        configurations in a different sequence than an eager build, and
        downstream consumers must see identical streams either way.
        """
        return iter(self._shapes_by_id[config_id])

    def count(self, config_id: int, shape: CellShape) -> int:
        """Reference count of ``shape`` in ``config_id`` (0 if absent)."""
        for stored, stored_count in self._by_id[config_id]:
            if stored == shape:
                return stored_count
        return 0

    def with_shape(self, config_id: int, shape: CellShape) -> int:
        """Configuration id after adding one copy of ``shape``."""
        counts = dict(self._by_id[config_id])
        counts[shape] = counts.get(shape, 0) + 1
        return self.intern(counts.items())

    def without_shape(self, config_id: int, shape: CellShape) -> int:
        """Configuration id after removing one copy of ``shape``."""
        counts = dict(self._by_id[config_id])
        if shape not in counts:
            return config_id
        counts[shape] -= 1
        if counts[shape] == 0:
            del counts[shape]
        if not counts:
            return EMPTY_CONFIG_ID
        return self.intern(counts.items())
