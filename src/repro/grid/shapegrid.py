"""The shape grid (Sec. 3.3).

The shape grid partitions the chip area on each wiring layer and each via
layer into rectangular cells small enough that shapes of different nets
cannot legally share a cell.  Per cell it stores a configuration number
into a lookup table (:mod:`repro.grid.cellconfig`); runs of identical
configuration numbers in preferred direction are merged into intervals
kept in an AVL tree per row (or column) of cells.  Empty intervals are not
stored.  Cell contents are reference-counted multisets: adding the same
shape twice requires removing it twice (see :mod:`repro.grid.cellconfig`).

This is the ground truth for diff-net rule checking: given a region, it
returns every stored shape piece with its net, shape class, kind and ripup
level.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, List, Optional, Tuple

from repro.geometry.rect import Rect
from repro.grid.cellconfig import (
    EMPTY_CONFIG_ID,
    CellShape,
    Config,
    ConfigTable,
)
from repro.obs import OBS
from repro.tech.layers import Direction, LayerStack
from repro.tech.wiring import ShapeKind
from repro.util.avl import AVLTree


class RipupLevel(enum.IntEnum):
    """Removability of a shape; ripup may remove levels <= the allowed one."""

    NEVER = 0  # blockages, pins, power - encoded as "fixed" below
    CRITICAL = 1  # critical-net wiring, ripped only at high effort
    RESERVED = 2  # pin-access reservations
    NORMAL = 3  # ordinary routed wiring


RIPUP_FIXED = -1  # sentinel: not removable at any effort


class ShapeEntry:
    """One shape as returned by region queries (absolute coordinates)."""

    __slots__ = ("rect", "net", "class_name", "shape_kind", "ripup_level", "rule_width")

    def __init__(
        self,
        rect: Rect,
        net: Optional[str],
        class_name: str,
        shape_kind: str,
        ripup_level: int,
        rule_width: int,
    ) -> None:
        self.rect = rect
        self.net = net
        self.class_name = class_name
        self.shape_kind = shape_kind
        self.ripup_level = ripup_level
        self.rule_width = rule_width

    def __repr__(self) -> str:
        return (
            f"ShapeEntry({self.rect}, net={self.net}, {self.shape_kind}, "
            f"ripup={self.ripup_level})"
        )

    @property
    def removable(self) -> bool:
        return self.ripup_level != RIPUP_FIXED


class _LayerGrid:
    """Shape grid of one (kind, layer): interval rows of config numbers."""

    __slots__ = (
        "cell_size",
        "origin_x",
        "origin_y",
        "pref_is_x",
        "table",
        "rows",
        "fixed_rows",
        "fixed_spanning",
        "materialized",
    )

    #: Fixed shapes covering more rows than this go to the spanning pool
    #: (checked per materialized row) instead of being bucketed into
    #: every row they touch.
    SPAN_LIMIT = 8

    def __init__(
        self, cell_size: int, origin: Tuple[int, int], pref_is_x: bool
    ) -> None:
        self.cell_size = cell_size
        self.origin_x, self.origin_y = origin
        self.pref_is_x = pref_is_x
        self.table = ConfigTable()
        # rows: row index (non-preferred axis) -> AVL keyed by interval
        # start column; value = [end_column, config_id].
        self.rows: Dict[int, AVLTree] = {}
        # Lazy fixed-geometry pools: shapes registered via add_fixed are
        # folded into a row's intervals the first time anything touches
        # that row.  fixed_rows buckets short shapes by row index;
        # fixed_spanning holds (row_lo, row_hi, rect, meta) for shapes
        # crossing many rows (power straps).
        self.fixed_rows: Dict[int, List[Tuple[Rect, Tuple]]] = {}
        self.fixed_spanning: List[Tuple[int, int, Rect, Tuple]] = []
        self.materialized: set = set()

    # -- cell coordinate helpers ------------------------------------
    def _to_cell(self, x: int, y: int) -> Tuple[int, int]:
        """(row, col) of the cell containing point (x, y)."""
        cx = (x - self.origin_x) // self.cell_size
        cy = (y - self.origin_y) // self.cell_size
        return (cy, cx) if self.pref_is_x else (cx, cy)

    def _cell_anchor(self, row: int, col: int) -> Tuple[int, int]:
        if self.pref_is_x:
            cx, cy = col, row
        else:
            cx, cy = row, col
        return (self.origin_x + cx * self.cell_size, self.origin_y + cy * self.cell_size)

    def _cell_rect(self, row: int, col: int) -> Rect:
        ax, ay = self._cell_anchor(row, col)
        return Rect(ax, ay, ax + self.cell_size, ay + self.cell_size)

    def _covered_cells(self, rect: Rect) -> Tuple[int, int, int, int]:
        """Closed (row_lo, row_hi, col_lo, col_hi) of cells intersecting rect.

        A rectangle touching only a cell border still intersects that cell
        (closed semantics), matching how spacing interactions work.
        """
        row_lo, col_lo = self._to_cell(rect.x_lo, rect.y_lo)
        row_hi, col_hi = self._to_cell(rect.x_hi, rect.y_hi)
        return (row_lo, row_hi, col_lo, col_hi)

    # -- interval row primitives -------------------------------------
    def _get_config(self, row: AVLTree, col: int) -> int:
        item = row.floor_item(col)
        if item is None:
            return EMPTY_CONFIG_ID
        start, (end, config_id) = item
        return config_id if col <= end else EMPTY_CONFIG_ID

    def _set_range(self, row_index: int, col_lo: int, col_hi: int, mapper) -> None:
        """Apply ``mapper(col, old_config_id) -> new_config_id`` over a range.

        Rewrites the row's intervals across [col_lo, col_hi], merging runs
        of identical configuration numbers (also with the untouched
        neighbours just outside the range).
        """
        row = self.rows.get(row_index)
        if row is None:
            row = AVLTree()
            self.rows[row_index] = row
        # Collect old intervals overlapping the (slightly widened) range so
        # that boundary merges are seen.
        scan_lo, scan_hi = col_lo - 1, col_hi + 1
        overlapping: List[Tuple[int, int, int]] = []
        item = row.floor_item(scan_lo)
        if item is not None and item[1][0] >= scan_lo:
            overlapping.append((item[0], item[1][0], item[1][1]))
        for start, (end, config_id) in list(row.items(lo=scan_lo + 1, hi=scan_hi)):
            overlapping.append((start, end, config_id))
        # Build the new run list over [scan_lo, scan_hi].
        old_at: Dict[int, int] = {}
        for start, end, config_id in overlapping:
            for col in range(max(start, scan_lo), min(end, scan_hi) + 1):
                old_at[col] = config_id
        runs: List[Tuple[int, int, int]] = []  # (start, end, config)
        for col in range(scan_lo, scan_hi + 1):
            old = old_at.get(col, EMPTY_CONFIG_ID)
            new = mapper(col, old) if col_lo <= col <= col_hi else old
            if runs and runs[-1][2] == new and runs[-1][1] == col - 1:
                runs[-1] = (runs[-1][0], col, new)
            else:
                runs.append((col, col, new))
        # Remove old intervals in the scan range, re-inserting clipped
        # leftovers extending beyond it.
        for start, end, config_id in overlapping:
            row.delete(start)
            if start < scan_lo:
                row.insert(start, [scan_lo - 1, config_id])
            if end > scan_hi:
                row.insert(scan_hi + 1, [end, config_id])
        # Insert the new runs (skipping empty ones), merging with the
        # neighbours that survived clipping.
        for start, end, config_id in runs:
            if config_id == EMPTY_CONFIG_ID:
                continue
            prev = row.floor_item(start - 1)
            if prev is not None and prev[1][0] == start - 1 and prev[1][1] == config_id:
                row.delete(prev[0])
                start = prev[0]
            nxt = row.ceiling_item(end + 1)
            if nxt is not None and nxt[0] == end + 1 and nxt[1][1] == config_id:
                row.delete(nxt[0])
                end = nxt[1][0]
            row.insert(start, [end, config_id])
        if not row:
            del self.rows[row_index]

    # -- lazy fixed geometry ------------------------------------------
    def add_fixed(self, rect: Rect, meta: Tuple) -> None:
        """Register a fixed shape without building its rows yet.

        The shape becomes visible (and is folded into the interval
        trees) when :meth:`_ensure_rows` first materializes a row it
        covers; rows already materialized receive it immediately, so
        registration order never changes what queries see.
        """
        row_lo, row_hi, _col_lo, _col_hi = self._covered_cells(rect)
        if row_hi - row_lo + 1 > self.SPAN_LIMIT:
            self.fixed_spanning.append((row_lo, row_hi, rect, meta))
        else:
            for row_index in range(row_lo, row_hi + 1):
                if row_index in self.materialized:
                    continue
                self.fixed_rows.setdefault(row_index, []).append((rect, meta))
        for row_index in range(row_lo, row_hi + 1):
            if row_index in self.materialized:
                self._apply_to_row(row_index, rect, meta)

    def _apply_to_row(self, row_index: int, rect: Rect, meta: Tuple) -> None:
        """Fold one shape into one (already materialized) row."""
        _row_lo, _row_hi, col_lo, col_hi = self._covered_cells(rect)
        table = self.table

        def mapper(col: int, old: int) -> int:
            shape = self._cell_shape(rect, row_index, col, meta)
            if shape is None:
                return old
            return table.with_shape(old, shape)

        self._set_range(row_index, col_lo, col_hi, mapper)

    def _ensure_rows(self, row_lo: int, row_hi: int) -> None:
        """Materialize the fixed geometry of rows [row_lo, row_hi].

        Every mutation and query passes through here first, so a row's
        interval tree always contains its fixed shapes before anything
        reads or edits it — cell configurations are multisets, so the
        final content is the same as the eager build's.
        """
        if not self.fixed_rows and not self.fixed_spanning:
            return
        for row_index in range(row_lo, row_hi + 1):
            if row_index in self.materialized:
                continue
            self.materialized.add(row_index)
            for rect, meta in self.fixed_rows.pop(row_index, ()):
                self._apply_to_row(row_index, rect, meta)
            for span_lo, span_hi, rect, meta in self.fixed_spanning:
                if span_lo <= row_index <= span_hi:
                    self._apply_to_row(row_index, rect, meta)
            if OBS.enabled:
                OBS.count("space.lazy_rows")

    def pending_fixed_count(self) -> int:
        """Registered fixed shapes with at least one unmaterialized row."""
        pending = sum(len(shapes) for shapes in self.fixed_rows.values())
        for span_lo, span_hi, _rect, _meta in self.fixed_spanning:
            if any(
                row not in self.materialized
                for row in range(span_lo, span_hi + 1)
            ):
                pending += 1
        return pending

    # -- shape operations ---------------------------------------------
    def _cell_shape(self, rect: Rect, row: int, col: int, meta: Tuple) -> Optional[CellShape]:
        clip = rect.intersection(self._cell_rect(row, col))
        if clip is None:
            return None
        ax, ay = self._cell_anchor(row, col)
        net, class_name, shape_kind, ripup_level, rule_width = meta
        return CellShape(
            clip.x_lo - ax,
            clip.y_lo - ay,
            clip.x_hi - ax,
            clip.y_hi - ay,
            net,
            class_name,
            shape_kind,
            ripup_level,
            rule_width,
        )

    def add(self, rect: Rect, meta: Tuple) -> None:
        row_lo, row_hi, col_lo, col_hi = self._covered_cells(rect)
        self._ensure_rows(row_lo, row_hi)
        table = self.table
        for row_index in range(row_lo, row_hi + 1):

            def mapper(col: int, old: int, _row=row_index) -> int:
                shape = self._cell_shape(rect, _row, col, meta)
                if shape is None:
                    return old
                return table.with_shape(old, shape)

            self._set_range(row_index, col_lo, col_hi, mapper)

    def remove(self, rect: Rect, meta: Tuple) -> None:
        row_lo, row_hi, col_lo, col_hi = self._covered_cells(rect)
        self._ensure_rows(row_lo, row_hi)
        table = self.table
        for row_index in range(row_lo, row_hi + 1):

            def mapper(col: int, old: int, _row=row_index) -> int:
                shape = self._cell_shape(rect, _row, col, meta)
                if shape is None:
                    return old
                return table.without_shape(old, shape)

            self._set_range(row_index, col_lo, col_hi, mapper)

    def query(self, rect: Rect) -> Iterator[ShapeEntry]:
        """Shape pieces intersecting ``rect`` (deduplicated)."""
        row_lo, row_hi, col_lo, col_hi = self._covered_cells(rect)
        self._ensure_rows(row_lo, row_hi)
        seen = set()
        for row_index in range(row_lo, row_hi + 1):
            row = self.rows.get(row_index)
            if row is None:
                continue
            item = row.floor_item(col_lo)
            start_key = item[0] if item is not None and item[1][0] >= col_lo else col_lo
            for start, (end, config_id) in row.items(lo=start_key, hi=col_hi):
                for col in range(max(start, col_lo), min(end, col_hi) + 1):
                    ax, ay = self._cell_anchor(row_index, col)
                    for shape in self.table.shapes(config_id):
                        absolute = Rect(
                            shape.x_lo + ax,
                            shape.y_lo + ay,
                            shape.x_hi + ax,
                            shape.y_hi + ay,
                        )
                        if not absolute.intersects(rect):
                            continue
                        key = (
                            absolute.as_tuple(),
                            shape.net,
                            shape.class_name,
                            shape.shape_kind,
                        )
                        if key in seen:
                            continue
                        seen.add(key)
                        yield ShapeEntry(
                            absolute,
                            shape.net,
                            shape.class_name,
                            shape.shape_kind,
                            shape.ripup_level,
                            shape.rule_width,
                        )

    def interval_count(self) -> int:
        return sum(len(row) for row in self.rows.values())


class ShapeGrid:
    """Shape grids for all wiring and via layers of a chip."""

    def __init__(
        self,
        die: Rect,
        stack: LayerStack,
        cell_sizes: Optional[Dict[int, int]] = None,
    ) -> None:
        self.die = die
        self.stack = stack
        self._grids: Dict[Tuple[str, int], _LayerGrid] = {}
        origin = (die.x_lo, die.y_lo)
        for layer in stack:
            size = (cell_sizes or {}).get(layer.index, layer.pitch)
            pref_is_x = layer.direction is Direction.HORIZONTAL
            self._grids[("wiring", layer.index)] = _LayerGrid(size, origin, pref_is_x)
        for via_layer in stack.via_layers():
            # Via layer intervals run in the direction of the next lower
            # wiring layer (Sec. 3.6).
            lower = stack[via_layer]
            size = (cell_sizes or {}).get(via_layer, lower.pitch)
            pref_is_x = lower.direction is Direction.HORIZONTAL
            self._grids[("via", via_layer)] = _LayerGrid(size, origin, pref_is_x)

    def _grid(self, kind: str, layer: int) -> _LayerGrid:
        try:
            return self._grids[(kind, layer)]
        except KeyError:
            available = sorted(self._grids)
            raise KeyError(
                f"no shape grid for {kind} layer {layer}; "
                f"grids exist for {available}"
            ) from None

    def add_shape(
        self,
        kind: str,
        layer: int,
        rect: Rect,
        net: Optional[str],
        class_name: str,
        shape_kind: ShapeKind,
        ripup_level: int,
        rule_width: int,
    ) -> None:
        if OBS.enabled:
            OBS.count("shapegrid.shape_adds")
        meta = (net, class_name, shape_kind.value, ripup_level, rule_width)
        self._grid(kind, layer).add(rect, meta)

    def add_fixed_shape(
        self,
        kind: str,
        layer: int,
        rect: Rect,
        net: Optional[str],
        class_name: str,
        shape_kind: ShapeKind,
        ripup_level: int,
        rule_width: int,
    ) -> None:
        """Register fixed geometry lazily (see ``_LayerGrid.add_fixed``).

        The shape is folded into a row's intervals the first time any
        operation touches that row; untouched rows never pay the
        interval-tree cost.  Queries and mutations see exactly what an
        eager :meth:`add_shape` would have produced.
        """
        if OBS.enabled:
            OBS.count("shapegrid.fixed_shapes")
        meta = (net, class_name, shape_kind.value, ripup_level, rule_width)
        self._grid(kind, layer).add_fixed(rect, meta)

    def remove_shape(
        self,
        kind: str,
        layer: int,
        rect: Rect,
        net: Optional[str],
        class_name: str,
        shape_kind: ShapeKind,
        ripup_level: int,
        rule_width: int,
    ) -> None:
        if OBS.enabled:
            OBS.count("shapegrid.shape_removes")
        meta = (net, class_name, shape_kind.value, ripup_level, rule_width)
        self._grid(kind, layer).remove(rect, meta)

    def query(self, kind: str, layer: int, rect: Rect) -> List[ShapeEntry]:
        if OBS.enabled:
            OBS.count("shapegrid.queries")
        return list(self._grid(kind, layer).query(rect))

    def interval_count(self, kind: str, layer: int) -> int:
        return self._grid(kind, layer).interval_count()

    def config_count(self, kind: str, layer: int) -> int:
        """Number of distinct non-empty cell configurations seen so far."""
        return len(self._grid(kind, layer).table) - 1

    def net_agnostic_config_count(self, kind: str, layer: int) -> int:
        """Distinct configurations modulo net identity.

        The paper's configuration table is net-free - the owning net is
        stored per *interval* ("for each nonempty interval we store the
        net that the shapes of this interval belong to", Sec. 3.3) - so
        identical geometry from different nets shares one table entry.
        Our cells keep the net per shape for exact query attribution;
        this accessor reports the size the paper's net-free table would
        have (the Fig. 3 statistic).
        """
        grid = self._grid(kind, layer)
        stripped = set()
        for config in grid.table._by_id[1:]:
            stripped.add(
                frozenset(
                    ((s.x_lo, s.y_lo, s.x_hi, s.y_hi, s.class_name,
                      s.shape_kind, s.ripup_level, s.rule_width), count)
                    for s, count in config
                )
            )
        return len(stripped)

    def total_interval_count(self) -> int:
        return sum(grid.interval_count() for grid in self._grids.values())

    def pending_fixed_count(self) -> int:
        """Fixed shapes registered lazily and not yet materialized."""
        return sum(grid.pending_fixed_count() for grid in self._grids.values())

    def materialized_row_count(self) -> int:
        """Rows whose lazy fixed geometry has been folded in."""
        return sum(len(grid.materialized) for grid in self._grids.values())
