"""Routing tracks and the track optimization problem (Sec. 3.5).

Given a layer with minimum pitch p and a set A of axis-parallel rectangles
with pairwise disjoint interiors in which a standard wire can run, the
*track optimization problem* asks for a set T of lines in preferred
direction, pairwise at least p apart, maximizing the total usable track
length sum_t |t cap union(A)|.  Mueller [2009] solves this in
O(|A| log |A|); we implement the equivalent exact dynamic program over the
candidate coordinates {breakpoint + k*p}, which is optimal because the
coverage profile is piecewise constant between breakpoints, so an optimal
solution can be shifted so that every selected line either sits on a
breakpoint or is pitch-chained to one.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chip.design import Chip
from repro.geometry.rect import Rect, subtract_rect
from repro.tech.layers import Direction


def coverage_profile(
    rects: Sequence[Rect], direction: Direction
) -> List[Tuple[int, int, int]]:
    """Piecewise-constant usable length per line coordinate.

    For a HORIZONTAL track direction the line coordinate is y and the
    usable length of a line at y is the total x-extent of rectangles whose
    closed y-range contains y.  Returns half-open ``(lo, hi, value)``
    pieces: every integer line coordinate c with ``lo <= c < hi`` has
    usable length ``value``.  Rectangles are closed, so a rectangle
    [y_lo, y_hi] covers lines y_lo .. y_hi inclusive; degenerate
    (zero-height) rectangles - used as pin-alignment rewards - cover
    exactly their single line.
    """
    if not rects:
        return []
    events: List[Tuple[int, int]] = []
    for rect in rects:
        if direction is Direction.HORIZONTAL:
            lo, hi, length = rect.y_lo, rect.y_hi, max(rect.width, 1)
        else:
            lo, hi, length = rect.x_lo, rect.x_hi, max(rect.height, 1)
        events.append((lo, length))
        events.append((hi + 1, -length))
    events.sort()
    pieces: List[Tuple[int, int, int]] = []
    value = 0
    prev: Optional[int] = None
    index = 0
    while index < len(events):
        coord = events[index][0]
        if prev is not None and coord > prev and value > 0:
            pieces.append((prev, coord, value))
        delta = 0
        while index < len(events) and events[index][0] == coord:
            delta += events[index][1]
            index += 1
        value += delta
        prev = coord
    return pieces


def _coverage_value(pieces: Sequence[Tuple[int, int, int]], coord: int) -> int:
    """Usable length of a line at integer coordinate ``coord``."""
    if not pieces:
        return 0
    starts = [p[0] for p in pieces]
    idx = bisect.bisect_right(starts, coord) - 1
    if idx >= 0:
        lo, hi, value = pieces[idx]
        if lo <= coord < hi:
            return value
    return 0


def optimize_tracks(
    rects: Sequence[Rect],
    pitch: int,
    span: Tuple[int, int],
    direction: Direction = Direction.HORIZONTAL,
) -> List[int]:
    """Solve the track optimization problem exactly (Thm 3.1).

    Returns the sorted line coordinates of an optimal track set within
    ``span`` (inclusive).  Rectangles must have pairwise disjoint
    interiors for the objective to equal the summed coverage.
    """
    if pitch <= 0:
        raise ValueError("pitch must be positive")
    lo, hi = span
    if lo > hi:
        raise ValueError("empty span")
    pieces = coverage_profile(rects, direction)
    breakpoints = sorted(
        {p[0] for p in pieces} | {p[1] for p in pieces} | {lo, hi}
    )
    # Candidate coordinates: every breakpoint plus pitch-chains from it.
    candidates = set()
    for b in breakpoints:
        if lo <= b <= hi:
            candidates.add(b)
        k = 1
        while b + k * pitch <= hi:
            if b + k * pitch >= lo:
                candidates.add(b + k * pitch)
            k += 1
    ordered = sorted(candidates)
    values = [_coverage_value(pieces, c) for c in ordered]
    # Weighted interval-scheduling DP: dp[i] = best total using candidates
    # [0..i] with the last selected line at or before ordered[i].
    n = len(ordered)
    dp = [0] * (n + 1)  # dp[i]: best over first i candidates
    choose = [False] * n
    prev_index = [0] * n
    for i in range(n):
        # Last candidate at distance >= pitch below ordered[i].
        j = bisect.bisect_right(ordered, ordered[i] - pitch)
        take = values[i] + dp[j]
        skip = dp[i]
        if take > skip or (take == skip and values[i] > 0):
            dp[i + 1] = take
            choose[i] = True
            prev_index[i] = j
        else:
            dp[i + 1] = skip
    # Backtrack.
    tracks: List[int] = []
    i = n
    while i > 0:
        if choose[i - 1] and dp[i] == values[i - 1] + dp[prev_index[i - 1]]:
            tracks.append(ordered[i - 1])
            i = prev_index[i - 1]
        else:
            i -= 1
    tracks.reverse()
    return tracks


def obstacle_clearance(chip: Chip, layer_index: int, rect: Rect) -> int:
    """Centerline clearance a standard wire needs from ``rect``.

    Half the wire width plus the width/run-length dependent spacing: a
    wire running parallel to a long fat obstacle (e.g. a power rail) hits
    the wide/long-run rows of the spacing table, not just the base
    spacing (Sec. 3.1).
    """
    layer = chip.stack[layer_index]
    rule = chip.rules.spacing_rule(layer_index)
    obstacle_width = min(rect.width, rect.height)
    # Worst-case run-length: the obstacle's full extent (a track can run
    # parallel to it for its whole length).
    potential_run = max(rect.width, rect.height)
    spacing = rule.spacing(layer.min_width, obstacle_width, potential_run)
    return layer.min_width // 2 + spacing


def _free_rects_on_layer(chip: Chip, layer_index: int) -> List[Rect]:
    """Rectangles where a standard wire fits on ``layer_index``.

    The usable area is the die shrunk by half a wire width, minus every
    obstacle expanded by the wire's half width plus its (width- and
    run-length-aware) required spacing.
    """
    layer = chip.stack[layer_index]
    half_width = layer.min_width // 2
    die = chip.die
    if die.width <= 2 * half_width or die.height <= 2 * half_width:
        return []
    free: List[Rect] = [
        Rect(
            die.x_lo + half_width,
            die.y_lo + half_width,
            die.x_hi - half_width,
            die.y_hi - half_width,
        )
    ]
    for obs_layer, rect, _owner in chip.obstruction_shapes():
        if obs_layer != layer_index:
            continue
        hole = rect.expanded(obstacle_clearance(chip, layer_index, rect))
        next_free: List[Rect] = []
        for piece in free:
            next_free.extend(subtract_rect(piece, hole))
        free = next_free
        if not free:
            break
    return [r for r in free if r.area > 0]


class TrackPlan:
    """Per-layer optimized track coordinates for a chip.

    ``tracks[z]`` is the sorted list of line coordinates on wiring layer z
    (y-coordinates on horizontal layers, x-coordinates on vertical ones).
    """

    def __init__(self, chip: Chip, tracks: Dict[int, List[int]]) -> None:
        self.chip = chip
        self.tracks = tracks

    def layer_tracks(self, layer_index: int) -> List[int]:
        return self.tracks[layer_index]

    def usable_track_length(self, layer_index: int) -> int:
        """Objective value of the plan on one layer (for tests/benches)."""
        rects = _free_rects_on_layer(self.chip, layer_index)
        direction = self.chip.stack.direction(layer_index)
        pieces = coverage_profile(rects, direction)
        return sum(_coverage_value(pieces, t) for t in self.tracks[layer_index])


def build_track_plan(chip: Chip, pin_alignment: bool = True) -> TrackPlan:
    """Optimize tracks on every layer of ``chip``.

    When ``pin_alignment`` is set, zero-thickness alignment rectangles at
    pin centre coordinates are added to A so that track positions allowing
    on-track pin access are rewarded (Sec. 3.5); the alignment reward
    spans the pin's extent in preferred direction.
    """
    tracks: Dict[int, List[int]] = {}
    for layer in chip.stack:
        rects = _free_rects_on_layer(chip, layer.index)
        if pin_alignment:
            bonus = layer.min_width
            for pin in chip.all_pins():
                for pin_layer, rect in pin.shapes:
                    if pin_layer != layer.index:
                        continue
                    cx, cy = rect.center
                    if layer.direction is Direction.HORIZONTAL:
                        rects.append(Rect(rect.x_lo, cy, rect.x_hi + bonus, cy))
                    else:
                        rects.append(Rect(cx, rect.y_lo, cx, rect.y_hi + bonus))
        if layer.direction is Direction.HORIZONTAL:
            span = (chip.die.y_lo + layer.min_width, chip.die.y_hi - layer.min_width)
        else:
            span = (chip.die.x_lo + layer.min_width, chip.die.x_hi - layer.min_width)
        tracks[layer.index] = optimize_tracks(
            rects, layer.pitch, span, layer.direction
        )
    return TrackPlan(chip, tracks)
