"""The fast grid (Sec. 3.6).

Caches, for a small set of frequently used wire types, the legality of the
four shape types {preferred-direction wire, jog, via down, via up} at
on-track locations, so the on-track path search rarely needs the (much
slower) distance rule checking module.  Words are computed lazily and kept
per track in *packed* per-track arrays; every shape insertion or removal
invalidates the affected region by clearing validity bits and bumping
generation counters (epochs) instead of popping dict entries.

Storage layout: one uint16 word per vertex, four legal bits (bit ``i`` for
``SHAPE_TYPES[i]``) plus four 3-bit ripup fields (bits ``4 + 3i``), with
``RIPUP_FIXED`` encoded as 7.  The arrays are numpy when available and the
grid is constructed ``vectorized``; otherwise a pure-python
``array('H')``/``bytearray`` fallback keeps numpy optional (mirroring the
path-search label arrays).

Edge usability is deduced from the two endpoint vertex words whenever only
on-track wiring is present; where off-track shapes are nearby, a *dirty
bit* at a vertex forces a direct shape-grid query for its incident edges
(the zigzag-edge bit of Fig. 4).  Those segment checks are memoized per
(wire type, edge) and validated against the global epoch, so repeated
searches over an unchanged region stop re-querying the shape grid.

Counter semantics (normalized): ``hits``/``misses`` count *vertex-word
lookups* (a batch fill counts one miss per word computed and one hit per
word reused); ``fastgrid.queries`` counts *edge* queries, so hits may
legitimately exceed queries.  ``fastgrid.interval_cache_hits`` and
``fastgrid.segment_cache_hits`` count reuse in the two cross-search memo
layers on top of the words themselves.
"""

from __future__ import annotations

import os
from array import array
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.geometry.rect import Rect
from repro.grid.drc_query import DistanceRuleChecker, PlacementCheck, PrefetchedBand
from repro.grid.shapegrid import RIPUP_FIXED
from repro.obs import OBS
from repro.grid.trackgraph import TrackGraph, Vertex
from repro.tech.layers import Direction
from repro.tech.wiring import StickFigure, WireType

try:  # numpy is optional; the packed arrays fall back to array('H').
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via vectorized=False
    _np = None

#: Shape types a fast-grid word stores, in order.
SHAPE_TYPES = ("wire", "jog", "via_down", "via_up")

_SHAPE_INDEX = {name: i for i, name in enumerate(SHAPE_TYPES)}

#: Per shape type: (legal, ripup_level_needed); RIPUP_FIXED when not even
#: ripup can make it legal.
Word = Tuple[Tuple[bool, int], ...]

#: 3-bit ripup encoding: levels 0..6 verbatim, RIPUP_FIXED (and anything
#: beyond the encodable range) as 7.
_RIPUP_FIXED_ENC = 7


def pack_word(word: Word) -> int:
    """Pack a 4-entry legality word into one uint16."""
    bits = 0
    for i, (legal, needed) in enumerate(word):
        if legal:
            bits |= 1 << i
        if needed == RIPUP_FIXED or needed > 6 or needed < 0:
            enc = _RIPUP_FIXED_ENC
        else:
            enc = int(needed)
        bits |= enc << (4 + 3 * i)
    return bits


def unpack_word(bits: int) -> Word:
    """Inverse of :func:`pack_word`."""
    out = []
    for i in range(4):
        legal = bool((bits >> i) & 1)
        enc = (bits >> (4 + 3 * i)) & 7
        out.append((legal, RIPUP_FIXED if enc == _RIPUP_FIXED_ENC else enc))
    return tuple(out)


class _TrackWords:
    """Packed words + validity bits for one (wire type, layer, track)."""

    __slots__ = ("words", "valid")

    def __init__(self, ncross: int, vectorized: bool) -> None:
        if vectorized:
            self.words = _np.zeros(ncross, dtype=_np.uint16)
            self.valid = _np.zeros(ncross, dtype=bool)
        else:
            self.words = array("H", bytes(2 * ncross))
            self.valid = bytearray(ncross)


class IntervalCache:
    """Cross-search cache of track interval decompositions.

    Keys carry everything a decomposition depends on besides the shapes
    themselves — (wire type, ripup level, layer, track, area cross
    ranges); values are penalty-free runs ``(c_lo, c_hi, needs_ripup)``
    stamped with the track epoch they were scanned at.  A stale epoch is
    a miss, so invalidation is generation-based: mutating the space never
    walks this cache.  Penalties (ripup history, spreading) are applied
    per :class:`~repro.droute.intervals.GraphView` on materialization, so
    cached runs stay deterministic and view-independent.
    """

    def __init__(self, max_entries: int = 8192) -> None:
        self._entries: Dict[tuple, Tuple[int, list]] = {}
        self.max_entries = max_entries

    def lookup(self, key: tuple, epoch: int) -> Optional[list]:
        entry = self._entries.get(key)
        if entry is None or entry[0] != epoch:
            if OBS.enabled:
                OBS.count("fastgrid.interval_cache_misses")
            return None
        if OBS.enabled:
            OBS.count("fastgrid.interval_cache_hits")
        return entry[1]

    def store(self, key: tuple, epoch: int, runs: list) -> None:
        if len(self._entries) >= self.max_entries:
            self._entries.clear()
        self._entries[key] = (epoch, runs)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class FastGrid:
    """Per-wire-type legality cache over the track graph."""

    def __init__(
        self,
        graph: TrackGraph,
        checker: DistanceRuleChecker,
        wire_types: Sequence[WireType],
        enabled: bool = True,
        vectorized: Optional[bool] = None,
    ) -> None:
        self.graph = graph
        self.checker = checker
        self.wire_types: Dict[str, WireType] = {wt.name: wt for wt in wire_types}
        #: When disabled, every query goes straight to the checker
        #: (ablation baseline for the 5.29x speed-up statistic).
        self.enabled = enabled
        if vectorized is None:
            vectorized = not os.environ.get("REPRO_FASTGRID_NOVEC")
        #: Packed-array sweeps require numpy; the scalar fallback keeps
        #: identical packed storage in ``array('H')``.
        self.vectorized = bool(vectorized) and _np is not None
        # (wiretype, z, t) -> packed per-track word array
        self._tracks: Dict[Tuple[str, int, int], _TrackWords] = {}
        # Vertices whose incident edges cannot be deduced from vertex
        # words because off-track shapes are nearby.
        self._dirty: Dict[Tuple[int, int], set] = {}
        #: Global generation counter, bumped once per invalidated region;
        #: validates the segment-check memo.
        self.epoch = 0
        #: Per-(z, t) generation counters; validate interval-cache runs.
        self._track_epochs: Dict[Tuple[int, int], int] = {}
        # (wiretype, v, w) -> (epoch, legal, max_ripup_needed)
        self._segment_memo: Dict[tuple, Tuple[int, bool, int]] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Word computation
    # ------------------------------------------------------------------
    def _compute_word(
        self, wire_type: WireType, vertex: Vertex, prefetched=None
    ) -> Word:
        x, y, z = self.graph.position(vertex)
        checks: List[Tuple[bool, int]] = []
        stack = self.graph.stack
        point = StickFigure(z, x, y, x, y)
        wiring_entries = (
            None if prefetched is None else prefetched.get(("wiring", z))
        )
        for shape_type in SHAPE_TYPES:
            check: Optional[PlacementCheck] = None
            if shape_type == "wire":
                if wire_type.has_layer(z):
                    shape, cls, _ = wire_type.wire_shape(point, stack)
                    check = self.checker.check_metal(
                        z, shape, cls.rule_width, None, prefetched=wiring_entries
                    )
            elif shape_type == "jog":
                if wire_type.has_layer(z):
                    model = wire_type.nonpreferred_model(z)
                    shape = model.metal_shape(point, stack.direction(z))
                    check = self.checker.check_metal(
                        z, shape, model.shape_class.rule_width, None,
                        prefetched=wiring_entries,
                    )
            elif shape_type == "via_down":
                if stack.has_layer(z - 1) and wire_type.has_via_layer(z - 1):
                    check = self.checker.check_via(
                        wire_type, z - 1, x, y, None, prefetched=prefetched
                    )
            else:  # via_up
                if stack.has_layer(z + 1) and wire_type.has_via_layer(z):
                    check = self.checker.check_via(
                        wire_type, z, x, y, None, prefetched=prefetched
                    )
            if check is None:
                checks.append((False, RIPUP_FIXED))
            else:
                checks.append((check.legal, check.max_ripup_needed))
        return tuple(checks)

    def _track_words(self, wire_type_name: str, z: int, t: int) -> _TrackWords:
        key = (wire_type_name, z, t)
        tw = self._tracks.get(key)
        if tw is None:
            tw = _TrackWords(len(self.graph.crosses[z]), self.vectorized)
            self._tracks[key] = tw
        return tw

    def ensure_words(
        self, wire_type_name: str, z: int, t: int, c_lo: int, c_hi: int
    ) -> int:
        """Batch-fill the word arrays for a track segment.

        One shape-grid traversal per (kind, layer) band replaces the
        per-vertex traversals; each vertex's checks then filter the
        prefetched entries by its own query window, giving results
        identical to individual :meth:`word` calls.  Returns the number
        of words actually computed (invalid before the call).
        """
        if not self.enabled or c_lo > c_hi:
            return 0
        tw = self._track_words(wire_type_name, z, t)
        if self.vectorized:
            missing = [
                int(i) + c_lo
                for i in _np.flatnonzero(~tw.valid[c_lo:c_hi + 1])
            ]
        else:
            valid = tw.valid
            missing = [c for c in range(c_lo, c_hi + 1) if not valid[c]]
        if not missing:
            return 0
        wire_type = self.wire_types[wire_type_name]
        graph = self.graph
        stack = graph.stack
        x0, y0, _ = graph.position((z, t, missing[0]))
        x1, y1, _ = graph.position((z, t, missing[-1]))
        band = Rect(min(x0, x1), min(y0, y1), max(x0, x1), max(y0, y1))
        prefetched = {}
        for layer in (z - 1, z, z + 1):
            if not stack.has_layer(layer):
                continue
            margin = (
                self.checker.rules.max_interaction_distance(layer)
                + 4 * stack[layer].pitch
            )
            prefetched[("wiring", layer)] = PrefetchedBand(
                self.checker.prefetch_entries("wiring", layer, band.expanded(margin)),
                axis_x=band.width >= band.height,
            )
        for via_layer in (z - 1, z):
            if via_layer in stack.via_layers():
                margin = 4 * stack[via_layer].pitch
                prefetched[("via", via_layer)] = PrefetchedBand(
                    self.checker.prefetch_entries(
                        "via", via_layer, band.expanded(margin)
                    ),
                    axis_x=band.width >= band.height,
                )
        words = tw.words
        valid = tw.valid
        for c in missing:
            words[c] = pack_word(
                self._compute_word(wire_type, (z, t, c), prefetched=prefetched)
            )
            valid[c] = True
        self.misses += len(missing)
        if OBS.enabled:
            OBS.count("fastgrid.misses", len(missing))
            OBS.count("fastgrid.words_prefetched", len(missing))
        return len(missing)

    def _packed(self, wire_type_name: str, vertex: Vertex) -> int:
        """Packed legality word at a vertex, from cache or computed."""
        wire_type = self.wire_types[wire_type_name]
        if not self.enabled:
            self.misses += 1
            if OBS.enabled:
                OBS.count("fastgrid.misses")
            return pack_word(self._compute_word(wire_type, vertex))
        z, t, c = vertex
        tw = self._track_words(wire_type_name, z, t)
        if tw.valid[c]:
            self.hits += 1
            if OBS.enabled:
                OBS.count("fastgrid.hits")
            return int(tw.words[c])
        self.misses += 1
        if OBS.enabled:
            OBS.count("fastgrid.misses")
        bits = pack_word(self._compute_word(wire_type, vertex))
        tw.words[c] = bits
        tw.valid[c] = True
        return bits

    def word(self, wire_type_name: str, vertex: Vertex) -> Word:
        """Legality word at a vertex, from cache or freshly computed.

        The word is computed net-blind (net=None): any foreign *or own*
        shape in range counts.  The path search treats the source/target
        components specially by temporarily removing their shapes
        (Sec. 4.4), so net-blind words stay correct.
        """
        return unpack_word(self._packed(wire_type_name, vertex))

    def cached_word(
        self, wire_type_name: str, z: int, t: int, c: int
    ) -> Optional[Word]:
        """The stored word at (z, t, c), or None when not cached.

        Read-only introspection for tests and stats — never computes.
        """
        tw = self._tracks.get((wire_type_name, z, t))
        if tw is None or not tw.valid[c]:
            return None
        return unpack_word(int(tw.words[c]))

    def cached_word_count(self) -> int:
        """Number of currently valid cached words across all tracks."""
        if self.vectorized:
            return sum(int(tw.valid.sum()) for tw in self._tracks.values())
        return sum(sum(tw.valid) for tw in self._tracks.values())

    # ------------------------------------------------------------------
    # Usability queries used by the path search
    # ------------------------------------------------------------------
    def vertex_usable(
        self, wire_type_name: str, vertex: Vertex, shape_type: str, ripup_level: int = -2
    ) -> bool:
        """Is ``shape_type`` legal at ``vertex`` (with optional ripup)?

        ``ripup_level`` -2 (default) requires full legality; otherwise
        shapes up to that ripup level may be assumed removable.
        """
        i = _SHAPE_INDEX[shape_type]
        bits = self._packed(wire_type_name, vertex)
        if (bits >> i) & 1:
            return True
        if ripup_level < 0:
            return False
        enc = (bits >> (4 + 3 * i)) & 7
        return enc != _RIPUP_FIXED_ENC and enc <= ripup_level

    def vertex_needs_ripup(
        self, wire_type_name: str, vertex: Vertex, shape_type: str
    ) -> bool:
        i = _SHAPE_INDEX[shape_type]
        return not (self._packed(wire_type_name, vertex) >> i) & 1

    def edge_usable(
        self,
        wire_type_name: str,
        v: Vertex,
        w: Vertex,
        kind: str,
        ripup_level: int = -2,
    ) -> bool:
        """Usability of the track-graph edge (v, w) for the wire type.

        Deduce from the endpoint words unless a dirty bit forces a direct
        segment query (Sec. 3.6 / Fig. 4).
        """
        if OBS.enabled:
            OBS.count("fastgrid.queries")
        if kind == "via":
            upper_vertex = v if v[0] > w[0] else w
            lower_vertex = w if v[0] > w[0] else v
            return self.vertex_usable(
                wire_type_name, lower_vertex, "via_up", ripup_level
            ) and self.vertex_usable(
                wire_type_name, upper_vertex, "via_down", ripup_level
            )
        shape_type = "wire" if kind == "wire" else "jog"
        if self._is_dirty(v) or self._is_dirty(w):
            return self._segment_check(wire_type_name, v, w, kind, ripup_level)
        return self.vertex_usable(
            wire_type_name, v, shape_type, ripup_level
        ) and self.vertex_usable(wire_type_name, w, shape_type, ripup_level)

    def _segment_check(
        self, wire_type_name: str, v: Vertex, w: Vertex, kind: str, ripup_level: int
    ) -> bool:
        memo_key = (wire_type_name, v, w)
        entry = self._segment_memo.get(memo_key)
        if entry is not None and entry[0] == self.epoch:
            if OBS.enabled:
                OBS.count("fastgrid.segment_cache_hits")
            legal, needed = entry[1], entry[2]
        else:
            if OBS.enabled:
                OBS.count("fastgrid.shapegrid_fallbacks")
            wire_type = self.wire_types[wire_type_name]
            xv, yv, z = self.graph.position(v)
            xw, yw, _ = self.graph.position(w)
            stick = StickFigure(z, xv, yv, xw, yw)
            check = self.checker.check_wire(wire_type, stick, None)
            legal, needed = check.legal, check.max_ripup_needed
            if len(self._segment_memo) >= 65536:
                self._segment_memo.clear()
            self._segment_memo[memo_key] = (self.epoch, legal, needed)
        if legal:
            return True
        if ripup_level < 0:
            return False
        return needed != RIPUP_FIXED and needed <= ripup_level

    def _is_dirty(self, vertex: Vertex) -> bool:
        z, t, c = vertex
        dirty = self._dirty.get((z, t))
        return dirty is not None and c in dirty

    # ------------------------------------------------------------------
    # Word-level interval scans
    # ------------------------------------------------------------------
    def track_epoch(self, z: int, t: int) -> int:
        """Generation counter of track (z, t); bumped on invalidation."""
        return self._track_epochs.get((z, t), 0)

    def scan_track_runs(
        self,
        wire_type_name: str,
        z: int,
        t: int,
        ranges: Sequence[Tuple[int, int]],
        ripup_level: int = -2,
        forced_cs: Optional[Set[int]] = None,
    ) -> List[Tuple[int, int, bool]]:
        """Decompose track (z, t) into wire-usable runs by word scans.

        Returns ``(c_lo, c_hi, needs_ripup)`` triples in cross order:
        maximal runs of plainly usable vertices, plus singleton runs for
        vertices only usable by ripping foreign wiring (level <=
        ``ripup_level``).  ``forced_cs`` vertices count as plainly usable
        regardless of their words (the source/target override).  The
        vectorized path scans the packed word arrays with numpy; the
        fallback walks them scalar — both produce identical runs.
        """
        runs: List[Tuple[int, int, bool]] = []
        for c_lo, c_hi in ranges:
            if c_lo > c_hi:
                continue
            if not self.enabled:
                state = [
                    self._state_for_bits(
                        self._packed(wire_type_name, (z, t, c)), ripup_level
                    )
                    for c in range(c_lo, c_hi + 1)
                ]
            else:
                computed = self.ensure_words(wire_type_name, z, t, c_lo, c_hi)
                reused = (c_hi - c_lo + 1) - computed
                if reused > 0:
                    self.hits += reused
                    if OBS.enabled:
                        OBS.count("fastgrid.hits", reused)
                tw = self._tracks[(wire_type_name, z, t)]
                if self.vectorized:
                    seg = tw.words[c_lo:c_hi + 1]
                    legal = (seg & 1).astype(bool)
                    state = legal.view(_np.int8).copy()
                    if ripup_level >= 0:
                        enc = (seg >> 4) & 7
                        rippable = (
                            ~legal
                            & (enc != _RIPUP_FIXED_ENC)
                            & (enc <= ripup_level)
                        )
                        state[rippable] = 2
                else:
                    words = tw.words
                    state = [
                        self._state_for_bits(words[c], ripup_level)
                        for c in range(c_lo, c_hi + 1)
                    ]
            if forced_cs:
                for c in forced_cs:
                    if c_lo <= c <= c_hi:
                        state[c - c_lo] = 1
            self._append_state_runs(runs, state, c_lo)
        return runs

    @staticmethod
    def _state_for_bits(bits: int, ripup_level: int) -> int:
        """0 = blocked, 1 = plainly wire-usable, 2 = usable via ripup."""
        if bits & 1:
            return 1
        if ripup_level < 0:
            return 0
        enc = (bits >> 4) & 7
        if enc != _RIPUP_FIXED_ENC and enc <= ripup_level:
            return 2
        return 0

    @staticmethod
    def _append_state_runs(
        runs: List[Tuple[int, int, bool]], state, c_lo: int
    ) -> None:
        n = len(state)
        if _np is not None and isinstance(state, _np.ndarray):
            change = _np.flatnonzero(state[1:] != state[:-1]) + 1
            starts = [0] + [int(i) for i in change]
        else:
            starts = [0] + [
                i for i in range(1, n) if state[i] != state[i - 1]
            ]
        starts.append(n)
        for k in range(len(starts) - 1):
            s, e = starts[k], starts[k + 1]
            st = int(state[s])
            if st == 1:
                runs.append((c_lo + s, c_lo + e - 1, False))
            elif st == 2:
                for c in range(c_lo + s, c_lo + e):
                    runs.append((c, c, True))

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def invalidate_region(self, layer: int, rect: Rect, off_track: bool = False) -> None:
        """Clear cached words near ``rect`` on ``layer`` and its neighbours.

        Via legality on adjacent layers depends on shapes here, so the
        invalidation spans layers ``layer - 1 .. layer + 1``.  Validity
        bits are cleared with one slice store per cached track, the
        global epoch is bumped once (invalidating the segment memo), and
        each touched track's epoch is bumped (invalidating interval-cache
        runs).  With ``off_track`` set, the affected vertices additionally
        get dirty bits so incident-edge legality is re-derived from the
        shape grid.
        """
        self.epoch += 1
        stack = self.graph.stack
        track_epochs = self._track_epochs
        for z in (layer - 1, layer, layer + 1):
            if not stack.has_layer(z):
                continue
            radius = self.checker.rules.max_interaction_distance(z) + 2 * stack[z].pitch
            window = rect.expanded(radius)
            if stack.direction(z) is Direction.HORIZONTAL:
                track_lo, track_hi = window.y_lo, window.y_hi
                cross_lo, cross_hi = window.x_lo, window.x_hi
            else:
                track_lo, track_hi = window.x_lo, window.x_hi
                cross_lo, cross_hi = window.y_lo, window.y_hi
            track_range = self.graph.tracks_in_range(z, track_lo, track_hi)
            cross_range = self.graph.crosses_in_range(z, cross_lo, cross_hi)
            if not cross_range:
                continue
            c_lo, c_hi = cross_range[0], cross_range[-1]
            for t in track_range:
                track_epochs[(z, t)] = track_epochs.get((z, t), 0) + 1
            if self.vectorized:
                for wt_name in self.wire_types:
                    for t in track_range:
                        tw = self._tracks.get((wt_name, z, t))
                        if tw is not None:
                            tw.valid[c_lo:c_hi + 1] = False
            else:
                for wt_name in self.wire_types:
                    for t in track_range:
                        tw = self._tracks.get((wt_name, z, t))
                        if tw is not None:
                            for c in range(c_lo, c_hi + 1):
                                tw.valid[c] = 0
            if off_track:
                for t in track_range:
                    dirty = self._dirty.setdefault((z, t), set())
                    dirty.update(range(c_lo, c_hi + 1))

    def clear_dirty(self, layer: int, rect: Rect) -> None:
        """Remove dirty bits in a region (after off-track shapes left)."""
        stack = self.graph.stack
        for z in (layer - 1, layer, layer + 1):
            if not stack.has_layer(z):
                continue
            radius = self.checker.rules.max_interaction_distance(z) + 2 * stack[z].pitch
            window = rect.expanded(radius)
            if stack.direction(z) is Direction.HORIZONTAL:
                track_range = self.graph.tracks_in_range(z, window.y_lo, window.y_hi)
                cross_range = self.graph.crosses_in_range(z, window.x_lo, window.x_hi)
            else:
                track_range = self.graph.tracks_in_range(z, window.x_lo, window.x_hi)
                cross_range = self.graph.crosses_in_range(z, window.y_lo, window.y_hi)
            if not cross_range:
                continue
            for t in track_range:
                dirty = self._dirty.get((z, t))
                if dirty:
                    dirty.difference_update(cross_range)

    # ------------------------------------------------------------------
    # Statistics (Sec. 3.6 / Fig. 4)
    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def interval_count(self) -> int:
        """Number of maximal runs of identical cached words.

        This is the storage unit of the real fast grid (Fig. 4); we keep
        per-vertex word arrays for simplicity but report the interval
        statistic they would compress to.  Tracks iterate in stored
        (array) order — no per-call sorting.
        """
        count = 0
        if self.vectorized:
            for tw in self._tracks.values():
                valid_idx = _np.flatnonzero(tw.valid)
                if len(valid_idx) == 0:
                    continue
                count += 1
                if len(valid_idx) > 1:
                    contiguous = valid_idx[1:] == valid_idx[:-1] + 1
                    same = tw.words[valid_idx[1:]] == tw.words[valid_idx[:-1]]
                    count += int((~(contiguous & same)).sum())
            return count
        for tw in self._tracks.values():
            previous_c: Optional[int] = None
            previous_word: Optional[int] = None
            valid = tw.valid
            words = tw.words
            for c in range(len(valid)):
                if not valid[c]:
                    continue
                word = words[c]
                if previous_c is None or c != previous_c + 1 or word != previous_word:
                    count += 1
                previous_c = c
                previous_word = word
        return count
