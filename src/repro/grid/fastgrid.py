"""The fast grid (Sec. 3.6).

Caches, for a small set of frequently used wire types, the legality of the
four shape types {preferred-direction wire, jog, via down, via up} at
on-track locations, so the on-track path search rarely needs the (much
slower) distance rule checking module.  Words are computed lazily and kept
per track in interval-compressible caches; every shape insertion or
removal invalidates the affected region.

Edge usability is deduced from the two endpoint vertex words whenever only
on-track wiring is present; where off-track shapes are nearby, a *dirty
bit* at a vertex forces a direct shape-grid query for its incident edges
(the zigzag-edge bit of Fig. 4).

The grid counts hits and misses, reproducing the paper's statistics
(97.89 % of queries answered by the fast grid; 5.29x on-track speed-up).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.geometry.rect import Rect
from repro.grid.drc_query import DistanceRuleChecker, PlacementCheck, PrefetchedBand
from repro.grid.shapegrid import RIPUP_FIXED
from repro.obs import OBS
from repro.grid.trackgraph import TrackGraph, Vertex
from repro.tech.layers import Direction
from repro.tech.wiring import StickFigure, WireType

#: Shape types a fast-grid word stores, in order.
SHAPE_TYPES = ("wire", "jog", "via_down", "via_up")

#: Per shape type: (legal, ripup_level_needed); RIPUP_FIXED when not even
#: ripup can make it legal.
Word = Tuple[Tuple[bool, int], ...]


class FastGrid:
    """Per-wire-type legality cache over the track graph."""

    def __init__(
        self,
        graph: TrackGraph,
        checker: DistanceRuleChecker,
        wire_types: Sequence[WireType],
        enabled: bool = True,
    ) -> None:
        self.graph = graph
        self.checker = checker
        self.wire_types: Dict[str, WireType] = {wt.name: wt for wt in wire_types}
        #: When disabled, every query goes straight to the checker
        #: (ablation baseline for the 5.29x speed-up statistic).
        self.enabled = enabled
        # cache[(wiretype, z, t)][c] -> Word
        self._cache: Dict[Tuple[str, int, int], Dict[int, Word]] = {}
        # Vertices whose incident edges cannot be deduced from vertex
        # words because off-track shapes are nearby.
        self._dirty: Dict[Tuple[int, int], set] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Word computation
    # ------------------------------------------------------------------
    def _compute_word(
        self, wire_type: WireType, vertex: Vertex, prefetched=None
    ) -> Word:
        x, y, z = self.graph.position(vertex)
        checks: List[Tuple[bool, int]] = []
        stack = self.graph.stack
        point = StickFigure(z, x, y, x, y)
        wiring_entries = (
            None if prefetched is None else prefetched.get(("wiring", z))
        )
        for shape_type in SHAPE_TYPES:
            check: Optional[PlacementCheck] = None
            if shape_type == "wire":
                if wire_type.has_layer(z):
                    shape, cls, _ = wire_type.wire_shape(point, stack)
                    check = self.checker.check_metal(
                        z, shape, cls.rule_width, None, prefetched=wiring_entries
                    )
            elif shape_type == "jog":
                if wire_type.has_layer(z):
                    model = wire_type.nonpreferred_model(z)
                    shape = model.metal_shape(point, stack.direction(z))
                    check = self.checker.check_metal(
                        z, shape, model.shape_class.rule_width, None,
                        prefetched=wiring_entries,
                    )
            elif shape_type == "via_down":
                if stack.has_layer(z - 1) and wire_type.has_via_layer(z - 1):
                    check = self.checker.check_via(
                        wire_type, z - 1, x, y, None, prefetched=prefetched
                    )
            else:  # via_up
                if stack.has_layer(z + 1) and wire_type.has_via_layer(z):
                    check = self.checker.check_via(
                        wire_type, z, x, y, None, prefetched=prefetched
                    )
            if check is None:
                checks.append((False, RIPUP_FIXED))
            else:
                checks.append((check.legal, check.max_ripup_needed))
        return tuple(checks)

    def ensure_words(
        self, wire_type_name: str, z: int, t: int, c_lo: int, c_hi: int
    ) -> None:
        """Batch-fill the word cache for a track segment.

        One shape-grid traversal per (kind, layer) band replaces the
        per-vertex traversals; each vertex's checks then filter the
        prefetched entries by its own query window, giving results
        identical to individual :meth:`word` calls.
        """
        if not self.enabled or c_lo > c_hi:
            return
        key = (wire_type_name, z, t)
        track_cache = self._cache.setdefault(key, {})
        missing = [c for c in range(c_lo, c_hi + 1) if c not in track_cache]
        if not missing:
            return
        wire_type = self.wire_types[wire_type_name]
        graph = self.graph
        stack = graph.stack
        x0, y0, _ = graph.position((z, t, missing[0]))
        x1, y1, _ = graph.position((z, t, missing[-1]))
        band = Rect(min(x0, x1), min(y0, y1), max(x0, x1), max(y0, y1))
        prefetched = {}
        for layer in (z - 1, z, z + 1):
            if not stack.has_layer(layer):
                continue
            margin = (
                self.checker.rules.max_interaction_distance(layer)
                + 4 * stack[layer].pitch
            )
            prefetched[("wiring", layer)] = PrefetchedBand(
                self.checker.prefetch_entries("wiring", layer, band.expanded(margin)),
                axis_x=band.width >= band.height,
            )
        for via_layer in (z - 1, z):
            if via_layer in stack.via_layers():
                margin = 4 * stack[via_layer].pitch
                prefetched[("via", via_layer)] = PrefetchedBand(
                    self.checker.prefetch_entries(
                        "via", via_layer, band.expanded(margin)
                    ),
                    axis_x=band.width >= band.height,
                )
        for c in missing:
            self.misses += 1
            track_cache[c] = self._compute_word(
                wire_type, (z, t, c), prefetched=prefetched
            )
        if OBS.enabled:
            OBS.count("fastgrid.misses", len(missing))
            OBS.count("fastgrid.words_prefetched", len(missing))

    def word(self, wire_type_name: str, vertex: Vertex) -> Word:
        """Legality word at a vertex, from cache or freshly computed.

        The word is computed net-blind (net=None): any foreign *or own*
        shape in range counts.  The path search treats the source/target
        components specially by temporarily removing their shapes
        (Sec. 4.4), so net-blind words stay correct.
        """
        wire_type = self.wire_types[wire_type_name]
        if not self.enabled:
            self.misses += 1
            if OBS.enabled:
                OBS.count("fastgrid.misses")
            return self._compute_word(wire_type, vertex)
        z, t, c = vertex
        key = (wire_type_name, z, t)
        track_cache = self._cache.get(key)
        if track_cache is None:
            track_cache = {}
            self._cache[key] = track_cache
        word = track_cache.get(c)
        if word is not None:
            self.hits += 1
            if OBS.enabled:
                OBS.count("fastgrid.hits")
            return word
        self.misses += 1
        if OBS.enabled:
            OBS.count("fastgrid.misses")
        word = self._compute_word(wire_type, vertex)
        track_cache[c] = word
        return word

    # ------------------------------------------------------------------
    # Usability queries used by the path search
    # ------------------------------------------------------------------
    def vertex_usable(
        self, wire_type_name: str, vertex: Vertex, shape_type: str, ripup_level: int = -2
    ) -> bool:
        """Is ``shape_type`` legal at ``vertex`` (with optional ripup)?

        ``ripup_level`` -2 (default) requires full legality; otherwise
        shapes up to that ripup level may be assumed removable.
        """
        legal, needed = self.word(wire_type_name, vertex)[
            SHAPE_TYPES.index(shape_type)
        ]
        if legal:
            return True
        if ripup_level < 0:
            return False
        return needed != RIPUP_FIXED and needed <= ripup_level

    def vertex_needs_ripup(
        self, wire_type_name: str, vertex: Vertex, shape_type: str
    ) -> bool:
        legal, _needed = self.word(wire_type_name, vertex)[
            SHAPE_TYPES.index(shape_type)
        ]
        return not legal

    def edge_usable(
        self,
        wire_type_name: str,
        v: Vertex,
        w: Vertex,
        kind: str,
        ripup_level: int = -2,
    ) -> bool:
        """Usability of the track-graph edge (v, w) for the wire type.

        Deduce from the endpoint words unless a dirty bit forces a direct
        segment query (Sec. 3.6 / Fig. 4).
        """
        if OBS.enabled:
            OBS.count("fastgrid.queries")
        if kind == "via":
            upper_vertex = v if v[0] > w[0] else w
            lower_vertex = w if v[0] > w[0] else v
            return self.vertex_usable(
                wire_type_name, lower_vertex, "via_up", ripup_level
            ) and self.vertex_usable(
                wire_type_name, upper_vertex, "via_down", ripup_level
            )
        shape_type = "wire" if kind == "wire" else "jog"
        if self._is_dirty(v) or self._is_dirty(w):
            return self._segment_check(wire_type_name, v, w, kind, ripup_level)
        return self.vertex_usable(
            wire_type_name, v, shape_type, ripup_level
        ) and self.vertex_usable(wire_type_name, w, shape_type, ripup_level)

    def _segment_check(
        self, wire_type_name: str, v: Vertex, w: Vertex, kind: str, ripup_level: int
    ) -> bool:
        if OBS.enabled:
            OBS.count("fastgrid.shapegrid_fallbacks")
        wire_type = self.wire_types[wire_type_name]
        xv, yv, z = self.graph.position(v)
        xw, yw, _ = self.graph.position(w)
        stick = StickFigure(z, xv, yv, xw, yw)
        check = self.checker.check_wire(wire_type, stick, None)
        if check.legal:
            return True
        if ripup_level < 0:
            return False
        return check.max_ripup_needed != RIPUP_FIXED and (
            check.max_ripup_needed <= ripup_level
        )

    def _is_dirty(self, vertex: Vertex) -> bool:
        z, t, c = vertex
        dirty = self._dirty.get((z, t))
        return dirty is not None and c in dirty

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def invalidate_region(self, layer: int, rect: Rect, off_track: bool = False) -> None:
        """Drop cached words near ``rect`` on ``layer`` and its neighbours.

        Via legality on adjacent layers depends on shapes here, so the
        invalidation spans layers ``layer - 1 .. layer + 1``.  With
        ``off_track`` set, the affected vertices additionally get dirty
        bits so incident-edge legality is re-derived from the shape grid.
        """
        stack = self.graph.stack
        for z in (layer - 1, layer, layer + 1):
            if not stack.has_layer(z):
                continue
            radius = self.checker.rules.max_interaction_distance(z) + 2 * stack[z].pitch
            window = rect.expanded(radius)
            if stack.direction(z) is Direction.HORIZONTAL:
                track_lo, track_hi = window.y_lo, window.y_hi
                cross_lo, cross_hi = window.x_lo, window.x_hi
            else:
                track_lo, track_hi = window.x_lo, window.x_hi
                cross_lo, cross_hi = window.y_lo, window.y_hi
            track_range = self.graph.tracks_in_range(z, track_lo, track_hi)
            cross_range = self.graph.crosses_in_range(z, cross_lo, cross_hi)
            if not cross_range:
                continue
            c_lo, c_hi = cross_range[0], cross_range[-1]
            for wt_name in self.wire_types:
                for t in track_range:
                    track_cache = self._cache.get((wt_name, z, t))
                    if not track_cache:
                        continue
                    for c in range(c_lo, c_hi + 1):
                        track_cache.pop(c, None)
            if off_track:
                for t in track_range:
                    dirty = self._dirty.setdefault((z, t), set())
                    dirty.update(range(c_lo, c_hi + 1))

    def clear_dirty(self, layer: int, rect: Rect) -> None:
        """Remove dirty bits in a region (after off-track shapes left)."""
        stack = self.graph.stack
        for z in (layer - 1, layer, layer + 1):
            if not stack.has_layer(z):
                continue
            radius = self.checker.rules.max_interaction_distance(z) + 2 * stack[z].pitch
            window = rect.expanded(radius)
            if stack.direction(z) is Direction.HORIZONTAL:
                track_range = self.graph.tracks_in_range(z, window.y_lo, window.y_hi)
                cross_range = self.graph.crosses_in_range(z, window.x_lo, window.x_hi)
            else:
                track_range = self.graph.tracks_in_range(z, window.x_lo, window.x_hi)
                cross_range = self.graph.crosses_in_range(z, window.y_lo, window.y_hi)
            if not cross_range:
                continue
            for t in track_range:
                dirty = self._dirty.get((z, t))
                if dirty:
                    dirty.difference_update(cross_range)

    # ------------------------------------------------------------------
    # Statistics (Sec. 3.6 / Fig. 4)
    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def interval_count(self) -> int:
        """Number of maximal runs of identical cached words.

        This is the storage unit of the real fast grid (Fig. 4); we keep
        a plain per-vertex cache for simplicity but report the interval
        statistic it would compress to.
        """
        count = 0
        for track_cache in self._cache.values():
            previous_c: Optional[int] = None
            previous_word: Optional[Word] = None
            for c in sorted(track_cache):
                word = track_cache[c]
                if previous_c is None or c != previous_c + 1 or word != previous_word:
                    count += 1
                previous_c = c
                previous_word = word
        return count
