"""Distance rule checking module (Sec. 3.4).

The interface between the shape grid and everything else.  Given a
location and wire/via models, it decides whether the induced metal can be
placed without diff-net minimum-distance violations, and if not, which
nets would have to be (partially) removed to make the answer positive.

Spacing model:

* the candidate's metal shape already includes the pessimistic line-end
  extension in preferred direction (jogs excluded), so line-end rules are
  geometric rather than extra spacing terms (Sec. 3.1, Fig. 2);
* the required distance between two shapes is the spacing table evaluated
  at (max rule width, common run-length), measured as the l2 gap of the
  rectangles (Sec. 3.1);
* run-length against clipped shape-grid pieces is computed after merging
  abutting pieces of the same net within the query window, so long wires
  stored cell-by-cell keep their full run-length;
* inter-layer via rules are checked inside a single via layer against the
  stored cut projections (Sec. 3.2).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.geometry.l1 import rect_l2_gap, run_length
from repro.geometry.rect import Rect
from repro.grid.shapegrid import RIPUP_FIXED, ShapeEntry, ShapeGrid
from repro.tech.layers import LayerStack
from repro.tech.rules import RuleSet
from repro.tech.wiring import ShapeKind, StickFigure, WireType


class PlacementCheck:
    """Outcome of a placement query."""

    __slots__ = ("legal", "blockers", "max_ripup_needed")

    def __init__(
        self,
        legal: bool,
        blockers: Set[str],
        max_ripup_needed: int,
    ) -> None:
        #: True iff no diff-net violation at all.
        self.legal = legal
        #: Nets whose (partial) removal would make the placement legal;
        #: empty when a fixed shape is violated (unfixable by ripup).
        self.blockers = blockers
        #: Largest ripup level among violating shapes, RIPUP_FIXED if any
        #: violating shape cannot be removed.
        self.max_ripup_needed = max_ripup_needed

    def legal_with_ripup(self, allowed_level: int) -> bool:
        """Legal if ripping shapes of level <= allowed_level is permitted."""
        if self.legal:
            return True
        if self.max_ripup_needed == RIPUP_FIXED:
            return False
        return self.max_ripup_needed <= allowed_level

    def __repr__(self) -> str:
        return (
            f"PlacementCheck(legal={self.legal}, blockers={sorted(self.blockers)}, "
            f"ripup={self.max_ripup_needed})"
        )


_LEGAL = PlacementCheck(True, set(), 0)


class PrefetchedBand:
    """Shape entries of one band, indexed for fast window filtering.

    Entries are sorted by their low coordinate along the band's long
    axis; a window query bisects into that order and only rect-checks the
    handful of candidates whose along-axis span can reach the window.
    """

    __slots__ = ("entries", "_los", "_axis_x", "_max_span")

    def __init__(self, entries: List[ShapeEntry], axis_x: bool) -> None:
        self._axis_x = axis_x
        if axis_x:
            entries = sorted(entries, key=lambda e: e.rect.x_lo)
            spans = [e.rect.width for e in entries]
            self._los = [e.rect.x_lo for e in entries]
        else:
            entries = sorted(entries, key=lambda e: e.rect.y_lo)
            spans = [e.rect.height for e in entries]
            self._los = [e.rect.y_lo for e in entries]
        self.entries = entries
        self._max_span = max(spans) if spans else 0

    def query(self, window: Rect) -> List[ShapeEntry]:
        import bisect

        if self._axis_x:
            lo_bound = window.x_lo - self._max_span
            hi_bound = window.x_hi
        else:
            lo_bound = window.y_lo - self._max_span
            hi_bound = window.y_hi
        start = bisect.bisect_left(self._los, lo_bound)
        end = bisect.bisect_right(self._los, hi_bound)
        return [
            e for e in self.entries[start:end] if e.rect.intersects(window)
        ]


def _filter_prefetched(prefetched, window: Rect) -> List[ShapeEntry]:
    if isinstance(prefetched, PrefetchedBand):
        return prefetched.query(window)
    return [e for e in prefetched if e.rect.intersects(window)]


def _merge_same_net_pieces(entries: Sequence[ShapeEntry]) -> List[ShapeEntry]:
    """Merge abutting clipped pieces of the same net/class into longer rects.

    Restores run-lengths of long shapes that the shape grid stores
    cell-by-cell.  Merging is done greedily per (net, class, kind) group:
    pieces that share a full edge are coalesced until a fixed point.
    """
    groups: Dict[Tuple, List[ShapeEntry]] = {}
    for entry in entries:
        key = (entry.net, entry.class_name, entry.shape_kind, entry.ripup_level)
        groups.setdefault(key, []).append(entry)
    merged: List[ShapeEntry] = []
    for key, group in groups.items():
        rects = [e.rect for e in group]
        changed = True
        while changed and len(rects) > 1:
            changed = False
            out: List[Rect] = []
            used = [False] * len(rects)
            for i in range(len(rects)):
                if used[i]:
                    continue
                current = rects[i]
                for j in range(i + 1, len(rects)):
                    if used[j]:
                        continue
                    other = rects[j]
                    if (
                        current.y_lo == other.y_lo
                        and current.y_hi == other.y_hi
                        and current.x_lo <= other.x_hi
                        and other.x_lo <= current.x_hi
                    ):
                        current = current.hull(other)
                        used[j] = True
                        changed = True
                    elif (
                        current.x_lo == other.x_lo
                        and current.x_hi == other.x_hi
                        and current.y_lo <= other.y_hi
                        and other.y_lo <= current.y_hi
                    ):
                        current = current.hull(other)
                        used[j] = True
                        changed = True
                used[i] = True
                out.append(current)
            rects = out
        sample = group[0]
        for rect in rects:
            merged.append(
                ShapeEntry(
                    rect,
                    sample.net,
                    sample.class_name,
                    sample.shape_kind,
                    sample.ripup_level,
                    sample.rule_width,
                )
            )
    return merged


class DistanceRuleChecker:
    """Diff-net rule oracle over a :class:`ShapeGrid`."""

    def __init__(self, grid: ShapeGrid, stack: LayerStack, rules: RuleSet) -> None:
        self.grid = grid
        self.stack = stack
        self.rules = rules
        #: Query statistics; the fast grid reports its hit rate against
        #: these (Sec. 3.6's 97.89 % statistic).
        self.query_count = 0

    # ------------------------------------------------------------------
    # Single-shape check
    # ------------------------------------------------------------------
    def prefetch_entries(self, kind: str, layer: int, band: Rect) -> List[ShapeEntry]:
        """One shape-grid query covering a whole band of future checks.

        Used by the fast grid to compute legality words for a full track
        segment with a single grid traversal; the per-candidate check then
        filters this list by its own window, which yields exactly the same
        result as an individual query.
        """
        return self.grid.query(kind, layer, band)

    def check_metal(
        self,
        layer: int,
        candidate: Rect,
        rule_width: int,
        net: Optional[str],
        prefetched: Optional[Sequence[ShapeEntry]] = None,
    ) -> PlacementCheck:
        """Check one candidate wiring-layer rectangle against stored shapes."""
        self.query_count += 1
        rule = self.rules.spacing_rule(layer)
        radius = rule.max_spacing()
        window = candidate.expanded(radius + 1)
        if prefetched is None:
            entries = self.grid.query("wiring", layer, window)
        else:
            entries = _filter_prefetched(prefetched, window)
        return self._evaluate(entries, candidate, rule_width, net, rule.spacing)

    def check_via_cut(
        self,
        via_layer: int,
        candidate: Rect,
        rule_width: int,
        net: Optional[str],
        prefetched: Optional[Sequence[ShapeEntry]] = None,
    ) -> PlacementCheck:
        """Check a via cut, including the inter-layer via rule (Sec. 3.2)."""
        self.query_count += 1
        via_rule = self.rules.via_rule(via_layer)
        if via_rule is None:
            return _LEGAL
        radius = max(via_rule.cut_spacing, via_rule.adjacent_layer_spacing)
        window = candidate.expanded(radius + 1)
        if prefetched is None:
            entries = self.grid.query("via", via_layer, window)
        else:
            entries = _filter_prefetched(prefetched, window)

        def spacing(width_a: int, width_b: int, rl: int) -> int:
            return via_rule.cut_spacing

        # Projections of cuts from the adjacent via layer need the
        # (typically smaller) adjacent-layer spacing; split the entries.
        projections = [
            e for e in entries
            if e.shape_kind == ShapeKind.VIA_CUT_PROJECTION.value
        ]
        cuts = [
            e for e in entries
            if e.shape_kind != ShapeKind.VIA_CUT_PROJECTION.value
        ]
        result = self._evaluate(cuts, candidate, rule_width, net, spacing)
        if projections and via_rule.adjacent_layer_spacing > 0:

            def adj_spacing(width_a: int, width_b: int, rl: int) -> int:
                return via_rule.adjacent_layer_spacing

            other = self._evaluate(
                projections, candidate, rule_width, net, adj_spacing
            )
            result = _combine(result, other)
        return result

    def _evaluate(
        self,
        entries: Iterable[ShapeEntry],
        candidate: Rect,
        rule_width: int,
        net: Optional[str],
        spacing_fn,
    ) -> PlacementCheck:
        diff_net = [e for e in entries if net is None or e.net != net]
        if not diff_net:
            return _LEGAL
        merged = _merge_same_net_pieces(diff_net)
        blockers: Set[str] = set()
        max_ripup = 0
        legal = True
        for entry in merged:
            required = spacing_fn(rule_width, entry.rule_width, run_length(candidate, entry.rect))
            if rect_l2_gap(candidate, entry.rect) < required:
                legal = False
                if entry.ripup_level == RIPUP_FIXED or entry.net is None:
                    return PlacementCheck(False, set(), RIPUP_FIXED)
                blockers.add(entry.net)
                max_ripup = max(max_ripup, entry.ripup_level)
        if legal:
            return _LEGAL
        return PlacementCheck(False, blockers, max_ripup)

    # ------------------------------------------------------------------
    # Model-level checks (the Sec. 3.4 interface)
    # ------------------------------------------------------------------
    def check_wire(
        self, wire_type: WireType, stick: StickFigure, net: Optional[str]
    ) -> PlacementCheck:
        """Check a wire stick figure placed with ``wire_type``."""
        shape, shape_class, _kind = wire_type.wire_shape(stick, self.stack)
        return self.check_metal(stick.layer, shape, shape_class.rule_width, net)

    def check_via(
        self,
        wire_type: WireType,
        via_layer: int,
        x: int,
        y: int,
        net: Optional[str],
        prefetched: Optional[Dict[Tuple[str, int], Sequence[ShapeEntry]]] = None,
    ) -> PlacementCheck:
        """Check a via of ``wire_type`` anchored at (x, y) on ``via_layer``.

        ``prefetched`` optionally maps (kind, layer) to entry lists
        covering the via's query windows (batched fast-grid filling).
        """
        model = wire_type.via_model(via_layer)
        result = _LEGAL
        for kind, layer, rect, shape_class, shape_kind in model.shapes(x, y, via_layer):
            if shape_kind is ShapeKind.VIA_CUT_PROJECTION:
                # The projection is only an obstacle for *other* vias; it
                # is checked implicitly when those are placed.
                continue
            entries = None if prefetched is None else prefetched.get((kind, layer))
            if kind == "wiring":
                check = self.check_metal(
                    layer, rect, shape_class.rule_width, net, prefetched=entries
                )
            else:
                check = self.check_via_cut(
                    layer, rect, shape_class.rule_width, net, prefetched=entries
                )
            result = _combine(result, check)
            if not result.legal and result.max_ripup_needed == RIPUP_FIXED:
                return result
        return result

    def allowed_models(
        self,
        wire_types: Sequence[WireType],
        layer: int,
        x: int,
        y: int,
        net: Optional[str],
    ) -> Dict[str, Dict[str, bool]]:
        """Sec. 3.4 query: which models of which wire types fit at (x, y).

        Returns per wire type the legality of {pref wire start, jog start,
        via down, via up} at the location, the same four shape types the
        fast grid stores words for (Sec. 3.6).
        """
        out: Dict[str, Dict[str, bool]] = {}
        for wire_type in wire_types:
            entry: Dict[str, bool] = {}
            if wire_type.has_layer(layer):
                pref = StickFigure(layer, x, y, x, y)
                shape, cls, _ = wire_type.wire_shape(pref, self.stack)
                entry["wire"] = self.check_metal(layer, shape, cls.rule_width, net).legal
                model = wire_type.nonpreferred_model(layer)
                jog_shape = model.metal_shape(pref, self.stack.direction(layer))
                entry["jog"] = self.check_metal(
                    layer, jog_shape, model.shape_class.rule_width, net
                ).legal
            if self.stack.has_layer(layer - 1) and wire_type.has_via_layer(layer - 1):
                entry["via_down"] = self.check_via(wire_type, layer - 1, x, y, net).legal
            if self.stack.has_layer(layer + 1) and wire_type.has_via_layer(layer):
                entry["via_up"] = self.check_via(wire_type, layer, x, y, net).legal
            out[wire_type.name] = entry
        return out


def _combine(a: PlacementCheck, b: PlacementCheck) -> PlacementCheck:
    if a.legal:
        return b
    if b.legal:
        return a
    if a.max_ripup_needed == RIPUP_FIXED or b.max_ripup_needed == RIPUP_FIXED:
        return PlacementCheck(False, set(), RIPUP_FIXED)
    return PlacementCheck(
        False,
        a.blockers | b.blockers,
        max(a.max_ripup_needed, b.max_ripup_needed),
    )
