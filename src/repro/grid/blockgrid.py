"""Blockage grid for off-track wiring (Sec. 3.8, Algorithm 3, Thm 3.2).

Supports shortest *tau-feasible* rectilinear paths: every segment must be
at least ``tau`` long (the minimum-segment-length requirement most
same-net rules map to, Nieberg [2011]) and must not cross the interior of
any obstacle.

Construction follows Algorithm 3: starting from the Hanan coordinates of
the obstacle borders plus the terminals, additional lines at multiples of
tau are inserted wherever consecutive coordinates are closer than 4 tau.
Theorem 3.2 (Massberg & Nieberg) guarantees a shortest tau-feasible path
exists with all bend points on this grid.

The search runs on the *path-preserving digraph*: up to four copies of
each grid vertex, one per incoming direction; straight continuation arcs
are free-form, but a bend must first traverse a "long arc" to the nearest
vertex at distance >= tau perpendicular to the incoming direction, so no
short segment can ever follow a bend.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple

from repro.geometry.hanan import refine_with_pitch
from repro.geometry.rect import Rect
from repro.util.heap import AddressableHeap

Point = Tuple[int, int]

#: Direction encodings: +x, -x, +y, -y.
EAST, WEST, NORTH, SOUTH = 0, 1, 2, 3
_HORIZONTAL = (EAST, WEST)
_VERTICAL = (NORTH, SOUTH)


def blockage_grid_coordinates(
    obstacles: Sequence[Rect],
    terminals: Sequence[Point],
    tau: int,
    bbox: Rect,
) -> Tuple[List[int], List[int]]:
    """Algorithm 3 in both axes: refined x- and y-coordinate lists."""
    xs = {bbox.x_lo, bbox.x_hi}
    ys = {bbox.y_lo, bbox.y_hi}
    for rect in obstacles:
        xs.update((rect.x_lo, rect.x_hi))
        ys.update((rect.y_lo, rect.y_hi))
    for x, y in terminals:
        xs.add(x)
        ys.add(y)
    xs_refined = [x for x in refine_with_pitch(sorted(xs), tau) if bbox.x_lo <= x <= bbox.x_hi]
    ys_refined = [y for y in refine_with_pitch(sorted(ys), tau) if bbox.y_lo <= y <= bbox.y_hi]
    return xs_refined, ys_refined


class BlockageGrid:
    """Single-layer tau-feasible shortest path search."""

    def __init__(
        self,
        obstacles: Sequence[Rect],
        tau: int,
        bbox: Rect,
        terminals: Sequence[Point] = (),
    ) -> None:
        if tau <= 0:
            raise ValueError("tau must be positive")
        self.tau = tau
        self.bbox = bbox
        self.obstacles = [r for r in obstacles if r.area > 0 and r.intersects(bbox)]
        self.xs, self.ys = blockage_grid_coordinates(
            self.obstacles, terminals, tau, bbox
        )
        self._x_index = {x: i for i, x in enumerate(self.xs)}
        self._y_index = {y: j for j, y in enumerate(self.ys)}
        self._build_blocked_edges()

    # ------------------------------------------------------------------
    # Geometry preprocessing
    # ------------------------------------------------------------------
    def _build_blocked_edges(self) -> None:
        """Mark grid edges whose open interior crosses an obstacle interior."""
        nx, ny = len(self.xs), len(self.ys)
        # hblock[j] is a set of i such that edge (xs[i], ys[j])-(xs[i+1], ys[j])
        # is blocked; vblock[i] likewise for vertical edges.
        self.hblock: Dict[int, set] = {}
        self.vblock: Dict[int, set] = {}
        self.vertex_blocked: set = set()
        for rect in self.obstacles:
            # A horizontal line at y crosses the interior iff y is strictly
            # between the rect's y borders; the edge's open x-span must
            # overlap the rect's open x-span.
            j_lo = bisect.bisect_right(self.ys, rect.y_lo)
            j_hi = bisect.bisect_left(self.ys, rect.y_hi)
            i_lo = bisect.bisect_left(self.xs, rect.x_lo)
            i_hi = bisect.bisect_left(self.xs, rect.x_hi)
            for j in range(j_lo, j_hi):
                blocked = self.hblock.setdefault(j, set())
                blocked.update(range(i_lo, i_hi))
            i_lo_v = bisect.bisect_right(self.xs, rect.x_lo)
            i_hi_v = bisect.bisect_left(self.xs, rect.x_hi)
            j_lo_v = bisect.bisect_left(self.ys, rect.y_lo)
            j_hi_v = bisect.bisect_left(self.ys, rect.y_hi)
            for i in range(i_lo_v, i_hi_v):
                blocked = self.vblock.setdefault(i, set())
                blocked.update(range(j_lo_v, j_hi_v))
            # Vertices strictly inside an obstacle are unusable.
            for i in range(i_lo_v, i_hi_v):
                for j in range(j_lo, j_hi):
                    self.vertex_blocked.add((i, j))

    def _h_edge_free(self, i: int, j: int) -> bool:
        blocked = self.hblock.get(j)
        return blocked is None or i not in blocked

    def _v_edge_free(self, i: int, j: int) -> bool:
        blocked = self.vblock.get(i)
        return blocked is None or j not in blocked

    def _run_free_h(self, j: int, i_lo: int, i_hi: int) -> bool:
        """Is the horizontal run xs[i_lo]..xs[i_hi] at ys[j] obstacle-free?"""
        blocked = self.hblock.get(j)
        if blocked is None:
            return True
        return all(i not in blocked for i in range(i_lo, i_hi))

    def _run_free_v(self, i: int, j_lo: int, j_hi: int) -> bool:
        blocked = self.vblock.get(i)
        if blocked is None:
            return True
        return all(j not in blocked for j in range(j_lo, j_hi))

    # ------------------------------------------------------------------
    # Long arcs (first move after a bend / from a source)
    # ------------------------------------------------------------------
    def _long_arc_target(self, i: int, j: int, direction: int) -> Optional[Tuple[int, int, int]]:
        """Nearest vertex at distance >= tau in ``direction`` with a clear
        run; returns (i', j', length) or None."""
        tau = self.tau
        if direction == EAST:
            target = self.xs[i] + tau
            k = bisect.bisect_left(self.xs, target)
            if k >= len(self.xs):
                return None
            if not self._run_free_h(j, i, k):
                return None
            return (k, j, self.xs[k] - self.xs[i])
        if direction == WEST:
            target = self.xs[i] - tau
            k = bisect.bisect_right(self.xs, target) - 1
            if k < 0:
                return None
            if not self._run_free_h(j, k, i):
                return None
            return (k, j, self.xs[i] - self.xs[k])
        if direction == NORTH:
            target = self.ys[j] + tau
            k = bisect.bisect_left(self.ys, target)
            if k >= len(self.ys):
                return None
            if not self._run_free_v(i, j, k):
                return None
            return (i, k, self.ys[k] - self.ys[j])
        target = self.ys[j] - tau
        k = bisect.bisect_right(self.ys, target) - 1
        if k < 0:
            return None
        if not self._run_free_v(i, k, j):
            return None
        return (i, k, self.ys[j] - self.ys[k])

    # ------------------------------------------------------------------
    # Shortest path
    # ------------------------------------------------------------------
    def shortest_path(
        self, sources: Sequence[Point], targets: Sequence[Point]
    ) -> Optional[Tuple[int, List[Point]]]:
        """Shortest tau-feasible path from any source to any target.

        Returns (length, polyline of grid points including endpoints), or
        None when no tau-feasible connection exists.  All terminals must
        lie on grid coordinates (they do when passed to the constructor).
        """
        target_set = set()
        for x, y in targets:
            i = self._x_index.get(x)
            j = self._y_index.get(y)
            if i is None or j is None:
                raise ValueError(f"target ({x}, {y}) not on the blockage grid")
            target_set.add((i, j))
        if not target_set:
            return None

        heap = AddressableHeap()
        dist: Dict[Tuple[int, int, int], int] = {}
        parent: Dict[Tuple[int, int, int], Optional[Tuple[int, int, int]]] = {}

        for x, y in sources:
            i = self._x_index.get(x)
            j = self._y_index.get(y)
            if i is None or j is None:
                raise ValueError(f"source ({x}, {y}) not on the blockage grid")
            if (i, j) in target_set:
                return (0, [(x, y)])
            # First segment: a long arc in each direction.
            for direction in (EAST, WEST, NORTH, SOUTH):
                arc = self._long_arc_target(i, j, direction)
                if arc is None:
                    continue
                ti, tj, length = arc
                if (ti, tj) in self.vertex_blocked:
                    continue
                state = (ti, tj, direction)
                if length < dist.get(state, float("inf")):
                    dist[state] = length
                    parent[state] = (i, j, -1)  # -1: source marker
                    heap.push(state, length)

        settled = set()
        final_state: Optional[Tuple[int, int, int]] = None
        while heap:
            state, d = heap.pop()
            if state in settled:
                continue
            settled.add(state)
            i, j, direction = state
            if (i, j) in target_set:
                final_state = state
                break
            # Straight continuation.
            for cont in self._continuations(i, j, direction):
                ci, cj, length = cont
                if (ci, cj) in self.vertex_blocked:
                    continue
                nstate = (ci, cj, direction)
                nd = d + length
                if nd < dist.get(nstate, float("inf")):
                    dist[nstate] = nd
                    parent[nstate] = state
                    heap.push(nstate, nd)
            # Bends: long arc perpendicular to the incoming direction.
            perp = _VERTICAL if direction in _HORIZONTAL else _HORIZONTAL
            for ndirection in perp:
                arc = self._long_arc_target(i, j, ndirection)
                if arc is None:
                    continue
                ti, tj, length = arc
                if (ti, tj) in self.vertex_blocked:
                    continue
                nstate = (ti, tj, ndirection)
                nd = d + length
                if nd < dist.get(nstate, float("inf")):
                    dist[nstate] = nd
                    parent[nstate] = state
                    heap.push(nstate, nd)
        if final_state is None:
            return None
        # Reconstruct the polyline.
        points: List[Point] = []
        state: Optional[Tuple[int, int, int]] = final_state
        while state is not None:
            i, j, direction = state
            points.append((self.xs[i], self.ys[j]))
            state = parent.get(state)
            if state is not None and state[2] == -1:
                points.append((self.xs[state[0]], self.ys[state[1]]))
                state = None
        points.reverse()
        return (dist[final_state], _simplify(points))

    def _continuations(self, i: int, j: int, direction: int):
        """One-step straight continuation arcs from (i, j, direction)."""
        if direction == EAST and i + 1 < len(self.xs) and self._h_edge_free(i, j):
            yield (i + 1, j, self.xs[i + 1] - self.xs[i])
        elif direction == WEST and i > 0 and self._h_edge_free(i - 1, j):
            yield (i - 1, j, self.xs[i] - self.xs[i - 1])
        elif direction == NORTH and j + 1 < len(self.ys) and self._v_edge_free(i, j):
            yield (i, j + 1, self.ys[j + 1] - self.ys[j])
        elif direction == SOUTH and j > 0 and self._v_edge_free(i, j - 1):
            yield (i, j - 1, self.ys[j] - self.ys[j - 1])


def _simplify(points: List[Point]) -> List[Point]:
    """Drop collinear intermediate points from a polyline."""
    if len(points) <= 2:
        return points
    simplified = [points[0]]
    for idx in range(1, len(points) - 1):
        x0, y0 = points[idx - 1]
        x1, y1 = points[idx]
        x2, y2 = points[idx + 1]
        if (x0 == x1 == x2) or (y0 == y1 == y2):
            continue
        simplified.append(points[idx])
    simplified.append(points[-1])
    return simplified


def path_segments(points: Sequence[Point]) -> List[Tuple[Point, Point]]:
    """Consecutive point pairs of a simplified polyline."""
    return list(zip(points, points[1:]))


def min_segment_length(points: Sequence[Point]) -> int:
    """Shortest segment of a polyline (infinite for a single point)."""
    segments = path_segments(points)
    if not segments:
        return 1 << 60
    return min(
        abs(a[0] - b[0]) + abs(a[1] - b[1]) for a, b in segments
    )
