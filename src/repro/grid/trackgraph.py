"""The track graph (Sec. 3.5).

The intersection points of routing tracks with tracks projected from the
neighbouring wiring layers define the vertices.  Two vertices are adjacent
if two of their coordinates are equal and the connecting straight line
meets no other vertex or wiring layer: consecutive vertices along a track
(preferred direction), vertices on adjacent tracks at the same cross
coordinate (jogs), and coinciding positions on adjacent layers (vias).

Vertices are addressed as ``(z, t, c)``: wiring layer z, track index t
(into the layer's sorted track list), cross index c (into the layer's
sorted cross-coordinate list).  On a horizontal layer the track coordinate
is y and the cross coordinate is x; on a vertical layer vice versa.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.grid.tracks import TrackPlan
from repro.tech.layers import Direction, LayerStack

Vertex = Tuple[int, int, int]  # (layer z, track index t, cross index c)


class TrackGraph:
    """Indexable track graph over a :class:`TrackPlan`."""

    def __init__(self, stack: LayerStack, plan: TrackPlan) -> None:
        self.stack = stack
        self.tracks: Dict[int, List[int]] = {
            z: list(plan.layer_tracks(z)) for z in stack.indices
        }
        # Cross coordinates of layer z: the union of the track coordinates
        # of the adjacent layers (their tracks run orthogonally, so they
        # project to points along z's tracks).
        self.crosses: Dict[int, List[int]] = {}
        for z in stack.indices:
            coords = set()
            for neighbour in (z - 1, z + 1):
                if stack.has_layer(neighbour):
                    coords.update(self.tracks[neighbour])
            self.crosses[z] = sorted(coords)
        self._track_index: Dict[int, Dict[int, int]] = {
            z: {coord: i for i, coord in enumerate(self.tracks[z])}
            for z in stack.indices
        }
        self._cross_index: Dict[int, Dict[int, int]] = {
            z: {coord: i for i, coord in enumerate(self.crosses[z])}
            for z in stack.indices
        }

    # ------------------------------------------------------------------
    # Coordinates
    # ------------------------------------------------------------------
    def vertex_count(self) -> int:
        return sum(
            len(self.tracks[z]) * len(self.crosses[z]) for z in self.stack.indices
        )

    def position(self, vertex: Vertex) -> Tuple[int, int, int]:
        """Physical (x, y, z) of a vertex."""
        z, t, c = vertex
        track = self.tracks[z][t]
        cross = self.crosses[z][c]
        if self.stack.direction(z) is Direction.HORIZONTAL:
            return (cross, track, z)
        return (track, cross, z)

    def vertex_at(self, x: int, y: int, z: int) -> Optional[Vertex]:
        """Vertex at exact physical coordinates, or None."""
        if self.stack.direction(z) is Direction.HORIZONTAL:
            track, cross = y, x
        else:
            track, cross = x, y
        t = self._track_index[z].get(track)
        c = self._cross_index[z].get(cross)
        if t is None or c is None:
            return None
        return (z, t, c)

    def is_vertex(self, vertex: Vertex) -> bool:
        z, t, c = vertex
        return (
            self.stack.has_layer(z)
            and 0 <= t < len(self.tracks[z])
            and 0 <= c < len(self.crosses[z])
        )

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def neighbors(self, vertex: Vertex) -> Iterator[Tuple[Vertex, str, int]]:
        """Yield (neighbour, kind, l1_length) for kind in wire/jog/via."""
        z, t, c = vertex
        crosses = self.crosses[z]
        tracks = self.tracks[z]
        if c > 0:
            yield ((z, t, c - 1), "wire", crosses[c] - crosses[c - 1])
        if c + 1 < len(crosses):
            yield ((z, t, c + 1), "wire", crosses[c + 1] - crosses[c])
        if t > 0:
            yield ((z, t - 1, c), "jog", tracks[t] - tracks[t - 1])
        if t + 1 < len(tracks):
            yield ((z, t + 1, c), "jog", tracks[t + 1] - tracks[t])
        for other in (z - 1, z + 1):
            via = self.via_partner(vertex, other)
            if via is not None:
                yield (via, "via", 0)

    def via_partner(self, vertex: Vertex, other_layer: int) -> Optional[Vertex]:
        """The vertex straight above/below on ``other_layer``, if any."""
        if not self.stack.has_layer(other_layer):
            return None
        x, y, _z = self.position(vertex)
        return self.vertex_at(x, y, other_layer)

    # ------------------------------------------------------------------
    # Locating vertices near geometry (for S/T construction)
    # ------------------------------------------------------------------
    def tracks_in_range(self, z: int, lo: int, hi: int) -> List[int]:
        """Track indices whose coordinate lies in [lo, hi]."""
        coords = self.tracks[z]
        start = bisect.bisect_left(coords, lo)
        end = bisect.bisect_right(coords, hi)
        return list(range(start, end))

    def crosses_in_range(self, z: int, lo: int, hi: int) -> List[int]:
        coords = self.crosses[z]
        start = bisect.bisect_left(coords, lo)
        end = bisect.bisect_right(coords, hi)
        return list(range(start, end))

    def vertices_in_rect(
        self, z: int, x_lo: int, y_lo: int, x_hi: int, y_hi: int
    ) -> List[Vertex]:
        """All vertices of layer z inside the closed rectangle."""
        if self.stack.direction(z) is Direction.HORIZONTAL:
            track_range = self.tracks_in_range(z, y_lo, y_hi)
            cross_range = self.crosses_in_range(z, x_lo, x_hi)
        else:
            track_range = self.tracks_in_range(z, x_lo, x_hi)
            cross_range = self.crosses_in_range(z, y_lo, y_hi)
        return [(z, t, c) for t in track_range for c in cross_range]

    def nearest_vertex(self, x: int, y: int, z: int) -> Optional[Vertex]:
        """Vertex of layer z closest (l1) to the point, or None if empty."""
        tracks = self.tracks[z]
        crosses = self.crosses[z]
        if not tracks or not crosses:
            return None
        if self.stack.direction(z) is Direction.HORIZONTAL:
            track_coord, cross_coord = y, x
        else:
            track_coord, cross_coord = x, y
        t = _nearest_index(tracks, track_coord)
        c = _nearest_index(crosses, cross_coord)
        return (z, t, c)

    def segment_vertices(
        self, z: int, t: int, c_lo: int, c_hi: int
    ) -> List[Vertex]:
        return [(z, t, c) for c in range(c_lo, c_hi + 1)]


def _nearest_index(coords: Sequence[int], value: int) -> int:
    pos = bisect.bisect_left(coords, value)
    if pos == 0:
        return 0
    if pos == len(coords):
        return len(coords) - 1
    before, after = coords[pos - 1], coords[pos]
    return pos if after - value < value - before else pos - 1
