"""Routing-space representation (Sec. 3 of the paper).

Two-level structure:

* the **shape grid** (:mod:`repro.grid.shapegrid`) stores every blockage,
  wire and via shape in small cells with shared configuration numbers,
  grouped into intervals held in AVL trees - the ground truth for diff-net
  rule checking;
* the **distance rule checking module** (:mod:`repro.grid.drc_query`) is
  the query interface between the shape grid and the path searches;
* the **fast grid** (:mod:`repro.grid.fastgrid`) caches precomputed
  legality words for the frequent wire types at on-track locations;
* **routing tracks** (:mod:`repro.grid.tracks`) are placed by an exact
  solver for the track optimization problem (Thm 3.1) and induce the
  track graph used by on-track path search;
* the **blockage grid** (:mod:`repro.grid.blockgrid`) supports shortest
  tau-feasible off-track paths (Alg. 3, Thm 3.2).
"""

from repro.grid.tracks import optimize_tracks, TrackPlan, build_track_plan
from repro.grid.trackgraph import TrackGraph
from repro.grid.shapegrid import ShapeGrid, ShapeEntry, RipupLevel
from repro.grid.drc_query import DistanceRuleChecker, PlacementCheck
from repro.grid.fastgrid import FastGrid
from repro.grid.blockgrid import BlockageGrid, blockage_grid_coordinates

__all__ = [
    "optimize_tracks",
    "TrackPlan",
    "build_track_plan",
    "TrackGraph",
    "ShapeGrid",
    "ShapeEntry",
    "RipupLevel",
    "DistanceRuleChecker",
    "PlacementCheck",
    "FastGrid",
    "BlockageGrid",
    "blockage_grid_coordinates",
]
