"""Cell library and placed circuit instances.

The off-track pin access preprocessing (Sec. 4.3) exploits that millions of
placed circuits come from only a few thousand library prototypes, and that
geometrically equal situations (up to translation, mirroring and rotation)
can be collected into *circuit classes*.  This module provides the library
templates, placed instances with orientations, and the geometric-equality
key those classes are built from.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Sequence, Tuple

from repro.geometry.rect import Rect


class Orientation(enum.Enum):
    """Placement orientations (subset of LEF/DEF: N, FN = mirrored about y)."""

    N = "N"
    FN = "FN"


def _orient_rect(rect: Rect, orientation: Orientation, cell_width: int) -> Rect:
    if orientation is Orientation.N:
        return rect
    # FN: mirror about the cell's vertical centre axis.
    return Rect(cell_width - rect.x_hi, rect.y_lo, cell_width - rect.x_lo, rect.y_hi)


class CellTemplate:
    """A library prototype: footprint, pin shapes and obstructions.

    Pin shapes and obstructions are relative to the cell origin (lower-left
    corner).  ``pins`` maps pin name -> list of (layer, Rect);
    ``obstructions`` is a list of (layer, Rect) blockages internal to the
    cell (device metal the router must avoid).
    """

    def __init__(
        self,
        name: str,
        width: int,
        height: int,
        pins: Dict[str, Sequence[Tuple[int, Rect]]],
        obstructions: Sequence[Tuple[int, Rect]] = (),
    ) -> None:
        self.name = name
        self.width = width
        self.height = height
        self.pins = {pin: list(shapes) for pin, shapes in pins.items()}
        self.obstructions = list(obstructions)

    def __repr__(self) -> str:
        return f"CellTemplate({self.name}, {self.width}x{self.height})"


class CircuitInstance:
    """A placed occurrence of a template."""

    __slots__ = ("instance_id", "template", "x", "y", "orientation")

    def __init__(
        self,
        instance_id: int,
        template: CellTemplate,
        x: int,
        y: int,
        orientation: Orientation = Orientation.N,
    ) -> None:
        self.instance_id = instance_id
        self.template = template
        self.x = x
        self.y = y
        self.orientation = orientation

    def __repr__(self) -> str:
        return (
            f"CircuitInstance({self.instance_id}, {self.template.name}, "
            f"({self.x},{self.y}), {self.orientation.value})"
        )

    def bounding_box(self) -> Rect:
        return Rect(self.x, self.y, self.x + self.template.width, self.y + self.template.height)

    def pin_shapes(self, pin_name: str) -> List[Tuple[int, Rect]]:
        shapes = []
        for layer, rect in self.template.pins[pin_name]:
            oriented = _orient_rect(rect, self.orientation, self.template.width)
            shapes.append((layer, oriented.translated(self.x, self.y)))
        return shapes

    def obstruction_shapes(self) -> List[Tuple[int, Rect]]:
        shapes = []
        for layer, rect in self.template.obstructions:
            oriented = _orient_rect(rect, self.orientation, self.template.width)
            shapes.append((layer, oriented.translated(self.x, self.y)))
        return shapes

    def circuit_class_key(self) -> Tuple:
        """Key identifying geometrically equal pin-access situations.

        Instances sharing a template and orientation whose origins differ by
        whole track pitches see identical local geometry, so pin access can
        be computed once per class (Sec. 4.3).  The track-phase component is
        added by the pin-access preprocessor, which knows the pitches.
        """
        return (self.template.name, self.orientation)


#: Interned library templates keyed on the full parameter tuple.  A
#: 10^5-net chip references millions of pin/obstruction rectangles but
#: only these few prototypes; sharing the template objects keeps every
#: generated region (and every shard reload) pointing at one copy.
_LIBRARY_CACHE: Dict[Tuple[int, int, int, int], Tuple[CellTemplate, ...]] = {}


def example_cell_library(
    pin_layer: int = 1,
    pin_size: int = 40,
    row_height: int = 960,
    pitch: int = 80,
) -> List[CellTemplate]:
    """A small standard-cell library with deliberately awkward pins.

    Pins are small squares placed off the track grid (the motivation for
    off-track pin access, Sec. 4.3) and partially shadowed by internal
    obstructions, as in Fig. 7.  Templates are interned per parameter
    tuple: repeated calls return the same (immutable by convention)
    ``CellTemplate`` objects in a fresh list.
    """
    key = (pin_layer, pin_size, row_height, pitch)
    cached = _LIBRARY_CACHE.get(key)
    if cached is not None:
        return list(cached)
    half = pin_size // 2

    def square(x: int, y: int) -> List[Tuple[int, Rect]]:
        return [(pin_layer, Rect(x, y, x + pin_size, y + pin_size))]

    library = []
    # INV: 2 pins, slightly off-grid in y.
    library.append(
        CellTemplate(
            "INV",
            width=4 * pitch,
            height=row_height,
            pins={
                "A": square(pitch - half, row_height // 2 + 10),
                "Z": square(3 * pitch - half, row_height // 2 - 50),
            },
            obstructions=[(pin_layer, Rect(0, 0, 4 * pitch, pin_size))],
        )
    )
    # NAND2: 3 pins with a blockage bar between them (Fig. 7 flavour).
    library.append(
        CellTemplate(
            "NAND2",
            width=6 * pitch,
            height=row_height,
            pins={
                "A": square(pitch - half, row_height // 2 + 30),
                "B": square(3 * pitch - half, row_height // 2 - 70),
                "Z": square(5 * pitch - half, row_height // 2 + 30),
            },
            obstructions=[
                (pin_layer, Rect(0, 0, 6 * pitch, pin_size)),
                (pin_layer, Rect(2 * pitch, row_height // 2 + 150, 4 * pitch, row_height // 2 + 150 + pin_size)),
            ],
        )
    )
    # DFF: a wide cell with 4 pins, two of them stacked close together.
    library.append(
        CellTemplate(
            "DFF",
            width=10 * pitch,
            height=row_height,
            pins={
                "D": square(pitch - half, row_height // 2),
                "CK": square(3 * pitch - half, row_height // 2 - 110),
                "Q": square(7 * pitch - half, row_height // 2 + 50),
                "QN": square(9 * pitch - half, row_height // 2 - 30),
            },
            obstructions=[
                (pin_layer, Rect(0, 0, 10 * pitch, pin_size)),
                (pin_layer, Rect(4 * pitch, row_height // 2 - 200, 6 * pitch, row_height // 2 + 200)),
            ],
        )
    )
    # BUF: 2 pins, clean (fast to access).
    library.append(
        CellTemplate(
            "BUF",
            width=4 * pitch,
            height=row_height,
            pins={
                "A": square(pitch - half, row_height // 2 - 20),
                "Z": square(3 * pitch - half, row_height // 2 + 20),
            },
        )
    )
    _LIBRARY_CACHE[key] = tuple(library)
    return library
