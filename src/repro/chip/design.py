"""The Chip: technology + placement + netlist + blockages.

This is the input object both routers consume.  It owns the layer stack,
rule set and wire types, the placed circuit instances, the nets, and
non-circuit blockages (power rails, pre-designed clock wiring, macros -
Sec. 4.3 notes their regular structure).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.chip.cells import CircuitInstance
from repro.chip.net import Net, Pin
from repro.geometry.rect import Rect
from repro.tech.layers import LayerStack
from repro.tech.rules import RuleSet
from repro.tech.wiring import WireType


class Blockage:
    """A fixed metal shape no wire may violate spacing against."""

    __slots__ = ("layer", "rect", "label")

    def __init__(self, layer: int, rect: Rect, label: str = "blockage") -> None:
        self.layer = layer
        self.rect = rect
        self.label = label

    def __repr__(self) -> str:
        return f"Blockage(M{self.layer}, {self.rect}, {self.label})"


class Chip:
    """A routing instance."""

    def __init__(
        self,
        name: str,
        die: Rect,
        stack: LayerStack,
        rules: RuleSet,
        wire_types: Dict[str, WireType],
        circuits: Sequence[CircuitInstance] = (),
        nets: Sequence[Net] = (),
        blockages: Sequence[Blockage] = (),
    ) -> None:
        self.name = name
        self.die = die
        self.stack = stack
        self.rules = rules
        self.wire_types = dict(wire_types)
        if "default" not in self.wire_types:
            raise ValueError("chip needs a 'default' wire type")
        self.circuits: List[CircuitInstance] = list(circuits)
        self.nets: List[Net] = list(nets)
        self.blockages: List[Blockage] = list(blockages)
        self._nets_by_name: Dict[str, Net] = {net.name: net for net in self.nets}
        if len(self._nets_by_name) != len(self.nets):
            raise ValueError("duplicate net names")

    def __repr__(self) -> str:
        return (
            f"Chip({self.name}, {len(self.nets)} nets, "
            f"{len(self.circuits)} circuits, {len(self.stack)} layers)"
        )

    def net(self, name: str) -> Net:
        return self._nets_by_name[name]

    def wire_type(self, name: str) -> WireType:
        return self.wire_types[name]

    def add_net(self, net: Net) -> None:
        if net.name in self._nets_by_name:
            raise ValueError(f"duplicate net name {net.name}")
        self.nets.append(net)
        self._nets_by_name[net.name] = net

    def remove_net(self, name: str) -> Net:
        """Remove a net (ECO); the caller rips its wiring first."""
        net = self._nets_by_name.pop(name)  # KeyError if unknown
        self.nets.remove(net)
        return net

    def all_pins(self) -> Iterable[Pin]:
        for net in self.nets:
            yield from net.pins

    def obstruction_shapes(self) -> List[Tuple[int, Rect, Optional[int]]]:
        """All fixed obstacles: (layer, rect, owner_circuit_id or None).

        Includes circuit-internal obstructions and chip-level blockages;
        pin shapes are *not* included (they are targets, not obstacles, and
        the routing-space builder handles them specially).
        """
        shapes: List[Tuple[int, Rect, Optional[int]]] = []
        for circuit in self.circuits:
            for layer, rect in circuit.obstruction_shapes():
                shapes.append((layer, rect, circuit.instance_id))
        for blockage in self.blockages:
            shapes.append((blockage.layer, blockage.rect, None))
        return shapes

    def stats(self) -> Dict[str, int]:
        pin_count = sum(net.terminal_count for net in self.nets)
        return {
            "nets": len(self.nets),
            "pins": pin_count,
            "circuits": len(self.circuits),
            "blockages": len(self.blockages),
            "layers": len(self.stack),
            "die_width": self.die.width,
            "die_height": self.die.height,
        }
