"""Pins and nets.

A pin is a named set of metal shapes (possibly on several layers and in
several global routing tiles, Sec. 2.1).  A net is a set of pins that must
be electrically connected, together with its wire type (standard or
non-standard width / spacing / layer restriction, Sec. 1.1) and an optional
criticality weight used by the critical-net prerouting pass (Sec. 5.1).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.geometry.rect import Rect


class Pin:
    """A net terminal: one or more metal rectangles on wiring layers."""

    __slots__ = ("name", "shapes", "net", "circuit_id")

    def __init__(
        self,
        name: str,
        shapes: Sequence[Tuple[int, Rect]],
        circuit_id: Optional[int] = None,
    ) -> None:
        if not shapes:
            raise ValueError(f"pin {name} has no shapes")
        self.name = name
        self.shapes: List[Tuple[int, Rect]] = list(shapes)
        self.net: Optional["Net"] = None
        self.circuit_id = circuit_id

    def __repr__(self) -> str:
        return f"Pin({self.name}, {len(self.shapes)} shapes)"

    @property
    def layers(self) -> List[int]:
        return sorted({layer for layer, _ in self.shapes})

    def bounding_box(self) -> Rect:
        return Rect.bounding(rect for _, rect in self.shapes)

    def reference_point(self) -> Tuple[int, int]:
        """A representative point of the pin (centre of its bounding box)."""
        return self.bounding_box().center


class Net:
    """A set of pins to be connected."""

    __slots__ = ("name", "pins", "wire_type", "weight", "detour_bound")

    def __init__(
        self,
        name: str,
        pins: Sequence[Pin],
        wire_type: str = "default",
        weight: float = 1.0,
        detour_bound: Optional[int] = None,
    ) -> None:
        if len(pins) < 2:
            raise ValueError(f"net {name} needs at least two pins")
        self.name = name
        self.pins: List[Pin] = list(pins)
        for pin in self.pins:
            pin.net = self
        self.wire_type = wire_type
        # weight > 1 marks timing-critical nets routed first (Sec. 5.1);
        # detour_bound, when set, becomes a per-net resource constraint
        # bounding the detour over Steiner length (Sec. 2.1).
        self.weight = weight
        self.detour_bound = detour_bound

    def __repr__(self) -> str:
        return f"Net({self.name}, {len(self.pins)} pins)"

    @property
    def terminal_count(self) -> int:
        return len(self.pins)

    def terminal_points(self) -> List[Tuple[int, int]]:
        return [pin.reference_point() for pin in self.pins]

    def bounding_box(self) -> Rect:
        return Rect.bounding(pin.bounding_box() for pin in self.pins)

    def half_perimeter(self) -> int:
        box = self.bounding_box()
        return box.width + box.height
