"""Chip model: cells, pins, nets, placement, blockages.

The routers operate on a :class:`repro.chip.design.Chip`, which bundles the
technology (layer stack + rules + wire types) with the placed circuits,
their pins, the netlist, and blockages such as power rails.  Because the
paper's IBM designs are proprietary, :mod:`repro.chip.generator` produces
seeded synthetic instances with the same structural features.
"""

from repro.chip.net import Net, Pin
from repro.chip.cells import CellTemplate, CircuitInstance, Orientation, example_cell_library
from repro.chip.design import Blockage, Chip
from repro.chip.generator import (
    ChipSpec,
    ShardPlan,
    TABLE_CHIP_SPECS,
    chip_spec,
    generate_chip,
    generate_chip_sharded,
    iter_regions,
    scale_spec,
    stream_chip_shards,
)

__all__ = [
    "Net",
    "Pin",
    "CellTemplate",
    "CircuitInstance",
    "Orientation",
    "example_cell_library",
    "Blockage",
    "Chip",
    "ChipSpec",
    "ShardPlan",
    "chip_spec",
    "generate_chip",
    "generate_chip_sharded",
    "iter_regions",
    "scale_spec",
    "stream_chip_shards",
    "TABLE_CHIP_SPECS",
]
