"""Synthetic chip generator.

The paper evaluates on eight proprietary IBM 22 nm / 32 nm designs with
120 k - 960 k nets.  This generator is the documented substitution
(DESIGN.md): it produces seeded standard-cell instances with the features
that exercise every router code path - rows of library cells with off-grid
pins and internal obstructions, power rails and straps blocking track
segments, a clustered netlist whose terminal-count histogram spans the
classes of Table II, and a share of wide-wire (layer-restricted) nets.

Scale is reduced to what pure Python can route in seconds to minutes; the
eight ``TABLE_CHIP_SPECS`` mirror the relative sizes of the paper's chips.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.chip.cells import (
    CellTemplate,
    CircuitInstance,
    Orientation,
    example_cell_library,
)
from repro.chip.design import Blockage, Chip
from repro.chip.net import Net, Pin
from repro.geometry.rect import Rect
from repro.tech.stacks import (
    THIN_PITCH,
    THIN_WIDTH,
    example_rules,
    example_stack,
    example_wiretypes,
)
from repro.util.rng import make_rng

#: Standard-cell row height used by the example library, in dbu.
ROW_HEIGHT = 960

#: Placement slot pitch of the sharded generator, in dbu.  Every slot is
#: wide enough for the widest library cell (DFF, 800 dbu), so a cell's
#: position depends only on its slot — no left-to-right running sum —
#: which is what makes regions generatable independently.
SLOT_PITCH = 960

#: Die margin around the cell rows, in dbu (both generators).
DIE_MARGIN = 4 * THIN_PITCH


class ChipSpec:
    """Parameters of a synthetic chip."""

    def __init__(
        self,
        name: str,
        rows: int,
        row_width_cells: int,
        net_count: int,
        seed: int = 1,
        num_layers: int = 6,
        tech: str = "22nm",
        wide_net_fraction: float = 0.03,
        big_fanout_nets: int = 2,
        big_fanout_max: int = 20,
    ) -> None:
        if rows < 1:
            raise ValueError(f"ChipSpec rows must be >= 1, got {rows}")
        if row_width_cells < 1:
            raise ValueError(
                f"ChipSpec row_width_cells must be >= 1, got {row_width_cells}"
            )
        if net_count < 1:
            raise ValueError(f"ChipSpec net_count must be >= 1, got {net_count}")
        if num_layers < 2:
            raise ValueError(f"ChipSpec num_layers must be >= 2, got {num_layers}")
        self.name = name
        self.rows = rows
        self.row_width_cells = row_width_cells
        self.net_count = net_count
        self.seed = seed
        self.num_layers = num_layers
        self.tech = tech
        self.wide_net_fraction = wide_net_fraction
        self.big_fanout_nets = big_fanout_nets
        self.big_fanout_max = big_fanout_max

    def __repr__(self) -> str:
        return f"ChipSpec({self.name}, {self.rows}x{self.row_width_cells} cells, {self.net_count} nets)"

    def as_dict(self) -> Dict[str, object]:
        """Plain-JSON form (round-trips through a shard manifest)."""
        return {
            "name": self.name,
            "rows": self.rows,
            "row_width_cells": self.row_width_cells,
            "net_count": self.net_count,
            "seed": self.seed,
            "num_layers": self.num_layers,
            "tech": self.tech,
            "wide_net_fraction": self.wide_net_fraction,
            "big_fanout_nets": self.big_fanout_nets,
            "big_fanout_max": self.big_fanout_max,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ChipSpec":
        return cls(**data)


#: Eight specs mirroring the relative sizes of Table I's chips 1-8
#: (chips 5 and 8 are the paper's 32 nm designs and the largest ones).
TABLE_CHIP_SPECS: List[ChipSpec] = [
    ChipSpec("chip1", rows=6, row_width_cells=14, net_count=45, seed=101),
    ChipSpec("chip2", rows=6, row_width_cells=15, net_count=48, seed=102),
    ChipSpec("chip3", rows=6, row_width_cells=15, net_count=50, seed=103),
    ChipSpec("chip4", rows=7, row_width_cells=14, net_count=52, seed=104),
    ChipSpec("chip5", rows=8, row_width_cells=18, net_count=80, seed=105, tech="32nm"),
    ChipSpec("chip6", rows=9, row_width_cells=18, net_count=95, seed=106),
    ChipSpec("chip7", rows=9, row_width_cells=19, net_count=100, seed=107),
    ChipSpec("chip8", rows=12, row_width_cells=22, net_count=160, seed=108, tech="32nm"),
]


def chip_spec(name: str) -> ChipSpec:
    """Look up a Table I spec by name, with an actionable error.

    Matches the PR 1 tech/rules KeyError convention: the error names the
    valid alternatives instead of echoing the bad key alone.
    """
    for spec in TABLE_CHIP_SPECS:
        if spec.name == name:
            return spec
    valid = ", ".join(spec.name for spec in TABLE_CHIP_SPECS)
    raise KeyError(f"unknown chip spec {name!r}; valid specs: {valid}")


def _place_rows(
    spec: ChipSpec, library: Sequence[CellTemplate], rng
) -> Tuple[List[CircuitInstance], int, int]:
    """Fill rows left to right with random cells; returns (instances, W, H)."""
    instances: List[CircuitInstance] = []
    margin = 4 * THIN_PITCH
    max_row_width = 0
    instance_id = 0
    for row in range(spec.rows):
        x = margin
        y = margin + row * ROW_HEIGHT
        for _ in range(spec.row_width_cells):
            template = library[rng.randrange(len(library))]
            orientation = Orientation.N if rng.random() < 0.5 else Orientation.FN
            instances.append(CircuitInstance(instance_id, template, x, y, orientation))
            instance_id += 1
            x += template.width
            # Occasional placement gap (whitespace for routing).
            if rng.random() < 0.25:
                x += THIN_PITCH * rng.randrange(1, 4)
        max_row_width = max(max_row_width, x)
    width = max_row_width + margin
    height = 2 * margin + spec.rows * ROW_HEIGHT
    return instances, width, height


def _power_grid(width: int, height: int, rows: int) -> List[Blockage]:
    """Horizontal M1 power rails on row boundaries + sparse M2 straps."""
    margin = 4 * THIN_PITCH
    rails: List[Blockage] = []
    rail_half = THIN_WIDTH
    for row in range(rows + 1):
        y = margin + row * ROW_HEIGHT
        rails.append(
            Blockage(1, Rect(0, y - rail_half, width, y + rail_half), "power_rail")
        )
    strap_period = 24 * THIN_PITCH
    x = strap_period
    while x < width - THIN_PITCH:
        rails.append(
            Blockage(2, Rect(x - THIN_WIDTH, 0, x + THIN_WIDTH, height), "power_strap")
        )
        x += strap_period
    return rails


def _free_pins(
    instances: Sequence[CircuitInstance],
) -> Tuple[List[Tuple[int, str, bool]], Dict[int, CircuitInstance]]:
    """All (instance_id, pin_name, is_output) triples plus an id lookup."""
    by_id = {inst.instance_id: inst for inst in instances}
    pins: List[Tuple[int, str, bool]] = []
    for inst in instances:
        for pin_name in inst.template.pins:
            is_output = pin_name in ("Z", "Q", "QN")
            pins.append((inst.instance_id, pin_name, is_output))
    return pins, by_id


def _terminal_count(rng, big: bool, big_max: int = 20) -> int:
    """Terminal-count distribution spanning Table II's classes."""
    if big:
        return rng.randrange(12, big_max + 1)
    roll = rng.random()
    if roll < 0.60:
        return 2
    if roll < 0.78:
        return 3
    if roll < 0.88:
        return 4
    if roll < 0.97:
        return rng.randrange(5, 11)
    return rng.randrange(11, 21)


def generate_chip(spec: ChipSpec) -> Chip:
    """Generate the chip for ``spec`` deterministically from its seed."""
    rng = make_rng(spec.seed)
    library = example_cell_library()
    instances, width, height = _place_rows(spec, library, rng)
    blockages = _power_grid(width, height, spec.rows)
    stack = example_stack(spec.num_layers)
    rules = example_rules(spec.num_layers)
    wire_types = example_wiretypes(stack)

    all_pins, by_id = _free_pins(instances)
    outputs = [p for p in all_pins if p[2]]
    inputs = [p for p in all_pins if not p[2]]
    rng.shuffle(outputs)
    rng.shuffle(inputs)
    used: set = set()

    def make_pin(instance_id: int, pin_name: str) -> Pin:
        inst = by_id[instance_id]
        shapes = inst.pin_shapes(pin_name)
        return Pin(f"{instance_id}/{pin_name}", shapes, circuit_id=instance_id)

    def nearest_free_inputs(x: int, y: int, k: int) -> List[Tuple[int, str, bool]]:
        """k unused input pins, biased towards (x, y) (clustered netlists)."""
        candidates = [
            p
            for p in inputs
            if (p[0], p[1]) not in used
        ]
        if not candidates:
            return []
        locality = 6 * ROW_HEIGHT

        def distance_key(p: Tuple[int, str, bool]) -> Tuple[float, int]:
            inst = by_id[p[0]]
            cx, cy = inst.bounding_box().center
            dist = abs(cx - x) + abs(cy - y)
            # Jittered distance: keeps nets local without making them
            # degenerate chains along one row.
            return (dist + rng.randrange(0, locality), p[0])

        candidates.sort(key=distance_key)
        return candidates[:k]

    nets: List[Net] = []
    output_index = 0
    while len(nets) < spec.net_count and output_index < len(outputs):
        driver = outputs[output_index]
        output_index += 1
        if (driver[0], driver[1]) in used:
            continue
        big = len(nets) < spec.big_fanout_nets
        sinks_wanted = _terminal_count(rng, big, spec.big_fanout_max) - 1
        # Keep at least one input pin in reserve per net still to be built,
        # so big-fanout nets cannot starve the rest of the netlist.
        free_inputs = sum(1 for p in inputs if (p[0], p[1]) not in used)
        nets_remaining = spec.net_count - len(nets) - 1
        sinks_wanted = max(1, min(sinks_wanted, free_inputs - nets_remaining))
        inst = by_id[driver[0]]
        cx, cy = inst.bounding_box().center
        sinks = nearest_free_inputs(cx, cy, sinks_wanted)
        if not sinks:
            continue
        used.add((driver[0], driver[1]))
        for sink in sinks:
            used.add((sink[0], sink[1]))
        pins = [make_pin(driver[0], driver[1])] + [make_pin(s[0], s[1]) for s in sinks]
        wire_type = "default"
        weight = 1.0
        if rng.random() < spec.wide_net_fraction and len(pins) == 2:
            wire_type = "wide"
            weight = 2.0
        nets.append(Net(f"n{len(nets)}", pins, wire_type=wire_type, weight=weight))

    return Chip(
        name=spec.name,
        die=Rect(0, 0, width, height),
        stack=stack,
        rules=rules,
        wire_types=wire_types,
        circuits=instances,
        nets=nets,
        blockages=blockages,
    )


# ----------------------------------------------------------------------
# Region-sharded generation (memory-bounded, 1e5-1e6 net instances)
# ----------------------------------------------------------------------
class ShardPlan:
    """Region grid of a sharded instance.

    The sharded generator places cells on a fixed slot grid (one slot
    per :data:`SLOT_PITCH` column, one row per :data:`ROW_HEIGHT`), so
    the die dimensions, the power grid and each cell's position are
    functions of the spec alone.  Regions are rectangular blocks of
    slots; each region's cells and nets are generated from a seed
    derived from ``(spec.seed, region_index)``, independent of every
    other region — which is what lets 10^5-net instances stream to disk
    one region at a time.
    """

    def __init__(
        self,
        spec: ChipSpec,
        rows_per_region: int = 4,
        cols_per_region: int = 16,
    ) -> None:
        if rows_per_region < 1:
            raise ValueError(
                f"ShardPlan rows_per_region must be >= 1, got {rows_per_region}"
            )
        if cols_per_region < 1:
            raise ValueError(
                f"ShardPlan cols_per_region must be >= 1, got {cols_per_region}"
            )
        self.spec = spec
        self.rows_per_region = rows_per_region
        self.cols_per_region = cols_per_region
        self.region_rows = math.ceil(spec.rows / rows_per_region)
        self.region_cols = math.ceil(spec.row_width_cells / cols_per_region)
        self.num_regions = self.region_rows * self.region_cols
        self.width = 2 * DIE_MARGIN + spec.row_width_cells * SLOT_PITCH
        self.height = 2 * DIE_MARGIN + spec.rows * ROW_HEIGHT
        # Net quota per region: spread the total evenly, remainder to
        # the lowest-indexed regions.
        base, extra = divmod(spec.net_count, self.num_regions)
        self._quota = [
            base + (1 if index < extra else 0) for index in range(self.num_regions)
        ]

    def __repr__(self) -> str:
        return (
            f"ShardPlan({self.spec.name}, {self.region_rows}x{self.region_cols} "
            f"regions, {self.num_regions} shards)"
        )

    def die(self) -> Rect:
        return Rect(0, 0, self.width, self.height)

    def region_slots(self, index: int) -> Tuple[int, int, int, int]:
        """Closed slot bounds (row_lo, row_hi, col_lo, col_hi) of a region."""
        if not 0 <= index < self.num_regions:
            raise IndexError(
                f"region {index} out of range; plan has {self.num_regions} regions"
            )
        r, c = divmod(index, self.region_cols)
        row_lo = r * self.rows_per_region
        row_hi = min(row_lo + self.rows_per_region, self.spec.rows) - 1
        col_lo = c * self.cols_per_region
        col_hi = min(col_lo + self.cols_per_region, self.spec.row_width_cells) - 1
        return row_lo, row_hi, col_lo, col_hi

    def region_box(self, index: int) -> Rect:
        """Die rectangle covered by a region's slots (dbu)."""
        row_lo, row_hi, col_lo, col_hi = self.region_slots(index)
        return Rect(
            DIE_MARGIN + col_lo * SLOT_PITCH,
            DIE_MARGIN + row_lo * ROW_HEIGHT,
            DIE_MARGIN + (col_hi + 1) * SLOT_PITCH,
            DIE_MARGIN + (row_hi + 1) * ROW_HEIGHT,
        )

    def region_net_quota(self, index: int) -> int:
        return self._quota[index]

    def region_seed(self, index: int) -> int:
        """Deterministic per-region seed mixed from the spec seed."""
        return (self.spec.seed * 0x9E3779B1 + index * 0x85EBCA77 + 1) & 0x7FFFFFFF

    def power_blockages(self) -> List[Blockage]:
        """The global power grid (independent of any region's contents)."""
        return _power_grid(self.width, self.height, self.spec.rows)


class ShardRegion:
    """One generated region: its nets plus its fixed blockages.

    ``blockages`` holds the cells' internal obstructions as labelled
    chip-level blockages (``circuit:<id>``) — the same convention the
    text interchange format uses, so shard-loaded and in-memory chips
    agree shape for shape.  The power grid is *not* included (it is
    global; :meth:`ShardPlan.power_blockages` owns it).
    """

    __slots__ = ("index", "box", "nets", "blockages", "cells")

    def __init__(
        self,
        index: int,
        box: Rect,
        nets: List[Net],
        blockages: List[Blockage],
        cells: int,
    ) -> None:
        self.index = index
        self.box = box
        self.nets = nets
        self.blockages = blockages
        self.cells = cells

    def __repr__(self) -> str:
        return f"ShardRegion({self.index}, {len(self.nets)} nets, {self.cells} cells)"


#: Fraction of slots occupied by a cell in the sharded generator.
SLOT_OCCUPANCY = 0.92


def generate_region(
    spec: ChipSpec,
    plan: ShardPlan,
    index: int,
    library: Optional[Sequence[CellTemplate]] = None,
) -> ShardRegion:
    """Generate one region deterministically from ``(spec.seed, index)``."""
    if library is None:
        library = example_cell_library()
    rng = make_rng(plan.region_seed(index))
    row_lo, row_hi, col_lo, col_hi = plan.region_slots(index)
    instances: List[CircuitInstance] = []
    for row in range(row_lo, row_hi + 1):
        for col in range(col_lo, col_hi + 1):
            if rng.random() >= SLOT_OCCUPANCY:
                continue
            template = library[rng.randrange(len(library))]
            orientation = Orientation.N if rng.random() < 0.5 else Orientation.FN
            x = DIE_MARGIN + col * SLOT_PITCH
            y = DIE_MARGIN + row * ROW_HEIGHT
            instance_id = row * spec.row_width_cells + col
            instances.append(
                CircuitInstance(instance_id, template, x, y, orientation)
            )

    blockages: List[Blockage] = []
    for inst in instances:
        for layer, rect in inst.obstruction_shapes():
            blockages.append(Blockage(layer, rect, f"circuit:{inst.instance_id}"))

    all_pins, by_id = _free_pins(instances)
    outputs = [p for p in all_pins if p[2]]
    inputs = [p for p in all_pins if not p[2]]
    rng.shuffle(outputs)
    rng.shuffle(inputs)
    used: set = set()

    def make_pin(instance_id: int, pin_name: str) -> Pin:
        inst = by_id[instance_id]
        return Pin(
            f"{instance_id}/{pin_name}",
            inst.pin_shapes(pin_name),
            circuit_id=instance_id,
        )

    def nearest_free_inputs(x: int, y: int, k: int) -> List[Tuple[int, str, bool]]:
        candidates = [p for p in inputs if (p[0], p[1]) not in used]
        if not candidates:
            return []
        locality = 6 * ROW_HEIGHT

        def distance_key(p: Tuple[int, str, bool]) -> Tuple[float, int]:
            inst = by_id[p[0]]
            cx, cy = inst.bounding_box().center
            dist = abs(cx - x) + abs(cy - y)
            return (dist + rng.randrange(0, locality), p[0])

        candidates.sort(key=distance_key)
        return candidates[:k]

    quota = plan.region_net_quota(index)
    nets: List[Net] = []
    output_index = 0
    while len(nets) < quota and output_index < len(outputs):
        driver = outputs[output_index]
        output_index += 1
        if (driver[0], driver[1]) in used:
            continue
        # The big-fanout nets (Table II's tail) live in region 0.
        big = index == 0 and len(nets) < spec.big_fanout_nets
        sinks_wanted = _terminal_count(rng, big, spec.big_fanout_max) - 1
        free_inputs = sum(1 for p in inputs if (p[0], p[1]) not in used)
        nets_remaining = quota - len(nets) - 1
        sinks_wanted = max(1, min(sinks_wanted, free_inputs - nets_remaining))
        inst = by_id[driver[0]]
        cx, cy = inst.bounding_box().center
        sinks = nearest_free_inputs(cx, cy, sinks_wanted)
        if not sinks:
            continue
        used.add((driver[0], driver[1]))
        for sink in sinks:
            used.add((sink[0], sink[1]))
        pins = [make_pin(driver[0], driver[1])] + [make_pin(s[0], s[1]) for s in sinks]
        wire_type = "default"
        weight = 1.0
        if rng.random() < spec.wide_net_fraction and len(pins) == 2:
            wire_type = "wide"
            weight = 2.0
        nets.append(
            Net(f"n{index}_{len(nets)}", pins, wire_type=wire_type, weight=weight)
        )

    return ShardRegion(
        index, plan.region_box(index), nets, blockages, len(instances)
    )


def iter_regions(
    spec: ChipSpec, plan: Optional[ShardPlan] = None
) -> Iterator[ShardRegion]:
    """All regions of a sharded instance, one at a time (streaming)."""
    if plan is None:
        plan = ShardPlan(spec)
    library = example_cell_library()
    for index in range(plan.num_regions):
        yield generate_region(spec, plan, index, library)


def generate_chip_sharded(
    spec: ChipSpec, plan: Optional[ShardPlan] = None
) -> Chip:
    """The in-memory reference of the sharded generator.

    Assembles every region into one :class:`Chip` (circuits empty, cell
    obstructions as labelled blockages — the text-format convention).
    Bit-identical to streaming the same plan to disk and loading all
    shards back; the property test in ``tests/test_shards.py`` holds the
    two paths together.
    """
    if plan is None:
        plan = ShardPlan(spec)
    blockages = plan.power_blockages()
    nets: List[Net] = []
    for region in iter_regions(spec, plan):
        nets.extend(region.nets)
        blockages.extend(region.blockages)
    stack = example_stack(spec.num_layers)
    return Chip(
        name=spec.name,
        die=plan.die(),
        stack=stack,
        rules=example_rules(spec.num_layers),
        wire_types=example_wiretypes(stack),
        circuits=[],
        nets=nets,
        blockages=blockages,
    )


def stream_chip_shards(
    spec: ChipSpec,
    out_dir: str,
    plan: Optional[ShardPlan] = None,
) -> str:
    """Stream a sharded instance to ``out_dir``; returns the manifest path.

    Writes one text shard per region plus ``manifest.json`` (die, layer
    count, spec, global power blockages, shard index).  Peak memory is
    one region, not the chip: each region is generated, serialized and
    dropped before the next one starts.
    """
    from repro.io.shards import ShardWriter

    if plan is None:
        plan = ShardPlan(spec)
    writer = ShardWriter(out_dir, spec, plan)
    for region in iter_regions(spec, plan):
        writer.write_region(region)
    return writer.finish()


def scale_spec(
    net_count: int,
    seed: int = 7,
    name: Optional[str] = None,
    rows_per_region: int = 2,
    cols_per_region: int = 8,
    nets_per_region: int = 8,
) -> Tuple[ChipSpec, ShardPlan]:
    """A spec + plan sized for ``net_count`` nets in small routable shards.

    Used by the scale benchmark and the CI smoke: regions are kept small
    (~``nets_per_region`` nets over ``rows_per_region x cols_per_region``
    slots) so one region routes in seconds with a bounded die.
    """
    if net_count < 1:
        raise ValueError(f"scale_spec net_count must be >= 1, got {net_count}")
    regions = math.ceil(net_count / nets_per_region)
    region_cols = max(1, math.ceil(math.sqrt(regions)))
    region_rows = math.ceil(regions / region_cols)
    spec = ChipSpec(
        name or f"scale{net_count}",
        rows=region_rows * rows_per_region,
        row_width_cells=region_cols * cols_per_region,
        net_count=net_count,
        seed=seed,
    )
    plan = ShardPlan(
        spec, rows_per_region=rows_per_region, cols_per_region=cols_per_region
    )
    return spec, plan
