"""Synthetic chip generator.

The paper evaluates on eight proprietary IBM 22 nm / 32 nm designs with
120 k - 960 k nets.  This generator is the documented substitution
(DESIGN.md): it produces seeded standard-cell instances with the features
that exercise every router code path - rows of library cells with off-grid
pins and internal obstructions, power rails and straps blocking track
segments, a clustered netlist whose terminal-count histogram spans the
classes of Table II, and a share of wide-wire (layer-restricted) nets.

Scale is reduced to what pure Python can route in seconds to minutes; the
eight ``TABLE_CHIP_SPECS`` mirror the relative sizes of the paper's chips.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.chip.cells import (
    CellTemplate,
    CircuitInstance,
    Orientation,
    example_cell_library,
)
from repro.chip.design import Blockage, Chip
from repro.chip.net import Net, Pin
from repro.geometry.rect import Rect
from repro.tech.stacks import (
    THIN_PITCH,
    THIN_WIDTH,
    example_rules,
    example_stack,
    example_wiretypes,
)
from repro.util.rng import make_rng

#: Standard-cell row height used by the example library, in dbu.
ROW_HEIGHT = 960


class ChipSpec:
    """Parameters of a synthetic chip."""

    def __init__(
        self,
        name: str,
        rows: int,
        row_width_cells: int,
        net_count: int,
        seed: int = 1,
        num_layers: int = 6,
        tech: str = "22nm",
        wide_net_fraction: float = 0.03,
        big_fanout_nets: int = 2,
        big_fanout_max: int = 20,
    ) -> None:
        self.name = name
        self.rows = rows
        self.row_width_cells = row_width_cells
        self.net_count = net_count
        self.seed = seed
        self.num_layers = num_layers
        self.tech = tech
        self.wide_net_fraction = wide_net_fraction
        self.big_fanout_nets = big_fanout_nets
        self.big_fanout_max = big_fanout_max

    def __repr__(self) -> str:
        return f"ChipSpec({self.name}, {self.rows}x{self.row_width_cells} cells, {self.net_count} nets)"


#: Eight specs mirroring the relative sizes of Table I's chips 1-8
#: (chips 5 and 8 are the paper's 32 nm designs and the largest ones).
TABLE_CHIP_SPECS: List[ChipSpec] = [
    ChipSpec("chip1", rows=6, row_width_cells=14, net_count=45, seed=101),
    ChipSpec("chip2", rows=6, row_width_cells=15, net_count=48, seed=102),
    ChipSpec("chip3", rows=6, row_width_cells=15, net_count=50, seed=103),
    ChipSpec("chip4", rows=7, row_width_cells=14, net_count=52, seed=104),
    ChipSpec("chip5", rows=8, row_width_cells=18, net_count=80, seed=105, tech="32nm"),
    ChipSpec("chip6", rows=9, row_width_cells=18, net_count=95, seed=106),
    ChipSpec("chip7", rows=9, row_width_cells=19, net_count=100, seed=107),
    ChipSpec("chip8", rows=12, row_width_cells=22, net_count=160, seed=108, tech="32nm"),
]


def _place_rows(
    spec: ChipSpec, library: Sequence[CellTemplate], rng
) -> Tuple[List[CircuitInstance], int, int]:
    """Fill rows left to right with random cells; returns (instances, W, H)."""
    instances: List[CircuitInstance] = []
    margin = 4 * THIN_PITCH
    max_row_width = 0
    instance_id = 0
    for row in range(spec.rows):
        x = margin
        y = margin + row * ROW_HEIGHT
        for _ in range(spec.row_width_cells):
            template = library[rng.randrange(len(library))]
            orientation = Orientation.N if rng.random() < 0.5 else Orientation.FN
            instances.append(CircuitInstance(instance_id, template, x, y, orientation))
            instance_id += 1
            x += template.width
            # Occasional placement gap (whitespace for routing).
            if rng.random() < 0.25:
                x += THIN_PITCH * rng.randrange(1, 4)
        max_row_width = max(max_row_width, x)
    width = max_row_width + margin
    height = 2 * margin + spec.rows * ROW_HEIGHT
    return instances, width, height


def _power_grid(width: int, height: int, rows: int) -> List[Blockage]:
    """Horizontal M1 power rails on row boundaries + sparse M2 straps."""
    margin = 4 * THIN_PITCH
    rails: List[Blockage] = []
    rail_half = THIN_WIDTH
    for row in range(rows + 1):
        y = margin + row * ROW_HEIGHT
        rails.append(
            Blockage(1, Rect(0, y - rail_half, width, y + rail_half), "power_rail")
        )
    strap_period = 24 * THIN_PITCH
    x = strap_period
    while x < width - THIN_PITCH:
        rails.append(
            Blockage(2, Rect(x - THIN_WIDTH, 0, x + THIN_WIDTH, height), "power_strap")
        )
        x += strap_period
    return rails


def _free_pins(
    instances: Sequence[CircuitInstance],
) -> Tuple[List[Tuple[int, str, bool]], Dict[int, CircuitInstance]]:
    """All (instance_id, pin_name, is_output) triples plus an id lookup."""
    by_id = {inst.instance_id: inst for inst in instances}
    pins: List[Tuple[int, str, bool]] = []
    for inst in instances:
        for pin_name in inst.template.pins:
            is_output = pin_name in ("Z", "Q", "QN")
            pins.append((inst.instance_id, pin_name, is_output))
    return pins, by_id


def _terminal_count(rng, big: bool, big_max: int = 20) -> int:
    """Terminal-count distribution spanning Table II's classes."""
    if big:
        return rng.randrange(12, big_max + 1)
    roll = rng.random()
    if roll < 0.60:
        return 2
    if roll < 0.78:
        return 3
    if roll < 0.88:
        return 4
    if roll < 0.97:
        return rng.randrange(5, 11)
    return rng.randrange(11, 21)


def generate_chip(spec: ChipSpec) -> Chip:
    """Generate the chip for ``spec`` deterministically from its seed."""
    rng = make_rng(spec.seed)
    library = example_cell_library()
    instances, width, height = _place_rows(spec, library, rng)
    blockages = _power_grid(width, height, spec.rows)
    stack = example_stack(spec.num_layers)
    rules = example_rules(spec.num_layers)
    wire_types = example_wiretypes(stack)

    all_pins, by_id = _free_pins(instances)
    outputs = [p for p in all_pins if p[2]]
    inputs = [p for p in all_pins if not p[2]]
    rng.shuffle(outputs)
    rng.shuffle(inputs)
    used: set = set()

    def make_pin(instance_id: int, pin_name: str) -> Pin:
        inst = by_id[instance_id]
        shapes = inst.pin_shapes(pin_name)
        return Pin(f"{instance_id}/{pin_name}", shapes, circuit_id=instance_id)

    def nearest_free_inputs(x: int, y: int, k: int) -> List[Tuple[int, str, bool]]:
        """k unused input pins, biased towards (x, y) (clustered netlists)."""
        candidates = [
            p
            for p in inputs
            if (p[0], p[1]) not in used
        ]
        if not candidates:
            return []
        locality = 6 * ROW_HEIGHT

        def distance_key(p: Tuple[int, str, bool]) -> Tuple[float, int]:
            inst = by_id[p[0]]
            cx, cy = inst.bounding_box().center
            dist = abs(cx - x) + abs(cy - y)
            # Jittered distance: keeps nets local without making them
            # degenerate chains along one row.
            return (dist + rng.randrange(0, locality), p[0])

        candidates.sort(key=distance_key)
        return candidates[:k]

    nets: List[Net] = []
    output_index = 0
    while len(nets) < spec.net_count and output_index < len(outputs):
        driver = outputs[output_index]
        output_index += 1
        if (driver[0], driver[1]) in used:
            continue
        big = len(nets) < spec.big_fanout_nets
        sinks_wanted = _terminal_count(rng, big, spec.big_fanout_max) - 1
        # Keep at least one input pin in reserve per net still to be built,
        # so big-fanout nets cannot starve the rest of the netlist.
        free_inputs = sum(1 for p in inputs if (p[0], p[1]) not in used)
        nets_remaining = spec.net_count - len(nets) - 1
        sinks_wanted = max(1, min(sinks_wanted, free_inputs - nets_remaining))
        inst = by_id[driver[0]]
        cx, cy = inst.bounding_box().center
        sinks = nearest_free_inputs(cx, cy, sinks_wanted)
        if not sinks:
            continue
        used.add((driver[0], driver[1]))
        for sink in sinks:
            used.add((sink[0], sink[1]))
        pins = [make_pin(driver[0], driver[1])] + [make_pin(s[0], s[1]) for s in sinks]
        wire_type = "default"
        weight = 1.0
        if rng.random() < spec.wide_net_fraction and len(pins) == 2:
            wire_type = "wide"
            weight = 2.0
        nets.append(Net(f"n{len(nets)}", pins, wire_type=wire_type, weight=weight))

    return Chip(
        name=spec.name,
        die=Rect(0, 0, width, height),
        stack=stack,
        rules=rules,
        wire_types=wire_types,
        circuits=instances,
        nets=nets,
        blockages=blockages,
    )
