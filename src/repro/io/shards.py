"""Sharded chip instances on disk: manifest + per-region netlist shards.

A sharded instance is a directory::

    manifest.json      die, layer count, spec, power blockages, shard index
    shard_00000.chip   one region's nets/pins + cell-obstruction blockages

The manifest holds everything global (the die box, the power grid, the
generating :class:`~repro.chip.generator.ChipSpec`); each shard holds one
region's netlist in the text-format line grammar (``BLOCKAGE``/``NET``/
``PIN``).  The split is what bounds memory: a 10^5-net instance streams
to disk one region at a time, and a router working on one region loads
one shard, not the chip.

:class:`ShardStore` is the lazy loader: an LRU cache of resident shards
(``shards.loads``/``shards.evictions`` counters, ``shards.resident``
gauge) with :meth:`ShardStore.chip_for_region` building a region-die
:class:`~repro.chip.design.Chip` whose routing space is sized by the
region, not the instance.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.chip.design import Blockage, Chip
from repro.chip.net import Net, Pin
from repro.geometry.rect import Rect
from repro.obs import OBS
from repro.tech.stacks import (
    THIN_PITCH,
    example_rules,
    example_stack,
    example_wiretypes,
)

#: Schema of ``manifest.json``.
MANIFEST_SCHEMA = "repro-chip-shards"
MANIFEST_VERSION = 1

#: Default resident-shard budget of a :class:`ShardStore`.
DEFAULT_MAX_RESIDENT = 16

#: Die halo around a region box when routing one shard standalone, in
#: thin-layer pitches (room for access paths and detours at the border).
REGION_HALO_PITCHES = 8


class ShardFormatError(ValueError):
    """Raised on a malformed manifest or shard file."""


class ShardData:
    """One parsed shard: a region's nets plus its fixed blockages."""

    __slots__ = ("index", "box", "nets", "blockages")

    def __init__(
        self, index: int, box: Rect, nets: List[Net], blockages: List[Blockage]
    ) -> None:
        self.index = index
        self.box = box
        self.nets = nets
        self.blockages = blockages

    def __repr__(self) -> str:
        return f"ShardData({self.index}, {len(self.nets)} nets)"


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def dump_shard(region) -> str:
    """Serialize a :class:`~repro.chip.generator.ShardRegion` (or
    :class:`ShardData`) to the shard text grammar."""
    box = region.box
    lines = [f"SHARD {region.index} BOX {box.x_lo} {box.y_lo} {box.x_hi} {box.y_hi}"]
    for blockage in region.blockages:
        r = blockage.rect
        lines.append(
            f"BLOCKAGE {blockage.layer} {r.x_lo} {r.y_lo} {r.x_hi} {r.y_hi} "
            f"{blockage.label}"
        )
    for net in region.nets:
        lines.append(f"NET {net.name} WIRETYPE {net.wire_type} WEIGHT {net.weight}")
        for pin in net.pins:
            owner = pin.circuit_id if pin.circuit_id is not None else "-"
            for layer, rect in pin.shapes:
                lines.append(
                    f"PIN {net.name} {pin.name} {owner} {layer} "
                    f"{rect.x_lo} {rect.y_lo} {rect.x_hi} {rect.y_hi}"
                )
    lines.append("END")
    return "\n".join(lines) + "\n"


def load_shard(text: str) -> ShardData:
    """Parse one shard file back into nets/blockages (canonical order)."""
    index: Optional[int] = None
    box: Optional[Rect] = None
    blockages: List[Blockage] = []
    nets_meta: Dict[str, Tuple[str, float]] = {}
    net_order: List[str] = []
    pin_shapes: Dict[Tuple[str, str], List[Tuple[int, Rect]]] = {}
    pin_owner: Dict[Tuple[str, str], Optional[int]] = {}
    pin_order: Dict[str, List[str]] = {}
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        tokens = line.split()
        keyword = tokens[0]
        try:
            if keyword == "SHARD":
                index = int(tokens[1])
                box = Rect(
                    int(tokens[3]), int(tokens[4]), int(tokens[5]), int(tokens[6])
                )
            elif keyword == "BLOCKAGE":
                label = tokens[6] if len(tokens) > 6 else "blockage"
                blockages.append(
                    Blockage(
                        int(tokens[1]),
                        Rect(int(tokens[2]), int(tokens[3]), int(tokens[4]),
                             int(tokens[5])),
                        label,
                    )
                )
            elif keyword == "NET":
                net_name = tokens[1]
                nets_meta[net_name] = (tokens[3], float(tokens[5]))
                net_order.append(net_name)
            elif keyword == "PIN":
                net_name, pin_name = tokens[1], tokens[2]
                owner = None if tokens[3] == "-" else int(tokens[3])
                rect = Rect(int(tokens[5]), int(tokens[6]), int(tokens[7]),
                            int(tokens[8]))
                key = (net_name, pin_name)
                if key not in pin_shapes:
                    pin_order.setdefault(net_name, []).append(pin_name)
                pin_shapes.setdefault(key, []).append((int(tokens[4]), rect))
                pin_owner[key] = owner
            elif keyword == "END":
                pass
            else:
                raise ShardFormatError(f"unknown keyword {keyword!r}")
        except (IndexError, ValueError) as error:
            raise ShardFormatError(f"line {line_no}: {raw!r}: {error}") from error
    if index is None or box is None:
        raise ShardFormatError("missing SHARD header line")
    nets: List[Net] = []
    for net_name in net_order:
        wire_type, weight = nets_meta[net_name]
        pins = [
            Pin(pin_name, pin_shapes[(net_name, pin_name)],
                circuit_id=pin_owner[(net_name, pin_name)])
            for pin_name in pin_order.get(net_name, [])
        ]
        nets.append(Net(net_name, pins, wire_type=wire_type, weight=weight))
    return ShardData(index, box, nets, blockages)


def shard_file_name(index: int) -> str:
    return f"shard_{index:05d}.chip"


# ----------------------------------------------------------------------
# Streaming writer
# ----------------------------------------------------------------------
class ShardWriter:
    """Writes shards one region at a time, then the manifest.

    Only the manifest's shard index (a few dicts per region) stays in
    memory; region data is serialized and dropped as it arrives.
    """

    def __init__(self, out_dir: str, spec, plan) -> None:
        self.out_dir = Path(out_dir)
        self.out_dir.mkdir(parents=True, exist_ok=True)
        self.spec = spec
        self.plan = plan
        self._shards: List[Dict[str, object]] = []
        self._total_nets = 0
        self._total_pins = 0
        self._finished = False

    def write_region(self, region) -> Path:
        if self._finished:
            raise RuntimeError("ShardWriter already finished")
        if region.index != len(self._shards):
            raise ValueError(
                f"regions must arrive in order; expected {len(self._shards)}, "
                f"got {region.index}"
            )
        path = self.out_dir / shard_file_name(region.index)
        path.write_text(dump_shard(region), encoding="utf-8")
        pins = sum(len(net.pins) for net in region.nets)
        box = region.box
        self._shards.append(
            {
                "index": region.index,
                "file": path.name,
                "box": [box.x_lo, box.y_lo, box.x_hi, box.y_hi],
                "nets": len(region.nets),
                "pins": pins,
                "cells": region.cells,
            }
        )
        self._total_nets += len(region.nets)
        self._total_pins += pins
        return path

    def finish(self) -> str:
        """Write ``manifest.json``; returns its path."""
        if self._finished:
            raise RuntimeError("ShardWriter already finished")
        self._finished = True
        die = self.plan.die()
        manifest = {
            "schema": MANIFEST_SCHEMA,
            "version": MANIFEST_VERSION,
            "name": self.spec.name,
            "spec": self.spec.as_dict(),
            "die": [die.x_lo, die.y_lo, die.x_hi, die.y_hi],
            "num_layers": self.spec.num_layers,
            "regions": {
                "rows": self.plan.region_rows,
                "cols": self.plan.region_cols,
                "rows_per_region": self.plan.rows_per_region,
                "cols_per_region": self.plan.cols_per_region,
            },
            "power_blockages": [
                [b.layer, b.rect.x_lo, b.rect.y_lo, b.rect.x_hi, b.rect.y_hi,
                 b.label]
                for b in self.plan.power_blockages()
            ],
            "total_nets": self._total_nets,
            "total_pins": self._total_pins,
            "shards": self._shards,
        }
        path = self.out_dir / "manifest.json"
        path.write_text(
            json.dumps(manifest, indent=1, sort_keys=True) + "\n", encoding="utf-8"
        )
        return str(path)


# ----------------------------------------------------------------------
# Lazy loader
# ----------------------------------------------------------------------
class ShardStore:
    """Lazy, LRU-bounded access to a sharded instance on disk."""

    def __init__(
        self, manifest_path: str, max_resident: Optional[int] = None
    ) -> None:
        if max_resident is None:
            max_resident = int(
                os.environ.get("REPRO_SHARD_CACHE", str(DEFAULT_MAX_RESIDENT))
            )
        self.max_resident = max(1, max_resident)
        self.manifest_path = Path(manifest_path)
        if self.manifest_path.is_dir():
            self.manifest_path = self.manifest_path / "manifest.json"
        try:
            manifest = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except OSError as error:
            raise ShardFormatError(
                f"cannot read shard manifest {self.manifest_path}: {error}"
            ) from error
        except json.JSONDecodeError as error:
            raise ShardFormatError(
                f"{self.manifest_path} is not valid JSON: {error}"
            ) from error
        if manifest.get("schema") != MANIFEST_SCHEMA:
            raise ShardFormatError(
                f"{self.manifest_path}: not a {MANIFEST_SCHEMA} manifest "
                f"(schema={manifest.get('schema')!r})"
            )
        self.manifest = manifest
        self.dir = self.manifest_path.parent
        self.name: str = manifest["name"]
        self.die = Rect(*manifest["die"])
        self.num_layers: int = manifest["num_layers"]
        self.total_nets: int = manifest["total_nets"]
        self.power_blockages: List[Blockage] = [
            Blockage(entry[0], Rect(entry[1], entry[2], entry[3], entry[4]),
                     entry[5])
            for entry in manifest["power_blockages"]
        ]
        self._index: List[Dict[str, object]] = list(manifest["shards"])
        self._boxes: List[Rect] = [Rect(*s["box"]) for s in self._index]
        self._resident: "OrderedDict[int, ShardData]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._index)

    def __repr__(self) -> str:
        return (
            f"ShardStore({self.name}, {len(self)} shards, "
            f"{self.total_nets} nets, {len(self._resident)} resident)"
        )

    def shard_box(self, index: int) -> Rect:
        return self._boxes[index]

    def shard_meta(self, index: int) -> Dict[str, object]:
        return self._index[index]

    @property
    def resident_count(self) -> int:
        return len(self._resident)

    def shard(self, index: int) -> ShardData:
        """The shard's parsed data, loading (and possibly evicting) LRU."""
        if not 0 <= index < len(self._index):
            raise IndexError(
                f"shard {index} out of range; store has {len(self._index)} shards"
            )
        data = self._resident.get(index)
        if data is not None:
            self._resident.move_to_end(index)
            return data
        path = self.dir / str(self._index[index]["file"])
        data = load_shard(path.read_text(encoding="utf-8"))
        if data.index != index:
            raise ShardFormatError(
                f"{path}: header says shard {data.index}, manifest says {index}"
            )
        while len(self._resident) >= self.max_resident:
            self._resident.popitem(last=False)
            if OBS.enabled:
                OBS.count("shards.evictions")
        self._resident[index] = data
        if OBS.enabled:
            OBS.count("shards.loads")
            OBS.gauge("shards.resident", len(self._resident))
        return data

    def shards_for_box(self, box: Rect) -> List[int]:
        """Indices of shards whose region box intersects ``box``."""
        return [
            index for index, shard_box in enumerate(self._boxes)
            if shard_box.intersects(box)
        ]

    def prefetch(self, box: Rect) -> List[int]:
        """Make the shards a region needs resident; returns their indices."""
        indices = self.shards_for_box(box)
        for index in indices:
            self.shard(index)
        return indices

    # ------------------------------------------------------------------
    # Chip reconstruction
    # ------------------------------------------------------------------
    def _base(self) -> Tuple:
        stack = example_stack(self.num_layers)
        return stack, example_rules(self.num_layers), example_wiretypes(stack)

    def chip_full(self) -> Chip:
        """Assemble the whole instance (small cases, property tests).

        Streams shards through the LRU in index order; the result holds
        every net, so this is only memory-bounded on the shard side.
        """
        stack, rules, wire_types = self._base()
        nets: List[Net] = []
        blockages = list(self.power_blockages)
        for index in range(len(self)):
            data = self.shard(index)
            nets.extend(data.nets)
            blockages.extend(data.blockages)
        return Chip(
            self.name, self.die, stack, rules, wire_types,
            circuits=[], nets=nets, blockages=blockages,
        )

    def chip_for_region(
        self, index: int, halo_pitches: int = REGION_HALO_PITCHES
    ) -> Chip:
        """A standalone chip for one region: its die is the region box
        plus a routing halo, so the routing space (track plan, grids,
        fast grid) is sized by the region — peak RSS is bounded by the
        shard, not the instance."""
        data = self.shard(index)
        halo = halo_pitches * THIN_PITCH
        die = Rect(
            max(self.die.x_lo, data.box.x_lo - halo),
            max(self.die.y_lo, data.box.y_lo - halo),
            min(self.die.x_hi, data.box.x_hi + halo),
            min(self.die.y_hi, data.box.y_hi + halo),
        )
        blockages: List[Blockage] = []
        for blockage in self.power_blockages:
            clipped = blockage.rect.intersection(die)
            if clipped is None:
                continue
            blockages.append(Blockage(blockage.layer, clipped, blockage.label))
        for blockage in data.blockages:
            clipped = blockage.rect.intersection(die)
            if clipped is None:
                continue
            blockages.append(Blockage(blockage.layer, clipped, blockage.label))
        stack, rules, wire_types = self._base()
        return Chip(
            f"{self.name}#shard{index}", die, stack, rules, wire_types,
            circuits=[], nets=list(data.nets), blockages=blockages,
        )
