"""A line-oriented text interchange format (DEF-flavoured).

Chip format::

    CHIP <name> DIE <x_lo> <y_lo> <x_hi> <y_hi> LAYERS <n>
    LAYER <index> <H|V> PITCH <p> WIDTH <w> SPACING <s>
    BLOCKAGE <layer> <x_lo> <y_lo> <x_hi> <y_hi> [label]
    CIRCUIT <id> <template> <x> <y> <N|FN>
    NET <name> WIRETYPE <type> WEIGHT <w>
    PIN <net> <name> <circuit_id|-> <layer> <x_lo> <y_lo> <x_hi> <y_hi>
    END

Routes format::

    ROUTES <chip_name>
    ROUTE <net> WIRETYPE <type>
    WIRE <net> <layer> <x0> <y0> <x1> <y1> <level> <type>
    VIA <net> <via_layer> <x> <y> <level> <type>
    END

Cell templates are not serialized (the text chip stores placed pin
shapes and obstruction rectangles directly); reloaded chips route
identically but lose the template/orientation metadata used only by the
pin-access class cache.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.chip.design import Blockage, Chip
from repro.chip.net import Net, Pin
from repro.droute.route import NetRoute, ViaInstance
from repro.geometry.rect import Rect
from repro.tech.layers import Direction, Layer, LayerStack
from repro.tech.stacks import example_rules, example_wiretypes
from repro.tech.wiring import StickFigure


class FormatError(ValueError):
    """Raised on malformed interchange text."""


# ----------------------------------------------------------------------
# Chip writer
# ----------------------------------------------------------------------
def dump_chip(chip: Chip) -> str:
    lines: List[str] = []
    die = chip.die
    lines.append(
        f"CHIP {chip.name} DIE {die.x_lo} {die.y_lo} {die.x_hi} {die.y_hi} "
        f"LAYERS {len(chip.stack)}"
    )
    for layer in chip.stack:
        direction = "H" if layer.direction is Direction.HORIZONTAL else "V"
        lines.append(
            f"LAYER {layer.index} {direction} PITCH {layer.pitch} "
            f"WIDTH {layer.min_width} SPACING {layer.min_spacing}"
        )
    for blockage in chip.blockages:
        r = blockage.rect
        lines.append(
            f"BLOCKAGE {blockage.layer} {r.x_lo} {r.y_lo} {r.x_hi} {r.y_hi} "
            f"{blockage.label}"
        )
    for circuit in chip.circuits:
        lines.append(
            f"CIRCUIT {circuit.instance_id} {circuit.template.name} "
            f"{circuit.x} {circuit.y} {circuit.orientation.value}"
        )
        for layer, rect in circuit.obstruction_shapes():
            lines.append(
                f"BLOCKAGE {layer} {rect.x_lo} {rect.y_lo} {rect.x_hi} "
                f"{rect.y_hi} circuit:{circuit.instance_id}"
            )
    for net in chip.nets:
        lines.append(f"NET {net.name} WIRETYPE {net.wire_type} WEIGHT {net.weight}")
        for pin in net.pins:
            owner = pin.circuit_id if pin.circuit_id is not None else "-"
            for layer, rect in pin.shapes:
                lines.append(
                    f"PIN {net.name} {pin.name} {owner} {layer} "
                    f"{rect.x_lo} {rect.y_lo} {rect.x_hi} {rect.y_hi}"
                )
    lines.append("END")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Chip parser
# ----------------------------------------------------------------------
def load_chip(text: str) -> Chip:
    name: Optional[str] = None
    die: Optional[Rect] = None
    layer_specs: List[Layer] = []
    blockages: List[Blockage] = []
    nets_meta: Dict[str, Tuple[str, float]] = {}
    net_order: List[str] = []
    pin_shapes: Dict[Tuple[str, str], List[Tuple[int, Rect]]] = {}
    pin_owner: Dict[Tuple[str, str], Optional[int]] = {}
    pin_order: Dict[str, List[str]] = {}

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        tokens = line.split()
        keyword = tokens[0]
        try:
            if keyword == "CHIP":
                name = tokens[1]
                die = Rect(int(tokens[3]), int(tokens[4]), int(tokens[5]), int(tokens[6]))
            elif keyword == "LAYER":
                direction = (
                    Direction.HORIZONTAL if tokens[2] == "H" else Direction.VERTICAL
                )
                layer_specs.append(
                    Layer(int(tokens[1]), direction, int(tokens[4]),
                          int(tokens[6]), int(tokens[8]))
                )
            elif keyword == "BLOCKAGE":
                label = tokens[6] if len(tokens) > 6 else "blockage"
                blockages.append(
                    Blockage(
                        int(tokens[1]),
                        Rect(int(tokens[2]), int(tokens[3]), int(tokens[4]),
                             int(tokens[5])),
                        label,
                    )
                )
            elif keyword == "CIRCUIT":
                pass  # placement metadata only; shapes arrive as BLOCKAGEs
            elif keyword == "NET":
                net_name = tokens[1]
                nets_meta[net_name] = (tokens[3], float(tokens[5]))
                net_order.append(net_name)
            elif keyword == "PIN":
                net_name, pin_name = tokens[1], tokens[2]
                owner = None if tokens[3] == "-" else int(tokens[3])
                rect = Rect(int(tokens[5]), int(tokens[6]), int(tokens[7]),
                            int(tokens[8]))
                key = (net_name, pin_name)
                if key not in pin_shapes:
                    pin_order.setdefault(net_name, []).append(pin_name)
                pin_shapes.setdefault(key, []).append((int(tokens[4]), rect))
                pin_owner[key] = owner
            elif keyword in ("END", "ROUTES", "ROUTE", "WIRE", "VIA"):
                pass
            else:
                raise FormatError(f"unknown keyword {keyword!r}")
        except (IndexError, ValueError) as error:
            raise FormatError(f"line {line_no}: {raw!r}: {error}") from error

    if name is None or die is None or not layer_specs:
        raise FormatError("missing CHIP or LAYER lines")
    stack = LayerStack(layer_specs)
    nets: List[Net] = []
    for net_name in net_order:
        wire_type, weight = nets_meta[net_name]
        pins = [
            Pin(pin_name, pin_shapes[(net_name, pin_name)],
                circuit_id=pin_owner[(net_name, pin_name)])
            for pin_name in pin_order.get(net_name, [])
        ]
        nets.append(Net(net_name, pins, wire_type=wire_type, weight=weight))
    num_layers = len(layer_specs)
    return Chip(
        name, die, stack, example_rules(num_layers),
        example_wiretypes(stack), circuits=[], nets=nets, blockages=blockages,
    )


# ----------------------------------------------------------------------
# Routes
# ----------------------------------------------------------------------
def dump_routes(routes: Dict[str, NetRoute], chip_name: str = "chip") -> str:
    lines = [f"ROUTES {chip_name}"]
    for net_name in sorted(routes):
        route = routes[net_name]
        lines.append(f"ROUTE {net_name} WIRETYPE {route.wire_type}")
        for stick, level, type_name in route.wire_items():
            lines.append(
                f"WIRE {net_name} {stick.layer} {stick.x0} {stick.y0} "
                f"{stick.x1} {stick.y1} {level} {type_name}"
            )
        for via, level, type_name in route.via_items():
            lines.append(
                f"VIA {net_name} {via.via_layer} {via.x} {via.y} "
                f"{level} {type_name}"
            )
    lines.append("END")
    return "\n".join(lines) + "\n"


def load_routes(text: str) -> Dict[str, NetRoute]:
    routes: Dict[str, NetRoute] = {}
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        tokens = line.split()
        keyword = tokens[0]
        try:
            if keyword == "ROUTE":
                routes[tokens[1]] = NetRoute(tokens[1], tokens[3])
            elif keyword == "WIRE":
                net_name = tokens[1]
                stick = StickFigure(
                    int(tokens[2]), int(tokens[3]), int(tokens[4]),
                    int(tokens[5]), int(tokens[6]),
                )
                routes[net_name].add_wire(stick, int(tokens[7]), tokens[8])
            elif keyword == "VIA":
                net_name = tokens[1]
                via = ViaInstance(int(tokens[2]), int(tokens[3]), int(tokens[4]))
                routes[net_name].add_via(via, int(tokens[5]), tokens[6])
            elif keyword in ("ROUTES", "END"):
                pass
            else:
                raise FormatError(f"unknown keyword {keyword!r}")
        except (IndexError, ValueError, KeyError) as error:
            raise FormatError(f"line {line_no}: {raw!r}: {error}") from error
    return routes


# ----------------------------------------------------------------------
# File helpers
# ----------------------------------------------------------------------
def write_chip_file(chip: Chip, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(dump_chip(chip))


def read_chip_file(path: str) -> Chip:
    with open(path) as handle:
        return load_chip(handle.read())


def write_routes_file(routes: Dict[str, NetRoute], path: str, chip_name: str = "chip") -> None:
    with open(path, "w") as handle:
        handle.write(dump_routes(routes, chip_name))


def read_routes_file(path: str) -> Dict[str, NetRoute]:
    with open(path) as handle:
        return load_routes(handle.read())
