"""Stage checkpointing for flow runs.

A killed flow run should resume instead of restarting: after each stage
the flow serializes its progress — the wiring committed so far (in the
routes text format), the global routing solution, and the
failure/coverage bookkeeping — into one JSON document.  Checkpoints are
written atomically (tmp file + rename) so a kill mid-write never leaves
a truncated checkpoint behind.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro.droute.route import NetRoute
from repro.groute.graph import GlobalRoute
from repro.io.textformat import dump_routes, load_routes

#: Stage progression markers (ordered).
STAGE_GLOBAL = "global"
STAGE_DETAILED = "detailed"
_STAGE_ORDER = (STAGE_GLOBAL, STAGE_DETAILED)

#: Schema tag distinguishing this document kind from any other JSON.
SCHEMA_NAME = "repro-checkpoint"
#: Version 2 added the engine-session payload (per-net records + dirty
#: state) and the explicit ``schema`` tag; version-1 checkpoints predate
#: the engine layer and cannot restore session state, so loading them
#: fails with a clear error instead of resuming with silently empty
#: records.
CHECKPOINT_VERSION = 2


class CheckpointError(ValueError):
    """Raised on a malformed or mismatched checkpoint."""


def stage_reached(checkpoint: Dict[str, object], stage: str) -> bool:
    """Has ``checkpoint`` completed ``stage`` (or a later one)?"""
    have = checkpoint.get("stage")
    if have not in _STAGE_ORDER or stage not in _STAGE_ORDER:
        return False
    return _STAGE_ORDER.index(have) >= _STAGE_ORDER.index(stage)


# ----------------------------------------------------------------------
# Global route (de)serialization
# ----------------------------------------------------------------------
def global_routes_to_data(
    routes: Dict[str, GlobalRoute]
) -> Dict[str, Dict[str, object]]:
    out: Dict[str, Dict[str, object]] = {}
    for name in sorted(routes):
        route = routes[name]
        edges = sorted(route.edges)
        out[name] = {
            "edges": [[list(a), list(b)] for a, b in edges],
            "extra_space": [route.extra_space.get(edge, 0.0) for edge in edges],
        }
    return out


def global_routes_from_data(
    data: Dict[str, Dict[str, object]]
) -> Dict[str, GlobalRoute]:
    routes: Dict[str, GlobalRoute] = {}
    for name, record in data.items():
        edges = [
            (tuple(a), tuple(b)) for a, b in record.get("edges", [])
        ]
        spaces = record.get("extra_space", [])
        extra = {
            edge: float(space)
            for edge, space in zip(edges, spaces)
            if float(space) != 0.0
        }
        routes[name] = GlobalRoute(name, set(edges), extra)
    return routes


# ----------------------------------------------------------------------
# Checkpoint document
# ----------------------------------------------------------------------
def build_checkpoint(
    stage: str,
    chip_name: str,
    seed: Optional[int],
    tile_size: int,
    routes: Dict[str, NetRoute],
    global_routes: Dict[str, GlobalRoute],
    local_nets: List[str],
    prerouted: List[str],
    detailed: Optional[Dict[str, object]] = None,
    session: Optional[Dict[str, object]] = None,
    detailed_partial: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Build a v2 checkpoint document.

    ``session`` is the engine-session payload
    (:meth:`repro.engine.session.RoutingSession.session_state`): per-net
    record scalars plus the dirty set, so an ECO-capable resume restores
    exactly where the killed run stood.

    ``detailed_partial`` marks a round-granular mid-detailed-routing
    checkpoint (written by the parallel pool after each completed
    partition round): ``{"rounds_done": k, "summary": ...}``.  The key
    is optional and absent from stage-boundary checkpoints, so the
    document stays a valid version-2 checkpoint either way — old readers
    simply resume from the global stage boundary.
    """
    return {
        "schema": SCHEMA_NAME,
        "version": CHECKPOINT_VERSION,
        "stage": stage,
        "chip": chip_name,
        "seed": seed,
        "tile_size": tile_size,
        "routes_text": dump_routes(routes, chip_name),
        "global": {
            "routes": global_routes_to_data(global_routes),
            "local_nets": sorted(local_nets),
            "prerouted": sorted(prerouted),
        },
        "detailed": detailed,
        "session": session,
        "detailed_partial": detailed_partial,
    }


def checkpoint_routes(checkpoint: Dict[str, object]) -> Dict[str, NetRoute]:
    """The committed wiring stored in ``checkpoint``."""
    return load_routes(str(checkpoint.get("routes_text", "")))


def save_checkpoint(path: str, checkpoint: Dict[str, object]) -> None:
    """Atomically write ``checkpoint`` to ``path``."""
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w") as handle:
        json.dump(checkpoint, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)


def load_checkpoint(
    path: str,
    chip_name: Optional[str] = None,
    seed: Optional[int] = None,
) -> Optional[Dict[str, object]]:
    """Load a checkpoint, validating chip/seed when given.

    Returns ``None`` when the file does not exist; raises
    :class:`CheckpointError` on version or identity mismatches (resuming
    another chip's checkpoint would silently corrupt the run).
    """
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        try:
            checkpoint = json.load(handle)
        except json.JSONDecodeError as error:
            raise CheckpointError(f"corrupt checkpoint {path}: {error}") from error
    schema = checkpoint.get("schema")
    if schema is not None and schema != SCHEMA_NAME:
        raise CheckpointError(
            f"checkpoint {path} has schema {schema!r}, expected {SCHEMA_NAME!r}"
        )
    version = checkpoint.get("version")
    if version == 1:
        raise CheckpointError(
            f"checkpoint {path} has version 1 (pre-engine): it predates the "
            "routing-session layer and carries no per-net session state. "
            "Re-run the flow from scratch to produce a v2 checkpoint."
        )
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has version {version}, expected {CHECKPOINT_VERSION}"
        )
    if chip_name is not None and checkpoint.get("chip") != chip_name:
        raise CheckpointError(
            f"checkpoint {path} is for chip {checkpoint.get('chip')!r}, "
            f"not {chip_name!r}"
        )
    if seed is not None and checkpoint.get("seed") != seed:
        raise CheckpointError(
            f"checkpoint {path} was written with seed {checkpoint.get('seed')}, "
            f"not {seed}"
        )
    return checkpoint
