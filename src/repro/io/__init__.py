"""Interchange I/O: a DEF-flavoured text format for chips and routes.

Downstream users need to persist instances and inspect routing results
outside Python; this package provides a small line-oriented text format
(in the spirit of LEF/DEF) with a writer and parser that round-trip
losslessly.
"""

from repro.io.checkpoint import (
    CheckpointError,
    build_checkpoint,
    checkpoint_routes,
    load_checkpoint,
    save_checkpoint,
    stage_reached,
)
from repro.io.textformat import (
    dump_chip,
    load_chip,
    dump_routes,
    load_routes,
    write_chip_file,
    read_chip_file,
    write_routes_file,
    read_routes_file,
)

__all__ = [
    "dump_chip",
    "load_chip",
    "dump_routes",
    "load_routes",
    "write_chip_file",
    "read_chip_file",
    "write_routes_file",
    "read_routes_file",
    "CheckpointError",
    "build_checkpoint",
    "checkpoint_routes",
    "load_checkpoint",
    "save_checkpoint",
    "stage_reached",
]
