"""Distance and run-length primitives for design-rule evaluation.

Diff-net spacing rules (Sec. 3.1) are non-decreasing functions of the two
shapes' widths and their common run-length, measured in the l2 metric (or
sometimes per axis).  These helpers compute the geometric quantities those
rules are evaluated on.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.geometry.rect import Rect


def l1_distance(a: Tuple[int, int], b: Tuple[int, int]) -> int:
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def _axis_gap(lo_a: int, hi_a: int, lo_b: int, hi_b: int) -> int:
    """Gap between two closed 1-D intervals (0 if they touch or overlap)."""
    if hi_a < lo_b:
        return lo_b - hi_a
    if hi_b < lo_a:
        return lo_a - hi_b
    return 0


def rect_l1_distance(a: Rect, b: Rect) -> int:
    """l1 distance between two rectangles (0 if they touch)."""
    return _axis_gap(a.x_lo, a.x_hi, b.x_lo, b.x_hi) + _axis_gap(
        a.y_lo, a.y_hi, b.y_lo, b.y_hi
    )


def rect_l2_gap(a: Rect, b: Rect) -> float:
    """Euclidean gap between two rectangles (0 if they touch)."""
    dx = _axis_gap(a.x_lo, a.x_hi, b.x_lo, b.x_hi)
    dy = _axis_gap(a.y_lo, a.y_hi, b.y_lo, b.y_hi)
    return math.hypot(dx, dy)


def rect_linf_gap(a: Rect, b: Rect) -> int:
    """Chebyshev gap between two rectangles (0 if they touch)."""
    dx = _axis_gap(a.x_lo, a.x_hi, b.x_lo, b.x_hi)
    dy = _axis_gap(a.y_lo, a.y_hi, b.y_lo, b.y_hi)
    return max(dx, dy)


def run_length(a: Rect, b: Rect) -> int:
    """Common run-length of two shapes (Sec. 3.1).

    The common run-length in x (resp. y) is the length of the intersection
    of the projections of both shapes onto that axis; the run-length used by
    spacing rules is the larger of the two, and it is 0 when the projections
    are disjoint in both axes (diagonal neighbours).
    """
    x_overlap = min(a.x_hi, b.x_hi) - max(a.x_lo, b.x_lo)
    y_overlap = min(a.y_hi, b.y_hi) - max(a.y_lo, b.y_lo)
    return max(0, x_overlap, y_overlap)


def projection_overlap(a: Rect, b: Rect, axis: str) -> int:
    """Run-length restricted to one axis ('x' or 'y'); may be 0."""
    if axis == "x":
        return max(0, min(a.x_hi, b.x_hi) - max(a.x_lo, b.x_lo))
    if axis == "y":
        return max(0, min(a.y_hi, b.y_hi) - max(a.y_lo, b.y_lo))
    raise ValueError(f"axis must be 'x' or 'y', got {axis!r}")


def rect_width(rect: Rect) -> int:
    """Rule width of a rectangle: edge length of the largest enclosed square.

    For a single rectangle this is simply min(width, height); for general
    rectilinear polygons see :func:`repro.geometry.polygon.polygon_width_at`.
    """
    return min(rect.width, rect.height)
