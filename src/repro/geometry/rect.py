"""Axis-parallel integer rectangles.

Rectangles are closed: ``(x_lo, y_lo, x_hi, y_hi)`` contains both corner
coordinates.  Degenerate rectangles (zero width or height) are legal and
represent stick figures (Sec. 3.2) before they are bloated by a wire model.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple


class Rect:
    """Closed axis-parallel rectangle with integer coordinates."""

    __slots__ = ("x_lo", "y_lo", "x_hi", "y_hi")

    def __init__(self, x_lo: int, y_lo: int, x_hi: int, y_hi: int) -> None:
        if x_lo > x_hi or y_lo > y_hi:
            raise ValueError(f"empty rect ({x_lo}, {y_lo}, {x_hi}, {y_hi})")
        self.x_lo = x_lo
        self.y_lo = y_lo
        self.x_hi = x_hi
        self.y_hi = y_hi

    def __repr__(self) -> str:
        return f"Rect({self.x_lo}, {self.y_lo}, {self.x_hi}, {self.y_hi})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Rect)
            and self.x_lo == other.x_lo
            and self.y_lo == other.y_lo
            and self.x_hi == other.x_hi
            and self.y_hi == other.y_hi
        )

    def __hash__(self) -> int:
        return hash((self.x_lo, self.y_lo, self.x_hi, self.y_hi))

    @property
    def width(self) -> int:
        return self.x_hi - self.x_lo

    @property
    def height(self) -> int:
        return self.y_hi - self.y_lo

    @property
    def area(self) -> int:
        return self.width * self.height

    @property
    def center(self) -> Tuple[int, int]:
        return ((self.x_lo + self.x_hi) // 2, (self.y_lo + self.y_hi) // 2)

    def contains_point(self, x: int, y: int) -> bool:
        return self.x_lo <= x <= self.x_hi and self.y_lo <= y <= self.y_hi

    def contains_rect(self, other: "Rect") -> bool:
        return (
            self.x_lo <= other.x_lo
            and self.y_lo <= other.y_lo
            and other.x_hi <= self.x_hi
            and other.y_hi <= self.y_hi
        )

    def intersects(self, other: "Rect") -> bool:
        """True if the closed rectangles share at least a point."""
        return (
            self.x_lo <= other.x_hi
            and other.x_lo <= self.x_hi
            and self.y_lo <= other.y_hi
            and other.y_lo <= self.y_hi
        )

    def intersects_open(self, other: "Rect") -> bool:
        """True if the rectangle *interiors* overlap (positive area)."""
        return (
            self.x_lo < other.x_hi
            and other.x_lo < self.x_hi
            and self.y_lo < other.y_hi
            and other.y_lo < self.y_hi
        )

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        x_lo = max(self.x_lo, other.x_lo)
        y_lo = max(self.y_lo, other.y_lo)
        x_hi = min(self.x_hi, other.x_hi)
        y_hi = min(self.y_hi, other.y_hi)
        if x_lo > x_hi or y_lo > y_hi:
            return None
        return Rect(x_lo, y_lo, x_hi, y_hi)

    def hull(self, other: "Rect") -> "Rect":
        return Rect(
            min(self.x_lo, other.x_lo),
            min(self.y_lo, other.y_lo),
            max(self.x_hi, other.x_hi),
            max(self.y_hi, other.y_hi),
        )

    def expanded(self, dx: int, dy: Optional[int] = None) -> "Rect":
        """Rectangle bloated by dx horizontally and dy (default dx) vertically.

        This is the Minkowski sum with a (2dx x 2dy) box: the standard way
        diff-net minimum distances are folded into obstacles in shape-based
        routing (Sec. 1.2).
        """
        if dy is None:
            dy = dx
        return Rect(self.x_lo - dx, self.y_lo - dy, self.x_hi + dx, self.y_hi + dy)

    def translated(self, dx: int, dy: int) -> "Rect":
        return Rect(self.x_lo + dx, self.y_lo + dy, self.x_hi + dx, self.y_hi + dy)

    def minkowski_sum(self, other: "Rect") -> "Rect":
        """Minkowski sum with ``other`` (e.g. stick figure + wire model)."""
        return Rect(
            self.x_lo + other.x_lo,
            self.y_lo + other.y_lo,
            self.x_hi + other.x_hi,
            self.y_hi + other.y_hi,
        )

    def mirrored_x(self) -> "Rect":
        return Rect(-self.x_hi, self.y_lo, -self.x_lo, self.y_hi)

    def mirrored_y(self) -> "Rect":
        return Rect(self.x_lo, -self.y_hi, self.x_hi, -self.y_lo)

    def rotated_90(self) -> "Rect":
        """Rotate by 90 degrees counter-clockwise around the origin."""
        return Rect(-self.y_hi, self.x_lo, -self.y_lo, self.x_hi)

    def as_tuple(self) -> Tuple[int, int, int, int]:
        return (self.x_lo, self.y_lo, self.x_hi, self.y_hi)

    @staticmethod
    def from_points(x0: int, y0: int, x1: int, y1: int) -> "Rect":
        """Rectangle spanned by two corner points in any order."""
        return Rect(min(x0, x1), min(y0, y1), max(x0, x1), max(y0, y1))

    @staticmethod
    def bounding(rects: Iterable["Rect"]) -> "Rect":
        it = iter(rects)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("bounding box of no rectangles") from None
        x_lo, y_lo, x_hi, y_hi = first.as_tuple()
        for rect in it:
            x_lo = min(x_lo, rect.x_lo)
            y_lo = min(y_lo, rect.y_lo)
            x_hi = max(x_hi, rect.x_hi)
            y_hi = max(y_hi, rect.y_hi)
        return Rect(x_lo, y_lo, x_hi, y_hi)


def subtract_rect(base: Rect, hole: Rect) -> List[Rect]:
    """``base`` minus the *interior overlap* with ``hole``, as <= 4 rects.

    The pieces have disjoint interiors and cover base \\ hole exactly.
    Degenerate slivers (zero area) are kept only if base itself is
    degenerate.
    """
    clip = base.intersection(hole)
    if clip is None or not base.intersects_open(hole):
        return [base]
    pieces: List[Rect] = []
    if base.y_lo < clip.y_lo:
        pieces.append(Rect(base.x_lo, base.y_lo, base.x_hi, clip.y_lo))
    if clip.y_hi < base.y_hi:
        pieces.append(Rect(base.x_lo, clip.y_hi, base.x_hi, base.y_hi))
    if base.x_lo < clip.x_lo:
        pieces.append(Rect(base.x_lo, clip.y_lo, clip.x_lo, clip.y_hi))
    if clip.x_hi < base.x_hi:
        pieces.append(Rect(clip.x_hi, clip.y_lo, base.x_hi, clip.y_hi))
    return pieces
