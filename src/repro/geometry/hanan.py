"""Hanan grids.

Hanan [1966] showed that a rectilinear Steiner minimum tree over a terminal
set always exists on the grid induced by the terminals' coordinates.  The
blockage grid of Sec. 3.8 starts from the Hanan grid of the obstacle corner
coordinates and refines it; the exact small-net Steiner solver in
``repro.steiner`` searches on the terminal Hanan grid directly.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.geometry.rect import Rect


def hanan_coordinates(
    points: Sequence[Tuple[int, int]], rects: Sequence[Rect] = ()
) -> Tuple[List[int], List[int]]:
    """Sorted deduplicated x- and y-coordinate lists of the Hanan grid.

    The grid is induced by the given points plus all rectangle border
    coordinates (obstacle corners contribute grid lines, Sec. 3.8).
    """
    xs = {p[0] for p in points}
    ys = {p[1] for p in points}
    for rect in rects:
        xs.update((rect.x_lo, rect.x_hi))
        ys.update((rect.y_lo, rect.y_hi))
    return sorted(xs), sorted(ys)


def hanan_grid_points(
    points: Sequence[Tuple[int, int]], rects: Sequence[Rect] = ()
) -> List[Tuple[int, int]]:
    """All crossing points of the Hanan grid, row-major order."""
    xs, ys = hanan_coordinates(points, rects)
    return [(x, y) for x in xs for y in ys]


def refine_with_pitch(
    coords: Sequence[int], tau: int, window: int = 4
) -> List[int]:
    """Add multiples of ``tau`` between coordinates closer than window*tau.

    This is the coordinate-refinement rule of Algorithm 3
    (``Blockage_Grid_Vertical``): wherever two consecutive original
    coordinates are closer than ``4 tau`` to one another, offsets at
    multiples of tau are inserted around them so that a shortest
    tau-feasible path can always snap to grid (Theorem 3.2).  The expansion
    stops once a gap of at least ``window * tau`` is reached on each side.
    """
    if tau <= 0:
        raise ValueError("tau must be positive")
    base = sorted(set(coords))
    out = set(base)
    threshold = window * tau
    for idx, x in enumerate(base):
        # Expand left while predecessor gaps stay below the threshold.
        lo = idx
        while lo > 0 and base[lo] - base[lo - 1] < threshold:
            lo -= 1
        hi = idx
        while hi + 1 < len(base) and base[hi + 1] - base[hi] < threshold:
            hi += 1
        span_lo = base[lo] - 2 * tau
        span_hi = base[hi] + 2 * tau
        k = -((x - span_lo) // tau)
        while x + k * tau <= span_hi:
            candidate = x + k * tau
            if candidate >= span_lo:
                out.add(candidate)
            k += 1
    return sorted(out)
