"""Rectilinear geometry for Manhattan routing.

Everything in BonnRoute lives in an integer Manhattan world: wires are
axis-parallel, shapes are axis-parallel rectangles (or rectilinear polygons
decomposed into rectangles), and distances are measured in the l1, l2 or
l-infinity metric depending on the design rule (Sec. 3.1).
"""

from repro.geometry.interval import Interval
from repro.geometry.rect import Rect
from repro.geometry.polygon import (
    rectilinear_area,
    polygon_width_at,
    min_polygon_width,
    boundary_edges,
    merge_rects,
)
from repro.geometry.hanan import hanan_coordinates, hanan_grid_points
from repro.geometry.l1 import (
    l1_distance,
    rect_l1_distance,
    rect_l2_gap,
    rect_linf_gap,
    run_length,
)

__all__ = [
    "Interval",
    "Rect",
    "rectilinear_area",
    "polygon_width_at",
    "min_polygon_width",
    "boundary_edges",
    "merge_rects",
    "hanan_coordinates",
    "hanan_grid_points",
    "l1_distance",
    "rect_l1_distance",
    "rect_l2_gap",
    "rect_linf_gap",
    "run_length",
]
