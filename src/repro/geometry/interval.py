"""Closed integer intervals [lo, hi].

Intervals are the unifying currency of BonnRoute's data structures: the
shape grid stores runs of identical cell configurations as intervals
(Sec. 3.3), the fast grid stores runs of identical legality words
(Sec. 3.6), and the on-track path search labels whole intervals of track
graph vertices at once (Sec. 4.1).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple


class Interval:
    """Closed interval of integers ``[lo, hi]`` with ``lo <= hi``."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: int, hi: int) -> None:
        if lo > hi:
            raise ValueError(f"empty interval [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi

    def __repr__(self) -> str:
        return f"Interval({self.lo}, {self.hi})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Interval)
            and self.lo == other.lo
            and self.hi == other.hi
        )

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __contains__(self, x: int) -> bool:
        return self.lo <= x <= self.hi

    def __len__(self) -> int:
        return self.hi - self.lo + 1

    @property
    def length(self) -> int:
        """Geometric length (hi - lo); zero for a single point."""
        return self.hi - self.lo

    def intersects(self, other: "Interval") -> bool:
        return self.lo <= other.hi and other.lo <= self.hi

    def intersection(self, other: "Interval") -> Optional["Interval"]:
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        return Interval(lo, hi) if lo <= hi else None

    def hull(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def expanded(self, amount: int) -> "Interval":
        return Interval(self.lo - amount, self.hi + amount)

    def subtract(self, other: "Interval") -> List["Interval"]:
        """self minus other, as zero, one, or two intervals."""
        if not self.intersects(other):
            return [Interval(self.lo, self.hi)]
        pieces: List[Interval] = []
        if self.lo < other.lo:
            pieces.append(Interval(self.lo, other.lo - 1))
        if other.hi < self.hi:
            pieces.append(Interval(other.hi + 1, self.hi))
        return pieces

    def clamp(self, x: int) -> int:
        return min(max(x, self.lo), self.hi)


def merge_intervals(intervals: Iterable[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Union of closed intervals, as a sorted list of disjoint (lo, hi).

    Adjacent intervals (hi + 1 == next lo) are coalesced, matching the
    discrete-vertex semantics used by the fast grid.
    """
    items = sorted(intervals)
    merged: List[Tuple[int, int]] = []
    for lo, hi in items:
        if lo > hi:
            raise ValueError(f"empty interval [{lo}, {hi}]")
        if merged and lo <= merged[-1][1] + 1:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged


def total_covered_length(intervals: Iterable[Tuple[int, int]]) -> int:
    """Total geometric length of the union of the given closed intervals."""
    return sum(hi - lo for lo, hi in merge_intervals(intervals))
