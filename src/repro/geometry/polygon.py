"""Operations on rectilinear polygons given as unions of rectangles.

Same-net rules (Sec. 3.7) are stated on connected metal polygons: the
minimum area rule constrains the polygon's total area, and short-edge rules
constrain the lengths of adjacent boundary edges.  Metal on a layer is
stored as a set of rectangles (possibly overlapping); these helpers compute
the polygon-level quantities from that representation via coordinate
compression, which is exact and fast for the per-net shape counts we see.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.geometry.rect import Rect


def _compress(rects: Sequence[Rect]) -> Tuple[List[int], List[int]]:
    xs = sorted({r.x_lo for r in rects} | {r.x_hi for r in rects})
    ys = sorted({r.y_lo for r in rects} | {r.y_hi for r in rects})
    return xs, ys


def _coverage(
    rects: Sequence[Rect], xs: List[int], ys: List[int]
) -> List[List[bool]]:
    """covered[i][j] == True iff compressed cell (xs[i..i+1], ys[j..j+1])
    lies inside the union of ``rects``."""
    x_index = {x: i for i, x in enumerate(xs)}
    y_index = {y: j for j, y in enumerate(ys)}
    covered = [[False] * (len(ys) - 1) for _ in range(len(xs) - 1)]
    for rect in rects:
        for i in range(x_index[rect.x_lo], x_index[rect.x_hi]):
            row = covered[i]
            for j in range(y_index[rect.y_lo], y_index[rect.y_hi]):
                row[j] = True
    return covered


def rectilinear_area(rects: Sequence[Rect]) -> int:
    """Area of the union of the rectangles (overlaps counted once)."""
    rects = [r for r in rects if r.area > 0]
    if not rects:
        return 0
    xs, ys = _compress(rects)
    covered = _coverage(rects, xs, ys)
    area = 0
    for i in range(len(xs) - 1):
        dx = xs[i + 1] - xs[i]
        row = covered[i]
        for j in range(len(ys) - 1):
            if row[j]:
                area += dx * (ys[j + 1] - ys[j])
    return area


def merge_rects(rects: Iterable[Rect]) -> List[Rect]:
    """Canonical disjoint-rect decomposition of the union (vertical slabs).

    Returns maximal-height rectangles per compressed x-slab, with adjacent
    slabs merged when their y-extents match.  The output covers exactly the
    union and its members have pairwise disjoint interiors.
    """
    rects = [r for r in rects if r.area > 0]
    if not rects:
        return []
    xs, ys = _compress(rects)
    covered = _coverage(rects, xs, ys)
    # Column signature per x-slab: sorted list of covered y-runs.
    slabs: List[Tuple[int, int, Tuple[Tuple[int, int], ...]]] = []
    for i in range(len(xs) - 1):
        runs: List[Tuple[int, int]] = []
        j = 0
        while j < len(ys) - 1:
            if covered[i][j]:
                start = j
                while j < len(ys) - 1 and covered[i][j]:
                    j += 1
                runs.append((ys[start], ys[j]))
            else:
                j += 1
        slabs.append((xs[i], xs[i + 1], tuple(runs)))
    merged: List[Rect] = []
    idx = 0
    while idx < len(slabs):
        x_lo, x_hi, runs = slabs[idx]
        nxt = idx + 1
        while nxt < len(slabs) and slabs[nxt][0] == x_hi and slabs[nxt][2] == runs:
            x_hi = slabs[nxt][1]
            nxt += 1
        for y_lo, y_hi in runs:
            merged.append(Rect(x_lo, y_lo, x_hi, y_hi))
        idx = nxt
    return merged


def boundary_edges(rects: Sequence[Rect]) -> List[Tuple[int, int, int, int]]:
    """Maximal boundary segments of the union, as (x0, y0, x1, y1) tuples.

    Horizontal segments have y0 == y1 and x0 < x1; vertical segments have
    x0 == x1 and y0 < y1.  Used by the short-edge rule checker (Sec. 3.7).
    """
    rects = [r for r in rects if r.area > 0]
    if not rects:
        return []
    xs, ys = _compress(rects)
    covered = _coverage(rects, xs, ys)

    def cell(i: int, j: int) -> bool:
        if i < 0 or j < 0 or i >= len(xs) - 1 or j >= len(ys) - 1:
            return False
        return covered[i][j]

    horizontal: Dict[int, List[Tuple[int, int]]] = {}
    vertical: Dict[int, List[Tuple[int, int]]] = {}
    for i in range(len(xs) - 1):
        for j in range(len(ys)):
            # Horizontal boundary at y == ys[j], spanning xs[i]..xs[i+1]:
            # exactly one of the cells above/below is covered.
            if cell(i, j - 1) != cell(i, j):
                horizontal.setdefault(ys[j], []).append((xs[i], xs[i + 1]))
    for j in range(len(ys) - 1):
        for i in range(len(xs)):
            if cell(i - 1, j) != cell(i, j):
                vertical.setdefault(xs[i], []).append((ys[j], ys[j + 1]))

    segments: List[Tuple[int, int, int, int]] = []
    for y, pieces in sorted(horizontal.items()):
        pieces.sort()
        x0, x1 = pieces[0]
        for lo, hi in pieces[1:]:
            if lo == x1:
                x1 = hi
            else:
                segments.append((x0, y, x1, y))
                x0, x1 = lo, hi
        segments.append((x0, y, x1, y))
    for x, pieces in sorted(vertical.items()):
        pieces.sort()
        y0, y1 = pieces[0]
        for lo, hi in pieces[1:]:
            if lo == y1:
                y1 = hi
            else:
                segments.append((x, y0, x, y1))
                y0, y1 = lo, hi
        segments.append((x, y0, x, y1))
    return segments


def polygon_width_at(rects: Sequence[Rect], x: int, y: int) -> int:
    """Rule width at a point, following the per-shape model of Sec. 3.2.

    The paper defines width at p as the edge length of a largest enclosed
    square covering p, but notes (Sec. 3.2) that for efficiency BonnRoute
    "only consider[s] minimum distance requirements between individual
    shapes instead of whole rectilinear polygons".  We follow that model:
    the width at p is the best min(width, height) over the individual
    rectangles containing p, which is exact for single rectangles and a
    safe (never over-estimating) value for overlapping unions.
    """
    best = 0
    for rect in rects:
        if rect.contains_point(x, y):
            best = max(best, min(rect.width, rect.height))
    return best


def min_polygon_width(rects: Sequence[Rect]) -> int:
    """Smallest per-shape width over the union's decomposition.

    Computed on the canonical disjoint decomposition so that overlapping
    input rectangles do not produce spurious thin slivers.
    """
    pieces = merge_rects(rects)
    if not pieces:
        return 0
    return min(min(piece.width, piece.height) for piece in pieces)
