"""BonnRoute reproduction.

A pure-Python reimplementation of the algorithms and data structures of

    Gester, Mueller, Nieberg, Panten, Schulte, Vygen:
    "BonnRoute: Algorithms and Data Structures for Fast and Good VLSI
    Routing", DAC 2012 / ACM TODAES 18(2), 2013.

Public entry points:

* :func:`repro.chip.generate_chip` - build a synthetic routing instance.
* :class:`repro.groute.GlobalRouter` - resource-sharing global router.
* :class:`repro.droute.DetailedRouter` - track-based detailed router.
* :class:`repro.flow.BonnRouteFlow` - the full BR(+cleanup) flow.
* :mod:`repro.baseline` - the "industry standard router" stand-in.
"""

__version__ = "1.0.0"
