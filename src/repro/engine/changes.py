"""ECO netlist/geometry changes the routing session can absorb.

Engineering-change-order edits arrive long after the first full route;
the session (:mod:`repro.engine.session`) applies them in place and
re-routes only the nets they touch.  Four edit kinds cover the common
cases:

* :class:`AddNet` — a new net appears (buffer insertion, new logic);
* :class:`RemoveNet` — a net disappears (dead logic removal);
* :class:`MovePin` — a pin's shapes translate (cell resize / swap);
* :class:`ResizeBlockage` — a fixed blockage grows or shrinks
  (macro move, power-grid change).

Each change is plain data; all mutation happens inside
``RoutingSession.apply_changes`` so dirty-tracking stays in one place.
``changes_from_json`` parses the ``route --eco CHANGES.json`` document.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.chip.design import Chip
from repro.chip.net import Net, Pin
from repro.geometry.rect import Rect


class Change:
    """Base class: one ECO edit (plain data, applied by the session)."""

    op = "change"

    def as_dict(self) -> Dict[str, object]:  # pragma: no cover - abstract
        raise NotImplementedError


class AddNet(Change):
    """Add a new net (its pins' shapes included)."""

    op = "add_net"
    __slots__ = ("net",)

    def __init__(self, net: Net) -> None:
        self.net = net

    def __repr__(self) -> str:
        return f"AddNet({self.net.name})"

    def as_dict(self) -> Dict[str, object]:
        return {
            "op": self.op,
            "net": self.net.name,
            "wire_type": self.net.wire_type,
            "weight": self.net.weight,
            "pins": [
                {
                    "name": pin.name,
                    "shapes": [
                        [layer, *rect.as_tuple()] for layer, rect in pin.shapes
                    ],
                }
                for pin in self.net.pins
            ],
        }


class RemoveNet(Change):
    """Remove a net: its wiring, pins and session record disappear."""

    op = "remove_net"
    __slots__ = ("net_name",)

    def __init__(self, net_name: str) -> None:
        self.net_name = net_name

    def __repr__(self) -> str:
        return f"RemoveNet({self.net_name})"

    def as_dict(self) -> Dict[str, object]:
        return {"op": self.op, "net": self.net_name}


class MovePin(Change):
    """Translate one pin's shapes by (dx, dy)."""

    op = "move_pin"
    __slots__ = ("net_name", "pin_name", "dx", "dy")

    def __init__(self, net_name: str, pin_name: str, dx: int, dy: int) -> None:
        self.net_name = net_name
        self.pin_name = pin_name
        self.dx = int(dx)
        self.dy = int(dy)

    def __repr__(self) -> str:
        return f"MovePin({self.net_name}:{self.pin_name}, {self.dx:+d}, {self.dy:+d})"

    def as_dict(self) -> Dict[str, object]:
        return {
            "op": self.op,
            "net": self.net_name,
            "pin": self.pin_name,
            "dx": self.dx,
            "dy": self.dy,
        }


class ResizeBlockage(Change):
    """Replace the rectangle of blockage ``index`` in ``chip.blockages``.

    Either an explicit ``rect`` or a symmetric ``expand`` margin (negative
    shrinks) describes the new extent.
    """

    op = "resize_blockage"
    __slots__ = ("index", "rect", "expand")

    def __init__(
        self,
        index: int,
        rect: Optional[Rect] = None,
        expand: Optional[int] = None,
    ) -> None:
        if (rect is None) == (expand is None):
            raise ValueError("ResizeBlockage wants exactly one of rect / expand")
        self.index = index
        self.rect = rect
        self.expand = expand

    def __repr__(self) -> str:
        how = self.rect if self.rect is not None else f"expand={self.expand}"
        return f"ResizeBlockage(#{self.index}, {how})"

    def new_rect(self, old: Rect) -> Rect:
        if self.rect is not None:
            return self.rect
        return old.expanded(int(self.expand))

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"op": self.op, "index": self.index}
        if self.rect is not None:
            out["rect"] = list(self.rect.as_tuple())
        else:
            out["expand"] = self.expand
        return out


# ----------------------------------------------------------------------
# JSON (de)serialization for ``route --eco CHANGES.json``
# ----------------------------------------------------------------------
def _pin_from_spec(spec: Dict[str, object], net_name: str, index: int) -> Pin:
    shapes: List[Tuple[int, Rect]] = []
    for shape in spec.get("shapes", ()):
        if len(shape) != 5:
            raise ValueError(
                f"pin shape wants [layer, x_lo, y_lo, x_hi, y_hi], got {shape!r}"
            )
        layer, x_lo, y_lo, x_hi, y_hi = (int(v) for v in shape)
        shapes.append((layer, Rect(x_lo, y_lo, x_hi, y_hi)))
    name = str(spec.get("name") or f"{net_name}/p{index}")
    return Pin(name, shapes)


def change_from_dict(record: Dict[str, object]) -> Change:
    """One change from its JSON record; raises ValueError on bad input."""
    op = record.get("op")
    if op == "add_net":
        net_name = str(record["net"])
        pins = [
            _pin_from_spec(spec, net_name, index)
            for index, spec in enumerate(record.get("pins", ()))
        ]
        net = Net(
            net_name,
            pins,
            wire_type=str(record.get("wire_type", "default")),
            weight=float(record.get("weight", 1.0)),
        )
        return AddNet(net)
    if op == "remove_net":
        return RemoveNet(str(record["net"]))
    if op == "move_pin":
        return MovePin(
            str(record["net"]),
            str(record["pin"]),
            int(record.get("dx", 0)),
            int(record.get("dy", 0)),
        )
    if op == "resize_blockage":
        rect = None
        if "rect" in record:
            rect = Rect(*(int(v) for v in record["rect"]))
        expand = record.get("expand")
        return ResizeBlockage(
            int(record["index"]),
            rect=rect,
            expand=int(expand) if expand is not None else None,
        )
    raise ValueError(f"unknown ECO op {op!r}")


def changes_from_json(document: Dict[str, object]) -> List[Change]:
    """Parse a ``{"changes": [...]}`` document (the --eco file format)."""
    records = document.get("changes")
    if not isinstance(records, list):
        raise ValueError('ECO document wants a top-level "changes" list')
    return [change_from_dict(record) for record in records]


def changes_to_json(changes: Sequence[Change]) -> Dict[str, object]:
    return {"changes": [change.as_dict() for change in changes]}
