"""The incremental routing session (the engine layer).

A :class:`RoutingSession` owns everything one chip's routing run needs —
the chip, the track plan, the :class:`~repro.droute.space.RoutingSpace`,
the global routing graph — plus one :class:`NetRecord` per net holding
the net's global route, corridor, detour factor, pin-access entries and
routing status.  The flow stages (:class:`~repro.flow.bonnroute.
BonnRouteFlow`, :class:`~repro.groute.router.GlobalRouter`,
:class:`~repro.droute.router.DetailedRouter`) read and write these
records instead of keeping private per-net dicts, which is what makes
incremental rerouting possible:

* :meth:`RoutingSession.apply_changes` absorbs ECO edits
  (:mod:`repro.engine.changes`), marks the touched nets dirty and
  propagates dirtiness to nets whose existing routes conflict with the
  edits (shape-grid ripup queries for geometry, global-edge usage for
  capacity);
* :meth:`RoutingSession.reroute` rips up and re-routes *only* the dirty
  set, warm-starting min-max resource sharing from the previous run's
  prices (the duals already encode where the chip is congested) and
  reusing the track plan, fast grid and pin-access catalogues unchanged.

Following Ahrens et al. (arXiv:2111.06169), incremental detailed routing
is the production workload: a full route happens once, then thousands of
small ECO passes.  The ``engine.*`` spans and counters
(docs/OBSERVABILITY.md) make the incremental win measurable:
``engine.nets_rerouted`` vs the net count, and the ``droute.net`` span
count of an ECO pass vs the full flow's.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.chip.design import Chip
from repro.chip.net import Net
from repro.droute.area import RoutingArea
from repro.engine.changes import (
    AddNet,
    Change,
    MovePin,
    RemoveNet,
    ResizeBlockage,
)
from repro.engine.dirty import (
    DirtyTracker,
    REASON_ADDED,
    REASON_CAPACITY,
    REASON_CONFLICT,
    REASON_EDITED,
    REASON_RIPUP,
)
from repro.droute.space import RoutingSpace
from repro.grid.tracks import TrackPlan, build_track_plan
from repro.groute.graph import Edge, GlobalRoute, GlobalRoutingGraph
from repro.obs import OBS

#: Net record statuses.
STATUS_PENDING = "pending"
STATUS_ROUTED = "routed"
STATUS_FAILED = "failed"


class NetRecord:
    """Everything the session knows about one net's routing state."""

    __slots__ = (
        "name",
        "status",
        "is_local",
        "prerouted",
        "global_route",
        "corridor",
        "corridor_detour",
        "access_pins",
        "failure",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.status = STATUS_PENDING
        #: All pins in one global routing tile: skips global routing.
        self.is_local = False
        #: Routed by the single-tile preroute pass (Sec. 2.5).
        self.prerouted = False
        self.global_route: Optional[GlobalRoute] = None
        self.corridor: Optional[RoutingArea] = None
        self.corridor_detour = 1.0
        #: Pin names with reserved access paths (Sec. 4.3).
        self.access_pins: List[str] = []
        #: Structured failure record when status == failed.
        self.failure = None

    def __repr__(self) -> str:
        return f"NetRecord({self.name}, {self.status})"

    def reset_routing(self) -> None:
        """Back to pending: the wiring was ripped out."""
        self.status = STATUS_PENDING
        self.failure = None
        self.access_pins = []

    def as_dict(self) -> Dict[str, object]:
        return {
            "status": self.status,
            "is_local": self.is_local,
            "prerouted": self.prerouted,
            "corridor_detour": self.corridor_detour,
            "access_pins": sorted(self.access_pins),
        }


class EcoReport:
    """Outcome of one apply_changes + reroute pass."""

    def __init__(self) -> None:
        self.nets_total = 0
        self.nets_dirty = 0
        self.dirty_reasons: Dict[str, int] = {}
        self.ripups_propagated = 0
        self.nets_rerouted = 0
        self.nets_failed = 0
        self.runtime_global = 0.0
        self.runtime_detailed = 0.0
        self.runtime_total = 0.0
        self.wire_length = 0
        self.via_count = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "nets_total": self.nets_total,
            "nets_dirty": self.nets_dirty,
            "dirty_reasons": dict(sorted(self.dirty_reasons.items())),
            "ripups_propagated": self.ripups_propagated,
            "nets_rerouted": self.nets_rerouted,
            "nets_failed": self.nets_failed,
            "time_global_s": round(self.runtime_global, 3),
            "time_detailed_s": round(self.runtime_detailed, 3),
            "time_total_s": round(self.runtime_total, 3),
            "netlength": self.wire_length,
            "vias": self.via_count,
        }


class RoutingSession:
    """Owns one chip's routing state across full routes and ECO passes."""

    def __init__(
        self,
        chip: Chip,
        gr_phases: int = 15,
        gr_tile_size: Optional[int] = None,
        threads: int = 4,
        seed: Optional[int] = None,
        corridor_margin_tiles: int = 1,
        eco_phases: Optional[int] = None,
        track_plan: Optional[TrackPlan] = None,
        workers: int = 1,
        region_timeout_s: Optional[float] = None,
        search_kernel=None,
        shard_store=None,
    ) -> None:
        self.chip = chip
        #: Optional :class:`repro.io.shards.ShardStore` backing this
        #: chip.  When set, the detailed router prefetches the shards
        #: overlapping each partition region before routing it, so a
        #: bounded-residency store has the right shards warm.
        self.shard_store = shard_store
        self.plan = track_plan if track_plan is not None else build_track_plan(chip)
        self.space = RoutingSpace(chip, track_plan=self.plan)
        self.gr_phases = gr_phases
        self.gr_tile_size = gr_tile_size
        self.threads = threads
        self.seed = seed
        self.corridor_margin_tiles = corridor_margin_tiles
        #: Worker-pool settings forwarded to every DetailedRouter bound
        #: to this session (full runs via the flow and ECO reroutes).
        self.workers = max(1, int(workers))
        self.region_timeout_s = region_timeout_s
        #: Path-search kernel (``heap``/``bucket``, droute/pathsearch.py)
        #: forwarded to every DetailedRouter bound to this session, so
        #: ECO reroutes search with the same engine as the full run.
        self.search_kernel = search_kernel
        #: Sharing phases per ECO pass: warm-started prices converge much
        #: faster than a cold solve, so a fraction of the full phase
        #: count suffices (Sec. 2.3's reuse argument applied to ECOs).
        self.eco_phases = (
            eco_phases if eco_phases is not None else max(4, gr_phases // 3)
        )
        self.records: Dict[str, NetRecord] = {
            net.name: NetRecord(net.name) for net in chip.nets
        }
        self.dirty = DirtyTracker()
        #: Reserved pin-access paths shared by every DetailedRouter bound
        #: to this session (pin name -> AccessPath), so an ECO pass
        #: reuses the catalogue work of the full run.
        self.access_paths: Dict[str, object] = {}
        #: Persistent pin-access planner (set by the first DetailedRouter
        #: bound to the session; its circuit-class catalogue cache
        #: survives across reroutes).
        self.planner = None
        #: The global router of the last full run (graph + capacities +
        #: resource model, reused by ECO reroutes until geometry edits
        #: invalidate the capacity estimate).
        self._global_router = None
        self._capacities_stale = False
        #: Final log-prices of the last resource sharing run (the duals
        #: an ECO reroute warm-starts from).
        self.sharing_log_prices: Dict[object, float] = {}
        #: Tile graph for edge-level dirtiness queries (shared with the
        #: global router when one is attached).
        self._graph: Optional[GlobalRoutingGraph] = None

    # ------------------------------------------------------------------
    # Record access
    # ------------------------------------------------------------------
    def record(self, net_name: str) -> NetRecord:
        rec = self.records.get(net_name)
        if rec is None:
            rec = NetRecord(net_name)
            self.records[net_name] = rec
        return rec

    def _net_for_change(self, net_name: str) -> Net:
        try:
            return self.chip.net(net_name)
        except KeyError:
            raise KeyError(
                f"ECO change names unknown net {net_name!r}; chip has "
                f"{len(self.chip.nets)} nets"
            ) from None

    def net_or_none(self, net_name: str) -> Optional[Net]:
        try:
            return self.chip.net(net_name)
        except KeyError:
            return None

    @property
    def graph(self) -> GlobalRoutingGraph:
        if self._global_router is not None:
            return self._global_router.graph
        if self._graph is None:
            self._graph = GlobalRoutingGraph(self.chip, self.gr_tile_size)
        return self._graph

    def attach_global_router(self, router) -> None:
        """Called by :class:`GlobalRouter` when constructed with a session."""
        self._global_router = router
        self._capacities_stale = False

    def store_sharing_prices(self, prices: Dict[object, float]) -> None:
        """Keep the final duals of a sharing run for ECO warm starts."""
        self.sharing_log_prices = {
            resource: math.log(price)
            for resource, price in prices.items()
            if price > 0.0
        }

    # ------------------------------------------------------------------
    # Stage ingestion (full-flow writes)
    # ------------------------------------------------------------------
    def local_corridor(self, net: Net) -> RoutingArea:
        """Whole-stack corridor around a local net's bounding box."""
        box = net.bounding_box().expanded(2 * self.graph.tile_size)
        clipped = box.intersection(self.chip.die) or self.chip.die
        return RoutingArea.from_boxes(
            [(z, clipped) for z in self.chip.stack.indices]
        )

    def ingest_global(self, global_result) -> None:
        """Write a global routing result into the per-net records."""
        for name, route in global_result.routes.items():
            rec = self.record(name)
            rec.global_route = route
            rec.is_local = False
            rec.corridor = global_result.corridor(
                name, self.corridor_margin_tiles
            )
            rec.corridor_detour = global_result.corridor_detour(name)
        for name in global_result.local_nets:
            rec = self.record(name)
            rec.is_local = True
            rec.global_route = None
            net = self.net_or_none(name)
            if net is not None:
                rec.corridor = self.local_corridor(net)
            rec.corridor_detour = 1.0

    def set_prerouted(self, names: Sequence[str]) -> None:
        for name in names:
            rec = self.record(name)
            rec.prerouted = True
            rec.status = STATUS_ROUTED

    def ingest_detailed(self, detailed_result) -> None:
        """Write a detailed routing result into the per-net records.

        A net the run routed is no longer dirty, even when it entered
        the run through ripup propagation rather than the given subset.
        """
        for name in detailed_result.routed:
            self.record(name).status = STATUS_ROUTED
            self.dirty.discard(name)
        for name in detailed_result.failed:
            rec = self.record(name)
            rec.status = STATUS_FAILED
            rec.failure = detailed_result.failures.get(name)

    # -- read views for stages that want plain dicts --------------------
    def corridor_map(self) -> Dict[str, RoutingArea]:
        return {
            name: rec.corridor
            for name, rec in self.records.items()
            if rec.corridor is not None
        }

    def detour_map(self) -> Dict[str, float]:
        return {
            name: rec.corridor_detour
            for name, rec in self.records.items()
            if rec.corridor is not None
        }

    def routed_names(self) -> Set[str]:
        return {
            name
            for name, rec in self.records.items()
            if rec.status == STATUS_ROUTED
        }

    # ------------------------------------------------------------------
    # Full route
    # ------------------------------------------------------------------
    def route(self, **flow_kwargs):
        """Run the full BonnRoute flow against this session.

        Convenience wrapper: builds a
        :class:`~repro.flow.bonnroute.BonnRouteFlow` bound to this
        session (import deferred to avoid the flow <-> engine cycle).
        """
        from repro.flow.bonnroute import BonnRouteFlow

        flow = BonnRouteFlow(
            self.chip,
            gr_phases=self.gr_phases,
            gr_tile_size=self.gr_tile_size,
            threads=self.threads,
            seed=self.seed,
            corridor_margin_tiles=self.corridor_margin_tiles,
            session=self,
            **flow_kwargs,
        )
        return flow.run()

    # ------------------------------------------------------------------
    # ECO changes
    # ------------------------------------------------------------------
    def apply_changes(self, changes: Sequence[Change]) -> int:
        """Apply ECO edits in place; returns the number of dirty nets.

        Direct edits mark their net dirty; conflict propagation (shape
        grid for geometry, global-edge usage for capacity) marks every
        net whose existing route the edit invalidates.
        """
        with OBS.trace("engine.apply_changes", changes=len(changes)):
            before = len(self.dirty)
            for change in changes:
                if isinstance(change, AddNet):
                    self._apply_add_net(change)
                elif isinstance(change, RemoveNet):
                    self._apply_remove_net(change)
                elif isinstance(change, MovePin):
                    self._apply_move_pin(change)
                elif isinstance(change, ResizeBlockage):
                    self._apply_resize_blockage(change)
                else:
                    raise ValueError(f"unknown change {change!r}")
            newly_dirty = len(self.dirty) - before
            if OBS.enabled:
                OBS.count("engine.changes_applied", len(changes))
                OBS.count("engine.nets_dirty", newly_dirty)
            return len(self.dirty)

    def _mark_conflicts(self, shapes: Sequence[Tuple[int, object]]) -> None:
        """Dirty every net with removable wiring near the given shapes."""
        conflicts: Set[str] = set()
        for layer, rect in shapes:
            conflicts |= self.space.conflicting_nets(layer, rect)
        for name in sorted(conflicts):
            if name not in self.records:
                continue
            if self.dirty.mark(name, REASON_CONFLICT, propagated=True):
                if OBS.enabled:
                    OBS.count("engine.ripups_propagated")

    def _apply_add_net(self, change: AddNet) -> None:
        net = change.net
        self.chip.add_net(net)
        shapes = [
            (layer, rect)
            for pin in net.pins
            for layer, rect in pin.shapes
            if self.chip.stack.has_layer(layer)
        ]
        self.space.reinsert_pin_shapes(net.name, shapes)
        rec = self.record(net.name)
        rec.is_local = self.graph.is_local_net(net)
        self.dirty.mark(net.name, REASON_ADDED)
        # A new pin may land on existing wiring: that wiring must move.
        self._mark_conflicts(shapes)

    def _apply_remove_net(self, change: RemoveNet) -> None:
        name = change.net_name
        self._net_for_change(name)  # KeyError before any mutation if unknown
        self._rip(name)
        # _rip leaves an empty NetRoute record behind (fine for nets
        # about to be rerouted); a removed net must vanish entirely so
        # the routes file carries no stale entry for it.
        self.space.routes.pop(name, None)
        self.space.remove_pin_shapes_temporarily(name)
        self.chip.remove_net(name)
        self.records.pop(name, None)
        self.dirty.discard(name)

    def _apply_move_pin(self, change: MovePin) -> None:
        net = self._net_for_change(change.net_name)
        pin = next((p for p in net.pins if p.name == change.pin_name), None)
        if pin is None:
            raise KeyError(
                f"net {change.net_name} has no pin {change.pin_name!r}; "
                f"pins are {[p.name for p in net.pins]}"
            )
        # Remove all the net's pin shapes, translate the one pin, put
        # everything back (the space primitives work net-at-a-time).
        self.space.remove_pin_shapes_temporarily(net.name)
        pin.shapes = [
            (layer, rect.translated(change.dx, change.dy))
            for layer, rect in pin.shapes
        ]
        # The pin left its circuit's footprint: the cached per-circuit
        # access catalogue no longer applies to it.
        pin.circuit_id = None
        all_shapes = [
            (layer, rect)
            for p in net.pins
            for layer, rect in p.shapes
            if self.chip.stack.has_layer(layer)
        ]
        self.space.reinsert_pin_shapes(net.name, all_shapes)
        rec = self.record(net.name)
        rec.is_local = self.graph.is_local_net(net)
        self.dirty.mark(net.name, REASON_EDITED)
        moved_shapes = [
            (layer, rect)
            for layer, rect in pin.shapes
            if self.chip.stack.has_layer(layer)
        ]
        self._mark_conflicts(moved_shapes)

    def _apply_resize_blockage(self, change: ResizeBlockage) -> None:
        try:
            blockage = self.chip.blockages[change.index]
        except IndexError:
            raise IndexError(
                f"no blockage #{change.index}; chip has "
                f"{len(self.chip.blockages)}"
            ) from None
        old_rect = blockage.rect
        new_rect = change.new_rect(old_rect)
        blockage.rect = new_rect
        self.space.replace_blockage_shape(blockage.layer, old_rect, new_rect)
        # Geometry conflicts: routed wiring inside the new extent.
        self._mark_conflicts([(blockage.layer, new_rect)])
        # Capacity conflicts: global routes through tiles the blockage
        # now covers may no longer fit; re-route them too.
        self._mark_capacity_conflicts(blockage.layer, new_rect)
        self._capacities_stale = True

    def _mark_capacity_conflicts(self, layer: int, rect) -> None:
        if not self.chip.stack.has_layer(layer):
            return
        graph = self.graph
        tx_lo, ty_lo = graph.tile_of_point(rect.x_lo, rect.y_lo)
        tx_hi, ty_hi = graph.tile_of_point(rect.x_hi, rect.y_hi)
        affected: Set[Edge] = set()
        for tx in range(tx_lo, tx_hi + 1):
            for ty in range(ty_lo, ty_hi + 1):
                node = (tx, ty, layer)
                for _other, edge in graph.neighbors(node):
                    affected.add(edge)
        if not affected:
            return
        for name, rec in sorted(self.records.items()):
            route = rec.global_route
            if route is None or not (route.edges & affected):
                continue
            if self.dirty.mark(name, REASON_CAPACITY, propagated=True):
                if OBS.enabled:
                    OBS.count("engine.ripups_propagated")

    def mark_ripup_propagated(self, net_name: str) -> None:
        """A clean net was ripped while rerouting the dirty set."""
        if self.dirty.mark(net_name, REASON_RIPUP, propagated=True):
            if OBS.enabled:
                OBS.count("engine.ripups_propagated")
                OBS.count("engine.nets_dirty")
        rec = self.records.get(net_name)
        if rec is not None:
            rec.reset_routing()

    # ------------------------------------------------------------------
    # Ripup
    # ------------------------------------------------------------------
    def _rip(self, net_name: str) -> None:
        """Remove a net's wiring and its stale reserved access paths."""
        if net_name in self.space.routes:
            self.space.remove_net_route(net_name)
        stale = [
            pin_name
            for pin_name, access in self.access_paths.items()
            if getattr(access, "net_name", None) == net_name
        ]
        for pin_name in stale:
            del self.access_paths[pin_name]
        rec = self.records.get(net_name)
        if rec is not None:
            rec.reset_routing()

    # ------------------------------------------------------------------
    # Incremental reroute
    # ------------------------------------------------------------------
    def _eco_global_router(self):
        """The reusable global router (rebuilt only when capacities went
        stale, e.g. after a blockage resize)."""
        from repro.groute.router import GlobalRouter

        if self._global_router is None or self._capacities_stale:
            self._global_router = GlobalRouter(
                self.chip,
                tile_size=self.gr_tile_size,
                phases=self.gr_phases,
                seed=self.seed,
                track_plan=self.plan,
                session=self,
            )
            self._capacities_stale = False
        return self._global_router

    def _frozen_global_routes(self, dirty: Set[str]) -> Dict[str, GlobalRoute]:
        return {
            name: rec.global_route
            for name, rec in self.records.items()
            if rec.global_route is not None and name not in dirty
        }

    def reroute(self, cleanup: bool = False) -> EcoReport:
        """Rip up and re-route the dirty set only.

        Warm-starts resource sharing from the previous duals, keeps the
        frozen nets' routes as fixed load during rounding repair, and
        reuses the track plan, fast grid and pin-access catalogues.
        With ``cleanup`` the local DRC cleanup finisher runs afterwards.
        """
        from repro.droute.router import DetailedRouter

        report = EcoReport()
        report.nets_total = len(self.chip.nets)
        start = time.time()
        with OBS.trace("engine.reroute", dirty=len(self.dirty)):
            dirty_names = {
                name for name in self.dirty.names() if name in self.records
            }
            report.nets_dirty = len(dirty_names)
            report.dirty_reasons = self.dirty.reasons_histogram()
            for name in sorted(dirty_names):
                self._rip(name)

            dirty_nets = [
                self.chip.net(name)
                for name in sorted(dirty_names)
                if self.net_or_none(name) is not None
            ]

            # -- global stage: dirty non-local nets only ----------------
            global_start = time.time()
            router = self._eco_global_router()
            routable = []
            for net in dirty_nets:
                rec = self.record(net.name)
                rec.is_local = router.graph.is_local_net(net)
                if rec.is_local:
                    rec.corridor = self.local_corridor(net)
                    rec.corridor_detour = 1.0
                    rec.global_route = None
                else:
                    routable.append(net)
            if routable:
                frozen = self._frozen_global_routes(dirty_names)
                eco_result = router.run_incremental(
                    routable,
                    warm_start=self.sharing_log_prices,
                    phases=self.eco_phases,
                    frozen_routes=frozen,
                )
                self.ingest_global(eco_result)
            report.runtime_global = time.time() - global_start

            # -- detailed stage: the dirty set, session-ordered ---------
            detailed_start = time.time()
            detailed = DetailedRouter(
                self.space,
                threads=self.threads,
                session=self,
                workers=self.workers,
                region_timeout_s=self.region_timeout_s,
                search_kernel=self.search_kernel,
            )
            result = detailed.run(dirty_nets)
            report.ripups_propagated = len(self.dirty.propagated_names())
            self.ingest_detailed(result)
            report.runtime_detailed = time.time() - detailed_start
            rerouted = result.routed | result.failed
            report.nets_rerouted = len(rerouted)
            report.nets_failed = len(result.failed)
            if OBS.enabled:
                OBS.count("engine.nets_rerouted", len(rerouted))

            if cleanup:
                from repro.baseline.cleanup import DrcCleanup

                DrcCleanup(self.space, search_kernel=self.search_kernel).run()

            self.dirty.clear()
        report.wire_length = self.space.total_wire_length()
        report.via_count = self.space.total_via_count()
        report.runtime_total = time.time() - start
        return report

    # ------------------------------------------------------------------
    # Checkpoint payload (io/checkpoint.py schema v2)
    # ------------------------------------------------------------------
    def session_state(self) -> Dict[str, object]:
        """JSON-serializable per-net record + dirty state."""
        return {
            "records": {
                name: rec.as_dict() for name, rec in sorted(self.records.items())
            },
            "dirty": sorted(self.dirty.names()),
            "dirty_reasons": {
                name: self.dirty.reason(name)
                for name in sorted(self.dirty.names())
            },
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Restore records/dirty flags from a checkpoint's session payload.

        Corridors and global routes are rebuilt by the caller (the flow
        re-ingests the checkpointed global result); this restores the
        scalar per-net state the records carry beyond it.
        """
        for name, data in (state.get("records") or {}).items():
            rec = self.record(name)
            rec.status = str(data.get("status", STATUS_PENDING))
            rec.is_local = bool(data.get("is_local", False))
            rec.prerouted = bool(data.get("prerouted", False))
            rec.corridor_detour = float(data.get("corridor_detour", 1.0))
            rec.access_pins = list(data.get("access_pins", ()))
        reasons = state.get("dirty_reasons") or {}
        for name in state.get("dirty") or ():
            self.dirty.mark(name, reasons.get(name, REASON_EDITED))
