"""Net-level dirty tracking for incremental rerouting.

A net is *dirty* when its routed wiring can no longer be trusted: either
an ECO edit touched the net itself, or the edit's geometry conflicts
with the net's existing route (found via shape-grid ripup queries and
global-edge usage).  The tracker records *why* each net went dirty and
whether the dirtiness was propagated (a conflict) rather than direct (an
edit), which feeds the ``engine.ripups_propagated`` counter.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

#: Direct edits.
REASON_EDITED = "edited"  # the net's own pins moved
REASON_ADDED = "added"  # the net is new
#: Propagated dirtiness.
REASON_CONFLICT = "conflict"  # edit geometry overlaps the net's wiring
REASON_CAPACITY = "capacity"  # a global edge the net uses lost capacity
REASON_RIPUP = "ripup"  # ripped by a dirty net during rerouting


class DirtyTracker:
    """Set of dirty nets with first-cause reasons."""

    def __init__(self) -> None:
        self._reasons: Dict[str, str] = {}
        self._propagated: Set[str] = set()

    def __len__(self) -> int:
        return len(self._reasons)

    def __contains__(self, net_name: str) -> bool:
        return net_name in self._reasons

    def __bool__(self) -> bool:
        return bool(self._reasons)

    def mark(
        self, net_name: str, reason: str, propagated: bool = False
    ) -> bool:
        """Mark a net dirty; returns True when it was newly marked.

        The first reason sticks (a net edited *and* in conflict reports
        the edit), but a direct mark upgrades an earlier propagated one.
        """
        fresh = net_name not in self._reasons
        if fresh:
            self._reasons[net_name] = reason
            if propagated:
                self._propagated.add(net_name)
        elif not propagated and net_name in self._propagated:
            self._reasons[net_name] = reason
            self._propagated.discard(net_name)
        return fresh

    def discard(self, net_name: str) -> None:
        self._reasons.pop(net_name, None)
        self._propagated.discard(net_name)

    def names(self) -> Set[str]:
        return set(self._reasons)

    def reason(self, net_name: str) -> str:
        return self._reasons[net_name]

    def propagated_names(self) -> Set[str]:
        return set(self._propagated)

    def reasons_histogram(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for reason in self._reasons.values():
            histogram[reason] = histogram.get(reason, 0) + 1
        return histogram

    def clear(self) -> None:
        self._reasons.clear()
        self._propagated.clear()

    def update_from(
        self, names: Iterable[str], reason: str, propagated: bool = False
    ) -> int:
        """Mark many; returns how many were newly marked."""
        fresh = 0
        for name in names:
            if self.mark(name, reason, propagated=propagated):
                fresh += 1
        return fresh
