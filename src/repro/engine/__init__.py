"""The incremental routing engine: sessions, ECO changes, dirty tracking."""

from repro.engine.changes import (
    AddNet,
    Change,
    MovePin,
    RemoveNet,
    ResizeBlockage,
    change_from_dict,
    changes_from_json,
    changes_to_json,
)
from repro.engine.dirty import (
    DirtyTracker,
    REASON_ADDED,
    REASON_CAPACITY,
    REASON_CONFLICT,
    REASON_EDITED,
    REASON_RIPUP,
)
from repro.engine.session import (
    EcoReport,
    NetRecord,
    RoutingSession,
    STATUS_FAILED,
    STATUS_PENDING,
    STATUS_ROUTED,
)

__all__ = [
    "AddNet",
    "Change",
    "MovePin",
    "RemoveNet",
    "ResizeBlockage",
    "change_from_dict",
    "changes_from_json",
    "changes_to_json",
    "DirtyTracker",
    "REASON_ADDED",
    "REASON_CAPACITY",
    "REASON_CONFLICT",
    "REASON_EDITED",
    "REASON_RIPUP",
    "EcoReport",
    "NetRecord",
    "RoutingSession",
    "STATUS_FAILED",
    "STATUS_PENDING",
    "STATUS_ROUTED",
]
