"""Rectilinear Steiner tree baselines.

The paper measures detours against Steiner lengths that are exact for
nets with at most 9 terminals (via FLUTE [Chu & Wong 2008]) and
near-minimum for larger nets (heuristics).  This package provides the
same: an exact Dreyfus-Wagner solver on the Hanan grid for small nets and
a greedy Steiner-point-insertion heuristic above.
"""

from repro.steiner.rsmt import (
    rectilinear_mst_length,
    exact_steiner_length,
    heuristic_steiner_length,
    steiner_length,
)

__all__ = [
    "rectilinear_mst_length",
    "exact_steiner_length",
    "heuristic_steiner_length",
    "steiner_length",
]
