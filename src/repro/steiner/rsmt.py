"""Rectilinear Steiner minimum tree lengths (the FLUTE stand-in).

* :func:`exact_steiner_length` - Dreyfus-Wagner dynamic programming on
  the Hanan grid, exact for small terminal counts (the paper uses exact
  lengths for nets with at most 9 terminals, Sec. 5.3);
* :func:`heuristic_steiner_length` - greedy Hanan-point insertion over
  the rectilinear MST (Kahng-Robins style), used for larger nets;
* :func:`steiner_length` - the dispatcher with an LRU cache, matching
  the paper's <= 9 / > 9 split.

Hanan [1966]: an RSMT always exists on the grid induced by the terminal
coordinates, so the DP over Hanan grid vertices is exact.
"""

from __future__ import annotations

import heapq
from functools import lru_cache
from typing import Dict, FrozenSet, List, Sequence, Tuple

Point = Tuple[int, int]

#: Exact solving bound; above it the heuristic takes over (paper: 9).
EXACT_TERMINAL_LIMIT = 9


def _l1(a: Point, b: Point) -> int:
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def rectilinear_mst_length(points: Sequence[Point]) -> int:
    """Length of a rectilinear (l1) minimum spanning tree (Prim)."""
    unique = list(dict.fromkeys(points))
    if len(unique) <= 1:
        return 0
    in_tree = [False] * len(unique)
    best = [1 << 60] * len(unique)
    best[0] = 0
    total = 0
    for _ in range(len(unique)):
        u = min(
            (i for i in range(len(unique)) if not in_tree[i]),
            key=lambda i: best[i],
        )
        in_tree[u] = True
        total += best[u]
        for v in range(len(unique)):
            if not in_tree[v]:
                d = _l1(unique[u], unique[v])
                if d < best[v]:
                    best[v] = d
    return total


def _hanan_graph(points: Sequence[Point]):
    xs = sorted({p[0] for p in points})
    ys = sorted({p[1] for p in points})
    nodes = [(x, y) for x in xs for y in ys]
    index = {node: i for i, node in enumerate(nodes)}
    adjacency: List[List[Tuple[int, int]]] = [[] for _ in nodes]
    for i, x in enumerate(xs):
        for j, y in enumerate(ys):
            a = index[(x, y)]
            if i + 1 < len(xs):
                b = index[(xs[i + 1], y)]
                w = xs[i + 1] - x
                adjacency[a].append((b, w))
                adjacency[b].append((a, w))
            if j + 1 < len(ys):
                b = index[(x, ys[j + 1])]
                w = ys[j + 1] - y
                adjacency[a].append((b, w))
                adjacency[b].append((a, w))
    return nodes, index, adjacency


def exact_steiner_length(points: Sequence[Point]) -> int:
    """Exact RSMT length by Dreyfus-Wagner DP on the Hanan grid.

    Exponential in the terminal count; intended for
    <= ``EXACT_TERMINAL_LIMIT`` terminals.
    """
    terminals = list(dict.fromkeys(points))
    if len(terminals) <= 1:
        return 0
    if len(terminals) == 2:
        return _l1(terminals[0], terminals[1])
    nodes, index, adjacency = _hanan_graph(terminals)
    n = len(nodes)
    terminal_ids = [index[t] for t in terminals]
    root = terminal_ids[-1]
    others = terminal_ids[:-1]
    k = len(others)
    INF = 1 << 60
    # dp[mask][v]: min cost of a tree spanning terminal subset ``mask``
    # plus vertex v.
    dp = [[INF] * n for _ in range(1 << k)]
    for i, t in enumerate(others):
        dp[1 << i][t] = 0

    def dijkstra_relax(row: List[int]) -> None:
        heap = [(cost, v) for v, cost in enumerate(row) if cost < INF]
        heapq.heapify(heap)
        while heap:
            cost, v = heapq.heappop(heap)
            if cost > row[v]:
                continue
            for w, weight in adjacency[v]:
                nd = cost + weight
                if nd < row[w]:
                    row[w] = nd
                    heapq.heappush(heap, (nd, w))

    for mask in range(1, 1 << k):
        row = dp[mask]
        # Merge sub-trees at a common vertex.
        submask = (mask - 1) & mask
        while submask:
            other = mask ^ submask
            if submask < other:
                sub_row = dp[submask]
                other_row = dp[other]
                for v in range(n):
                    combined = sub_row[v] + other_row[v]
                    if combined < row[v]:
                        row[v] = combined
            submask = (submask - 1) & mask
        # Extend by shortest paths.
        dijkstra_relax(row)
    return dp[(1 << k) - 1][root]


def heuristic_steiner_length(points: Sequence[Point]) -> int:
    """Greedy Hanan-point insertion over the rectilinear MST.

    Iteratively adds the Hanan grid point that shrinks the MST the most
    (Kahng-Robins); stops at a local optimum.  Ratio well below the
    1.5 MST bound in practice.
    """
    terminals = list(dict.fromkeys(points))
    if len(terminals) <= 2:
        return rectilinear_mst_length(terminals)
    current = list(terminals)
    current_length = rectilinear_mst_length(current)
    xs = sorted({p[0] for p in terminals})
    ys = sorted({p[1] for p in terminals})
    candidates = [
        (x, y) for x in xs for y in ys if (x, y) not in set(terminals)
    ]
    improved = True
    added: List[Point] = []
    while improved and len(added) < len(terminals) - 2:
        improved = False
        best_candidate = None
        best_length = current_length
        for candidate in candidates:
            if candidate in added:
                continue
            length = rectilinear_mst_length(current + [candidate])
            if length < best_length:
                best_length = length
                best_candidate = candidate
        if best_candidate is not None:
            current.append(best_candidate)
            added.append(best_candidate)
            current_length = best_length
            improved = True
    return current_length


@lru_cache(maxsize=4096)
def _steiner_length_cached(points: Tuple[Point, ...]) -> int:
    if len(points) <= EXACT_TERMINAL_LIMIT:
        return exact_steiner_length(points)
    return heuristic_steiner_length(points)


def steiner_length(points: Sequence[Point]) -> int:
    """Steiner length baseline: exact for <= 9 terminals, heuristic above.

    This is the denominator of the scenic-net detour statistics (Table I)
    and the baseline of Tables II and III.
    """
    return _steiner_length_cached(tuple(sorted(dict.fromkeys(points))))
