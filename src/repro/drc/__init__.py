"""Design rule checking over routed chips.

Counts the error metric of Table I: DRC violations (diff-net spacing,
same-net minimum area / short edge / minimum segment) plus *opens*
(connected components minus nets).
"""

from repro.drc.checker import DrcChecker, DrcReport, Violation

__all__ = ["DrcChecker", "DrcReport", "Violation"]
