"""DRC checker (Sec. 5.2 / 5.3 error counts).

Checks a routed :class:`repro.droute.space.RoutingSpace` for:

* **diff-net spacing**: every pair of shapes of different nets (or net
  vs blockage) must satisfy the width/run-length spacing table;
* **minimum area**: each connected same-net metal polygon per layer;
* **short edges**: adjacent boundary edges both below the minimum edge
  length;
* **notches**: non-touching shapes of the *same* net closer than the
  notch spacing (Sec. 3.7: "even within the same path, non-adjacent
  segments have to obey distance requirements");
* **minimum segment length**: route segments shorter than tau;
* **opens**: per net, connected components of (pins + wiring) minus 1.

The error count of Table I is ``len(violations) + opens``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.chip.design import Chip
from repro.droute.space import RoutingSpace
from repro.geometry.l1 import rect_l2_gap, run_length
from repro.geometry.polygon import boundary_edges, merge_rects, rectilinear_area
from repro.geometry.rect import Rect
from repro.tech.wiring import ShapeKind
from repro.util.unionfind import UnionFind


class Violation:
    """One design rule violation."""

    __slots__ = ("kind", "layer", "rect", "nets", "detail")

    def __init__(
        self,
        kind: str,
        layer: int,
        rect: Rect,
        nets: Tuple[Optional[str], ...],
        detail: str = "",
    ) -> None:
        self.kind = kind
        self.layer = layer
        self.rect = rect
        self.nets = nets
        self.detail = detail

    def __repr__(self) -> str:
        return f"Violation({self.kind}, M{self.layer}, {self.nets}, {self.detail})"


class DrcReport:
    """All violations plus the opens count."""

    def __init__(self) -> None:
        self.violations: List[Violation] = []
        self.opens = 0

    @property
    def error_count(self) -> int:
        return len(self.violations) + self.opens

    def by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for violation in self.violations:
            out[violation.kind] = out.get(violation.kind, 0) + 1
        if self.opens:
            out["open"] = self.opens
        return out

    def __repr__(self) -> str:
        return f"DrcReport(errors={self.error_count}, {self.by_kind()})"


class DrcChecker:
    """Full-chip design rule check over a routing space."""

    def __init__(self, space: RoutingSpace) -> None:
        self.space = space
        self.chip = space.chip

    # ------------------------------------------------------------------
    # Shape collection
    # ------------------------------------------------------------------
    def _net_shapes(self) -> Dict[int, List[Tuple[Optional[str], Rect, int]]]:
        """Per layer: (net, rect, rule_width) of all metal, incl. pins and
        blockages (net None)."""
        per_layer: Dict[int, List[Tuple[Optional[str], Rect, int]]] = {
            z: [] for z in self.chip.stack.indices
        }
        for layer, rect, _owner in self.chip.obstruction_shapes():
            if layer in per_layer:
                per_layer[layer].append((None, rect, min(rect.width, rect.height)))
        for net in self.chip.nets:
            for pin in net.pins:
                for layer, rect in pin.shapes:
                    if layer in per_layer:
                        per_layer[layer].append(
                            (net.name, rect, min(rect.width, rect.height))
                        )
        for route in self.space.routes.values():
            for stick, _level, type_name in route.wire_items():
                wire_type = self.chip.wire_type(type_name)
                shape, cls, _kind = wire_type.wire_shape(stick, self.chip.stack)
                per_layer[stick.layer].append((route.net_name, shape, cls.rule_width))
            for via, _level, type_name in route.via_items():
                model = self.chip.wire_type(type_name).via_model(via.via_layer)
                for kind, layer, rect, cls, _sk in model.shapes(
                    via.x, via.y, via.via_layer
                ):
                    if kind == "wiring" and layer in per_layer:
                        per_layer[layer].append(
                            (route.net_name, rect, cls.rule_width)
                        )
        return per_layer

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------
    def check_spacing(self, report: DrcReport) -> None:
        """Diff-net spacing via a sweep over per-layer shape lists."""
        for layer, shapes in self._net_shapes().items():
            rule = self.chip.rules.spacing_rule(layer)
            radius = rule.max_spacing()
            ordered = sorted(shapes, key=lambda item: item[1].x_lo)
            xs = [item[1].x_lo for item in ordered]
            import bisect

            seen_pairs: Set[Tuple] = set()
            for index, (net_a, rect_a, width_a) in enumerate(ordered):
                hi = rect_a.x_hi + radius
                end = bisect.bisect_right(xs, hi)
                for other in range(index + 1, end):
                    net_b, rect_b, width_b = ordered[other]
                    if net_a == net_b and net_a is not None:
                        continue
                    if net_a is None and net_b is None:
                        continue
                    required = rule.spacing(
                        width_a, width_b, run_length(rect_a, rect_b)
                    )
                    gap = rect_l2_gap(rect_a, rect_b)
                    if rect_a.intersects_open(rect_b) or gap < required:
                        key = (
                            layer,
                            rect_a.as_tuple(),
                            rect_b.as_tuple(),
                        )
                        if key in seen_pairs:
                            continue
                        seen_pairs.add(key)
                        report.violations.append(
                            Violation(
                                "spacing",
                                layer,
                                rect_a.hull(rect_b),
                                (net_a, net_b),
                                f"gap {gap:.0f} < {required}",
                            )
                        )

    def check_notches(self, report: DrcReport) -> None:
        """Same-net notch rule: non-touching pieces too close (Sec. 3.7)."""
        for route in self.space.routes.values():
            shapes_per_layer: Dict[int, List[Rect]] = {}
            for stick, _level, type_name in route.wire_items():
                wire_type = self.chip.wire_type(type_name)
                shape, _cls, _kind = wire_type.wire_shape(stick, self.chip.stack)
                shapes_per_layer.setdefault(stick.layer, []).append(shape)
            for layer, shapes in shapes_per_layer.items():
                notch = self.chip.rules.same_net_rules(layer).notch_spacing
                reported = False
                for i in range(len(shapes)):
                    if reported:
                        break
                    for j in range(i + 1, len(shapes)):
                        a, b = shapes[i], shapes[j]
                        if a.intersects(b):
                            continue  # touching pieces: one polygon
                        gap = rect_l2_gap(a, b)
                        if gap < notch:
                            report.violations.append(
                                Violation(
                                    "notch", layer, a.hull(b),
                                    (route.net_name,),
                                    f"gap {gap:.0f} < {notch}",
                                )
                            )
                            reported = True  # one per net/layer suffices
                            break

    def check_same_net(self, report: DrcReport) -> None:
        """Minimum area, short edges and minimum segment length per net."""
        for route in self.space.routes.values():
            shapes_per_layer: Dict[int, List[Rect]] = {}
            for stick, _level, type_name in route.wire_items():
                wire_type = self.chip.wire_type(type_name)
                shape, _cls, _kind = wire_type.wire_shape(stick, self.chip.stack)
                shapes_per_layer.setdefault(stick.layer, []).append(shape)
                same_net = self.chip.rules.same_net_rules(stick.layer)
                if 0 < stick.length < same_net.min_segment_length:
                    report.violations.append(
                        Violation(
                            "min_segment",
                            stick.layer,
                            stick.as_rect(),
                            (route.net_name,),
                            f"len {stick.length} < {same_net.min_segment_length}",
                        )
                    )
            for via, _level, type_name in route.via_items():
                model = self.chip.wire_type(type_name).via_model(via.via_layer)
                for kind, layer, rect, _cls, _sk in model.shapes(
                    via.x, via.y, via.via_layer
                ):
                    if kind == "wiring":
                        shapes_per_layer.setdefault(layer, []).append(rect)
            # Pins join their layer's polygon (they supply min area).
            try:
                net = self.chip.net(route.net_name)
            except KeyError:
                net = None  # test wiring without a netlist entry
            if net is not None:
                for pin in net.pins:
                    for layer, rect in pin.shapes:
                        shapes_per_layer.setdefault(layer, []).append(rect)
            for layer, shapes in shapes_per_layer.items():
                same_net = self.chip.rules.same_net_rules(layer)
                for polygon in _connected_polygons(shapes):
                    area = rectilinear_area(polygon)
                    if 0 < area < same_net.min_area:
                        report.violations.append(
                            Violation(
                                "min_area",
                                layer,
                                Rect.bounding(polygon),
                                (route.net_name,),
                                f"area {area} < {same_net.min_area}",
                            )
                        )
                    edges = boundary_edges(polygon)
                    for (a, b) in _adjacent_edge_pairs(edges):
                        len_a = abs(a[2] - a[0]) + abs(a[3] - a[1])
                        len_b = abs(b[2] - b[0]) + abs(b[3] - b[1])
                        if (
                            len_a < same_net.min_edge_length
                            and len_b < same_net.min_edge_length
                        ):
                            report.violations.append(
                                Violation(
                                    "short_edge",
                                    layer,
                                    Rect.from_points(a[0], a[1], b[2], b[3]),
                                    (route.net_name,),
                                    f"edges {len_a}/{len_b}",
                                )
                            )
                            break  # one per polygon is informative enough

    def check_opens(self, report: DrcReport) -> None:
        """Connected components minus number of nets (Sec. 5.3)."""
        total_components = 0
        for net in self.chip.nets:
            pieces: List[Tuple[int, Rect]] = []
            for pin in net.pins:
                pieces.extend(pin.shapes)
            route = self.space.routes.get(net.name)
            if route is not None:
                for stick, _level, type_name in route.wire_items():
                    wire_type = self.chip.wire_type(type_name)
                    shape, _cls, _kind = wire_type.wire_shape(stick, self.chip.stack)
                    pieces.append((stick.layer, shape))
                for via, _level, type_name in route.via_items():
                    model = self.chip.wire_type(type_name).via_model(via.via_layer)
                    for kind, layer, rect, _cls, _sk in model.shapes(
                        via.x, via.y, via.via_layer
                    ):
                        if kind == "wiring":
                            pieces.append((layer, rect))
                        else:
                            # Cut connects its two pad layers.
                            pieces.append((-via.via_layer - 1000, rect))
            total_components += _component_count(pieces, net)
        report.opens = total_components - len(self.chip.nets)

    def run(
        self,
        spacing: bool = True,
        same_net: bool = True,
        opens: bool = True,
        notches: bool = True,
    ) -> DrcReport:
        report = DrcReport()
        if spacing:
            self.check_spacing(report)
        if same_net:
            self.check_same_net(report)
        if notches and same_net:
            self.check_notches(report)
        if opens:
            self.check_opens(report)
        return report


def _connected_polygons(shapes: Sequence[Rect]) -> List[List[Rect]]:
    """Group same-layer rects into connected (touching) polygons."""
    shapes = [s for s in shapes if s.area >= 0]
    uf = UnionFind(range(len(shapes)))
    ordered = sorted(range(len(shapes)), key=lambda i: shapes[i].x_lo)
    for pos, i in enumerate(ordered):
        for j in ordered[pos + 1:]:
            if shapes[j].x_lo > shapes[i].x_hi:
                break
            if shapes[i].intersects(shapes[j]):
                uf.union(i, j)
    groups: Dict[int, List[Rect]] = {}
    for i, shape in enumerate(shapes):
        groups.setdefault(uf.find(i), []).append(shape)
    return list(groups.values())


def _adjacent_edge_pairs(edges):
    """Pairs of boundary edges sharing an endpoint."""
    endpoints: Dict[Tuple[int, int], List] = {}
    for edge in edges:
        endpoints.setdefault((edge[0], edge[1]), []).append(edge)
        endpoints.setdefault((edge[2], edge[3]), []).append(edge)
    for shared in endpoints.values():
        for i in range(len(shared)):
            for j in range(i + 1, len(shared)):
                yield shared[i], shared[j]


def _component_count(pieces: Sequence[Tuple[int, Rect]], net) -> int:
    """Connected components of a net's metal, vias connecting layers.

    Via cuts are encoded with pseudo-layer ``-via_layer - 1000`` and
    connect to wiring on both adjacent layers.
    """
    if not pieces:
        return max(1, len(net.pins))
    uf = UnionFind(range(len(pieces)))
    for i in range(len(pieces)):
        layer_i, rect_i = pieces[i]
        for j in range(i + 1, len(pieces)):
            layer_j, rect_j = pieces[j]
            connected = False
            if layer_i == layer_j and rect_i.intersects(rect_j):
                connected = True
            else:
                cut_layer = None
                metal_layer = None
                if layer_i <= -1000:
                    cut_layer, metal_layer = -(layer_i + 1000), layer_j
                    cut_rect, metal_rect = rect_i, rect_j
                elif layer_j <= -1000:
                    cut_layer, metal_layer = -(layer_j + 1000), layer_i
                    cut_rect, metal_rect = rect_j, rect_i
                if cut_layer is not None and metal_layer in (
                    cut_layer, cut_layer + 1
                ):
                    if cut_rect.intersects(metal_rect):
                        connected = True
            if connected:
                uf.union(i, j)
    return uf.component_count
