"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate`` — write a synthetic chip to a text file;
* ``chipgen`` — stream a large sharded instance (per-region shard
  files plus ``manifest.json``) to a directory without materializing
  the whole chip in memory;
* ``route`` — run the BonnRoute flow (or the ISR baseline) on a chip
  file and write the routes; ``--eco CHANGES.json`` follows up with an
  incremental ECO reroute of only the edited/conflicting nets; with
  ``--shard-region I`` the chip argument is a shard manifest (or its
  directory) and only region ``I`` plus a halo is routed;
* ``drc`` — check a routed chip and print the violation summary;
* ``render`` / ``viz`` — ASCII-render one layer of a routed chip
  (``viz`` additionally takes a ``--window`` clip rectangle).

Observability (docs/OBSERVABILITY.md): ``route --obs`` prints the
end-of-run span/counter summary, ``--trace-out PATH`` additionally
streams the JSONL trace (validate with ``python -m repro.obs``),
``--heatmap-out PATH`` exports the global-routing congestion heatmap,
and ``--report-out PATH`` writes the standalone HTML report (span
waterfall, heatmap, track utilization, histograms — inline SVG).
"""

from __future__ import annotations

import argparse
import sys

from repro.chip.generator import ChipSpec, generate_chip
from repro.io.textformat import (
    read_chip_file,
    read_routes_file,
    write_chip_file,
    write_routes_file,
)


def _cmd_generate(args: argparse.Namespace) -> int:
    spec = ChipSpec(
        args.name, rows=args.rows, row_width_cells=args.cells,
        net_count=args.nets, seed=args.seed,
    )
    chip = generate_chip(spec)
    write_chip_file(chip, args.output)
    print(f"wrote {chip} to {args.output}")
    return 0


def _cmd_chipgen(args: argparse.Namespace) -> int:
    from repro.chip.generator import ShardPlan, chip_spec, stream_chip_shards

    if args.spec:
        try:
            spec = chip_spec(args.spec)
        except KeyError as error:
            print(f"error: {error.args[0]}", file=sys.stderr)
            return 2
    else:
        try:
            spec = ChipSpec(
                args.name, rows=args.rows, row_width_cells=args.cells,
                net_count=args.nets, seed=args.seed,
            )
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    plan = ShardPlan(
        spec,
        rows_per_region=args.rows_per_region,
        cols_per_region=args.cols_per_region,
    )
    manifest = stream_chip_shards(spec, args.output_dir, plan)
    print(
        f"streamed {spec.net_count} nets into {plan.num_regions} shards "
        f"({plan.region_rows}x{plan.region_cols} regions)"
    )
    print(f"manifest written to {manifest}")
    return 0


def _write_flight_dump(path: str) -> None:
    """Write the observer's flight-recorder ring to ``path`` as JSON."""
    import json

    from repro.obs import OBS

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            {"type": "flight_recorder", "records": OBS.flight.dump()},
            handle, sort_keys=True, default=str,
        )
        handle.write("\n")


def _cmd_route(args: argparse.Namespace) -> int:
    from repro.obs import OBS, JsonlTraceSink

    shard_store = None
    if args.shard_region is not None:
        from repro.io.shards import ShardFormatError, ShardStore

        try:
            shard_store = ShardStore(args.chip)
            chip = shard_store.chip_for_region(args.shard_region)
        except (OSError, IndexError, ShardFormatError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    else:
        chip = read_chip_file(args.chip)
    if args.trace_out or args.obs or args.report_out:
        sink = None
        if args.trace_out:
            sink = JsonlTraceSink(
                args.trace_out,
                meta={"chip": chip.name, "flow": args.flow, "seed": args.seed},
            )
        OBS.configure(enabled=True, sink=sink)
    if args.flow == "bonnroute":
        from repro.flow.bonnroute import BonnRouteFlow
        from repro.flow.faults import FaultPlan

        fault_plan = None
        if args.inject_faults:
            try:
                fault_plan = FaultPlan.parse(
                    args.inject_faults, seed=args.seed or 0
                )
            except ValueError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
        from repro.io.checkpoint import CheckpointError

        try:
            result = BonnRouteFlow(
                chip, gr_phases=args.gr_phases, seed=args.seed,
                cleanup=not args.no_cleanup,
                fault_plan=fault_plan,
                net_timeout_s=args.net_timeout,
                stage_budget_s=args.stage_budget,
                checkpoint_path=args.checkpoint,
                resume=args.resume,
                workers=args.workers,
                region_timeout_s=args.region_timeout,
                search_kernel=args.search_kernel,
                preroute_local_nets=not args.no_preroute,
                shard_store=shard_store,
            ).run()
        except CheckpointError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        except BaseException:
            # Unhandled flow crash: leave the flight recorder's last
            # moments on disk before the traceback propagates.
            if args.flight_out:
                _write_flight_dump(args.flight_out)
                print(
                    f"flight recorder dump written to {args.flight_out}",
                    file=sys.stderr,
                )
            raise
    else:
        from repro.flow.isr_flow import IsrFlow

        result = IsrFlow(chip, cleanup=not args.no_cleanup).run()
    if args.eco:
        import json

        from repro.engine.changes import changes_from_json

        if args.flow != "bonnroute":
            print("error: --eco requires --flow bonnroute", file=sys.stderr)
            return 2
        try:
            with open(args.eco) as handle:
                changes = changes_from_json(json.load(handle))
            session = result.session
            session.apply_changes(changes)
            eco_report = session.reroute(cleanup=not args.no_cleanup)
        except (OSError, ValueError, KeyError, IndexError) as error:
            print(f"error: eco pass failed: {error}", file=sys.stderr)
            return 2
        result.metrics.eco = eco_report.as_dict()
        result.metrics.netlength = eco_report.wire_length
        result.metrics.vias = eco_report.via_count
        print("--- eco report ---")
        for key, value in eco_report.as_dict().items():
            print(f"{key:13}: {value}")
    write_routes_file(result.space.routes, args.output, chip.name)
    for key, value in result.metrics.as_dict().items():
        print(f"{key:13}: {value}")
    report = getattr(result, "failure_report", None)
    if report is not None and (
        report.net_failures or report.degraded_stages or report.recovered_nets
    ):
        print("--- failure report ---")
        for key, value in report.as_dict().items():
            print(f"{key:13}: {value}")
    if OBS.enabled:
        OBS.close()
        print("--- observability summary ---")
        print(OBS.summary_table())
        if args.trace_out:
            print(f"trace written to {args.trace_out}")
    if args.flight_out:
        _write_flight_dump(args.flight_out)
        print(f"flight recorder dump written to {args.flight_out}")
    if args.heatmap_out:
        from repro.obs import write_congestion_heatmap

        heatmap = write_congestion_heatmap(
            result.global_result, args.heatmap_out
        )
        print(
            f"congestion heatmap ({len(heatmap['edges'])} used edges, "
            f"max utilization {heatmap['max_utilization']:.2f}) "
            f"written to {args.heatmap_out}"
        )
    if args.report_out:
        from repro.obs.report import write_route_report

        write_route_report(
            args.report_out,
            result,
            OBS,
            meta={"chip": chip.name, "flow": args.flow, "seed": args.seed},
        )
        print(f"report written to {args.report_out}")
    print(f"routes written to {args.output}")
    return 0 if result.detailed_result.failed == set() else 1


def _cmd_drc(args: argparse.Namespace) -> int:
    from repro.drc.checker import DrcChecker
    from repro.droute.space import RoutingSpace

    chip = read_chip_file(args.chip)
    space = RoutingSpace(chip)
    routes = read_routes_file(args.routes)
    for route in routes.values():
        for stick, level, type_name in route.wire_items():
            space.add_wire(route.net_name, type_name, stick, level)
        for via, level, type_name in route.via_items():
            space.add_via(route.net_name, type_name, via, level)
    report = DrcChecker(space).run()
    print(f"errors: {report.error_count}  ({report.by_kind()})")
    if args.verbose:
        for violation in report.violations:
            print(f"  {violation}")
    return 0 if report.error_count == 0 else 1


def _parse_window(spec: str):
    from repro.geometry.rect import Rect

    parts = spec.split(",")
    if len(parts) != 4:
        raise ValueError(
            f"--window wants X_LO,Y_LO,X_HI,Y_HI (four integers), got {spec!r}"
        )
    try:
        x_lo, y_lo, x_hi, y_hi = (int(part) for part in parts)
    except ValueError:
        raise ValueError(f"--window coordinates must be integers, got {spec!r}")
    if x_hi <= x_lo or y_hi <= y_lo:
        raise ValueError(
            f"--window must span a non-empty area (x_lo < x_hi, "
            f"y_lo < y_hi), got {spec!r}"
        )
    return Rect(x_lo, y_lo, x_hi, y_hi)


def _cmd_render(args: argparse.Namespace) -> int:
    from repro.droute.space import RoutingSpace
    from repro.viz import render_layer

    chip = read_chip_file(args.chip)
    space = RoutingSpace(chip)
    if args.routes:
        for route in read_routes_file(args.routes).values():
            for stick, level, type_name in route.wire_items():
                space.add_wire(route.net_name, type_name, stick, level)
            for via, level, type_name in route.via_items():
                space.add_via(route.net_name, type_name, via, level)
    window = None
    try:
        if getattr(args, "window", None):
            window = _parse_window(args.window)
        rendering = render_layer(space, args.layer, width=args.width, window=window)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(rendering)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="BonnRoute reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a synthetic chip")
    generate.add_argument("output")
    generate.add_argument("--name", default="chip")
    generate.add_argument("--rows", type=int, default=3)
    generate.add_argument("--cells", type=int, default=6)
    generate.add_argument("--nets", type=int, default=10)
    generate.add_argument("--seed", type=int, default=1)
    generate.set_defaults(func=_cmd_generate)

    chipgen = sub.add_parser(
        "chipgen",
        help="stream a sharded chip instance (shards + manifest) to a "
        "directory",
    )
    chipgen.add_argument("output_dir")
    chipgen.add_argument(
        "--spec", default=None, metavar="NAME",
        help="use a named chip spec (see repro.chip.generator."
        "TABLE_CHIP_SPECS) instead of --rows/--cells/--nets",
    )
    chipgen.add_argument("--name", default="chip")
    chipgen.add_argument("--rows", type=int, default=8)
    chipgen.add_argument("--cells", type=int, default=32)
    chipgen.add_argument("--nets", type=int, default=128)
    chipgen.add_argument("--seed", type=int, default=1)
    chipgen.add_argument(
        "--rows-per-region", type=int, default=4, metavar="R",
        help="cell rows per shard region",
    )
    chipgen.add_argument(
        "--cols-per-region", type=int, default=16, metavar="C",
        help="cell columns (slots) per shard region",
    )
    chipgen.set_defaults(func=_cmd_chipgen)

    route = sub.add_parser("route", help="route a chip file")
    route.add_argument("chip")
    route.add_argument("output")
    route.add_argument("--flow", choices=("bonnroute", "isr"), default="bonnroute")
    route.add_argument("--gr-phases", type=int, default=15)
    route.add_argument("--seed", type=int, default=1)
    route.add_argument("--no-cleanup", action="store_true")
    route.add_argument(
        "--net-timeout", type=float, default=None, metavar="SECONDS",
        help="soft per-net deadline inside the detailed search",
    )
    route.add_argument(
        "--stage-budget", type=float, default=None, metavar="SECONDS",
        help="hard wall-clock budget per routing stage",
    )
    route.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="route each partition round's regions on N worker "
        "processes under a crash-tolerant supervisor (1 = in-process "
        "serial; results are bit-identical either way)",
    )
    route.add_argument(
        "--region-timeout", type=float, default=None, metavar="SECONDS",
        help="per-region deadline for pool workers; a worker past the "
        "deadline is killed and its region retried (then degraded to "
        "in-process serial routing)",
    )
    route.add_argument(
        "--search-kernel", choices=("heap", "bucket"), default="bucket",
        help="path-search engine for detailed routing: 'bucket' uses a "
        "Dial-style monotone bucket queue with vectorized labels and "
        "corridor-aware future costs; 'heap' is the reference binary-"
        "heap kernel (same paths under deterministic tie-breaking)",
    )
    route.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="write stage checkpoints to PATH (JSON); with --workers, "
        "also a round-granular checkpoint after each partition round",
    )
    route.add_argument(
        "--resume", action="store_true",
        help="resume from the --checkpoint file if present",
    )
    route.add_argument(
        "--eco", default=None, metavar="CHANGES.json",
        help="after the full route, apply the ECO changes from this "
        'file ({"changes": [...]}) and incrementally re-route only the '
        "dirty nets (bonnroute flow only)",
    )
    route.add_argument(
        "--inject-faults", action="append", default=None, metavar="SPEC",
        help="deterministic fault injection, e.g. "
        "'path_search:0.1', 'steiner_oracle:0.05:raise:inf' or "
        "'worker:0.2:kill' (site:fraction[:kind[:fires[:stall_s]]]); "
        "repeatable",
    )
    route.add_argument(
        "--no-preroute", action="store_true",
        help="skip the local-net preroute stage and send every net "
        "through main detailed routing (keeps partition rounds "
        "multi-region so --workers actually forks on small chips)",
    )
    route.add_argument(
        "--shard-region", type=int, default=None, metavar="I",
        help="treat CHIP as a shard manifest (or its directory, see "
        "'chipgen') and route only region I plus a halo; shards are "
        "loaded lazily through a bounded-residency store",
    )
    route.add_argument(
        "--obs", action="store_true",
        help="enable observability and print the end-of-run "
        "span/counter summary (docs/OBSERVABILITY.md)",
    )
    route.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="enable observability and stream the JSONL trace to PATH "
        "(validate: python -m repro.obs PATH)",
    )
    route.add_argument(
        "--flight-out", default=None, metavar="PATH",
        help="write the flight-recorder dump (most recent spans/events/"
        "notes) to PATH after the run — and on an unhandled crash",
    )
    route.add_argument(
        "--heatmap-out", default=None, metavar="PATH",
        help="export the global-routing congestion heatmap "
        "(edge usage/capacity/utilization JSON) to PATH",
    )
    route.add_argument(
        "--report-out", default=None, metavar="PATH",
        help="enable observability and write a standalone HTML report "
        "(span waterfall, congestion heatmap, track utilization, "
        "histograms) to PATH",
    )
    route.set_defaults(func=_cmd_route)

    drc = sub.add_parser("drc", help="check a routed chip")
    drc.add_argument("chip")
    drc.add_argument("routes")
    drc.add_argument("--verbose", action="store_true")
    drc.set_defaults(func=_cmd_drc)

    render = sub.add_parser("render", help="ASCII-render one layer")
    render.add_argument("chip")
    render.add_argument("--routes", default=None)
    render.add_argument("--layer", type=int, default=1)
    render.add_argument("--width", type=int, default=100)
    render.set_defaults(func=_cmd_render)

    viz = sub.add_parser(
        "viz",
        help="ASCII-render one layer, optionally clipped to a window",
    )
    viz.add_argument("chip")
    viz.add_argument("--routes", default=None)
    viz.add_argument("--layer", type=int, default=1)
    viz.add_argument("--width", type=int, default=100)
    viz.add_argument(
        "--window", default=None, metavar="X_LO,Y_LO,X_HI,Y_HI",
        help="clip the rendering to this die rectangle (dbu)",
    )
    viz.set_defaults(func=_cmd_render)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
