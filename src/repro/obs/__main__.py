"""``python -m repro.obs TRACE.jsonl`` — validate a trace file.

Thin wrapper over :func:`repro.obs.schema.main` so validation has an
entry point that does not re-execute an already-imported module.
"""

import sys

from repro.obs.schema import main

if __name__ == "__main__":
    sys.exit(main())
