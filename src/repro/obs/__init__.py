"""``repro.obs`` — zero-dependency observability for the routing flow.

Three pieces:

* :class:`~repro.obs.core.Observer` — a span tracer (``with
  OBS.trace("droute.net", net=...)``) plus a metrics registry
  (counters, gauges, histograms) with monotonic timing and nesting;
* sinks (:mod:`repro.obs.sinks`) — a JSONL event log (``--trace-out``),
  the end-of-run CLI summary table, and a congestion heatmap export
  keyed by global-routing edge usage (``--heatmap-out``);
* the schema (:mod:`repro.obs.schema`) — the documented trace format
  and its validator (``python -m repro.obs.schema TRACE.jsonl``);
* reports (:mod:`repro.obs.report`) — the standalone HTML report
  generator behind ``route --report-out`` (span waterfall, congestion
  heatmap, track utilization, histograms — inline SVG, no deps);
* the regression gate (:mod:`repro.obs.regress`) — ``python -m
  repro.obs.regress BASELINE.json CURRENT.json`` compares persisted
  ``BENCH_*.json`` records and fails CI on work-counter drift.

``OBS`` is the process-wide singleton every instrumentation site uses.
It starts disabled; while disabled each site costs one boolean check
(``if OBS.enabled:``) and records nothing.  Enable it with
``OBS.configure(enabled=True, sink=JsonlTraceSink(path))`` — the CLI
does this for ``--trace-out`` — and ``OBS.close()`` at the end of the
run to flush the summary record.

Every metric and span name emitted anywhere in the codebase is
catalogued in ``docs/OBSERVABILITY.md`` with its unit and the paper
table/figure it reproduces; ``tests/test_obs.py`` and the CI smoke job
hold the code and that catalogue together.
"""

from repro.obs.core import FlightRecorder, Histogram, Observer, Span
from repro.obs.schema import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    validate_trace_file,
    validate_trace_lines,
)
from repro.obs.sinks import (
    JsonlTraceSink,
    MemorySink,
    congestion_heatmap,
    heatmap_layers,
    write_congestion_heatmap,
)

#: The process-wide observer.  Import the object, not its fields:
#: ``from repro.obs import OBS`` then ``if OBS.enabled: OBS.count(...)``.
OBS = Observer(enabled=False)

__all__ = [
    "OBS",
    "Observer",
    "Span",
    "Histogram",
    "FlightRecorder",
    "JsonlTraceSink",
    "MemorySink",
    "congestion_heatmap",
    "heatmap_layers",
    "write_congestion_heatmap",
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "validate_trace_file",
    "validate_trace_lines",
]
