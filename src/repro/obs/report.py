"""Self-contained HTML routing reports (``route --report-out``).

Renders one standalone HTML file — inline CSS, inline SVG, zero
dependencies, no external resources — with four sections:

* **span waterfall** — every span of the trace as a horizontal bar on a
  shared time axis, indented by nesting depth (the per-stage runtime
  picture of Table I's time column);
* **congestion heatmap** — the :func:`repro.obs.sinks.congestion_heatmap`
  export rasterized per layer (:func:`repro.obs.sinks.heatmap_layers`)
  and colored white→red by utilization;
* **track utilization** — per-layer routed wire length over the track
  plan's usable track length (Sec. 3.5);
* **histograms** — bucketed bars from the registry's retained samples
  (``flow.net_length_dbu``, ``flow.net_detour_ratio``,
  ``pathsearch.labels_per_search`` …), falling back to the
  count/mean/min/max stat row when only a trace summary is available.

Two entry points: the CLI builds a report from the live run
(``python -m repro route … --report-out report.html``), and
``python -m repro.obs.report TRACE.jsonl [--heatmap H.json] -o OUT``
rebuilds one offline from persisted artifacts (the CI upload path).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.sinks import heatmap_layers

#: Maximum spans drawn in the waterfall; the longest are kept so huge
#: traces stay renderable (the cut is reported in the section header).
MAX_WATERFALL_SPANS = 400

_STAGE_COLORS = [
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1",
    "#76b7b2", "#edc948", "#9c755f",
]


def _escape(text: object) -> str:
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _color_for(name: str, palette: Dict[str, str]) -> str:
    key = name.split(".")[0]
    if key not in palette:
        palette[key] = _STAGE_COLORS[len(palette) % len(_STAGE_COLORS)]
    return palette[key]


def _heat_color(value: float) -> str:
    """White (0) → red (>= 1) ramp; overload saturates dark red."""
    clamped = max(0.0, min(value, 1.0))
    channel = int(round(255 * (1.0 - clamped)))
    if value > 1.0:
        return "#8b0000"
    return f"#ff{channel:02x}{channel:02x}"


# ----------------------------------------------------------------------
# Trace input
# ----------------------------------------------------------------------
def load_trace(path: str) -> List[Dict[str, object]]:
    """Parse a JSONL trace file; malformed lines are skipped."""
    records: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records


def records_from_observer(observer) -> List[Dict[str, object]]:
    """The same record stream a JsonlTraceSink would have written."""
    records: List[Dict[str, object]] = [
        span.as_record() for span in observer.spans
    ]
    summary: Dict[str, object] = {"type": "summary"}
    summary.update(observer.summary())
    records.append(summary)
    return records


def _spans(records: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    return [r for r in records if r.get("type") == "span"]


def _summary(records: Sequence[Dict[str, object]]) -> Dict[str, object]:
    for record in reversed(records):
        if record.get("type") == "summary":
            return record
    return {}


# ----------------------------------------------------------------------
# Track utilization
# ----------------------------------------------------------------------
def track_utilization(space) -> List[Dict[str, object]]:
    """Per-layer routed length over usable track length.

    Duck-typed over a :class:`~repro.droute.space.RoutingSpace`: needs
    ``chip.stack.indices``, ``track_plan`` and ``routes``.  Utilization
    can exceed 1.0 when off-track wiring outruns the plan — the report
    flags that rather than clamping it.
    """
    routed: Dict[int, int] = {}
    for route in space.routes.values():
        for stick, _level, _type in route.wire_items():
            routed[stick.layer] = routed.get(stick.layer, 0) + stick.length
    rows: List[Dict[str, object]] = []
    plan = space.track_plan
    for layer in space.chip.stack.indices:
        usable = plan.usable_track_length(layer)
        length = routed.get(layer, 0)
        rows.append(
            {
                "layer": layer,
                "name": f"M{layer}",
                "tracks": len(plan.layer_tracks(layer)),
                "routed_dbu": length,
                "usable_dbu": usable,
                "utilization": (length / usable) if usable > 0 else 0.0,
            }
        )
    return rows


# ----------------------------------------------------------------------
# SVG sections
# ----------------------------------------------------------------------
def _lane_label(span: Dict[str, object]) -> str:
    """Waterfall lane of one span: ``main`` or ``worker-N``."""
    worker = span.get("worker")
    if worker is None:
        return "main"
    return f"worker-{int(worker)}"


def _lane_order(label: str) -> Tuple[int, int]:
    if label == "main":
        return (0, 0)
    return (1, int(label.rsplit("-", 1)[1]))


def _svg_waterfall(spans: List[Dict[str, object]]) -> Tuple[str, str]:
    """(note, svg) for the span waterfall.

    Spans carrying a ``worker`` field (trace v2, repatriated from pool
    workers) are grouped into per-process lanes — ``main`` first, then
    one ``worker-N`` lane per worker id — each introduced by a bold
    header row tagged ``data-lane``.  A single-process trace renders
    exactly as the flat v1 waterfall did.
    """
    if not spans:
        return "no spans recorded", ""
    drawn = sorted(spans, key=lambda s: (s.get("start", 0.0), s.get("depth", 0)))
    note = f"{len(drawn)} spans"
    if len(drawn) > MAX_WATERFALL_SPANS:
        keep = set(
            id(s)
            for s in sorted(drawn, key=lambda s: -float(s.get("dur", 0.0)))[
                :MAX_WATERFALL_SPANS
            ]
        )
        drawn = [s for s in drawn if id(s) in keep]
        note = (
            f"{len(spans)} spans, showing the {MAX_WATERFALL_SPANS} longest"
        )
    lanes: Dict[str, List[Dict[str, object]]] = {}
    for span in drawn:
        lanes.setdefault(_lane_label(span), []).append(span)
    multi = len(lanes) > 1
    if multi:
        note += f" in {len(lanes)} lanes"
    t_end = max(
        float(s.get("start", 0.0)) + float(s.get("dur", 0.0)) for s in drawn
    )
    t_end = max(t_end, 1e-9)
    width, row_h, label_w = 900, 18, 260
    total_rows = len(drawn) + (len(lanes) if multi else 0)
    height = row_h * total_rows + 30
    palette: Dict[str, str] = {}
    parts = [
        f'<svg class="waterfall" xmlns="http://www.w3.org/2000/svg" '
        f'width="{width + label_w}" height="{height}" '
        f'viewBox="0 0 {width + label_w} {height}" role="img">'
    ]
    # Time axis with four gridlines.
    for i in range(5):
        x = label_w + width * i / 4
        t = t_end * i / 4
        parts.append(
            f'<line x1="{x:.1f}" y1="0" x2="{x:.1f}" y2="{height - 20}" '
            f'stroke="#ddd" stroke-width="1"/>'
            f'<text x="{x:.1f}" y="{height - 6}" font-size="11" '
            f'fill="#666" text-anchor="middle">{t:.3f}s</text>'
        )
    render_rows: List[Tuple[str, object]] = []
    for lane in sorted(lanes, key=_lane_order):
        if multi:
            render_rows.append(("lane", lane))
        for span in lanes[lane]:
            render_rows.append(("span", span))
    for row, (row_kind, item) in enumerate(render_rows):
        if row_kind == "lane":
            y = row * row_h
            parts.append(
                f'<text class="lane" data-lane="{_escape(item)}" x="4" '
                f'y="{y + 13}" font-size="11" font-weight="bold" '
                f'fill="#111">{_escape(item)}</text>'
            )
            continue
        span = item
        name = str(span.get("name", "?"))
        start = float(span.get("start", 0.0))
        duration = float(span.get("dur", 0.0))
        depth = int(span.get("depth", 0))
        y = row * row_h
        x = label_w + width * start / t_end
        bar = max(1.0, width * duration / t_end)
        attrs = span.get("attrs") or {}
        title = _escape(
            f"{name} start={start:.4f}s dur={duration:.4f}s "
            + " ".join(f"{k}={v}" for k, v in attrs.items())
        )
        label = _escape(("  " * depth) + name)
        parts.append(
            f'<text x="4" y="{y + 13}" font-size="11" fill="#333">{label}</text>'
            f'<rect class="span" data-name="{_escape(name)}" x="{x:.1f}" '
            f'y="{y + 3}" width="{bar:.1f}" height="{row_h - 6}" '
            f'fill="{_color_for(name, palette)}" fill-opacity="0.85">'
            f"<title>{title}</title></rect>"
        )
    parts.append("</svg>")
    return note, "".join(parts)


def _svg_heatmap(heatmap: Dict[str, object]) -> Tuple[str, str]:
    """(note, svg) for the per-layer congestion grids."""
    grids = heatmap_layers(heatmap)
    if not grids:
        return "no used global-routing edges", ""
    nx, ny = heatmap["tiles"]
    cell = max(6, min(26, 360 // max(nx, ny)))
    pad, title_h = 14, 18
    layer_w = nx * cell + pad
    height = ny * cell + title_h + 24
    width = layer_w * len(grids) + 120
    parts = [
        f'<svg class="heatmap" xmlns="http://www.w3.org/2000/svg" '
        f'width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img">'
    ]
    for index, (layer, grid) in enumerate(sorted(grids.items())):
        x0 = index * layer_w
        parts.append(
            f'<text x="{x0}" y="12" font-size="12" fill="#333">'
            f"M{layer}</text>"
        )
        for ty in range(ny):
            for tx in range(nx):
                value = grid[ty][tx]
                # Row 0 is the bottom of the die; SVG y grows downward.
                y = title_h + (ny - 1 - ty) * cell
                parts.append(
                    f'<rect x="{x0 + tx * cell}" y="{y}" width="{cell}" '
                    f'height="{cell}" fill="{_heat_color(value)}" '
                    f'stroke="#eee" stroke-width="0.5">'
                    f"<title>tile ({tx},{ty}) M{layer}: "
                    f"utilization {value:.2f}</title></rect>"
                )
    # Legend.
    lx = layer_w * len(grids) + 10
    for i, value in enumerate((0.0, 0.25, 0.5, 0.75, 1.0)):
        parts.append(
            f'<rect x="{lx}" y="{title_h + i * 16}" width="14" height="14" '
            f'fill="{_heat_color(value)}" stroke="#ccc" stroke-width="0.5"/>'
            f'<text x="{lx + 20}" y="{title_h + i * 16 + 11}" font-size="11" '
            f'fill="#666">{value:.2f}</text>'
        )
    parts.append("</svg>")
    note = (
        f"chip {heatmap.get('chip', '?')}, {nx}x{ny} tiles, "
        f"max utilization {float(heatmap.get('max_utilization', 0.0)):.2f}"
    )
    return note, "".join(parts)


def _svg_bars(
    labels: Sequence[str],
    values: Sequence[float],
    titles: Sequence[str],
    css_class: str,
    unit: str = "",
) -> str:
    """Generic horizontal bar chart (track utilization, histograms)."""
    if not values:
        return ""
    peak = max(max(values), 1e-9)
    width, row_h, label_w = 560, 18, 150
    height = row_h * len(values) + 6
    parts = [
        f'<svg class="{css_class}" xmlns="http://www.w3.org/2000/svg" '
        f'width="{width + label_w + 90}" height="{height}" '
        f'viewBox="0 0 {width + label_w + 90} {height}" role="img">'
    ]
    for row, (label, value, title) in enumerate(zip(labels, values, titles)):
        y = row * row_h
        bar = width * value / peak
        color = "#c0392b" if css_class == "tracks" and value > 1.0 else "#4e79a7"
        parts.append(
            f'<text x="4" y="{y + 13}" font-size="11" fill="#333">'
            f"{_escape(label)}</text>"
            f'<rect x="{label_w}" y="{y + 3}" width="{max(bar, 1.0):.1f}" '
            f'height="{row_h - 6}" fill="{color}" fill-opacity="0.85">'
            f"<title>{_escape(title)}</title></rect>"
            f'<text x="{label_w + width + 6}" y="{y + 13}" font-size="11" '
            f'fill="#666">{value:.3g}{unit}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _bucket(samples: Sequence[float], buckets: int = 12) -> List[Tuple[float, float, int]]:
    """(lo, hi, count) bins over [min, max]; one bin for constant data."""
    lo, hi = min(samples), max(samples)
    if hi <= lo:
        return [(lo, hi, len(samples))]
    counts = [0] * buckets
    span = hi - lo
    for value in samples:
        index = min(buckets - 1, int((value - lo) / span * buckets))
        counts[index] += 1
    return [
        (lo + span * i / buckets, lo + span * (i + 1) / buckets, count)
        for i, count in enumerate(counts)
    ]


def _svg_histogram(name: str, data: Dict[str, object]) -> str:
    samples = data.get("samples") or []
    if not samples:
        return ""
    bins = _bucket([float(s) for s in samples])
    labels = [f"{lo:.3g}..{hi:.3g}" for lo, hi, _count in bins]
    values = [float(count) for _lo, _hi, count in bins]
    titles = [
        f"{name}: {count} samples in [{lo:.4g}, {hi:.4g})"
        for lo, hi, count in bins
    ]
    return _svg_bars(labels, values, titles, "histogram")


# ----------------------------------------------------------------------
# HTML assembly
# ----------------------------------------------------------------------
_CSS = """
body { font-family: -apple-system, 'Segoe UI', Helvetica, Arial, sans-serif;
       margin: 2em auto; max-width: 1100px; color: #222; }
h1 { font-size: 1.4em; border-bottom: 2px solid #4e79a7; padding-bottom: .3em; }
h2 { font-size: 1.1em; margin-top: 1.6em; }
p.note { color: #666; font-size: .9em; }
table.meta { border-collapse: collapse; font-size: .9em; }
table.meta td { border: 1px solid #ddd; padding: .25em .6em; }
table.stats { border-collapse: collapse; font-size: .85em; margin: .4em 0; }
table.stats td, table.stats th { border: 1px solid #ddd; padding: .2em .5em;
                                 text-align: right; }
table.stats th { background: #f4f6f8; }
svg { display: block; margin: .4em 0; }
"""


def _meta_table(meta: Dict[str, object]) -> str:
    if not meta:
        return ""
    cells = "".join(
        f"<tr><td>{_escape(key)}</td><td>{_escape(value)}</td></tr>"
        for key, value in meta.items()
    )
    return f'<table class="meta">{cells}</table>'


def _histogram_stats_table(histograms: Dict[str, Dict[str, object]]) -> str:
    if not histograms:
        return ""
    rows = []
    for name, data in sorted(histograms.items()):
        rows.append(
            "<tr>"
            f'<th style="text-align:left">{_escape(name)}</th>'
            f"<td>{int(data.get('count', 0))}</td>"
            f"<td>{float(data.get('mean', 0.0)):.4g}</td>"
            f"<td>{float(data.get('min', 0.0)):.4g}</td>"
            f"<td>{float(data.get('max', 0.0)):.4g}</td>"
            "</tr>"
        )
    return (
        '<table class="stats"><tr><th>histogram</th><th>count</th>'
        "<th>mean</th><th>min</th><th>max</th></tr>" + "".join(rows) + "</table>"
    )


def build_report(
    title: str,
    trace_records: Optional[Sequence[Dict[str, object]]] = None,
    heatmap: Optional[Dict[str, object]] = None,
    track_rows: Optional[List[Dict[str, object]]] = None,
    histograms: Optional[Dict[str, Dict[str, object]]] = None,
    meta: Optional[Dict[str, object]] = None,
) -> str:
    """Assemble the standalone HTML document; every section optional.

    ``histograms`` maps name -> dict with ``count``/``mean``/``min``/
    ``max`` and optionally ``samples`` (bars are only drawn with
    samples).  When ``histograms`` is None they are recovered from the
    trace's summary record (stat rows only — a persisted trace carries
    no raw samples).
    """
    records = list(trace_records or [])
    spans = _spans(records)
    summary = _summary(records)
    if histograms is None:
        histograms = {
            name: dict(data)
            for name, data in (summary.get("histograms") or {}).items()
            if isinstance(data, dict)
        }
    sections: List[str] = []

    note, svg = _svg_waterfall(spans)
    sections.append(f'<h2>Span waterfall</h2><p class="note">{_escape(note)}</p>')
    if svg:
        sections.append(svg)

    sections.append("<h2>Congestion heatmap</h2>")
    if heatmap is not None:
        note, svg = _svg_heatmap(heatmap)
        sections.append(f'<p class="note">{_escape(note)}</p>')
        if svg:
            sections.append(svg)
    else:
        sections.append(
            '<p class="note">no heatmap attached '
            "(route with --heatmap-out and pass it to the report)</p>"
        )

    sections.append("<h2>Per-layer track utilization</h2>")
    if track_rows:
        labels = [str(row["name"]) for row in track_rows]
        values = [float(row["utilization"]) for row in track_rows]
        titles = [
            f"{row['name']}: {row['routed_dbu']} dbu routed over "
            f"{row['usable_dbu']} dbu usable on {row['tracks']} tracks"
            for row in track_rows
        ]
        sections.append(_svg_bars(labels, values, titles, "tracks"))
        if any(value > 1.0 for value in values):
            sections.append(
                '<p class="note">utilization &gt; 1.0 means off-track '
                "wiring exceeds the optimized track plan on that layer</p>"
            )
    else:
        sections.append(
            '<p class="note">not available from a trace file alone '
            "(generated by route --report-out)</p>"
        )

    sections.append("<h2>Histograms</h2>")
    if histograms:
        sections.append(_histogram_stats_table(histograms))
        for name in sorted(histograms):
            svg = _svg_histogram(name, histograms[name])
            if svg:
                sections.append(
                    f'<h3 style="font-size:.95em">{_escape(name)}</h3>{svg}'
                )
    else:
        sections.append('<p class="note">no histograms recorded</p>')

    counters = summary.get("counters") or {}
    if counters:
        rows = "".join(
            f'<tr><th style="text-align:left">{_escape(name)}</th>'
            f"<td>{_escape(value)}</td></tr>"
            for name, value in sorted(counters.items())
        )
        sections.append(
            "<h2>Work counters</h2>"
            f'<table class="stats"><tr><th>counter</th><th>value</th></tr>'
            f"{rows}</table>"
        )

    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        f"<title>{_escape(title)}</title><style>{_CSS}</style></head><body>"
        f"<h1>{_escape(title)}</h1>"
        f"{_meta_table(meta or {})}"
        f"{''.join(sections)}"
        "</body></html>\n"
    )


def histograms_from_observer(observer) -> Dict[str, Dict[str, object]]:
    """Registry histograms with their retained samples attached."""
    out: Dict[str, Dict[str, object]] = {}
    for name, histogram in observer.histograms.items():
        data = histogram.as_dict()
        data["samples"] = list(histogram.samples)
        out[name] = data
    return out


def write_route_report(
    path: str,
    result,
    observer,
    title: Optional[str] = None,
    meta: Optional[Dict[str, object]] = None,
) -> str:
    """Build and write the report for one finished flow run."""
    from repro.obs.sinks import congestion_heatmap

    heatmap = None
    if getattr(result, "global_result", None) is not None:
        heatmap = congestion_heatmap(result.global_result)
    track_rows = (
        track_utilization(result.space) if result.space is not None else None
    )
    html = build_report(
        title or f"Routing report: {result.chip.name}",
        trace_records=records_from_observer(observer),
        heatmap=heatmap,
        track_rows=track_rows,
        histograms=histograms_from_observer(observer),
        meta=meta,
    )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(html)
    return html


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Rebuild a routing report from persisted artifacts",
    )
    parser.add_argument("trace", help="JSONL trace file (--trace-out)")
    parser.add_argument(
        "--heatmap", default=None, help="congestion heatmap JSON (--heatmap-out)"
    )
    parser.add_argument("-o", "--output", default="report.html")
    parser.add_argument("--title", default=None)
    args = parser.parse_args(argv)

    try:
        records = load_trace(args.trace)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    heatmap = None
    if args.heatmap:
        try:
            with open(args.heatmap, "r", encoding="utf-8") as handle:
                heatmap = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"error: cannot read heatmap: {error}", file=sys.stderr)
            return 2
    meta = next((r for r in records if r.get("type") == "meta"), {})
    context = {
        key: value
        for key, value in meta.items()
        if key not in ("type", "schema", "version")
    }
    html = build_report(
        args.title or f"Routing report: {context.get('chip', args.trace)}",
        trace_records=records,
        heatmap=heatmap,
        meta=context,
    )
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(html)
    print(f"report written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
