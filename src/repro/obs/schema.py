"""The trace-file schema and its validator.

A trace file is JSONL: one JSON object per line, each with a ``type``
field.  The format (documented for humans in ``docs/OBSERVABILITY.md``,
kept honest by this validator, which CI runs against every smoke trace):

* line 1 — ``meta``: ``{"type": "meta", "schema": "repro-trace",
  "version": 1, ...}`` (extra keys, e.g. ``chip`` or ``argv``, allowed);
* middle — any number of, in completion order:
  * ``span``: ``name`` (dotted lowercase), ``start`` (seconds since
    trace epoch), ``dur`` (seconds, >= 0), ``depth`` (nesting level,
    >= 0), optional ``attrs`` object;
  * ``event``: ``name``, ``t`` (seconds since trace epoch), optional
    ``attrs`` object;
* last line — ``summary``: the aggregate registry dump with ``counters``
  / ``gauges`` / ``histograms`` / ``spans`` objects (metric name ->
  number, histogram dict, or ``{count, total_s}``).

Usage: ``python -m repro.obs.schema TRACE.jsonl`` exits 0 when valid and
prints one error per line otherwise.
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List

SCHEMA_NAME = "repro-trace"
SCHEMA_VERSION = 1

#: Characters permitted in metric / span / event names.
_NAME_CHARS = frozenset("abcdefghijklmnopqrstuvwxyz0123456789_.")


def _valid_name(name: object) -> bool:
    return (
        isinstance(name, str)
        and bool(name)
        and not name.startswith(".")
        and not name.endswith(".")
        and all(char in _NAME_CHARS for char in name)
    )


def _check_number(record: Dict, key: str, line: int, errors: List[str],
                  minimum: float = None) -> None:
    value = record.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        errors.append(f"line {line}: {record.get('type')} field {key!r} "
                      f"must be a number, got {value!r}")
    elif minimum is not None and value < minimum:
        errors.append(f"line {line}: {record.get('type')} field {key!r} "
                      f"must be >= {minimum}, got {value!r}")


def validate_trace_lines(lines: List[str]) -> List[str]:
    """Validate a trace file's lines; returns a list of error strings."""
    errors: List[str] = []
    records: List[Dict] = []
    for index, line in enumerate(lines, start=1):
        if not line.strip():
            errors.append(f"line {index}: blank line")
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            errors.append(f"line {index}: invalid JSON ({error})")
            continue
        if not isinstance(record, dict):
            errors.append(f"line {index}: record must be a JSON object")
            continue
        records.append(record)
        record["_line"] = index
    if not records:
        errors.append("trace is empty")
        return errors

    head = records[0]
    if head.get("type") != "meta":
        errors.append(f"line {head['_line']}: first record must be 'meta', "
                      f"got {head.get('type')!r}")
    else:
        if head.get("schema") != SCHEMA_NAME:
            errors.append(f"line 1: meta schema must be {SCHEMA_NAME!r}")
        if head.get("version") != SCHEMA_VERSION:
            errors.append(f"line 1: meta version must be {SCHEMA_VERSION}")

    summaries = [r for r in records if r.get("type") == "summary"]
    if len(summaries) != 1:
        errors.append(f"trace must contain exactly one summary record, "
                      f"found {len(summaries)}")
    elif records[-1].get("type") != "summary":
        errors.append("summary must be the last record")

    for record in records[1:]:
        line = record["_line"]
        kind = record.get("type")
        if kind == "span":
            if not _valid_name(record.get("name")):
                errors.append(f"line {line}: invalid span name "
                              f"{record.get('name')!r}")
            _check_number(record, "start", line, errors, minimum=0.0)
            _check_number(record, "dur", line, errors, minimum=0.0)
            _check_number(record, "depth", line, errors, minimum=0)
            if "attrs" in record and not isinstance(record["attrs"], dict):
                errors.append(f"line {line}: span attrs must be an object")
        elif kind == "event":
            if not _valid_name(record.get("name")):
                errors.append(f"line {line}: invalid event name "
                              f"{record.get('name')!r}")
            _check_number(record, "t", line, errors, minimum=0.0)
            if "attrs" in record and not isinstance(record["attrs"], dict):
                errors.append(f"line {line}: event attrs must be an object")
        elif kind == "summary":
            for section in ("counters", "gauges", "histograms", "spans"):
                table = record.get(section)
                if not isinstance(table, dict):
                    errors.append(f"line {line}: summary.{section} must be "
                                  f"an object")
                    continue
                for name, value in table.items():
                    if not _valid_name(name):
                        errors.append(f"line {line}: invalid metric name "
                                      f"{name!r} in summary.{section}")
                    if section in ("counters", "gauges"):
                        if not isinstance(value, (int, float)) or isinstance(
                            value, bool
                        ):
                            errors.append(
                                f"line {line}: summary.{section}[{name!r}] "
                                f"must be a number"
                            )
                    elif not isinstance(value, dict):
                        errors.append(
                            f"line {line}: summary.{section}[{name!r}] "
                            f"must be an object"
                        )
        elif kind == "meta":
            errors.append(f"line {line}: duplicate meta record")
        else:
            errors.append(f"line {line}: unknown record type {kind!r}")
    return errors


def validate_trace_file(path: str) -> List[str]:
    """Validate a trace file on disk; returns a list of error strings."""
    with open(path, "r", encoding="utf-8") as handle:
        return validate_trace_lines(handle.read().splitlines())


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print("usage: python -m repro.obs.schema TRACE.jsonl", file=sys.stderr)
        return 2
    errors = validate_trace_file(argv[0])
    for error in errors:
        print(error, file=sys.stderr)
    if not errors:
        print(f"{argv[0]}: valid {SCHEMA_NAME} v{SCHEMA_VERSION}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
