"""The trace-file schema and its validator.

A trace file is JSONL: one JSON object per line, each with a ``type``
field.  The format (documented for humans in ``docs/OBSERVABILITY.md``,
kept honest by this validator, which CI runs against every smoke trace):

* line 1 — ``meta``: ``{"type": "meta", "schema": "repro-trace",
  "version": 2, ...}`` (extra keys, e.g. ``chip``, ``argv`` or
  ``trace_id``, allowed);
* middle — any number of, in completion order:
  * ``span``: ``name`` (dotted lowercase), ``start`` (seconds since
    trace epoch), ``dur`` (seconds, >= 0), ``depth`` (nesting level,
    >= 0), ``id`` (process-unique span id, required since v2),
    optional ``parent`` (id of the parent span, which must appear in
    the same trace), optional ``process`` (``main``/``worker``),
    ``worker`` (pool worker id) and ``region`` (partition region),
    optional ``attrs`` object;
  * ``event``: ``name``, ``t`` (seconds since trace epoch), optional
    ``worker``, optional ``attrs`` object;
* last line — ``summary``: the aggregate registry dump with ``counters``
  / ``gauges`` / ``histograms`` / ``spans`` objects (metric name ->
  number, histogram dict, or ``{count, total_s}``).

Version 1 traces (no span ids or lane fields) remain readable: they are
validated under the v1 rules and reported with a "legacy trace" note.

Usage: ``python -m repro.obs.schema TRACE.jsonl [MORE.jsonl | DIR ...]``
— directories expand to their ``*.jsonl`` files (per-worker shards).
Exits 0 when every file is valid and prints one error per line
otherwise.
"""

from __future__ import annotations

import glob
import json
import os
import sys
from typing import Dict, List, Optional

SCHEMA_NAME = "repro-trace"
SCHEMA_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)

#: Characters permitted in metric / span / event names.
_NAME_CHARS = frozenset("abcdefghijklmnopqrstuvwxyz0123456789_.")


def _valid_name(name: object) -> bool:
    return (
        isinstance(name, str)
        and bool(name)
        and not name.startswith(".")
        and not name.endswith(".")
        and all(char in _NAME_CHARS for char in name)
    )


def _check_number(record: Dict, key: str, line: int, errors: List[str],
                  minimum: float = None) -> None:
    value = record.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        errors.append(f"line {line}: {record.get('type')} field {key!r} "
                      f"must be a number, got {value!r}")
    elif minimum is not None and value < minimum:
        errors.append(f"line {line}: {record.get('type')} field {key!r} "
                      f"must be >= {minimum}, got {value!r}")


def _check_optional_int(record: Dict, key: str, line: int,
                        errors: List[str]) -> None:
    value = record.get(key)
    if value is None:
        return
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        errors.append(f"line {line}: {record.get('type')} field {key!r} "
                      f"must be a non-negative integer, got {value!r}")


def validate_trace_lines(
    lines: List[str], notes: Optional[List[str]] = None
) -> List[str]:
    """Validate a trace file's lines; returns a list of error strings.

    ``notes`` (optional) collects informational messages that are not
    errors — currently the "legacy trace" note for v1 files.
    """
    errors: List[str] = []
    records: List[Dict] = []
    for index, line in enumerate(lines, start=1):
        if not line.strip():
            errors.append(f"line {index}: blank line")
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            errors.append(f"line {index}: invalid JSON ({error})")
            continue
        if not isinstance(record, dict):
            errors.append(f"line {index}: record must be a JSON object")
            continue
        records.append(record)
        record["_line"] = index
    if not records:
        errors.append("trace is empty")
        return errors

    version = SCHEMA_VERSION
    head = records[0]
    if head.get("type") != "meta":
        errors.append(f"line {head['_line']}: first record must be 'meta', "
                      f"got {head.get('type')!r}")
    else:
        if head.get("schema") != SCHEMA_NAME:
            errors.append(f"line 1: meta schema must be {SCHEMA_NAME!r}")
        if head.get("version") not in SUPPORTED_VERSIONS:
            errors.append(
                f"line 1: meta version must be one of "
                f"{SUPPORTED_VERSIONS}, got {head.get('version')!r}"
            )
        else:
            version = int(head["version"])
            if version < SCHEMA_VERSION and notes is not None:
                notes.append(
                    f"legacy trace: {SCHEMA_NAME} v{version} records "
                    f"validated under the v{version} rules (no span ids "
                    f"or process/worker/region lanes)"
                )

    summaries = [r for r in records if r.get("type") == "summary"]
    if len(summaries) != 1:
        errors.append(f"trace must contain exactly one summary record, "
                      f"found {len(summaries)}")
    elif records[-1].get("type") != "summary":
        errors.append("summary must be the last record")

    # Span ids are validated in two passes: parents may close after
    # their children (completion order), so the reference check needs
    # the full id set first.
    span_ids: Dict[str, int] = {}
    if version >= 2:
        for record in records[1:]:
            if record.get("type") != "span":
                continue
            span_id = record.get("id")
            line = record["_line"]
            if not isinstance(span_id, str) or not span_id:
                errors.append(f"line {line}: span field 'id' must be a "
                              f"non-empty string, got {span_id!r}")
                continue
            if span_id in span_ids:
                errors.append(
                    f"line {line}: duplicate span id {span_id!r} "
                    f"(first seen on line {span_ids[span_id]})"
                )
            else:
                span_ids[span_id] = line

    for record in records[1:]:
        line = record["_line"]
        kind = record.get("type")
        if kind == "span":
            if not _valid_name(record.get("name")):
                errors.append(f"line {line}: invalid span name "
                              f"{record.get('name')!r}")
            _check_number(record, "start", line, errors, minimum=0.0)
            _check_number(record, "dur", line, errors, minimum=0.0)
            _check_number(record, "depth", line, errors, minimum=0)
            if "attrs" in record and not isinstance(record["attrs"], dict):
                errors.append(f"line {line}: span attrs must be an object")
            if version >= 2:
                parent = record.get("parent")
                if parent is not None:
                    if not isinstance(parent, str) or not parent:
                        errors.append(
                            f"line {line}: span field 'parent' must be a "
                            f"non-empty string, got {parent!r}"
                        )
                    elif parent not in span_ids:
                        errors.append(
                            f"line {line}: span parent {parent!r} does "
                            f"not reference any span id in this trace"
                        )
                process = record.get("process")
                if process is not None and (
                    not isinstance(process, str) or not _valid_name(process)
                ):
                    errors.append(
                        f"line {line}: span field 'process' must be a "
                        f"lowercase identifier, got {process!r}"
                    )
                _check_optional_int(record, "worker", line, errors)
                _check_optional_int(record, "region", line, errors)
        elif kind == "event":
            if not _valid_name(record.get("name")):
                errors.append(f"line {line}: invalid event name "
                              f"{record.get('name')!r}")
            _check_number(record, "t", line, errors, minimum=0.0)
            if "attrs" in record and not isinstance(record["attrs"], dict):
                errors.append(f"line {line}: event attrs must be an object")
            if version >= 2:
                _check_optional_int(record, "worker", line, errors)
        elif kind == "summary":
            for section in ("counters", "gauges", "histograms", "spans"):
                table = record.get(section)
                if not isinstance(table, dict):
                    errors.append(f"line {line}: summary.{section} must be "
                                  f"an object")
                    continue
                for name, value in table.items():
                    if not _valid_name(name):
                        errors.append(f"line {line}: invalid metric name "
                                      f"{name!r} in summary.{section}")
                    if section in ("counters", "gauges"):
                        if not isinstance(value, (int, float)) or isinstance(
                            value, bool
                        ):
                            errors.append(
                                f"line {line}: summary.{section}[{name!r}] "
                                f"must be a number"
                            )
                    elif not isinstance(value, dict):
                        errors.append(
                            f"line {line}: summary.{section}[{name!r}] "
                            f"must be an object"
                        )
        elif kind == "meta":
            errors.append(f"line {line}: duplicate meta record")
        else:
            errors.append(f"line {line}: unknown record type {kind!r}")
    return errors


def validate_trace_file(
    path: str, notes: Optional[List[str]] = None
) -> List[str]:
    """Validate a trace file on disk; returns a list of error strings."""
    with open(path, "r", encoding="utf-8") as handle:
        return validate_trace_lines(handle.read().splitlines(), notes=notes)


def expand_trace_paths(paths: List[str]) -> List[str]:
    """Resolve CLI arguments to trace files: directories expand to
    their sorted ``*.jsonl`` members (per-worker shard layout)."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            out.extend(sorted(glob.glob(os.path.join(path, "*.jsonl"))))
        else:
            out.append(path)
    return out


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print(
            "usage: python -m repro.obs.schema TRACE.jsonl [MORE.jsonl | DIR ...]",
            file=sys.stderr,
        )
        return 2
    paths = expand_trace_paths(argv)
    if not paths:
        print("error: no *.jsonl trace files found", file=sys.stderr)
        return 2
    failed = False
    for path in paths:
        notes: List[str] = []
        try:
            errors = validate_trace_file(path, notes=notes)
        except OSError as error:
            print(f"{path}: cannot read ({error})", file=sys.stderr)
            failed = True
            continue
        for error in errors:
            print(f"{path}: {error}", file=sys.stderr)
        if errors:
            failed = True
        else:
            suffix = ""
            if notes:
                suffix = " (legacy trace)"
                for note in notes:
                    print(f"{path}: note: {note}")
            print(f"{path}: valid {SCHEMA_NAME}{suffix}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
