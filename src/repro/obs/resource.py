"""Per-process resource telemetry (the ``resource.*`` gauge family).

A :class:`ResourceSampler` publishes point-in-time gauges into an
observer — resident set size read from ``/proc/self/statm``, the
kernel-tracked peak RSS (``getrusage().ru_maxrss``), and cumulative GC
collections — cheap enough to sample at stage boundaries and per pool
region.  Each process (main and every forked worker) samples its own
numbers; worker gauges travel back with region results and merge into
the parent by maximum (``Observer.merge_worker_metrics``), so the
reported peak covers the whole process tree.

Benchmarks record :func:`peak_rss_bytes` into the ``resources`` section
of their persisted ``BENCH_*.json`` runs; the regression gate reports
that section but never fails on it (memory is machine-dependent).
"""

from __future__ import annotations

import gc
import os
import sys
from typing import Optional

try:
    import resource as _rusage
except ImportError:  # pragma: no cover - non-POSIX platforms
    _rusage = None

try:
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (AttributeError, ValueError, OSError):  # pragma: no cover
    _PAGE_SIZE = 4096

#: ``ru_maxrss`` unit: kilobytes on Linux, bytes on macOS.
_RU_MAXRSS_SCALE = 1 if sys.platform == "darwin" else 1024


def rss_bytes() -> int:
    """Current resident set size of this process, in bytes.

    Reads ``/proc/self/statm`` (field 2, resident pages); falls back to
    the kernel peak where procfs is unavailable, and to 0 where neither
    source exists.
    """
    try:
        with open("/proc/self/statm", "rb") as handle:
            return int(handle.read().split()[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        pass
    return peak_rss_bytes()


def peak_rss_bytes() -> int:
    """Kernel-tracked peak resident set size of this process, in bytes
    (``getrusage().ru_maxrss``); 0 where unavailable."""
    if _rusage is None:
        return 0
    try:
        usage = _rusage.getrusage(_rusage.RUSAGE_SELF)
    except OSError:  # pragma: no cover - degenerate platforms
        return 0
    return int(usage.ru_maxrss) * _RU_MAXRSS_SCALE


def gc_collections() -> int:
    """Total garbage collections across all generations so far."""
    return sum(int(stat.get("collections", 0)) for stat in gc.get_stats())


class ResourceSampler:
    """Publishes ``resource.*`` gauges into an observer on demand.

    One sampler per process; :meth:`sample` is a handful of syscalls
    and three gauge writes, so calling it at stage boundaries and per
    pool region costs nothing measurable.  Gauges are only published
    while the observer is enabled; the sampled RSS is returned either
    way, and the per-sampler peak is tracked across calls.
    """

    __slots__ = ("observer", "peak_rss")

    def __init__(self, observer=None) -> None:
        if observer is None:
            from repro.obs import OBS

            observer = OBS
        self.observer = observer
        self.peak_rss = 0

    def sample(self) -> int:
        """Sample now; returns the current RSS in bytes."""
        rss = rss_bytes()
        if rss > self.peak_rss:
            self.peak_rss = rss
        observer = self.observer
        if observer.enabled:
            observer.gauge("resource.rss_bytes", rss)
            observer.gauge(
                "resource.rss_peak_bytes",
                max(self.peak_rss, peak_rss_bytes()),
            )
            observer.gauge("resource.gc_collections", gc_collections())
        return rss
