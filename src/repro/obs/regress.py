"""Perf-regression gate over persisted bench records.

``python -m repro.obs.regress BASELINE.json CURRENT.json
--tolerance-pct N`` compares the latest run of two ``repro-bench``
files (written by ``benchmarks/common.write_bench_record``) and exits
nonzero on drift, so CI can hold every PR against a committed baseline.

Two classes of metric, gated differently:

* **work** — deterministic counters (labels popped, oracle calls, grid
  queries, netlength, vias …).  Same seeds + same code ⇒ same numbers
  on any machine, so these gate tightly: an increase beyond
  ``--tolerance-pct`` fails the run; a decrease beyond it is reported
  as an improvement (refresh the baseline to bank it).
* **wall_clock** — seconds, noisy on shared CI machines.  Reported
  always, gated only when ``--time-tolerance-pct`` is given.

Exit codes: 0 ok, 1 regression detected, 2 usage/format error
(including comparing runs from different bench modes — a quick-mode
run against a full-mode baseline compares different chips and is
rejected unless ``--allow-mode-mismatch``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple

BENCH_SCHEMA_NAME = "repro-bench"


class BenchFormatError(ValueError):
    """The file is not a usable repro-bench record."""


def load_latest_run(path: str) -> Tuple[str, Dict[str, object]]:
    """Load ``path`` and return ``(bench_name, latest_run)``."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as error:
        raise BenchFormatError(f"cannot read {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise BenchFormatError(f"{path} is not valid JSON: {error}") from error
    if not isinstance(document, dict) or document.get("schema") != BENCH_SCHEMA_NAME:
        raise BenchFormatError(
            f"{path}: not a {BENCH_SCHEMA_NAME} file "
            f"(schema={document.get('schema')!r})"
            if isinstance(document, dict)
            else f"{path}: not a JSON object"
        )
    runs = document.get("runs")
    if not isinstance(runs, list) or not runs:
        raise BenchFormatError(f"{path}: no recorded runs")
    run = runs[-1]
    if not isinstance(run, dict):
        raise BenchFormatError(f"{path}: latest run is not an object")
    return str(document.get("bench", "?")), run


class Finding:
    """One compared metric."""

    __slots__ = ("section", "name", "baseline", "current", "delta_pct", "status")

    def __init__(self, section, name, baseline, current, delta_pct, status):
        self.section = section
        self.name = name
        self.baseline = baseline
        self.current = current
        self.delta_pct = delta_pct
        self.status = status


def _compare_section(
    section: str,
    baseline: Dict[str, float],
    current: Dict[str, float],
    tolerance_pct: Optional[float],
) -> List[Finding]:
    """Compare one metric table; ``tolerance_pct=None`` = report only."""
    findings: List[Finding] = []
    for name in sorted(set(baseline) | set(current)):
        base = baseline.get(name)
        cur = current.get(name)
        if base is None:
            findings.append(Finding(section, name, None, cur, None, "new"))
            continue
        if cur is None:
            status = "FAIL" if tolerance_pct is not None else "missing"
            findings.append(Finding(section, name, base, None, None, status))
            continue
        base, cur = float(base), float(cur)
        if base == 0.0:
            delta = 0.0 if cur == 0.0 else float("inf")
        else:
            delta = (cur - base) / abs(base) * 100.0
        status = "ok"
        if tolerance_pct is not None and delta > tolerance_pct:
            status = "FAIL"
        elif tolerance_pct is not None and delta < -tolerance_pct:
            status = "improved"
        findings.append(Finding(section, name, base, cur, delta, status))
    return findings


def compare_runs(
    baseline: Dict[str, object],
    current: Dict[str, object],
    tolerance_pct: float,
    time_tolerance_pct: Optional[float] = None,
) -> List[Finding]:
    findings = _compare_section(
        "work",
        baseline.get("work") or {},
        current.get("work") or {},
        tolerance_pct,
    )
    findings += _compare_section(
        "wall_clock",
        baseline.get("wall_clock") or {},
        current.get("wall_clock") or {},
        time_tolerance_pct,
    )
    # Memory is machine-dependent: always report, never gate.
    findings += _compare_section(
        "resources",
        baseline.get("resources") or {},
        current.get("resources") or {},
        None,
    )
    return findings


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.4g}"


def print_findings(findings: List[Finding], stream=None) -> None:
    stream = stream or sys.stdout
    rows = [("section", "metric", "baseline", "current", "delta", "status")]
    for finding in findings:
        delta = (
            "-"
            if finding.delta_pct is None
            else f"{finding.delta_pct:+.1f}%"
        )
        rows.append(
            (
                finding.section,
                finding.name,
                _fmt(finding.baseline),
                _fmt(finding.current),
                delta,
                finding.status,
            )
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    for row in rows:
        print(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths)),
            file=stream,
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.regress",
        description="Compare two bench records and fail on work-counter drift",
    )
    parser.add_argument("baseline", help="committed BENCH_*.json baseline")
    parser.add_argument("current", help="BENCH_*.json of the run under test")
    parser.add_argument(
        "--tolerance-pct", type=float, default=10.0, metavar="N",
        help="allowed increase of deterministic work counters (default 10)",
    )
    parser.add_argument(
        "--time-tolerance-pct", type=float, default=None, metavar="N",
        help="also gate wall-clock seconds (off by default: CI noise)",
    )
    parser.add_argument(
        "--allow-mode-mismatch", action="store_true",
        help="compare runs recorded under different REPRO_BENCH_* modes",
    )
    args = parser.parse_args(argv)

    try:
        base_bench, base_run = load_latest_run(args.baseline)
        cur_bench, cur_run = load_latest_run(args.current)
    except BenchFormatError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if base_bench != cur_bench:
        print(
            f"error: bench mismatch ({base_bench!r} vs {cur_bench!r})",
            file=sys.stderr,
        )
        return 2
    base_mode = (base_run.get("env") or {}).get("mode")
    cur_mode = (cur_run.get("env") or {}).get("mode")
    if base_mode != cur_mode and not args.allow_mode_mismatch:
        print(
            f"error: bench mode mismatch ({base_mode!r} vs {cur_mode!r}); "
            "the runs cover different chips "
            "(--allow-mode-mismatch to compare anyway)",
            file=sys.stderr,
        )
        return 2

    findings = compare_runs(
        base_run, cur_run, args.tolerance_pct, args.time_tolerance_pct
    )
    print(
        f"bench {base_bench}: baseline "
        f"{(base_run.get('git_sha') or 'unknown')[:12]} vs current "
        f"{(cur_run.get('git_sha') or 'unknown')[:12]} "
        f"(work tolerance {args.tolerance_pct:g}%)"
    )
    print_findings(findings)
    failures = [f for f in findings if f.status == "FAIL"]
    improvements = [f for f in findings if f.status == "improved"]
    if improvements:
        print(
            f"{len(improvements)} metric(s) improved beyond tolerance — "
            "consider refreshing the baseline to lock the gain in"
        )
    if failures:
        print(
            f"REGRESSION: {len(failures)} metric(s) drifted beyond tolerance",
            file=sys.stderr,
        )
        return 1
    print("no regression detected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
