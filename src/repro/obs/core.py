"""Span tracer and metrics registry (the observability core).

Design constraints, in order:

1. **Zero cost when disabled.**  Every instrumentation site in the hot
   paths guards itself with a single attribute check
   (``if OBS.enabled:``); :meth:`Observer.trace` returns a shared no-op
   context manager, so even unguarded stage-level spans cost one boolean
   check and one call.
2. **No dependencies.**  Pure stdlib: monotonic timing via
   :func:`time.perf_counter`, JSON for the sink format.
3. **Deterministic aggregation.**  Counters, gauges and histograms are
   plain dicts keyed by dotted metric names (``pathsearch.labels_pushed``);
   the summary is reproducible modulo wall-clock durations.

The process-wide singleton lives in :mod:`repro.obs` as ``OBS``; it is
never replaced, only reconfigured, so ``from repro.obs import OBS``
bindings stay valid.  The metric name catalogue — every counter, gauge,
span and event the routing flow emits — is documented in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import time
import uuid
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence

#: Metric / span / event names: lowercase dotted identifiers.
NAME_CHARS = "abcdefghijklmnopqrstuvwxyz0123456789_."


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id (one per traced run)."""
    return uuid.uuid4().hex[:16]


class Histogram:
    """Streaming summary of an observed distribution.

    Aggregates (count/total/min/max) are exact for every sample; the
    first :attr:`MAX_SAMPLES` raw values are additionally retained so
    report renderers (``repro.obs.report``) can bucket a real
    distribution without the registry ever growing unboundedly.  The
    retained prefix is deterministic — same run, same samples.
    """

    __slots__ = ("count", "total", "minimum", "maximum", "samples")

    #: Raw values retained per histogram (aggregation stays exact beyond).
    MAX_SAMPLES = 4096

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.samples: List[float] = []

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        if len(self.samples) < self.MAX_SAMPLES:
            self.samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.minimum is not None else 0.0,
            "max": self.maximum if self.maximum is not None else 0.0,
            "mean": self.mean,
        }

    def state(self) -> Dict[str, object]:
        """Picklable full state (aggregates + retained samples), the
        shape :meth:`merge_state` accepts; workers ship these back to
        the parent process."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "samples": list(self.samples),
        }

    def merge_state(self, state: Dict[str, object]) -> None:
        """Fold another histogram's :meth:`state` into this one.

        Aggregates stay exact; retained samples are appended until
        :attr:`MAX_SAMPLES`, so merging worker histograms in region
        order reproduces the serial run's retained prefix.
        """
        count = int(state.get("count", 0) or 0)
        if count <= 0:
            return
        self.count += count
        self.total += float(state.get("total", 0.0) or 0.0)
        lo = state.get("min")
        hi = state.get("max")
        if lo is not None and (self.minimum is None or lo < self.minimum):
            self.minimum = lo
        if hi is not None and (self.maximum is None or hi > self.maximum):
            self.maximum = hi
        room = self.MAX_SAMPLES - len(self.samples)
        if room > 0:
            self.samples.extend(list(state.get("samples") or ())[:room])


class Span:
    """One finished span: a named, timed, nested region of the flow.

    Every span carries a process-unique ``span_id`` and the id of its
    parent span (``None`` for roots), so traces merged across worker
    processes still form one tree.  ``process``/``worker``/``region``
    locate the span in the pool topology (repro-trace v2 fields).
    """

    __slots__ = (
        "name", "attrs", "start", "duration", "depth",
        "span_id", "parent_id", "process", "worker", "region",
    )

    def __init__(
        self,
        name: str,
        attrs: Dict[str, object],
        start: float,
        depth: int,
        span_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        process: str = "main",
        worker: Optional[int] = None,
        region: Optional[int] = None,
    ) -> None:
        self.name = name
        self.attrs = attrs
        self.start = start
        self.duration = 0.0
        self.depth = depth
        self.span_id = span_id
        self.parent_id = parent_id
        self.process = process
        self.worker = worker
        self.region = region

    def as_record(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "type": "span",
            "name": self.name,
            "start": self.start,
            "dur": self.duration,
            "depth": self.depth,
        }
        if self.span_id is not None:
            record["id"] = self.span_id
        if self.parent_id is not None:
            record["parent"] = self.parent_id
        if self.process != "main":
            record["process"] = self.process
        if self.worker is not None:
            record["worker"] = self.worker
        if self.region is not None:
            record["region"] = self.region
        if self.attrs:
            record["attrs"] = self.attrs
        return record

    def __repr__(self) -> str:
        return f"Span({self.name}, dur={self.duration:.6f}, depth={self.depth})"


class _NullContext:
    """Shared no-op context manager returned while observability is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class _SpanContext:
    """Context manager that opens a span on enter and closes it on exit."""

    __slots__ = ("_observer", "_span")

    def __init__(self, observer: "Observer", span: Span) -> None:
        self._observer = observer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc_info: object) -> bool:
        self._observer._finish_span(self._span)
        return False


class FlightRecorder:
    """Always-on bounded ring of recent spans/events/notes.

    The ring is a ``deque(maxlen=...)`` so recording is one append and
    old records fall off the far end — cheap enough to stay on even
    with observability disabled.  Its content is dumped into failure
    reports (``FlowFailureReport.flight_recorder``, ``pool_events``)
    when something goes wrong, giving post-mortem context without
    rerunning under tracing.
    """

    __slots__ = ("records",)

    #: Records retained; sized so a dump stays a readable post-mortem.
    CAPACITY = 256

    def __init__(self, capacity: int = CAPACITY) -> None:
        self.records: deque = deque(maxlen=capacity)

    def add(self, record: Dict[str, object]) -> None:
        self.records.append(record)

    def dump(self) -> List[Dict[str, object]]:
        """Snapshot of the ring, oldest first (records are shared, not
        copied — callers serialize them immediately)."""
        return list(self.records)

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)


class Observer:
    """Span tracer + metrics registry + sink dispatcher.

    ``enabled`` is a plain attribute so hot sites pay one attribute load
    to skip all work.  A ``clock`` can be injected for deterministic
    timing tests; it must be monotonic.

    Trace context: ``trace_id`` names the whole traced run; every span
    gets a process-unique id (``m-<n>`` in the main process,
    ``w<id>-<n>`` in pool workers) and its parent's id.  Workers inherit
    the context via :meth:`set_context` (``root_parent_id`` grafts their
    root spans under the parent's ``pool.round`` span), so traces merged
    across processes form a single tree.
    """

    def __init__(
        self,
        enabled: bool = False,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.enabled = enabled
        self._clock = clock if clock is not None else time.perf_counter
        self._epoch = self._clock()
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        #: Finished spans in completion order (bounded by ``max_spans``).
        self.spans: List[Span] = []
        #: Per-name span aggregates: name -> [count, total seconds].
        self.span_totals: Dict[str, List[float]] = {}
        self._stack: List[Span] = []
        self._sink = None
        #: Cap on retained Span objects; aggregates and the sink always
        #: see every span, the in-memory list is for tests and the CLI.
        self.max_spans = 100_000
        #: Trace id of the current run (set by :meth:`configure` when
        #: enabling, or inherited from the parent via :meth:`set_context`).
        self.trace_id: Optional[str] = None
        #: ``"main"`` or ``"worker"`` — which process kind this is.
        self.process: str = "main"
        #: Pool worker id when this observer lives in a forked worker.
        self.worker_id: Optional[int] = None
        #: Region currently being routed (workers set this per task; the
        #: value is stamped onto every span opened while it is set).
        self.region: Optional[int] = None
        #: Parent span id grafted under root spans of this process (the
        #: parent's open ``pool.round`` span, for workers).
        self.root_parent_id: Optional[str] = None
        self._span_seq = 0
        #: Always-on ring of recent records (see :class:`FlightRecorder`).
        self.flight = FlightRecorder()

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def configure(self, enabled: bool = True, sink=None) -> "Observer":
        """Enable/disable and (re)attach a sink; returns self."""
        self.enabled = enabled
        if enabled and self.trace_id is None:
            self.trace_id = new_trace_id()
        if sink is not None:
            self._sink = sink
            sink.open(self)
        return self

    def set_context(
        self,
        trace_id: Optional[str] = None,
        process: Optional[str] = None,
        worker_id: Optional[int] = None,
        root_parent_id: Optional[str] = None,
    ) -> None:
        """Adopt (parts of) a trace context, e.g. one shipped to a
        forked pool worker; ``None`` arguments leave the field alone."""
        if trace_id is not None:
            self.trace_id = trace_id
        if process is not None:
            self.process = process
        if worker_id is not None:
            self.worker_id = worker_id
        if root_parent_id is not None:
            self.root_parent_id = root_parent_id

    def current_span_id(self) -> Optional[str]:
        """Id of the innermost open span (the parent a new span would
        get), falling back to the grafted root parent."""
        if self._stack:
            return self._stack[-1].span_id
        return self.root_parent_id

    def reset(self, keep_epoch: bool = False) -> None:
        """Drop all recorded data, trace context and the flight ring,
        and detach the sink (left unclosed).  ``keep_epoch=True``
        preserves the clock epoch — forked workers keep the parent's so
        their span timestamps share the parent's timeline."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.spans.clear()
        self.span_totals.clear()
        self._stack.clear()
        self._sink = None
        if not keep_epoch:
            self._epoch = self._clock()
        self.trace_id = None
        self.process = "main"
        self.worker_id = None
        self.region = None
        self.root_parent_id = None
        self._span_seq = 0
        self.flight.clear()

    def close(self) -> None:
        """Flush and close the sink (writes the summary record)."""
        if self._sink is not None:
            self._sink.close(self)
            self._sink = None

    def now(self) -> float:
        """Seconds since this observer's epoch (monotonic)."""
        return self._clock() - self._epoch

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def trace(self, name: str, **attrs: object):
        """Context manager timing a named region; no-op when disabled.

        Usage: ``with OBS.trace("droute.net", net=net.name): ...``
        """
        if not self.enabled:
            return _NULL_CONTEXT
        self._span_seq += 1
        prefix = "m" if self.worker_id is None else f"w{self.worker_id}"
        span = Span(
            name,
            attrs,
            self.now(),
            len(self._stack),
            span_id=f"{prefix}-{self._span_seq}",
            parent_id=(
                self._stack[-1].span_id if self._stack else self.root_parent_id
            ),
            process=self.process,
            worker=self.worker_id,
            region=self.region,
        )
        self._stack.append(span)
        return _SpanContext(self, span)

    def _finish_span(self, span: Span) -> None:
        span.duration = self.now() - span.start
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # tolerate out-of-order exits
            self._stack.remove(span)
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        totals = self.span_totals.setdefault(span.name, [0, 0.0])
        totals[0] += 1
        totals[1] += span.duration
        record = span.as_record()
        self.flight.add(record)
        if self._sink is not None:
            self._sink.write(record)

    def adopt_records(self, records: Sequence[Dict[str, object]]) -> None:
        """Fold span/event records shipped back from a worker process.

        Spans are reconstructed into the retained list and the per-name
        aggregates (their worker-side ids, parents and lane fields come
        along verbatim); every record is forwarded to the sink, so a
        JSONL trace of a parallel run contains the workers' spans too.
        """
        for record in records:
            if record.get("type") == "span":
                span = Span(
                    str(record.get("name", "?")),
                    dict(record.get("attrs") or {}),
                    float(record.get("start", 0.0)),
                    int(record.get("depth", 0)),
                    span_id=record.get("id"),
                    parent_id=record.get("parent"),
                    process=str(record.get("process", "worker")),
                    worker=record.get("worker"),
                    region=record.get("region"),
                )
                span.duration = float(record.get("dur", 0.0))
                if len(self.spans) < self.max_spans:
                    self.spans.append(span)
                totals = self.span_totals.setdefault(span.name, [0, 0.0])
                totals[0] += 1
                totals[1] += span.duration
            if self._sink is not None:
                self._sink.write(record)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def count(self, name: str, delta: float = 1) -> None:
        """Increment a monotonically growing counter."""
        self.counters[name] = self.counters.get(name, 0) + delta

    def gauge(self, name: str, value: float) -> None:
        """Record the latest value of a point-in-time measurement."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Feed one sample into a streaming histogram."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = Histogram()
            self.histograms[name] = histogram
        histogram.add(value)

    def event(self, name: str, **attrs: object) -> None:
        """Emit a point-in-time event (flight ring + trace sink)."""
        record: Dict[str, object] = {
            "type": "event",
            "name": name,
            "t": self.now(),
        }
        if self.worker_id is not None:
            record["worker"] = self.worker_id
        if attrs:
            record["attrs"] = attrs
        self.flight.add(record)
        if self._sink is not None:
            self._sink.write(record)

    def flight_note(self, name: str, **attrs: object) -> None:
        """Drop a breadcrumb into the flight ring, observability on or
        off.  This is the always-on channel: one dict build and one
        deque append, called at incident-shaped sites only (failures,
        stage transitions, pool incidents) — never in hot loops."""
        record: Dict[str, object] = {
            "type": "note",
            "name": name,
            "t": self.now(),
        }
        if self.worker_id is not None:
            record["worker"] = self.worker_id
        if attrs:
            record["attrs"] = attrs
        self.flight.add(record)

    def merge_worker_metrics(
        self,
        counters: Optional[Dict[str, float]] = None,
        gauges: Optional[Dict[str, float]] = None,
        histograms: Optional[Dict[str, Dict[str, object]]] = None,
    ) -> None:
        """Fold a worker's per-region metric deltas into this registry.

        Counters add; histograms merge via :meth:`Histogram.merge_state`
        (region-index merge order keeps the retained sample prefix equal
        to a serial run's); gauges are last-write-wins like local gauge
        updates — except the ``resource.*`` family, whose values are
        per-process peaks and therefore merge by maximum.
        """
        if counters:
            for name, delta in counters.items():
                self.count(name, delta)
        if gauges:
            for name, value in gauges.items():
                if name.startswith("resource."):
                    previous = self.gauges.get(name)
                    if previous is None or value > previous:
                        self.gauges[name] = value
                else:
                    self.gauges[name] = value
        if histograms:
            for name, state in histograms.items():
                histogram = self.histograms.get(name)
                if histogram is None:
                    histogram = Histogram()
                    self.histograms[name] = histogram
                histogram.merge_state(state)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """All aggregates as one JSON-serializable dict."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: histogram.as_dict()
                for name, histogram in sorted(self.histograms.items())
            },
            "spans": {
                name: {"count": int(totals[0]), "total_s": totals[1]}
                for name, totals in sorted(self.span_totals.items())
            },
        }

    def summary_table(self) -> str:
        """Human-readable end-of-run summary (the CLI sink)."""
        lines: List[str] = []
        if self.span_totals:
            lines.append("spans (count, total seconds):")
            width = max(len(name) for name in self.span_totals)
            for name, totals in sorted(self.span_totals.items()):
                lines.append(
                    f"  {name:<{width}}  x{int(totals[0]):<6} {totals[1]:.3f}s"
                )
        if self.counters:
            lines.append("counters:")
            width = max(len(name) for name in self.counters)
            for name, value in sorted(self.counters.items()):
                shown = int(value) if float(value).is_integer() else value
                lines.append(f"  {name:<{width}}  {shown}")
        if self.gauges:
            lines.append("gauges:")
            width = max(len(name) for name in self.gauges)
            for name, value in sorted(self.gauges.items()):
                lines.append(f"  {name:<{width}}  {value:.6g}")
        if self.histograms:
            lines.append("histograms (count / mean / max):")
            width = max(len(name) for name in self.histograms)
            for name, histogram in sorted(self.histograms.items()):
                lines.append(
                    f"  {name:<{width}}  {histogram.count} / "
                    f"{histogram.mean:.6g} / "
                    f"{histogram.maximum if histogram.maximum is not None else 0:.6g}"
                )
        return "\n".join(lines) if lines else "(no observability data recorded)"
