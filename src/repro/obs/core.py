"""Span tracer and metrics registry (the observability core).

Design constraints, in order:

1. **Zero cost when disabled.**  Every instrumentation site in the hot
   paths guards itself with a single attribute check
   (``if OBS.enabled:``); :meth:`Observer.trace` returns a shared no-op
   context manager, so even unguarded stage-level spans cost one boolean
   check and one call.
2. **No dependencies.**  Pure stdlib: monotonic timing via
   :func:`time.perf_counter`, JSON for the sink format.
3. **Deterministic aggregation.**  Counters, gauges and histograms are
   plain dicts keyed by dotted metric names (``pathsearch.labels_pushed``);
   the summary is reproducible modulo wall-clock durations.

The process-wide singleton lives in :mod:`repro.obs` as ``OBS``; it is
never replaced, only reconfigured, so ``from repro.obs import OBS``
bindings stay valid.  The metric name catalogue — every counter, gauge,
span and event the routing flow emits — is documented in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

#: Metric / span / event names: lowercase dotted identifiers.
NAME_CHARS = "abcdefghijklmnopqrstuvwxyz0123456789_."


class Histogram:
    """Streaming summary of an observed distribution.

    Aggregates (count/total/min/max) are exact for every sample; the
    first :attr:`MAX_SAMPLES` raw values are additionally retained so
    report renderers (``repro.obs.report``) can bucket a real
    distribution without the registry ever growing unboundedly.  The
    retained prefix is deterministic — same run, same samples.
    """

    __slots__ = ("count", "total", "minimum", "maximum", "samples")

    #: Raw values retained per histogram (aggregation stays exact beyond).
    MAX_SAMPLES = 4096

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.samples: List[float] = []

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        if len(self.samples) < self.MAX_SAMPLES:
            self.samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.minimum is not None else 0.0,
            "max": self.maximum if self.maximum is not None else 0.0,
            "mean": self.mean,
        }


class Span:
    """One finished span: a named, timed, nested region of the flow."""

    __slots__ = ("name", "attrs", "start", "duration", "depth")

    def __init__(
        self, name: str, attrs: Dict[str, object], start: float, depth: int
    ) -> None:
        self.name = name
        self.attrs = attrs
        self.start = start
        self.duration = 0.0
        self.depth = depth

    def as_record(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "type": "span",
            "name": self.name,
            "start": self.start,
            "dur": self.duration,
            "depth": self.depth,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record

    def __repr__(self) -> str:
        return f"Span({self.name}, dur={self.duration:.6f}, depth={self.depth})"


class _NullContext:
    """Shared no-op context manager returned while observability is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class _SpanContext:
    """Context manager that opens a span on enter and closes it on exit."""

    __slots__ = ("_observer", "_span")

    def __init__(self, observer: "Observer", span: Span) -> None:
        self._observer = observer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc_info: object) -> bool:
        self._observer._finish_span(self._span)
        return False


class Observer:
    """Span tracer + metrics registry + sink dispatcher.

    ``enabled`` is a plain attribute so hot sites pay one attribute load
    to skip all work.  A ``clock`` can be injected for deterministic
    timing tests; it must be monotonic.
    """

    def __init__(
        self,
        enabled: bool = False,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.enabled = enabled
        self._clock = clock if clock is not None else time.perf_counter
        self._epoch = self._clock()
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        #: Finished spans in completion order (bounded by ``max_spans``).
        self.spans: List[Span] = []
        #: Per-name span aggregates: name -> [count, total seconds].
        self.span_totals: Dict[str, List[float]] = {}
        self._stack: List[Span] = []
        self._sink = None
        #: Cap on retained Span objects; aggregates and the sink always
        #: see every span, the in-memory list is for tests and the CLI.
        self.max_spans = 100_000

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def configure(self, enabled: bool = True, sink=None) -> "Observer":
        """Enable/disable and (re)attach a sink; returns self."""
        self.enabled = enabled
        if sink is not None:
            self._sink = sink
            sink.open(self)
        return self

    def reset(self) -> None:
        """Drop all recorded data and detach the sink (left unclosed)."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.spans.clear()
        self.span_totals.clear()
        self._stack.clear()
        self._sink = None
        self._epoch = self._clock()

    def close(self) -> None:
        """Flush and close the sink (writes the summary record)."""
        if self._sink is not None:
            self._sink.close(self)
            self._sink = None

    def now(self) -> float:
        """Seconds since this observer's epoch (monotonic)."""
        return self._clock() - self._epoch

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def trace(self, name: str, **attrs: object):
        """Context manager timing a named region; no-op when disabled.

        Usage: ``with OBS.trace("droute.net", net=net.name): ...``
        """
        if not self.enabled:
            return _NULL_CONTEXT
        span = Span(name, attrs, self.now(), len(self._stack))
        self._stack.append(span)
        return _SpanContext(self, span)

    def _finish_span(self, span: Span) -> None:
        span.duration = self.now() - span.start
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # tolerate out-of-order exits
            self._stack.remove(span)
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        totals = self.span_totals.setdefault(span.name, [0, 0.0])
        totals[0] += 1
        totals[1] += span.duration
        if self._sink is not None:
            self._sink.write(span.as_record())

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def count(self, name: str, delta: float = 1) -> None:
        """Increment a monotonically growing counter."""
        self.counters[name] = self.counters.get(name, 0) + delta

    def gauge(self, name: str, value: float) -> None:
        """Record the latest value of a point-in-time measurement."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Feed one sample into a streaming histogram."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = Histogram()
            self.histograms[name] = histogram
        histogram.add(value)

    def event(self, name: str, **attrs: object) -> None:
        """Emit a point-in-time event to the trace sink."""
        if self._sink is not None:
            record: Dict[str, object] = {
                "type": "event",
                "name": name,
                "t": self.now(),
            }
            if attrs:
                record["attrs"] = attrs
            self._sink.write(record)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """All aggregates as one JSON-serializable dict."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: histogram.as_dict()
                for name, histogram in sorted(self.histograms.items())
            },
            "spans": {
                name: {"count": int(totals[0]), "total_s": totals[1]}
                for name, totals in sorted(self.span_totals.items())
            },
        }

    def summary_table(self) -> str:
        """Human-readable end-of-run summary (the CLI sink)."""
        lines: List[str] = []
        if self.span_totals:
            lines.append("spans (count, total seconds):")
            width = max(len(name) for name in self.span_totals)
            for name, totals in sorted(self.span_totals.items()):
                lines.append(
                    f"  {name:<{width}}  x{int(totals[0]):<6} {totals[1]:.3f}s"
                )
        if self.counters:
            lines.append("counters:")
            width = max(len(name) for name in self.counters)
            for name, value in sorted(self.counters.items()):
                shown = int(value) if float(value).is_integer() else value
                lines.append(f"  {name:<{width}}  {shown}")
        if self.gauges:
            lines.append("gauges:")
            width = max(len(name) for name in self.gauges)
            for name, value in sorted(self.gauges.items()):
                lines.append(f"  {name:<{width}}  {value:.6g}")
        if self.histograms:
            lines.append("histograms (count / mean / max):")
            width = max(len(name) for name in self.histograms)
            for name, histogram in sorted(self.histograms.items()):
                lines.append(
                    f"  {name:<{width}}  {histogram.count} / "
                    f"{histogram.mean:.6g} / "
                    f"{histogram.maximum if histogram.maximum is not None else 0:.6g}"
                )
        return "\n".join(lines) if lines else "(no observability data recorded)"
