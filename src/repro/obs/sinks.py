"""Trace sinks: JSONL event log and the congestion heatmap export.

The JSONL trace format is line-delimited JSON with a ``type`` field per
record; ``repro.obs.schema`` is the single source of truth for the
format (and validates files against it).  The congestion heatmap is a
separate single-JSON export keyed by global-routing edge usage, meant
for plotting utilization over the tile grid.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro.obs.schema import SCHEMA_NAME, SCHEMA_VERSION


class JsonlTraceSink:
    """Append-only JSONL writer for spans, events and the final summary.

    The first record is the ``meta`` header, the last (written by
    ``close``) the aggregate ``summary``; spans and events stream in
    between in completion order.
    """

    def __init__(self, path: str, meta: Optional[Dict[str, object]] = None) -> None:
        self.path = path
        self.meta = dict(meta) if meta else {}
        self._file = None

    def open(self, observer) -> None:
        if self._file is not None:
            return
        self._file = open(self.path, "w", encoding="utf-8")
        header: Dict[str, object] = {
            "type": "meta",
            "schema": SCHEMA_NAME,
            "version": SCHEMA_VERSION,
        }
        trace_id = getattr(observer, "trace_id", None)
        if trace_id is not None:
            header["trace_id"] = trace_id
        header.update(self.meta)
        self.write(header)

    def write(self, record: Dict[str, object]) -> None:
        if self._file is None:
            return
        self._file.write(json.dumps(record, sort_keys=True, default=str))
        self._file.write("\n")

    def close(self, observer) -> None:
        if self._file is None:
            return
        summary: Dict[str, object] = {"type": "summary"}
        summary.update(observer.summary())
        self.write(summary)
        self._file.close()
        self._file = None

    def disinherit(self) -> None:
        """Abandon a fork-inherited file handle without flushing it.

        A forked worker shares the parent's open file description; the
        bytes the parent buffered before the fork sit in the child's
        copy of the write buffer too, and interpreter shutdown would
        flush them a second time — duplicating the parent's records
        mid-file.  Redirect the child's descriptor at the null device
        so the inevitable flush goes nowhere, then drop the handle.
        """
        if self._file is None:
            return
        try:
            null_fd = os.open(os.devnull, os.O_WRONLY)
            try:
                os.dup2(null_fd, self._file.fileno())
            finally:
                os.close(null_fd)
        except (OSError, ValueError):
            pass
        self._file = None


class MemorySink:
    """In-memory record buffer with the sink interface.

    Pool workers attach one instead of a file sink: the forked child
    must not write into the parent's JSONL handle, so span/event
    records buffer here and ship back to the parent with each region's
    result (``obs_records``), where they are folded into the parent's
    observer/sink via ``Observer.adopt_records``.
    """

    def __init__(self) -> None:
        self.records: List[Dict[str, object]] = []

    def open(self, observer) -> None:  # noqa: ARG002 - sink interface
        return None

    def write(self, record: Dict[str, object]) -> None:
        self.records.append(record)

    def close(self, observer) -> None:  # noqa: ARG002 - sink interface
        return None

    def take(self) -> List[Dict[str, object]]:
        """Drain and return everything buffered since the last take."""
        records, self.records = self.records, []
        return records


def congestion_heatmap(global_result) -> Dict[str, object]:
    """Global-routing edge utilization, JSON-serializable.

    Usage counts how many rounded net routes use each tile-graph edge;
    capacity comes from the estimation of Sec. 2.5.  ``utilization`` is
    their ratio (0 capacity reports utilization equal to usage, which
    flags routes through blocked edges).  Edges carry their endpoint
    tile nodes ``[tx, ty, z]`` so a plotter can rasterize per layer.
    """
    graph = global_result.graph
    usage: Dict[object, int] = {}
    for route in global_result.routes.values():
        for edge in route.edges:
            usage[edge] = usage.get(edge, 0) + 1
    edges: List[Dict[str, object]] = []
    for edge in sorted(usage):
        a, b = edge
        capacity = graph.capacity(edge)
        count = usage[edge]
        edges.append(
            {
                "a": list(a),
                "b": list(b),
                "usage": count,
                "capacity": capacity,
                "utilization": count / capacity if capacity > 0 else float(count),
            }
        )
    max_utilization = max((e["utilization"] for e in edges), default=0.0)
    return {
        "type": "congestion_heatmap",
        "chip": global_result.chip.name,
        "tile_size": graph.tile_size,
        "tiles": [graph.nx, graph.ny],
        "edges": edges,
        "max_utilization": max_utilization,
    }


def heatmap_layers(heatmap: Dict[str, object]) -> Dict[int, List[List[float]]]:
    """Rasterize a :func:`congestion_heatmap` dict into per-layer grids.

    Returns ``{layer: grid}`` where ``grid[ty][tx]`` is the maximum
    utilization over the edges incident to tile ``(tx, ty)`` on that
    layer; via edges (between layers z and z+1) contribute to both.
    Only layers touched by at least one used edge appear.  This is the
    plottable form of the heatmap — the HTML report colors each tile by
    it — and replaces eyeballing the raw edge list.
    """
    nx, ny = heatmap["tiles"]
    grids: Dict[int, List[List[float]]] = {}

    def tile(layer: int, tx: int, ty: int, value: float) -> None:
        grid = grids.get(layer)
        if grid is None:
            grid = [[0.0] * nx for _ in range(ny)]
            grids[layer] = grid
        if 0 <= tx < nx and 0 <= ty < ny and value > grid[ty][tx]:
            grid[ty][tx] = value

    for edge in heatmap["edges"]:
        (ax, ay, az) = edge["a"]
        (bx, by, bz) = edge["b"]
        utilization = float(edge["utilization"])
        tile(az, ax, ay, utilization)
        tile(bz, bx, by, utilization)
    return grids


def write_congestion_heatmap(global_result, path: str) -> Dict[str, object]:
    """Serialize :func:`congestion_heatmap` to ``path``; returns the dict."""
    heatmap = congestion_heatmap(global_result)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(heatmap, handle, sort_keys=True)
        handle.write("\n")
    return heatmap
