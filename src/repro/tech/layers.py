"""Layer stack with alternating preferred directions.

Wiring layers are numbered 1, 2, 3, ... (M1, M2, ...).  Between consecutive
wiring layers l and l+1 sits via layer l (V_l).  On each wiring layer
almost all wires run in the layer's preferred direction; orthogonal pieces
are jogs (Sec. 1.1).
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional


class Direction(enum.Enum):
    HORIZONTAL = "horizontal"
    VERTICAL = "vertical"

    @property
    def orthogonal(self) -> "Direction":
        if self is Direction.HORIZONTAL:
            return Direction.VERTICAL
        return Direction.HORIZONTAL


class Layer:
    """One wiring layer of the stack."""

    __slots__ = ("index", "name", "direction", "pitch", "min_width", "min_spacing")

    def __init__(
        self,
        index: int,
        direction: Direction,
        pitch: int,
        min_width: int,
        min_spacing: int,
        name: Optional[str] = None,
    ) -> None:
        if pitch < min_width + min_spacing:
            raise ValueError(
                f"layer {index}: pitch {pitch} below min_width + min_spacing "
                f"({min_width} + {min_spacing})"
            )
        self.index = index
        self.name = name if name is not None else f"M{index}"
        self.direction = direction
        self.pitch = pitch
        self.min_width = min_width
        self.min_spacing = min_spacing

    def __repr__(self) -> str:
        return f"Layer({self.name}, {self.direction.value}, pitch={self.pitch})"


class LayerStack:
    """Ordered collection of wiring layers with alternating directions.

    Via layer ``l`` connects wiring layers ``l`` and ``l + 1``.
    """

    def __init__(self, layers: Iterable[Layer]) -> None:
        self._layers: Dict[int, Layer] = {}
        for layer in layers:
            if layer.index in self._layers:
                raise ValueError(f"duplicate layer index {layer.index}")
            self._layers[layer.index] = layer
        indices = sorted(self._layers)
        if not indices:
            raise ValueError("layer stack must not be empty")
        if indices != list(range(indices[0], indices[0] + len(indices))):
            raise ValueError("layer indices must be contiguous")
        for lo, hi in zip(indices, indices[1:]):
            if self._layers[lo].direction == self._layers[hi].direction:
                raise ValueError(
                    f"layers {lo} and {hi} share a preferred direction; "
                    "horizontal and vertical layers must alternate"
                )
        self._indices = indices

    def __len__(self) -> int:
        return len(self._layers)

    def __iter__(self):
        return (self._layers[i] for i in self._indices)

    def __getitem__(self, index: int) -> Layer:
        try:
            return self._layers[index]
        except KeyError:
            names = ", ".join(
                f"{i} ({self._layers[i].name})" for i in self._indices
            )
            raise KeyError(
                f"no wiring layer {index}; stack has layers {names}"
            ) from None

    @property
    def bottom(self) -> int:
        return self._indices[0]

    @property
    def top(self) -> int:
        return self._indices[-1]

    @property
    def indices(self) -> List[int]:
        return list(self._indices)

    def via_layers(self) -> List[int]:
        """Indices l of via layers V_l connecting wiring layers l and l+1."""
        return self._indices[:-1]

    def has_layer(self, index: int) -> bool:
        return index in self._layers

    def direction(self, index: int) -> Direction:
        return self[index].direction

    def horizontal_layers(self) -> List[int]:
        return [i for i in self._indices if self[i].direction is Direction.HORIZONTAL]

    def vertical_layers(self) -> List[int]:
        return [i for i in self._indices if self[i].direction is Direction.VERTICAL]
