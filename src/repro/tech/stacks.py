"""Example technology: a small 22 nm-flavoured stack.

The paper routes IBM 22 nm and 32 nm designs whose rule decks are
proprietary.  This module provides a self-contained stand-in with the same
*structure*: alternating preferred directions, thin lower / thick upper
layers, width- and run-length-dependent spacing, line-end rules, inter-layer
via rules, and same-net (min segment / min area / short edge) rules.  All
coordinates are database units (1 dbu ~ 1 nm).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.geometry.rect import Rect
from repro.tech.layers import Direction, Layer, LayerStack
from repro.tech.rules import RuleSet, SameNetRules, SpacingRule, ViaRule
from repro.tech.wiring import ShapeClass, ViaModel, WireModel, WireType

#: Minimum wire width / spacing of the thin (lower) layers, in dbu.
THIN_WIDTH = 40
THIN_SPACING = 40
THIN_PITCH = THIN_WIDTH + THIN_SPACING  # 80

#: The thick (upper) layers double everything.
THICK_WIDTH = 80
THICK_SPACING = 80
THICK_PITCH = THICK_WIDTH + THICK_SPACING  # 160

#: First thick layer index in :func:`example_stack`.
FIRST_THICK_LAYER = 5

LINE_END_THRESHOLD = 60
LINE_END_EXTRA = 20


def example_stack(num_layers: int = 6) -> LayerStack:
    """Alternating-direction stack; odd layers horizontal, thin below
    ``FIRST_THICK_LAYER`` and thick from it upward."""
    if num_layers < 2:
        raise ValueError("need at least two wiring layers")
    layers = []
    for index in range(1, num_layers + 1):
        direction = Direction.HORIZONTAL if index % 2 == 1 else Direction.VERTICAL
        if index < FIRST_THICK_LAYER:
            layers.append(Layer(index, direction, THIN_PITCH, THIN_WIDTH, THIN_SPACING))
        else:
            layers.append(
                Layer(index, direction, THICK_PITCH, THICK_WIDTH, THICK_SPACING)
            )
    return LayerStack(layers)


def example_rules(num_layers: int = 6) -> RuleSet:
    """Rule deck matching :func:`example_stack`."""
    spacing: Dict[int, SpacingRule] = {}
    same_net: Dict[int, SameNetRules] = {}
    via_rules: Dict[int, ViaRule] = {}
    for index in range(1, num_layers + 1):
        thin = index < FIRST_THICK_LAYER
        base = THIN_SPACING if thin else THICK_SPACING
        width = THIN_WIDTH if thin else THICK_WIDTH
        spacing[index] = SpacingRule(
            base_spacing=base,
            table=[
                # Wide shapes need more distance ...
                (2 * width, 0, base + width // 2),
                # ... and long parallel runs of wide shapes even more.
                (2 * width, 10 * width, 2 * base),
            ],
            line_end_threshold=LINE_END_THRESHOLD if thin else 0,
            line_end_extra=LINE_END_EXTRA if thin else 0,
        )
        same_net[index] = SameNetRules(
            min_segment_length=2 * width,
            min_area=3 * width * width,
            min_edge_length=width,
            notch_spacing=base,
        )
    for via_layer in range(1, num_layers):
        via_rules[via_layer] = ViaRule(
            cut_spacing=THIN_SPACING if via_layer < FIRST_THICK_LAYER else THICK_SPACING,
            adjacent_layer_spacing=THIN_SPACING // 2,
        )
    return RuleSet(spacing, same_net, via_rules)


def _wire_pair(width: int, line_end_extension: int) -> Tuple[WireModel, WireModel]:
    pref_class = ShapeClass(f"wire_w{width}", width)
    jog_class = ShapeClass(f"jog_w{width}", width, line_end_exempt=True)
    return (
        WireModel.symmetric(width, pref_class, line_end_extension),
        WireModel.symmetric(width, jog_class, 0),
    )


def _via_model(
    cut_size: int, pad_extension: int, lower_dir: Direction, project_cut: bool
) -> ViaModel:
    half = cut_size // 2
    cut = Rect(-half, -half, cut_size - half, cut_size - half)
    # Pads extend beyond the cut in the preferred direction of their layer
    # (Sec. 2.5: "via pads extending to neighboring routing tracks").
    if lower_dir is Direction.HORIZONTAL:
        bottom = Rect(cut.x_lo - pad_extension, cut.y_lo, cut.x_hi + pad_extension, cut.y_hi)
        top = Rect(cut.x_lo, cut.y_lo - pad_extension, cut.x_hi, cut.y_hi + pad_extension)
    else:
        bottom = Rect(cut.x_lo, cut.y_lo - pad_extension, cut.x_hi, cut.y_hi + pad_extension)
        top = Rect(cut.x_lo - pad_extension, cut.y_lo, cut.x_hi + pad_extension, cut.y_hi)
    pad_class = ShapeClass(f"viapad_{cut_size}", cut_size, line_end_exempt=True)
    cut_class = ShapeClass(f"viacut_{cut_size}", cut_size, line_end_exempt=True)
    return ViaModel(bottom, cut, top, pad_class, cut_class, pad_class, project_cut)


def example_wiretypes(
    stack: LayerStack, include_wide: bool = True
) -> Dict[str, WireType]:
    """Wire types for the example stack.

    ``default``: minimum width everywhere - the standard wire of Sec. 3.5.
    ``wide``: double width, restricted to layers >= 3 (timing-critical nets
    with non-standard widths and layer restrictions, Sec. 1.1).
    """
    wire_models: Dict[int, Tuple[WireModel, WireModel]] = {}
    via_models: Dict[int, ViaModel] = {}
    wide_wire_models: Dict[int, Tuple[WireModel, WireModel]] = {}
    wide_via_models: Dict[int, ViaModel] = {}
    for layer in stack:
        thin = layer.index < FIRST_THICK_LAYER
        ext = LINE_END_EXTRA if thin else 0
        wire_models[layer.index] = _wire_pair(layer.min_width, ext)
        wide_wire_models[layer.index] = _wire_pair(2 * layer.min_width, ext)
    for via_layer in stack.via_layers():
        lower_dir = stack.direction(via_layer)
        thin = via_layer < FIRST_THICK_LAYER
        cut = THIN_WIDTH if thin else THICK_WIDTH
        project = via_layer + 1 in stack.via_layers()
        via_models[via_layer] = _via_model(cut, cut // 2, lower_dir, project)
        wide_via_models[via_layer] = _via_model(
            2 * cut if not thin else cut, cut, lower_dir, project
        )
    types = {"default": WireType("default", wire_models, via_models)}
    if include_wide:
        wide_layers = [i for i in stack.indices if i >= 3]
        types["wide"] = WireType(
            "wide", wide_wire_models, wide_via_models, allowed_layers=wide_layers
        )
    return types
