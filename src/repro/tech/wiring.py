"""Wire models, via models, wire types and stick figures (Sec. 3.2).

Wires and vias are stored as one-dimensional *stick figures*; a *wire
model* maps a stick figure to its metal shape (the Minkowski sum of the
stick figure and the model's rectangle) plus a *shape class* that
determines its minimum-distance requirements.  A *via model* consists of
three rectangles (bottom pad, cut, top pad) plus shape classes, and - when
an inter-layer via rule applies - the projection of its cut to the next
higher via layer.  A *wire type* maps every wiring layer to a pair of wire
models (preferred / non-preferred direction) and every via layer to a via
model.

Line-end policy (Sec. 3.1, Fig. 2): every shape except jog shapes is
extended by the line-end spacing in preferred direction (pessimistic);
jogs are never extended (optimistic).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple

from repro.geometry.rect import Rect
from repro.tech.layers import Direction, LayerStack


class ShapeKind(enum.Enum):
    WIRE = "wire"
    JOG = "jog"
    VIA_PAD = "via_pad"
    VIA_CUT = "via_cut"
    VIA_CUT_PROJECTION = "via_cut_projection"
    PIN = "pin"
    BLOCKAGE = "blockage"


class ShapeClass:
    """Distance-requirement class of a shape (Sec. 3.2).

    Carries the effective rule width used in spacing-table lookups and
    whether the shape is exempt from line-end extension (jogs are).
    """

    __slots__ = ("name", "rule_width", "line_end_exempt")

    def __init__(self, name: str, rule_width: int, line_end_exempt: bool = False):
        self.name = name
        self.rule_width = rule_width
        self.line_end_exempt = line_end_exempt

    def __repr__(self) -> str:
        return f"ShapeClass({self.name}, w={self.rule_width})"


class StickFigure:
    """One-dimensional wire abstraction: a point-to-point segment on a layer.

    ``(x0, y0)`` to ``(x1, y1)`` must be axis-parallel (possibly a point).
    """

    __slots__ = ("layer", "x0", "y0", "x1", "y1")

    def __init__(self, layer: int, x0: int, y0: int, x1: int, y1: int) -> None:
        if x0 != x1 and y0 != y1:
            raise ValueError("stick figure must be axis-parallel")
        self.layer = layer
        self.x0, self.y0 = min(x0, x1), min(y0, y1)
        self.x1, self.y1 = max(x0, x1), max(y0, y1)

    def __repr__(self) -> str:
        return f"StickFigure(M{self.layer}, ({self.x0},{self.y0})-({self.x1},{self.y1}))"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, StickFigure)
            and (self.layer, self.x0, self.y0, self.x1, self.y1)
            == (other.layer, other.x0, other.y0, other.x1, other.y1)
        )

    def __hash__(self) -> int:
        return hash((self.layer, self.x0, self.y0, self.x1, self.y1))

    @property
    def is_point(self) -> bool:
        return self.x0 == self.x1 and self.y0 == self.y1

    @property
    def direction(self) -> Optional[Direction]:
        if self.is_point:
            return None
        return Direction.HORIZONTAL if self.y0 == self.y1 else Direction.VERTICAL

    @property
    def length(self) -> int:
        return (self.x1 - self.x0) + (self.y1 - self.y0)

    def as_rect(self) -> Rect:
        return Rect(self.x0, self.y0, self.x1, self.y1)


class WireModel:
    """Maps a stick figure to its metal shape on one layer.

    ``expansion`` is the rectangle whose Minkowski sum with the stick
    figure yields the metal; for a symmetric wire of width w it is
    ``Rect(-w//2, -w//2, w//2, w//2)``.  ``line_end_extension`` is the
    extra length added at both ends in preferred direction unless the
    shape class is line-end exempt.
    """

    __slots__ = ("expansion", "shape_class", "line_end_extension")

    def __init__(
        self, expansion: Rect, shape_class: ShapeClass, line_end_extension: int = 0
    ) -> None:
        self.expansion = expansion
        self.shape_class = shape_class
        self.line_end_extension = line_end_extension

    @staticmethod
    def symmetric(width: int, shape_class: ShapeClass, line_end_extension: int = 0):
        half = width // 2
        return WireModel(
            Rect(-half, -half, width - half, width - half),
            shape_class,
            line_end_extension,
        )

    def metal_shape(self, stick: StickFigure, preferred: Direction) -> Rect:
        """Metal rectangle of ``stick``, including line-end extension.

        The extension is applied in ``preferred`` direction only, and only
        when the shape class is not exempt (jog models are exempt, Fig. 2).
        """
        shape = stick.as_rect().minkowski_sum(self.expansion)
        ext = 0 if self.shape_class.line_end_exempt else self.line_end_extension
        if ext:
            if preferred is Direction.HORIZONTAL:
                shape = Rect(shape.x_lo - ext, shape.y_lo, shape.x_hi + ext, shape.y_hi)
            else:
                shape = Rect(shape.x_lo, shape.y_lo - ext, shape.x_hi, shape.y_hi + ext)
        return shape


class ViaModel:
    """Via between wiring layers l and l+1, anchored at a point.

    ``bottom`` / ``cut`` / ``top`` are rectangles relative to the anchor.
    When ``project_cut`` is set, the cut's projection onto the next higher
    via layer is part of the via's shapes, enabling inter-layer via rule
    checking within a single via layer (Sec. 3.2).
    """

    __slots__ = (
        "bottom",
        "cut",
        "top",
        "bottom_class",
        "cut_class",
        "top_class",
        "project_cut",
    )

    def __init__(
        self,
        bottom: Rect,
        cut: Rect,
        top: Rect,
        bottom_class: ShapeClass,
        cut_class: ShapeClass,
        top_class: ShapeClass,
        project_cut: bool = False,
    ) -> None:
        self.bottom = bottom
        self.cut = cut
        self.top = top
        self.bottom_class = bottom_class
        self.cut_class = cut_class
        self.top_class = top_class
        self.project_cut = project_cut

    def shapes(
        self, x: int, y: int, lower_layer: int
    ) -> List[Tuple[str, int, Rect, ShapeClass, ShapeKind]]:
        """Instantiate the via at (x, y) between lower_layer and +1.

        Returns (kind, index, rect, shape_class, shape_kind) tuples where
        ``kind`` is "wiring" or "via" and ``index`` the layer index.
        """
        out = [
            ("wiring", lower_layer, self.bottom.translated(x, y), self.bottom_class,
             ShapeKind.VIA_PAD),
            ("via", lower_layer, self.cut.translated(x, y), self.cut_class,
             ShapeKind.VIA_CUT),
            ("wiring", lower_layer + 1, self.top.translated(x, y), self.top_class,
             ShapeKind.VIA_PAD),
        ]
        if self.project_cut:
            out.append(
                ("via", lower_layer + 1, self.cut.translated(x, y), self.cut_class,
                 ShapeKind.VIA_CUT_PROJECTION)
            )
        return out


class WireType:
    """Maps wiring layers to (preferred, non-preferred) wire model pairs and
    via layers to via models (Sec. 3.2).

    The fast grid stores precomputed legality for a small set of frequently
    used wire types (Sec. 3.6); everything else goes through the distance
    rule checking module.
    """

    def __init__(
        self,
        name: str,
        wire_models: Dict[int, Tuple[WireModel, WireModel]],
        via_models: Dict[int, ViaModel],
        allowed_layers: Optional[List[int]] = None,
    ) -> None:
        self.name = name
        self._wire_models = dict(wire_models)
        self._via_models = dict(via_models)
        # Nets may be restricted to a subset of routing layers (Sec. 1.1).
        self.allowed_layers = (
            sorted(allowed_layers) if allowed_layers is not None else None
        )

    def __repr__(self) -> str:
        return f"WireType({self.name})"

    def wire_model(self, layer: int, direction: Direction, stack: LayerStack) -> WireModel:
        pref, npref = self._wire_models[layer]
        return pref if stack.direction(layer) is direction else npref

    def preferred_model(self, layer: int) -> WireModel:
        return self._wire_models[layer][0]

    def nonpreferred_model(self, layer: int) -> WireModel:
        return self._wire_models[layer][1]

    def via_model(self, via_layer: int) -> ViaModel:
        return self._via_models[via_layer]

    def has_layer(self, layer: int) -> bool:
        if layer not in self._wire_models:
            return False
        return self.allowed_layers is None or layer in self.allowed_layers

    def has_via_layer(self, via_layer: int) -> bool:
        if via_layer not in self._via_models:
            return False
        if self.allowed_layers is None:
            return True
        return via_layer in self.allowed_layers and via_layer + 1 in self.allowed_layers

    def wire_shape(
        self, stick: StickFigure, stack: LayerStack
    ) -> Tuple[Rect, ShapeClass, ShapeKind]:
        """Metal shape of a wire stick figure under this wire type."""
        preferred = stack.direction(stick.layer)
        direction = stick.direction
        if direction is None or direction is preferred:
            model = self.preferred_model(stick.layer)
            kind = ShapeKind.WIRE
        else:
            model = self.nonpreferred_model(stick.layer)
            kind = ShapeKind.JOG
        return model.metal_shape(stick, preferred), model.shape_class, kind
