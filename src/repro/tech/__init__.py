"""Technology model: layer stack, design rules, wire and via models.

This package encodes everything the routers need to know about the target
process: which layers exist and in which direction they prefer to run
(Sec. 1.1), how far shapes of different nets must stay apart as a function
of width and run-length (Sec. 3.1), which same-net configurations are
forbidden (Sec. 3.7), and how one-dimensional stick figures expand into
metal (Sec. 3.2).
"""

from repro.tech.layers import Direction, Layer, LayerStack
from repro.tech.rules import (
    SpacingRule,
    SameNetRules,
    RuleSet,
)
from repro.tech.wiring import (
    ShapeClass,
    WireModel,
    ViaModel,
    WireType,
    StickFigure,
)
from repro.tech.stacks import example_stack, example_rules, example_wiretypes

__all__ = [
    "Direction",
    "Layer",
    "LayerStack",
    "SpacingRule",
    "SameNetRules",
    "RuleSet",
    "ShapeClass",
    "WireModel",
    "ViaModel",
    "WireType",
    "StickFigure",
    "example_stack",
    "example_rules",
    "example_wiretypes",
]
