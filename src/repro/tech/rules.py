"""Design rules: diff-net spacing tables and same-net rules.

Diff-net rules (Sec. 3.1): the required distance between two shapes of
different nets is a non-decreasing function of their widths and common
run-length, mostly in the l2 metric.  We model this as a step table over
(width, run-length), the standard form in technology files.  Line-ends
require increased spacing; BonnRoute's pessimistic/optimistic line-end
policy (extend every preferred-direction shape, never extend jogs) is
implemented in ``repro.tech.wiring``.

Same-net rules (Sec. 3.7): minimum segment length tau (subsuming notch and
short-edge avoidance for paths, following Nieberg [2011] / Massberg &
Nieberg [2012]), minimum edge length on polygon boundaries, and minimum
polygon area.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


class SpacingRule:
    """Width / run-length dependent spacing table for one layer.

    ``table`` holds rows ``(min_width, min_run_length, spacing)``; the
    required spacing for a pair of shapes is the maximum ``spacing`` over
    all rows whose thresholds both are met by (max pair width, run-length).
    A default row ``(0, 0, base_spacing)`` must exist, so every query has a
    defined value, and spacing is non-decreasing in both parameters by
    construction of the max.
    """

    def __init__(
        self,
        base_spacing: int,
        table: Sequence[Tuple[int, int, int]] = (),
        line_end_threshold: int = 0,
        line_end_extra: int = 0,
    ) -> None:
        if base_spacing < 0:
            raise ValueError("base spacing must be non-negative")
        self.base_spacing = base_spacing
        self.table: List[Tuple[int, int, int]] = [(0, 0, base_spacing)]
        for min_width, min_run, spacing in table:
            if spacing < base_spacing:
                raise ValueError("table spacing below base spacing")
            self.table.append((min_width, min_run, spacing))
        self.table.sort()
        # A line-end is an edge between two convex vertices closer than the
        # threshold (Sec. 3.1); shapes facing a line-end need extra spacing.
        self.line_end_threshold = line_end_threshold
        self.line_end_extra = line_end_extra

    def spacing(self, width_a: int, width_b: int, run_length: int) -> int:
        """Required distance for a shape pair of given widths / run-length."""
        width = max(width_a, width_b)
        required = self.base_spacing
        for min_width, min_run, spacing in self.table:
            if width >= min_width and run_length >= min_run:
                required = max(required, spacing)
        return required

    def spacing_with_line_end(
        self, width_a: int, width_b: int, run_length: int, has_line_end: bool
    ) -> int:
        required = self.spacing(width_a, width_b, run_length)
        if has_line_end:
            required += self.line_end_extra
        return required

    def max_spacing(self) -> int:
        """Upper bound on any spacing this rule can require (query radius)."""
        return max(s for _, _, s in self.table) + self.line_end_extra


class SameNetRules:
    """Same-net rules for one layer (Sec. 3.7)."""

    def __init__(
        self,
        min_segment_length: int,
        min_area: int,
        min_edge_length: int,
        notch_spacing: int,
    ) -> None:
        # tau: every wire segment must be at least this long.  Massberg &
        # Nieberg [2012] show most same-net rules map to this requirement.
        self.min_segment_length = min_segment_length
        # Every connected metal polygon must have at least this area.
        self.min_area = min_area
        # Of any two adjacent boundary edges, at least one must be >= this.
        self.min_edge_length = min_edge_length
        # Non-adjacent segments of the same path must keep this distance.
        self.notch_spacing = notch_spacing


class ViaRule:
    """Inter-layer via rule: minimum distance between via cuts in adjacent
    via layers (Sec. 3.1), checked via cut projections (Sec. 3.2)."""

    def __init__(self, cut_spacing: int, adjacent_layer_spacing: int = 0) -> None:
        self.cut_spacing = cut_spacing
        self.adjacent_layer_spacing = adjacent_layer_spacing


class RuleSet:
    """All design rules of a technology, indexed by layer.

    ``spacing_rules`` maps wiring layer index -> SpacingRule;
    ``same_net`` maps wiring layer index -> SameNetRules;
    ``via_rules`` maps via layer index -> ViaRule.
    """

    def __init__(
        self,
        spacing_rules: Dict[int, SpacingRule],
        same_net: Dict[int, SameNetRules],
        via_rules: Optional[Dict[int, ViaRule]] = None,
    ) -> None:
        self.spacing_rules = dict(spacing_rules)
        self.same_net = dict(same_net)
        self.via_rules = dict(via_rules or {})

    def spacing_rule(self, layer: int) -> SpacingRule:
        try:
            return self.spacing_rules[layer]
        except KeyError:
            available = sorted(self.spacing_rules)
            raise KeyError(
                f"no spacing rule for layer {layer}; "
                f"rules exist for layers {available}"
            ) from None

    def same_net_rules(self, layer: int) -> SameNetRules:
        try:
            return self.same_net[layer]
        except KeyError:
            available = sorted(self.same_net)
            raise KeyError(
                f"no same-net rules for layer {layer}; "
                f"rules exist for layers {available}"
            ) from None

    def via_rule(self, via_layer: int) -> Optional[ViaRule]:
        return self.via_rules.get(via_layer)

    def max_interaction_distance(self, layer: int) -> int:
        """Largest distance at which shapes on ``layer`` can interact.

        Bounds the neighbourhood the shape grid must inspect for any
        diff-net query on this layer.
        """
        return self.spacing_rule(layer).max_spacing()
