"""Global routing (Sec. 2 of the paper).

* :mod:`repro.groute.graph` - the 3D global routing graph over tiles and
  layers (Sec. 2.1);
* :mod:`repro.groute.capacity` - edge capacity estimation from usable
  track-graph vertices, intra-tile prerouting and stacked-via
  preprocessing (Sec. 2.5);
* :mod:`repro.groute.resources` - resources and convex consumption
  functions gamma (space / power / yield, Fig. 1) with optimal
  extra-space assignment (Eq. 1);
* :mod:`repro.groute.steiner_oracle` - the block oracle: Algorithm 1
  (path composition Steiner trees) over goal-oriented Dijkstra;
* :mod:`repro.groute.sharing` - the min-max resource sharing FPTAS
  (Algorithm 2, Mueller-Radke-Vygen);
* :mod:`repro.groute.rounding` - randomized rounding plus
  rip-up-and-reroute postprocessing (Sec. 2.4);
* :mod:`repro.groute.router` - the GlobalRouter facade producing
  corridors for detailed routing.
"""

from repro.groute.graph import GlobalRoutingGraph, GlobalRoute
from repro.groute.resources import ResourceModel, space_usage, power_usage, yield_loss
from repro.groute.sharing import ResourceSharingSolver
from repro.groute.router import GlobalRouter, GlobalRoutingResult

__all__ = [
    "GlobalRoutingGraph",
    "GlobalRoute",
    "ResourceModel",
    "space_usage",
    "power_usage",
    "yield_loss",
    "ResourceSharingSolver",
    "GlobalRouter",
    "GlobalRoutingResult",
]
