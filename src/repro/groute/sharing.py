"""Min-max resource sharing (Sec. 2.3, Algorithm 2).

The Mueller-Radke-Vygen multiplicative-weights scheme: in each of t
phases, every net gets a solution from the block oracle under current
resource prices; prices grow exponentially with usage
(y_r *= exp(eps * g_n^r(b))).  The average over phases is the fractional
solution; with t = ceil(96 ln|R| / omega^2) and eps = omega/12 it is a
sigma(1 + omega)-approximation (Thm 2.2).  In practice t = 125 and
eps = 1 work well (Sec. 2.3); both are parameters here.

Speed-ups from the paper implemented:

* *solution reuse*: the oracle is skipped when the previous solution's
  cost under current prices is still within a factor of its original
  cost (the resources it uses have not become much more expensive);
* prices are maintained as logarithms to avoid overflow with large t.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.chip.net import Net
from repro.groute.graph import Edge, GlobalRoutingGraph
from repro.groute.resources import GLOBAL_RESOURCES, ResourceModel
from repro.obs import OBS
from repro.groute.steiner_oracle import (
    OracleResult,
    path_composition_steiner_tree,
)

#: One candidate solution of a net: frozen edge set + extra space tuple.
SolutionKey = Tuple[Tuple[Edge, ...], Tuple[float, ...]]


def _solution_key(result: OracleResult) -> SolutionKey:
    edges = tuple(sorted(result.edges))
    spaces = tuple(result.extra_space.get(edge, 0.0) for edge in edges)
    return (edges, spaces)


class FractionalSolution:
    """Convex combinations x_{n, b} per net plus the final prices."""

    def __init__(self) -> None:
        #: net -> {solution key -> weight}; weights per net sum to 1.
        self.weights: Dict[str, Dict[SolutionKey, float]] = {}
        self.prices: Dict[object, float] = {}
        self.phases_run = 0
        self.oracle_calls = 0
        self.oracle_reuses = 0
        self.oracle_time = 0.0
        self.max_congestion = 0.0
        #: Oracle invocations that raised and were absorbed (the net
        #: simply gets no solution this phase).
        self.oracle_faults = 0
        #: Set when a stage deadline cut the phase loop short; the
        #: averaged solution over the phases run so far is still valid.
        self.deadline_hit = False

    def support(self, net_name: str) -> List[Tuple[SolutionKey, float]]:
        return sorted(
            self.weights.get(net_name, {}).items(), key=lambda kv: -kv[1]
        )


class ResourceSharingSolver:
    """Algorithm 2 over the global routing graph."""

    def __init__(
        self,
        graph: GlobalRoutingGraph,
        model: ResourceModel,
        phases: int = 125,
        epsilon: float = 1.0,
        reuse_threshold: float = 1.5,
        potential_scale: float = 0.0,
        use_landmarks: bool = False,
        landmark_count: int = 4,
        fault_injector=None,
        initial_log_prices: Optional[Dict[object, float]] = None,
    ) -> None:
        self.graph = graph
        self.model = model
        self.phases = phases
        self.epsilon = epsilon
        #: Optional :class:`repro.flow.faults.FaultInjector` probed at the
        #: "steiner_oracle" site before each oracle call.
        self.fault_injector = fault_injector
        #: Reuse the previous solution while its current-price cost is
        #: below reuse_threshold x its cost when it was computed.
        self.reuse_threshold = reuse_threshold
        self.potential_scale = potential_scale
        # Goal orientation with landmarks (Sec. 2.2): ALT potentials under
        # the unpriced length metric, scaled by the minimum per-length
        # price (y_wirelength >= 1 throughout Algorithm 2) to stay
        # admissible against priced edge costs.
        self._landmarks = None
        if use_landmarks:
            from repro.groute.landmarks import LandmarkOracle

            self._landmarks = LandmarkOracle(graph, landmark_count)
        # Log-prices: resource -> ln(y_r); edges keyed by Edge, globals by
        # name.  Initialized to ln(1) = 0 (Algorithm 2, line 1), or to a
        # previous run's final duals for warm-started incremental solves —
        # the old prices already encode where the chip is congested, so
        # far fewer phases reach a good average.
        self._log_price: Dict[object, float] = dict(initial_log_prices or {})

    def _potential_factory(self):
        if self._landmarks is None:
            return None
        scale = 1.0 / self.model.bounds["wirelength"]
        landmarks = self._landmarks

        def factory(targets):
            base = landmarks.potential_to(sorted(targets))

            def potential(node):
                return base(node) * scale

            return potential

        return factory

    # ------------------------------------------------------------------
    # Prices
    # ------------------------------------------------------------------
    def _edge_price(self, edge: Edge) -> float:
        return math.exp(self._log_price.get(edge, 0.0))

    def _global_prices(self) -> Dict[str, float]:
        out = {}
        for name, bound in self.model.bounds.items():
            out[name] = math.exp(self._log_price.get(name, 0.0)) / bound
        return out

    def _edge_cost_fn(self):
        global_prices = self._global_prices()

        def edge_cost(net_name: str, edge: Edge) -> Tuple[float, float]:
            return self.model.priced_edge_cost(
                net_name, edge, self._edge_price(edge), global_prices
            )

        return edge_cost

    # ------------------------------------------------------------------
    # Resource usage g_n^r(b)
    # ------------------------------------------------------------------
    def _usages(
        self, net_name: str, key: SolutionKey
    ) -> Tuple[Dict[Edge, float], Dict[str, float]]:
        """(edge usage g_{r(e)}, global usage g_r) of one solution."""
        edges, spaces = key
        edge_usage: Dict[Edge, float] = {}
        global_usage: Dict[str, float] = {}
        for edge, s in zip(edges, spaces):
            capacity = max(self.graph.capacity(edge), 1e-9)
            usage = self.model.edge_usage(net_name, edge, s)
            edge_usage[edge] = usage["space"] / capacity
            for name, value in usage.items():
                if name == "space":
                    continue
                bound = self.model.bounds.get(name)
                if bound:
                    global_usage[name] = (
                        global_usage.get(name, 0.0) + value / bound
                    )
        return edge_usage, global_usage

    def _solution_price(self, net_name: str, key: SolutionKey) -> float:
        """sum_r y_r g_n^r(b) under current prices."""
        edge_usage, global_usage = self._usages(net_name, key)
        total = 0.0
        for edge, usage in edge_usage.items():
            total += math.exp(self._log_price.get(edge, 0.0)) * usage
        for name, usage in global_usage.items():
            total += math.exp(self._log_price.get(name, 0.0)) * usage
        return total

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def solve(self, nets: Sequence[Net], deadline=None) -> FractionalSolution:
        solution = FractionalSolution()
        counts: Dict[str, Dict[SolutionKey, int]] = {net.name: {} for net in nets}
        terminals = {
            net.name: self.graph.net_terminals(net) for net in nets
        }
        previous: Dict[str, Tuple[SolutionKey, float]] = {}
        #: Running resource-usage totals for the per-phase lambda estimate
        #: (sum over all recorded solutions; dividing by phases_run gives
        #: the congestion of the running average).  Maintained only while
        #: observability is on.
        running_usage: Dict[object, float] = {}
        for _phase in range(self.phases):
            if deadline is not None and deadline.expired:
                # Degrade gracefully: average over the phases completed
                # so far instead of aborting the stage.
                solution.deadline_hit = True
                if OBS.enabled:
                    OBS.event("sharing.deadline_hit", phase=solution.phases_run)
                break
            solution.phases_run += 1
            for net in nets:
                key = None
                cached = previous.get(net.name)
                if cached is not None:
                    cached_key, cached_cost = cached
                    current_cost = self._solution_price(net.name, cached_key)
                    if current_cost <= self.reuse_threshold * cached_cost:
                        key = cached_key
                        solution.oracle_reuses += 1
                if key is None:
                    start = time.time()
                    try:
                        if self.fault_injector is not None:
                            self.fault_injector.check(
                                "steiner_oracle", net=net.name
                            )
                        result = path_composition_steiner_tree(
                            self.graph,
                            net.name,
                            terminals[net.name],
                            self._edge_cost_fn(),
                            self.potential_scale,
                            potential_factory=self._potential_factory(),
                        )
                    except Exception:  # noqa: BLE001 - per-net isolation
                        # A faulting oracle costs the net one phase; the
                        # remaining phases (and its cached solution, if
                        # any) still contribute to the average.
                        solution.oracle_faults += 1
                        result = None
                    solution.oracle_time += time.time() - start
                    solution.oracle_calls += 1
                    if result is None:
                        continue
                    key = _solution_key(result)
                    previous[net.name] = (key, self._solution_price(net.name, key))
                counts[net.name][key] = counts[net.name].get(key, 0) + 1
                # Price update (Algorithm 2, line 7).
                edge_usage, global_usage = self._usages(net.name, key)
                for edge, usage in edge_usage.items():
                    if usage > 0:
                        self._log_price[edge] = (
                            self._log_price.get(edge, 0.0) + self.epsilon * usage
                        )
                for name, usage in global_usage.items():
                    if usage > 0:
                        self._log_price[name] = (
                            self._log_price.get(name, 0.0) + self.epsilon * usage
                        )
                if OBS.enabled:
                    for resource, usage in edge_usage.items():
                        running_usage[resource] = (
                            running_usage.get(resource, 0.0) + usage
                        )
                    for resource, usage in global_usage.items():
                        running_usage[resource] = (
                            running_usage.get(resource, 0.0) + usage
                        )
            if OBS.enabled:
                # Congestion of the running phase average: the per-phase
                # lambda trajectory of Fig. 6-style convergence plots.
                lam = (
                    max(running_usage.values(), default=0.0)
                    / solution.phases_run
                )
                OBS.gauge("sharing.lambda", lam)
                OBS.count("sharing.phases")
                OBS.event(
                    "sharing.phase",
                    phase=solution.phases_run,
                    lam=lam,
                    oracle_calls=solution.oracle_calls,
                    oracle_reuses=solution.oracle_reuses,
                )
        # Average over phases (Algorithm 2, line 10).
        for net_name, net_counts in counts.items():
            total = sum(net_counts.values())
            if total == 0:
                continue
            solution.weights[net_name] = {
                key: count / total for key, count in net_counts.items()
            }
        solution.prices = {
            resource: math.exp(value) for resource, value in self._log_price.items()
        }
        solution.max_congestion = self.fractional_congestion(solution)
        if OBS.enabled:
            OBS.count("sharing.oracle_calls", solution.oracle_calls)
            OBS.count("sharing.oracle_reuses", solution.oracle_reuses)
            OBS.count("sharing.oracle_faults", solution.oracle_faults)
            OBS.observe("sharing.oracle_time_s", solution.oracle_time)
            OBS.gauge("sharing.lambda", solution.max_congestion)
        return solution

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def fractional_congestion(self, solution: FractionalSolution) -> float:
        """max_r sum_n g_n^r of the fractional solution (lambda)."""
        edge_total: Dict[Edge, float] = {}
        global_total: Dict[str, float] = {}
        for net_name, weights in solution.weights.items():
            for key, weight in weights.items():
                edge_usage, global_usage = self._usages(net_name, key)
                for edge, usage in edge_usage.items():
                    edge_total[edge] = edge_total.get(edge, 0.0) + weight * usage
                for name, usage in global_usage.items():
                    global_total[name] = (
                        global_total.get(name, 0.0) + weight * usage
                    )
        worst = max(global_total.values(), default=0.0)
        if edge_total:
            worst = max(worst, max(edge_total.values()))
        return worst


def solve_with_scaling(
    graph: GlobalRoutingGraph,
    model: ResourceModel,
    nets: Sequence[Net],
    phases: int = 40,
    probe_phases: int = 8,
    max_rounds: int = 4,
    target: Tuple[float, float] = (0.4, 1.05),
    **solver_kwargs,
) -> Tuple[FractionalSolution, List[float]]:
    """The scaling framework of Sec. 2.3.

    The approximation guarantee of Algorithm 2 needs lambda* in [1/2, 1];
    when the guessed objective bounds are off, the paper rescales all
    (global) resources - "for instance, by binary search".  This probes
    with few phases, multiplies the global bounds by the observed lambda
    until it lands in ``target``, then runs the full solve.

    Returns (solution, probe lambda history).
    """
    history: List[float] = []
    lo, hi = target
    for _round in range(max_rounds):
        probe = ResourceSharingSolver(
            graph, model, phases=probe_phases, **solver_kwargs
        )
        fractional = probe.solve(nets)
        lam = fractional.max_congestion
        history.append(lam)
        if lo <= lam <= hi or lam <= 0.0:
            break
        # Scale global bounds so the congestion normalizes towards 1.
        for name in list(model.bounds):
            model.bounds[name] *= lam
    solver = ResourceSharingSolver(graph, model, phases=phases, **solver_kwargs)
    return solver.solve(nets), history


def solve_parallel_simulated(
    graph: GlobalRoutingGraph,
    model: ResourceModel,
    nets: Sequence[Net],
    threads: int = 4,
    phases: int = 40,
    epsilon: float = 1.0,
    **solver_kwargs,
) -> FractionalSolution:
    """Simulate the shared-memory parallel resource sharing of Sec. 5.1.

    In the parallel implementation several threads run oracles against
    the *same* price vector concurrently; prices they read are stale by
    up to one block of concurrent work.  Mueller et al. [2011] prove the
    volatility-tolerant block solvers keep the approximation guarantee.
    This simulation reproduces the staleness deterministically: each
    phase splits the nets into ``threads`` blocks; within a block every
    oracle sees the same price snapshot, and the price updates of the
    whole block are applied only after it completes.

    Returns a FractionalSolution comparable to the serial solver's.
    """
    solver = ResourceSharingSolver(
        graph, model, phases=phases, epsilon=epsilon, **solver_kwargs
    )
    solution = FractionalSolution()
    counts: Dict[str, Dict[SolutionKey, int]] = {net.name: {} for net in nets}
    terminals = {net.name: graph.net_terminals(net) for net in nets}
    ordered = list(nets)
    for phase in range(phases):
        solution.phases_run += 1
        for block_start in range(0, len(ordered), max(threads, 1)):
            block = ordered[block_start:block_start + max(threads, 1)]
            # One snapshot for the whole block: the concurrent reads.
            edge_cost = solver._edge_cost_fn()
            block_updates = []
            for net in block:
                start = time.time()
                result = path_composition_steiner_tree(
                    graph, net.name, terminals[net.name], edge_cost,
                    solver.potential_scale,
                )
                solution.oracle_time += time.time() - start
                solution.oracle_calls += 1
                if result is None:
                    continue
                key = _solution_key(result)
                counts[net.name][key] = counts[net.name].get(key, 0) + 1
                block_updates.append((net.name, key))
            # Prices advance only after the block (batched writes).
            for net_name, key in block_updates:
                edge_usage, global_usage = solver._usages(net_name, key)
                for edge, usage in edge_usage.items():
                    if usage > 0:
                        solver._log_price[edge] = (
                            solver._log_price.get(edge, 0.0)
                            + epsilon * usage
                        )
                for name, usage in global_usage.items():
                    if usage > 0:
                        solver._log_price[name] = (
                            solver._log_price.get(name, 0.0)
                            + epsilon * usage
                        )
    for net_name, net_counts in counts.items():
        total = sum(net_counts.values())
        if total:
            solution.weights[net_name] = {
                key: count / total for key, count in net_counts.items()
            }
    solution.prices = {
        resource: math.exp(value)
        for resource, value in solver._log_price.items()
    }
    solution.max_congestion = solver.fractional_congestion(solution)
    return solution
