"""The block oracle: Steiner trees in the priced global routing graph.

Algorithm 1 (path composition): repeatedly connect a component of the
partial tree to the rest by a shortest path; approximation ratio
2 - 2/|W|, much better in practice (Sec. 5.3, Table II).  The shortest
path subroutine is Dijkstra with goal orientation (an l1 potential
towards the remaining terminals - the "variant of goal-orientation with
landmarks" reduced to its geometric core).

Terminals are pin vertex *sets* V_p; the clique K(V_p) of Sec. 2.1 is
realized by seeding every vertex of a terminal with distance 0.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.groute.graph import Edge, GlobalRoutingGraph, Node
from repro.util.heap import AddressableHeap

INFINITY = float("inf")

#: Cost function: (net_name, edge) -> (priced cost, optimal extra space).
EdgeCost = Callable[[str, Edge], Tuple[float, float]]


class OracleResult:
    """A Steiner forest for one net with extra space per edge."""

    __slots__ = ("edges", "extra_space", "cost", "dijkstra_labels")

    def __init__(
        self,
        edges: Set[Edge],
        extra_space: Dict[Edge, float],
        cost: float,
        dijkstra_labels: int,
    ) -> None:
        self.edges = edges
        self.extra_space = extra_space
        self.cost = cost
        self.dijkstra_labels = dijkstra_labels


def _terminal_potential(
    graph: GlobalRoutingGraph,
    other_terminals: Sequence[Set[Node]],
    scale: float,
) -> Callable[[Node], float]:
    """Admissible l1 lower bound to the nearest remaining terminal.

    ``scale`` converts tile-center dbu distances into priced cost lower
    bounds; it must under-estimate the per-length price, so we use the
    caller-provided minimum price per unit length (0 disables goal
    orientation safely).
    """
    boxes: List[Tuple[int, int, int, int]] = []
    for terminal in other_terminals:
        xs: List[int] = []
        ys: List[int] = []
        for node in terminal:
            cx, cy = graph.node_center(node)
            xs.append(cx)
            ys.append(cy)
        if xs:
            boxes.append((min(xs), min(ys), max(xs), max(ys)))

    def potential(node: Node) -> float:
        if not boxes or scale <= 0:
            return 0.0
        x, y = graph.node_center(node)
        best = INFINITY
        for x_lo, y_lo, x_hi, y_hi in boxes:
            dx = max(x_lo - x, 0, x - x_hi)
            dy = max(y_lo - y, 0, y - y_hi)
            if dx + dy < best:
                best = dx + dy
        return best * scale

    return potential


def shortest_component_path(
    graph: GlobalRoutingGraph,
    net_name: str,
    sources: Set[Node],
    targets: Set[Node],
    edge_cost: EdgeCost,
    potential_scale: float = 0.0,
    free_edges: Optional[Set[Edge]] = None,
    extra_potential: Optional[Callable[[Node], float]] = None,
) -> Optional[Tuple[List[Node], float, int]]:
    """Goal-oriented Dijkstra from a component to the nearest target set.

    ``free_edges`` traverse at zero cost (edges already in the tree).
    ``extra_potential`` is an additional admissible consistent potential
    (e.g. landmark bounds, Sec. 2.2); the maximum of two admissible
    consistent potentials is again admissible and consistent.
    Returns (node path, cost, labels) or None.
    """
    l1_pi = _terminal_potential(graph, [targets], potential_scale)
    if extra_potential is None:
        pi = l1_pi
    else:
        def pi(node: Node) -> float:
            return max(l1_pi(node), extra_potential(node))
    heap = AddressableHeap()
    dist: Dict[Node, float] = {}
    parent: Dict[Node, Optional[Node]] = {}
    labels = 0
    for node in sources:
        d = pi(node)
        if d < dist.get(node, INFINITY):
            dist[node] = d
            parent[node] = None
            heap.push(node, d)
            labels += 1
    settled: Set[Node] = set()
    while heap:
        node, d = heap.pop()
        if node in settled:
            continue
        settled.add(node)
        if node in targets:
            path = [node]
            while parent[path[-1]] is not None:
                path.append(parent[path[-1]])
            path.reverse()
            return path, d, labels
        for neighbour, edge in graph.neighbors(node):
            if graph.capacity(edge) <= 0 and not (
                free_edges and edge in free_edges
            ):
                continue
            if free_edges and edge in free_edges:
                cost = 0.0
            else:
                cost, _s = edge_cost(net_name, edge)
            nd = d - pi(node) + cost + pi(neighbour)
            if nd < dist.get(neighbour, INFINITY) - 1e-12:
                dist[neighbour] = nd
                parent[neighbour] = node
                heap.push(neighbour, nd)
                labels += 1
    return None


def path_composition_steiner_tree(
    graph: GlobalRoutingGraph,
    net_name: str,
    terminals: Sequence[Set[Node]],
    edge_cost: EdgeCost,
    potential_scale: float = 0.0,
    potential_factory: Optional[
        Callable[[Set[Node]], Callable[[Node], float]]
    ] = None,
) -> Optional[OracleResult]:
    """Algorithm 1: grow a tree by shortest component-to-rest paths.

    ``potential_factory`` builds an extra admissible potential for each
    target set (landmark goal orientation, Sec. 2.2).
    """
    live_terminals = [set(t) for t in terminals if t]
    if len(live_terminals) <= 1:
        return OracleResult(set(), {}, 0.0, 0)
    tree_nodes: Set[Node] = set(live_terminals[0])
    tree_edges: Set[Edge] = set()
    extra_space: Dict[Edge, float] = {}
    remaining = live_terminals[1:]
    total_cost = 0.0
    total_labels = 0
    while remaining:
        target_union: Set[Node] = set()
        owner: Dict[Node, int] = {}
        for index, terminal in enumerate(remaining):
            for node in terminal:
                target_union.add(node)
                owner[node] = index
        extra = (
            potential_factory(target_union)
            if potential_factory is not None
            else None
        )
        found = shortest_component_path(
            graph,
            net_name,
            tree_nodes,
            target_union,
            edge_cost,
            potential_scale,
            free_edges=tree_edges,
            extra_potential=extra,
        )
        if found is None:
            return None
        path, cost, labels = found
        total_labels += labels
        total_cost += cost
        for a, b in zip(path, path[1:]):
            edge = (a, b) if a < b else (b, a)
            if edge not in tree_edges:
                tree_edges.add(edge)
                price, s_star = edge_cost(net_name, edge)
                extra_space[edge] = s_star
            tree_nodes.add(a)
            tree_nodes.add(b)
        reached = owner[path[-1]]
        tree_nodes |= remaining[reached]
        del remaining[reached]
    return OracleResult(tree_edges, extra_space, total_cost, total_labels)
