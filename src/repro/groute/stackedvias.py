"""Stacked-via capacity preprocessing (Sec. 2.5).

A stacked via from layer l to l+2 also consumes space on layer l+1, so it
reduces the capacity available to through-wires on that layer.  The
expected reduction is *sublinear* in the number of stacked vias: BonnRoute
precomputes, for k stacked vias of size p placed in a normalized region,
the expected maximum number of selected vertices per column when counting
the ways to choose k disjoint sets of p consecutive x-vertices in a 2D
lattice under a per-column limit.

This module implements that counting exactly by dynamic programming over
the lattice rows and derives the expected column load, exposed as
:func:`capacity_reduction`.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import combinations
from typing import Dict, List, Tuple


def _row_placements(columns: int, p: int) -> List[Tuple[int, ...]]:
    """All ways to place disjoint p-long runs in one row of ``columns``.

    Returned as column-load vectors (1 where a run covers the column).
    Rows are independent; the per-row run count is implicit in the
    vectors.
    """
    starts = list(range(columns - p + 1))
    placements: List[Tuple[int, ...]] = []

    def recurse(start_index: int, load: List[int]) -> None:
        placements.append(tuple(load))
        for s in range(start_index, columns - p + 1):
            if all(load[s + i] == 0 for i in range(p)):
                for i in range(p):
                    load[s + i] = 1
                recurse(s + p, load)
                for i in range(p):
                    load[s + i] = 0

    recurse(0, [0] * columns)
    return placements


def enumerate_column_loads(
    columns: int, rows: int, k: int, p: int, max_per_column: int
) -> Dict[Tuple[int, ...], int]:
    """Count selections of k disjoint p-runs over a rows x columns lattice.

    Returns a map from the aggregate column-load vector to the number of
    selections realizing it, honouring ``max_per_column``.  This is the
    counting step of Sec. 2.5.
    """
    per_row = _row_placements(columns, p)
    by_count: Dict[int, List[Tuple[int, ...]]] = {}
    for load in per_row:
        count = sum(load) // p
        by_count.setdefault(count, []).append(load)

    results: Dict[Tuple[int, ...], int] = {}

    def recurse(row: int, remaining: int, load: Tuple[int, ...]) -> None:
        if remaining == 0:
            results[load] = results.get(load, 0) + 1
            return
        if row == rows:
            return
        budget = rows - row - 1  # rows after this one
        for count, loads in by_count.items():
            if count > remaining:
                continue
            # Feasibility prune: remaining runs must fit in later rows.
            if remaining - count > budget * (columns // p):
                continue
            for row_load in loads:
                new_load = tuple(
                    a + b for a, b in zip(load, row_load)
                )
                if max(new_load) > max_per_column:
                    continue
                recurse(row + 1, remaining - count, new_load)

    recurse(0, k, tuple([0] * columns))
    return results


def expected_max_column_load(
    columns: int, rows: int, k: int, p: int, max_per_column: int
) -> float:
    """E[max column load] over uniformly random feasible selections.

    The paper takes this as "a rough approximation of the reduction of
    the capacity caused by k disjoint stacked vias placed uniformly at
    random within the given region".
    """
    loads = enumerate_column_loads(columns, rows, k, p, max_per_column)
    total = sum(loads.values())
    if total == 0:
        return float(max_per_column)
    weighted = sum(max(load) * count for load, count in loads.items())
    return weighted / total


#: Normalized lattice for the preprocessing table (Sec. 2.5 computes the
#: counting for "a normalized region size" once, not per tile).
_NORM_COLUMNS = 5
_NORM_ROWS = 4
_NORM_MAX_PER_COLUMN = 3
_NORM_K_LIMIT = 6


@lru_cache(maxsize=256)
def capacity_reduction(
    k: int,
    p: int = 1,
    columns: int = _NORM_COLUMNS,
    rows: int = _NORM_ROWS,
    max_per_column: int = _NORM_MAX_PER_COLUMN,
) -> float:
    """Capacity reduction (in track units) caused by k stacked vias.

    Sublinear in k: doubling the stacked vias does not double the blocked
    tracks because random placements overlap columns.  Exact enumeration
    runs on the normalized lattice up to ``_NORM_K_LIMIT`` stacks; beyond
    that the expected maximum column load has effectively saturated at
    the per-column limit, so the table value saturates too.
    """
    if k <= 0:
        return 0.0
    limit = min(_NORM_K_LIMIT, rows * (columns // max(p, 1)))
    if k > limit:
        return expected_max_column_load(columns, rows, limit, p, max_per_column)
    return expected_max_column_load(columns, rows, k, p, max_per_column)
