"""The global routing graph (Sec. 2.1).

The chip area is divided into an array of tiles sized so that roughly
50-100 minimum-width wires fit per tile and layer (scaled down with our
smaller instances).  One vertex per (tile, layer); edges connect vertically
adjacent layers in the same tile (vias) and tiles adjacent in the layer's
preferred direction (no non-preferred-direction edges: even with small
tiles they would block too many tracks).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.chip.design import Chip
from repro.chip.net import Net, Pin
from repro.geometry.rect import Rect
from repro.tech.layers import Direction

Node = Tuple[int, int, int]  # (tile_x, tile_y, layer)
Edge = Tuple[Node, Node]  # canonical: a < b


def canonical_edge(a: Node, b: Node) -> Edge:
    return (a, b) if a < b else (b, a)


class GlobalRoutingGraph:
    """3D tile graph with per-edge capacities."""

    def __init__(self, chip: Chip, tile_size: Optional[int] = None) -> None:
        self.chip = chip
        bottom = chip.stack[chip.stack.bottom]
        if tile_size is None:
            # The paper sizes tiles for ~50-100 parallel wires; our chips
            # are much smaller, so scale to ~12 wires per tile for a
            # meaningful tile array.
            tile_size = 12 * bottom.pitch
        self.tile_size = tile_size
        die = chip.die
        self.tiles_x = self._boundaries(die.x_lo, die.x_hi, tile_size)
        self.tiles_y = self._boundaries(die.y_lo, die.y_hi, tile_size)
        self.nx = len(self.tiles_x) - 1
        self.ny = len(self.tiles_y) - 1
        #: capacity per canonical edge; filled by repro.groute.capacity.
        self.capacities: Dict[Edge, float] = {}

    @staticmethod
    def _boundaries(lo: int, hi: int, step: int) -> List[int]:
        bounds = list(range(lo, hi, step))
        if bounds[-1] != hi:
            bounds.append(hi)
        if len(bounds) < 2:
            bounds = [lo, hi]
        return bounds

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def tile_rect(self, tx: int, ty: int) -> Rect:
        return Rect(
            self.tiles_x[tx], self.tiles_y[ty],
            self.tiles_x[tx + 1], self.tiles_y[ty + 1],
        )

    def tile_center(self, tx: int, ty: int) -> Tuple[int, int]:
        return self.tile_rect(tx, ty).center

    def tile_of_point(self, x: int, y: int) -> Tuple[int, int]:
        tx = min(self.nx - 1, max(0, self._locate(self.tiles_x, x)))
        ty = min(self.ny - 1, max(0, self._locate(self.tiles_y, y)))
        return tx, ty

    @staticmethod
    def _locate(bounds: List[int], value: int) -> int:
        import bisect

        return max(0, bisect.bisect_right(bounds, value) - 1)

    def node_center(self, node: Node) -> Tuple[int, int]:
        return self.tile_center(node[0], node[1])

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def nodes(self) -> Iterator[Node]:
        for z in self.chip.stack.indices:
            for tx in range(self.nx):
                for ty in range(self.ny):
                    yield (tx, ty, z)

    def node_count(self) -> int:
        return self.nx * self.ny * len(self.chip.stack)

    def neighbors(self, node: Node) -> Iterator[Tuple[Node, Edge]]:
        tx, ty, z = node
        stack = self.chip.stack
        direction = stack.direction(z)
        if direction is Direction.HORIZONTAL:
            steps = ((1, 0), (-1, 0))
        else:
            steps = ((0, 1), (0, -1))
        for dx, dy in steps:
            nx, ny = tx + dx, ty + dy
            if 0 <= nx < self.nx and 0 <= ny < self.ny:
                other = (nx, ny, z)
                yield other, canonical_edge(node, other)
        for dz in (-1, 1):
            if stack.has_layer(z + dz):
                other = (tx, ty, z + dz)
                yield other, canonical_edge(node, other)

    def edges(self) -> Iterator[Edge]:
        seen: Set[Edge] = set()
        for node in self.nodes():
            for _other, edge in self.neighbors(node):
                if edge not in seen:
                    seen.add(edge)
                    yield edge

    @staticmethod
    def is_via_edge(edge: Edge) -> bool:
        return edge[0][2] != edge[1][2]

    def edge_length(self, edge: Edge) -> int:
        """l1 distance between tile centers (0 for via edges)."""
        if self.is_via_edge(edge):
            return 0
        (ax, ay), (bx, by) = self.node_center(edge[0]), self.node_center(edge[1])
        return abs(ax - bx) + abs(ay - by)

    def capacity(self, edge: Edge) -> float:
        return self.capacities.get(edge, 0.0)

    # ------------------------------------------------------------------
    # Pins and nets
    # ------------------------------------------------------------------
    def pin_nodes(self, pin: Pin) -> Set[Node]:
        """The vertex set V_p representing the pin (Sec. 2.1)."""
        nodes: Set[Node] = set()
        for layer, rect in pin.shapes:
            if not self.chip.stack.has_layer(layer):
                continue
            cx, cy = rect.center
            tx, ty = self.tile_of_point(cx, cy)
            nodes.add((tx, ty, layer))
        return nodes

    def net_terminals(self, net: Net) -> List[Set[Node]]:
        """One node set per pin; the oracle connects these as cliques."""
        return [self.pin_nodes(pin) for pin in net.pins]

    def is_local_net(self, net: Net) -> bool:
        """All pins in one tile: removable from global routing (Sec. 2.1),
        routed directly by the detailed router (Sec. 2.5)."""
        tiles = {
            (node[0], node[1])
            for terminal in self.net_terminals(net)
            for node in terminal
        }
        return len(tiles) <= 1


class GlobalRoute:
    """One net's global route: edges plus extra space per edge."""

    __slots__ = ("net_name", "edges", "extra_space")

    def __init__(
        self,
        net_name: str,
        edges: Set[Edge],
        extra_space: Optional[Dict[Edge, float]] = None,
    ) -> None:
        self.net_name = net_name
        self.edges = set(edges)
        self.extra_space = dict(extra_space or {})

    def __repr__(self) -> str:
        return f"GlobalRoute({self.net_name}, {len(self.edges)} edges)"

    def wire_length(self, graph: GlobalRoutingGraph) -> int:
        return sum(graph.edge_length(edge) for edge in self.edges)

    def via_count(self) -> int:
        return sum(1 for edge in self.edges if GlobalRoutingGraph.is_via_edge(edge))

    def nodes(self) -> Set[Node]:
        out: Set[Node] = set()
        for a, b in self.edges:
            out.add(a)
            out.add(b)
        return out
