"""Randomized rounding and rip-up-and-reroute (Sec. 2.4).

The fractional solution gives each net a convex combination of Steiner
forests; rounding picks one per net independently with probability
x_{n, b} (Raghavan-Thompson).  The few resulting capacity violations are
repaired in two stages:

1. *rechoosing*: nets on over-utilized edges switch to an alternative
   solution from their fractional support if that lowers the overflow;
2. *rerouting*: for the remaining violations, fresh oracle routes are
   computed with over-utilized edges heavily priced (the paper saw at
   most five such fresh routes per chip).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.chip.net import Net
from repro.groute.graph import Edge, GlobalRoute, GlobalRoutingGraph
from repro.groute.resources import ResourceModel
from repro.groute.sharing import FractionalSolution, SolutionKey
from repro.groute.steiner_oracle import path_composition_steiner_tree
from repro.util.rng import make_rng, weighted_choice


class RoundingStats:
    def __init__(self) -> None:
        self.rechosen_nets = 0
        self.fresh_reroutes = 0
        self.initial_violations = 0
        self.final_violations = 0
        #: Faults absorbed during rounding; the affected nets fell back
        #: to their best-weight fractional solution deterministically.
        self.rounding_faults = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "rechosen_nets": self.rechosen_nets,
            "fresh_reroutes": self.fresh_reroutes,
            "initial_violations": self.initial_violations,
            "final_violations": self.final_violations,
            "rounding_faults": self.rounding_faults,
        }


def _route_from_key(net_name: str, key: SolutionKey) -> GlobalRoute:
    edges, spaces = key
    return GlobalRoute(net_name, set(edges), dict(zip(edges, spaces)))


class RoundingPostprocessor:
    """Rounding + overflow repair over one fractional solution."""

    def __init__(
        self,
        graph: GlobalRoutingGraph,
        model: ResourceModel,
        seed: Optional[int] = None,
        fault_injector=None,
    ) -> None:
        self.graph = graph
        self.model = model
        self.rng = make_rng(seed)
        self.stats = RoundingStats()
        #: Optional :class:`repro.flow.faults.FaultInjector` probed at the
        #: "rounding" site per net.
        self.fault_injector = fault_injector

    # ------------------------------------------------------------------
    # Edge loads
    # ------------------------------------------------------------------
    def _edge_load(
        self, routes: Dict[str, GlobalRoute]
    ) -> Dict[Edge, float]:
        load: Dict[Edge, float] = {}
        for route in routes.values():
            width = self.model.net_width(route.net_name)
            for edge in route.edges:
                s = route.extra_space.get(edge, 0.0)
                load[edge] = load.get(edge, 0.0) + width + s
        return load

    def violations(self, routes: Dict[str, GlobalRoute]) -> Dict[Edge, float]:
        load = self._edge_load(routes)
        return {
            edge: used - self.graph.capacity(edge)
            for edge, used in load.items()
            if used > self.graph.capacity(edge) + 1e-9
        }

    # ------------------------------------------------------------------
    # Rounding
    # ------------------------------------------------------------------
    def round(self, solution: FractionalSolution) -> Dict[str, GlobalRoute]:
        routes: Dict[str, GlobalRoute] = {}
        for net_name, weights in solution.weights.items():
            keys = list(weights)
            probabilities = [weights[key] for key in keys]
            index = weighted_choice(self.rng, probabilities)
            try:
                if self.fault_injector is not None:
                    self.fault_injector.check("rounding", net=net_name)
            except Exception:  # noqa: BLE001 - per-net isolation
                # Deterministic degraded mode: skip the random draw and
                # take the heaviest-weight solution (the RNG was already
                # advanced above, so the other nets' draws are unchanged).
                self.stats.rounding_faults += 1
                index = max(range(len(keys)), key=lambda i: probabilities[i])
            routes[net_name] = _route_from_key(net_name, keys[index])
        return routes

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def repair(
        self,
        routes: Dict[str, GlobalRoute],
        solution: FractionalSolution,
        nets: Sequence[Net],
        max_rechoose_passes: int = 3,
    ) -> Dict[str, GlobalRoute]:
        self.stats.initial_violations = len(self.violations(routes))
        nets_by_name = {net.name: net for net in nets}
        # Stage 1: rechoose from the fractional support.
        for _pass in range(max_rechoose_passes):
            violated = self.violations(routes)
            if not violated:
                break
            changed = False
            overflow_edges = set(violated)
            for net_name, route in sorted(routes.items()):
                touching = route.edges & overflow_edges
                if not touching:
                    continue
                best_key = None
                best_gain = 0.0
                current_overflow = self._route_overflow(routes, net_name, route)
                for key, _weight in solution.support(net_name):
                    candidate = _route_from_key(net_name, key)
                    if candidate.edges == route.edges:
                        continue
                    overflow = self._route_overflow(routes, net_name, candidate)
                    gain = current_overflow - overflow
                    if gain > best_gain + 1e-12:
                        best_gain = gain
                        best_key = key
                if best_key is not None:
                    routes[net_name] = _route_from_key(net_name, best_key)
                    self.stats.rechosen_nets += 1
                    changed = True
                    overflow_edges = set(self.violations(routes))
                    if not overflow_edges:
                        break
            if not changed:
                break
        # Stage 2: fresh reroutes around remaining overflows.
        violated = self.violations(routes)
        if violated:
            for net_name, route in sorted(routes.items()):
                if not (route.edges & set(violated)):
                    continue
                fresh = self._fresh_route(nets_by_name.get(net_name), violated)
                if fresh is not None:
                    routes[net_name] = fresh
                    self.stats.fresh_reroutes += 1
                violated = self.violations(routes)
                if not violated:
                    break
        self.stats.final_violations = len(self.violations(routes))
        return routes

    def _route_overflow(
        self,
        routes: Dict[str, GlobalRoute],
        net_name: str,
        candidate: GlobalRoute,
    ) -> float:
        """Total overflow if ``net_name`` used ``candidate``."""
        load = self._edge_load(
            {name: r for name, r in routes.items() if name != net_name}
        )
        width = self.model.net_width(net_name)
        total = 0.0
        for edge, used in load.items():
            extra = width + candidate.extra_space.get(edge, 0.0) if edge in candidate.edges else 0.0
            over = used + extra - self.graph.capacity(edge)
            if over > 1e-9:
                total += over
        for edge in candidate.edges:
            if edge not in load:
                over = width + candidate.extra_space.get(edge, 0.0) - self.graph.capacity(edge)
                if over > 1e-9:
                    total += over
        return total

    def _fresh_route(
        self, net: Optional[Net], violated: Dict[Edge, float]
    ) -> Optional[GlobalRoute]:
        if net is None:
            return None
        penalty = 1000.0

        def edge_cost(net_name: str, edge: Edge) -> Tuple[float, float]:
            length = max(self.graph.edge_length(edge), self.graph.tile_size // 4)
            cost = float(length)
            if edge in violated:
                cost += penalty * self.graph.tile_size
            return cost, 0.0

        result = path_composition_steiner_tree(
            self.graph, net.name, self.graph.net_terminals(net), edge_cost
        )
        if result is None:
            return None
        return GlobalRoute(net.name, result.edges, result.extra_space)
