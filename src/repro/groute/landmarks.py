"""Goal orientation with landmarks (Goldberg & Harrelson [2005]).

The paper's Steiner oracle runs Dijkstra "with various well-known
speed-up techniques, including a variant of goal-orientation with
landmarks" (Sec. 2.2).  The ALT idea: precompute exact distances from a
few *landmark* nodes; by the triangle inequality,

    dist(v, t)  >=  |dist(L, t) - dist(L, v)|

for every landmark L, so the maximum over landmarks is an admissible,
consistent potential that - unlike the plain l1 bound - sees blockages
and priced congestion structure.

Landmark distances are computed under a fixed *lower-bound* edge metric
(the unpriced lengths with minimal via costs).  Since Algorithm 2's
prices only ever grow above 1, the lower-bound metric under-estimates
every priced search, keeping the potential admissible in all phases.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.groute.graph import GlobalRoutingGraph, Node
from repro.util.heap import AddressableHeap

INFINITY = float("inf")


class LandmarkOracle:
    """ALT potentials over the global routing graph."""

    def __init__(
        self,
        graph: GlobalRoutingGraph,
        landmark_count: int = 4,
        lower_bound_cost: Optional[Callable[[object], float]] = None,
    ) -> None:
        self.graph = graph
        if lower_bound_cost is None:
            # Unpriced lower bound: pure geometric length; vias free (any
            # non-negative via price only increases real costs).
            lower_bound_cost = lambda edge: float(graph.edge_length(edge))
        self._cost = lower_bound_cost
        self.landmarks: List[Node] = []
        self._dist: List[Dict[Node, float]] = []
        self._select_landmarks(landmark_count)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _sssp(self, source: Node) -> Dict[Node, float]:
        dist: Dict[Node, float] = {source: 0.0}
        heap = AddressableHeap()
        heap.push(source, 0.0)
        while heap:
            node, d = heap.pop()
            if d > dist.get(node, INFINITY):
                continue
            for neighbour, edge in self.graph.neighbors(node):
                if self.graph.capacity(edge) <= 0:
                    continue
                nd = d + self._cost(edge)
                if nd < dist.get(neighbour, INFINITY):
                    dist[neighbour] = nd
                    heap.push(neighbour, nd)
        return dist

    def _select_landmarks(self, count: int) -> None:
        """Farthest-point landmark selection (the standard ALT heuristic).

        Start from a corner node, then repeatedly add the node farthest
        from all chosen landmarks.
        """
        corner = (0, 0, self.graph.chip.stack.bottom)
        self.landmarks = [corner]
        self._dist = [self._sssp(corner)]
        while len(self.landmarks) < count:
            best_node: Optional[Node] = None
            best_distance = -1.0
            for node, distance in self._dist[-1].items():
                minimum = min(
                    table.get(node, INFINITY) for table in self._dist
                )
                if minimum != INFINITY and minimum > best_distance:
                    best_distance = minimum
                    best_node = node
            if best_node is None:
                break
            self.landmarks.append(best_node)
            self._dist.append(self._sssp(best_node))

    # ------------------------------------------------------------------
    # Potentials
    # ------------------------------------------------------------------
    def potential_to(self, targets: Sequence[Node]) -> Callable[[Node], float]:
        """An admissible consistent potential towards ``targets``.

        pi(v) = max_L max(0, min_t dist(L, t) - dist(L, v),
                              dist(L, v) - max_t dist(L, t))
        using both triangle-inequality directions; the min/max over the
        target set keeps multi-target searches admissible.
        """
        target_bounds: List[Tuple[float, float]] = []
        for table in self._dist:
            values = [table.get(t, INFINITY) for t in targets]
            finite = [v for v in values if v != INFINITY]
            if not finite:
                target_bounds.append((INFINITY, -1.0))
            else:
                target_bounds.append((min(finite), max(finite)))

        tables = self._dist

        def potential(node: Node) -> float:
            best = 0.0
            for table, (t_min, t_max) in zip(tables, target_bounds):
                d = table.get(node)
                if d is None or t_min == INFINITY:
                    continue
                forward = t_min - d  # dist(L,t) - dist(L,v) <= dist(v,t)
                backward = d - t_max  # dist(L,v) - dist(L,t) <= dist(v,t)
                if forward > best:
                    best = forward
                if backward > best:
                    best = backward
            return best

        return potential

    def lower_bound(self, source: Node, target: Node) -> float:
        """Best landmark lower bound on dist(source, target)."""
        pi = self.potential_to([target])
        return pi(source)
