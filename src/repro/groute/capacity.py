"""Global routing edge capacities (Sec. 2.5).

For an in-layer edge e = {(v, l), (w, l)} the capacity counts the usable
track-graph tracks between the tile centers c_v and c_w in preferred
direction, after extending each blockage by a small constant in preferred
direction; partially blocked tracks contribute fractionally (usable
vertices divided by the vertices per track).

Via edge capacities count the via positions placeable in the tile under
minimum distance constraints.  Refinements:

* intra-tile connections of longer nets are estimated by their Steiner
  length and the capacities reduced accordingly (Wei et al. [2012]);
* stacked vias crossing a layer reduce its capacity sublinearly, using
  the precomputed table of :mod:`repro.groute.stackedvias`;
* on layers whose via pads extend to neighbouring tracks, via capacity is
  scaled down accordingly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.chip.design import Chip
from repro.geometry.interval import merge_intervals
from repro.geometry.rect import Rect
from repro.groute.graph import Edge, GlobalRoutingGraph, canonical_edge
from repro.grid.tracks import TrackPlan
from repro.tech.layers import Direction

#: Blockages are extended by this many pitches in preferred direction
#: before counting usable track length (Sec. 2.5).
BLOCKAGE_EXTENSION_PITCHES = 1


def _layer_obstacles(
    chip: Chip,
    layer: int,
    extra_obstacles: Optional[Sequence[Tuple[int, Rect]]] = None,
) -> List[Rect]:
    from repro.grid.tracks import obstacle_clearance

    extension = BLOCKAGE_EXTENSION_PITCHES * chip.stack[layer].pitch
    horizontal = chip.stack.direction(layer) is Direction.HORIZONTAL
    obstacles = []
    shapes = list(chip.obstruction_shapes())
    if extra_obstacles:
        # Pre-routed wiring (e.g. single-tile nets routed before capacity
        # estimation, Sec. 2.5) consumes track capacity like blockages.
        shapes += [(l, r, None) for l, r in extra_obstacles]
    for obs_layer, rect, _owner in shapes:
        if obs_layer != layer:
            continue
        margin_cross = obstacle_clearance(chip, layer, rect)
        if horizontal:
            obstacles.append(rect.expanded(extension + margin_cross, margin_cross))
        else:
            obstacles.append(rect.expanded(margin_cross, extension + margin_cross))
    return obstacles


def _usable_fraction(
    obstacles: Sequence[Rect],
    track_coord: int,
    span_lo: int,
    span_hi: int,
    horizontal: bool,
) -> float:
    """Fraction of the track segment [span_lo, span_hi] not blocked."""
    if span_hi <= span_lo:
        return 0.0
    blocked: List[Tuple[int, int]] = []
    for rect in obstacles:
        if horizontal:
            if rect.y_lo <= track_coord <= rect.y_hi:
                lo, hi = max(rect.x_lo, span_lo), min(rect.x_hi, span_hi)
                if lo < hi:
                    blocked.append((lo, hi))
        else:
            if rect.x_lo <= track_coord <= rect.x_hi:
                lo, hi = max(rect.y_lo, span_lo), min(rect.y_hi, span_hi)
                if lo < hi:
                    blocked.append((lo, hi))
    if not blocked:
        return 1.0
    blocked_length = sum(hi - lo for lo, hi in merge_intervals(blocked))
    return max(0.0, 1.0 - blocked_length / (span_hi - span_lo))


def estimate_capacities(
    graph: GlobalRoutingGraph,
    plan: TrackPlan,
    via_pad_scaling: float = 0.5,
    extra_obstacles: Optional[Sequence[Tuple[int, Rect]]] = None,
) -> None:
    """Fill ``graph.capacities`` for all edges.

    ``extra_obstacles``: already-routed wiring to account for, e.g. the
    pre-routed single-tile nets of Sec. 2.5.
    """
    chip = graph.chip
    obstacles_per_layer = {
        layer.index: _layer_obstacles(chip, layer.index, extra_obstacles)
        for layer in chip.stack
    }
    for edge in graph.edges():
        if graph.is_via_edge(edge):
            graph.capacities[edge] = _via_capacity(
                graph, plan, edge, via_pad_scaling
            )
        else:
            graph.capacities[edge] = _wire_capacity(
                graph, plan, edge, obstacles_per_layer
            )


def _wire_capacity(
    graph: GlobalRoutingGraph,
    plan: TrackPlan,
    edge: Edge,
    obstacles_per_layer: Dict[int, List[Rect]],
) -> float:
    (ax, ay, z) = edge[0]
    (bx, by, _z) = edge[1]
    chip = graph.chip
    horizontal = chip.stack.direction(z) is Direction.HORIZONTAL
    center_a = graph.tile_center(ax, ay)
    center_b = graph.tile_center(bx, by)
    tile_a = graph.tile_rect(ax, ay)
    if horizontal:
        span_lo, span_hi = sorted((center_a[0], center_b[0]))
        cross_lo, cross_hi = tile_a.y_lo, tile_a.y_hi
    else:
        span_lo, span_hi = sorted((center_a[1], center_b[1]))
        cross_lo, cross_hi = tile_a.x_lo, tile_a.x_hi
    obstacles = obstacles_per_layer[z]
    capacity = 0.0
    for track_coord in plan.layer_tracks(z):
        if not (cross_lo <= track_coord <= cross_hi):
            continue
        capacity += _usable_fraction(
            obstacles, track_coord, span_lo, span_hi, horizontal
        )
    return capacity


def _via_capacity(
    graph: GlobalRoutingGraph,
    plan: TrackPlan,
    edge: Edge,
    via_pad_scaling: float,
) -> float:
    """Vias from layer l to l+1 placeable simultaneously in the tile."""
    (tx, ty, z_lo) = min(edge, key=lambda n: n[2])
    z_hi = z_lo + 1
    tile = graph.tile_rect(tx, ty)
    chip = graph.chip

    def tracks_in_tile(z: int) -> int:
        horizontal = chip.stack.direction(z) is Direction.HORIZONTAL
        lo, hi = (tile.y_lo, tile.y_hi) if horizontal else (tile.x_lo, tile.x_hi)
        return sum(1 for t in plan.layer_tracks(z) if lo <= t <= hi)

    crossings = tracks_in_tile(z_lo) * tracks_in_tile(z_hi)
    # Minimum via-cut distance halves the usable crossings; pads that
    # extend towards neighbouring tracks scale further (Sec. 2.5).
    return crossings * 0.5 * via_pad_scaling


def apply_intra_tile_reduction(
    graph: GlobalRoutingGraph, nets: Sequence, steiner_length
) -> None:
    """Reduce capacities for intra-tile wiring of longer nets (Sec. 2.5).

    ``steiner_length(points)`` estimates the Steiner length of a point
    set; the portion of a net's Steiner tree that stays within a tile
    consumes track capacity there even though global routing sees no
    edge usage.
    """
    chip = graph.chip
    for net in nets:
        per_tile: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        for pin in net.pins:
            x, y = pin.reference_point()
            per_tile.setdefault(graph.tile_of_point(x, y), []).append((x, y))
        for (tx, ty), points in per_tile.items():
            if len(points) < 2:
                continue
            intra_length = steiner_length(points)
            if intra_length <= 0:
                continue
            tracks_consumed = intra_length / max(graph.tile_size, 1)
            for z in chip.stack.indices[:2]:
                node = (tx, ty, z)
                for _other, edge in graph.neighbors(node):
                    if graph.is_via_edge(edge):
                        continue
                    current = graph.capacities.get(edge, 0.0)
                    graph.capacities[edge] = max(
                        0.0, current - tracks_consumed / 2.0
                    )


def apply_stacked_via_reduction(graph: GlobalRoutingGraph) -> None:
    """Account for stacked vias crossing intermediate layers (Sec. 2.5).

    Uses the precomputed sublinear reduction table: for each tile and
    intermediate layer, the expected number of through-stacks (estimated
    from the via capacities above and below) reduces the layer's wire
    capacities.
    """
    from repro.groute.stackedvias import capacity_reduction

    chip = graph.chip
    for z in chip.stack.indices[1:-1]:
        for tx in range(graph.nx):
            for ty in range(graph.ny):
                below = graph.capacities.get(
                    canonical_edge((tx, ty, z - 1), (tx, ty, z)), 0.0
                )
                above = graph.capacities.get(
                    canonical_edge((tx, ty, z), (tx, ty, z + 1)), 0.0
                )
                expected_stacks = int(min(below, above) * 0.25)
                if expected_stacks <= 0:
                    continue
                reduction = capacity_reduction(expected_stacks)
                node = (tx, ty, z)
                for _other, edge in graph.neighbors(node):
                    if graph.is_via_edge(edge):
                        continue
                    current = graph.capacities.get(edge, 0.0)
                    graph.capacities[edge] = max(0.0, current - reduction)
