"""Global router facade (Sec. 2).

Pipeline: build graph -> estimate capacities -> run the resource sharing
FPTAS -> randomized rounding -> rip-up and reroute -> emit per-net
corridors for detailed routing.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.chip.design import Chip
from repro.chip.net import Net
from repro.droute.area import RoutingArea
from repro.geometry.rect import Rect
from repro.groute.capacity import (
    apply_intra_tile_reduction,
    apply_stacked_via_reduction,
    estimate_capacities,
)
from repro.groute.graph import GlobalRoute, GlobalRoutingGraph
from repro.groute.resources import ResourceModel
from repro.groute.rounding import RoundingPostprocessor, RoundingStats
from repro.groute.sharing import FractionalSolution, ResourceSharingSolver
from repro.obs import OBS
from repro.grid.tracks import TrackPlan, build_track_plan
from repro.steiner.rsmt import steiner_length


class GlobalRoutingResult:
    """Routes, corridors and statistics of one global routing run."""

    def __init__(self, chip: Chip, graph: GlobalRoutingGraph) -> None:
        self.chip = chip
        self.graph = graph
        self.routes: Dict[str, GlobalRoute] = {}
        self.local_nets: Set[str] = set()
        self.fractional: Optional[FractionalSolution] = None
        self.rounding_stats: Optional[RoundingStats] = None
        self.total_runtime = 0.0
        self.sharing_runtime = 0.0
        self.rounding_runtime = 0.0

    # -- metrics --------------------------------------------------------
    def wire_length(self) -> int:
        return sum(route.wire_length(self.graph) for route in self.routes.values())

    def via_count(self) -> int:
        return sum(route.via_count() for route in self.routes.values())

    def net_wire_length(self, net_name: str) -> int:
        route = self.routes.get(net_name)
        return route.wire_length(self.graph) if route else 0

    # -- corridors (Sec. 4.4) -------------------------------------------
    def corridor(self, net_name: str, margin_tiles: int = 0) -> RoutingArea:
        """Routing area from the net's global route: its tiles on their
        layers plus the same tiles on neighbouring layers.

        Degenerate nets deliberately get the unrestricted area: a net
        with no recorded route (local nets, oracle failures) and a net
        whose route has no edges (all terminals in one graph node, e.g. a
        single-terminal net) both return :meth:`RoutingArea.everywhere`,
        so the detailed router is never boxed into a corridor that the
        global stage never computed.
        """
        route = self.routes.get(net_name)
        if route is None or not route.edges:
            return RoutingArea.everywhere()
        boxes: List[Tuple[int, Rect]] = []
        stack = self.chip.stack
        for node in route.nodes():
            tx, ty, z = node
            rect = self.graph.tile_rect(tx, ty)
            if margin_tiles:
                rect = rect.expanded(margin_tiles * self.graph.tile_size)
            for layer in (z - 1, z, z + 1):
                if stack.has_layer(layer):
                    boxes.append((layer, rect))
        return RoutingArea.from_boxes(boxes)

    def corridor_detour(self, net_name: str) -> float:
        """Route length over the net's Steiner lower bound (drives the
        pi_H / pi_P choice of Sec. 4.1).

        Clamped to >= 1.0, which also pins the degenerate cases: an
        unrouted net has length 0 and a single-terminal net has Steiner
        lower bound 0 (clamped to 1), so both report a detour factor of
        exactly 1.0 — "no detour known" — rather than raising.
        """
        net = self.chip.net(net_name)
        lower = max(steiner_length(net.terminal_points()), 1)
        length = self.net_wire_length(net_name)
        return max(1.0, length / lower)

    def corridors(self, margin_tiles: int = 0) -> Dict[str, RoutingArea]:
        return {
            name: self.corridor(name, margin_tiles) for name in self.routes
        }

    def summary(self) -> Dict[str, float]:
        return {
            "nets": len(self.routes),
            "local_nets": len(self.local_nets),
            "wire_length": self.wire_length(),
            "vias": self.via_count(),
            "runtime": self.total_runtime,
            "sharing_runtime": self.sharing_runtime,
            "rounding_runtime": self.rounding_runtime,
            "oracle_calls": self.fractional.oracle_calls if self.fractional else 0,
            "oracle_reuses": self.fractional.oracle_reuses if self.fractional else 0,
            "max_congestion": self.fractional.max_congestion if self.fractional else 0.0,
            "fresh_reroutes": (
                self.rounding_stats.fresh_reroutes if self.rounding_stats else 0
            ),
            "final_violations": (
                self.rounding_stats.final_violations if self.rounding_stats else 0
            ),
        }


class GlobalRouter:
    """Resource-sharing global router (Sec. 2)."""

    def __init__(
        self,
        chip: Chip,
        tile_size: Optional[int] = None,
        phases: int = 40,
        epsilon: float = 1.0,
        objective: str = "wirelength",
        optimize_spacing: bool = True,
        seed: Optional[int] = None,
        track_plan: Optional[TrackPlan] = None,
        intra_tile_reduction: bool = True,
        stacked_via_reduction: bool = True,
        capacity_scale: float = 1.0,
        extra_obstacles=None,
        fault_injector=None,
        session=None,
    ) -> None:
        self.chip = chip
        #: Optional :class:`repro.engine.session.RoutingSession`.  When
        #: set, results are written into the session's per-net records
        #: and the final sharing duals are stored for ECO warm starts.
        self.session = session
        self.graph = GlobalRoutingGraph(chip, tile_size)
        if session is not None and track_plan is None:
            track_plan = session.plan
        self.plan = track_plan if track_plan is not None else build_track_plan(chip)
        estimate_capacities(self.graph, self.plan, extra_obstacles=extra_obstacles)
        if capacity_scale != 1.0:
            # Simulates denser designs: the paper's chips pack 50-100
            # wires per tile at high utilization, our synthetic ones are
            # sparse; scaling capacities reproduces the congestion regime.
            for edge in list(self.graph.capacities):
                self.graph.capacities[edge] *= capacity_scale
        if intra_tile_reduction:
            apply_intra_tile_reduction(self.graph, chip.nets, steiner_length)
        if stacked_via_reduction:
            apply_stacked_via_reduction(self.graph)
        self.model = ResourceModel(
            self.graph, chip.nets, objective=objective,
            optimize_spacing=optimize_spacing,
        )
        self.phases = phases
        self.epsilon = epsilon
        self.seed = seed
        self.fault_injector = fault_injector
        if session is not None:
            session.attach_global_router(self)

    def run(
        self, nets: Optional[Sequence[Net]] = None, deadline=None
    ) -> GlobalRoutingResult:
        start = time.time()
        if nets is None:
            nets = self.chip.nets
        result = GlobalRoutingResult(self.chip, self.graph)
        routable: List[Net] = []
        for net in nets:
            if self.graph.is_local_net(net):
                # Removed from global routing (Sec. 2.1); the detailed
                # router handles it inside (a slightly enlarged) tile.
                result.local_nets.add(net.name)
            else:
                routable.append(net)
        solver = ResourceSharingSolver(
            self.graph, self.model, phases=self.phases, epsilon=self.epsilon,
            fault_injector=self.fault_injector,
        )
        sharing_start = time.time()
        with OBS.trace(
            "groute.sharing", nets=len(routable), phases=self.phases
        ):
            fractional = solver.solve(routable, deadline=deadline)
        result.sharing_runtime = time.time() - sharing_start
        result.fractional = fractional
        rounding_start = time.time()
        postprocessor = RoundingPostprocessor(
            self.graph, self.model, self.seed,
            fault_injector=self.fault_injector,
        )
        with OBS.trace("groute.rounding"):
            routes = postprocessor.round(fractional)
            routes = postprocessor.repair(routes, fractional, routable)
        result.rounding_runtime = time.time() - rounding_start
        result.rounding_stats = postprocessor.stats
        result.routes = routes
        result.total_runtime = time.time() - start
        if self.session is not None:
            self.session.store_sharing_prices(fractional.prices)
            self.session.ingest_global(result)
        if OBS.enabled:
            OBS.count("groute.nets_routed", len(result.routes))
            OBS.count("groute.local_nets", len(result.local_nets))
            stats = result.rounding_stats
            if stats is not None:
                OBS.count("groute.fresh_reroutes", stats.fresh_reroutes)
                OBS.gauge("groute.final_violations", stats.final_violations)
        return result

    def run_incremental(
        self,
        nets: Sequence[Net],
        warm_start: Optional[Dict[object, float]] = None,
        phases: Optional[int] = None,
        frozen_routes: Optional[Dict[str, GlobalRoute]] = None,
        deadline=None,
    ) -> GlobalRoutingResult:
        """Re-route only ``nets``, warm-starting from previous duals.

        ``warm_start`` seeds the solver's log-prices (a previous
        :attr:`FractionalSolution.prices` converted by the session), so
        the sharing loop starts where the chip's congestion already is
        and far fewer phases suffice.  ``frozen_routes`` — the unchanged
        nets' global routes — enter rounding repair as fixed load: the
        repair stage accounts for their edge usage when it resolves
        overflows but never rechooses or reroutes them (they have no
        fractional support and no Net object in the repair call).
        """
        start = time.time()
        result = GlobalRoutingResult(self.chip, self.graph)
        routable: List[Net] = []
        for net in nets:
            if self.graph.is_local_net(net):
                result.local_nets.add(net.name)
            else:
                routable.append(net)
        solver = ResourceSharingSolver(
            self.graph, self.model,
            phases=phases if phases is not None else self.phases,
            epsilon=self.epsilon,
            fault_injector=self.fault_injector,
            initial_log_prices=warm_start,
        )
        sharing_start = time.time()
        with OBS.trace(
            "groute.sharing", nets=len(routable), phases=solver.phases,
            incremental=True,
        ):
            fractional = solver.solve(routable, deadline=deadline)
        result.sharing_runtime = time.time() - sharing_start
        result.fractional = fractional
        rounding_start = time.time()
        postprocessor = RoundingPostprocessor(
            self.graph, self.model, self.seed,
            fault_injector=self.fault_injector,
        )
        with OBS.trace("groute.rounding", incremental=True):
            routes = postprocessor.round(fractional)
            merged = dict(frozen_routes or {})
            merged.update(routes)
            merged = postprocessor.repair(merged, fractional, routable)
        result.rounding_runtime = time.time() - rounding_start
        result.rounding_stats = postprocessor.stats
        # Only the re-routed nets belong to this result; the frozen
        # routes were load, not output.
        dirty_names = {net.name for net in nets}
        result.routes = {
            name: route for name, route in merged.items() if name in dirty_names
        }
        result.total_runtime = time.time() - start
        if self.session is not None:
            self.session.store_sharing_prices(fractional.prices)
        if OBS.enabled:
            OBS.count("groute.nets_routed", len(result.routes))
            OBS.count("groute.local_nets", len(result.local_nets))
        return result
