"""Resources and convex consumption functions (Sec. 2.1, Fig. 1).

Every constraint and the objective are *resources*.  A net using edge e
with allocated space w(n, e) + s consumes:

* **space** on e: gamma(s) = w + s (linear, the solid line of Fig. 1);
* **power**: coupling capacitance decreases convexly with extra space
  (dashed line): gamma(s) = length * (floor + coupling / (1 + s/pitch));
* **yield loss**: the probability of a short between neighbouring wires
  also falls convexly with spacing (dotted line): same shape, different
  coefficients.

Edge capacities are resources too (one per edge).  The oracle price of an
edge (Eq. 1) minimizes the priced resource consumption over the extra
space s >= 0, which this module solves in closed form: the objective is
A*s + B/(1 + s/pitch) + const with A, B >= 0, minimized at
s* = pitch * (sqrt(B / (A * pitch)) - 1), clamped to [0, s_max].
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.chip.net import Net
from repro.groute.graph import Edge, GlobalRoutingGraph

#: Names of the global (non-edge) resources.
GLOBAL_RESOURCES = ("wirelength", "power", "yield")


def space_usage(width: float, s: float) -> float:
    """Space consumed on an edge: w(n, e) + s (track units)."""
    return width + s


def power_usage(length: float, s: float, pitch: float = 1.0) -> float:
    """Power consumption of a wire with extra space s (Fig. 1, dashed).

    Convex and decreasing in s: the area capacitance stays, the coupling
    part decays with separation.
    """
    return length * (0.4 + 0.6 / (1.0 + s / pitch))

def yield_loss(length: float, s: float, pitch: float = 1.0) -> float:
    """Expected yield loss (critical area) of a wire (Fig. 1, dotted).

    Shorts between neighbouring wires dominate; their critical area
    shrinks roughly quadratically with spacing.
    """
    return length * (0.1 + 0.9 / (1.0 + s / pitch) ** 2)


class ResourceModel:
    """Capacities, global resource bounds and priced edge costs.

    ``objective`` picks which global resource is the optimization target
    (the paper optimizes wirelength / power / yield; constraints get hard
    bounds, the objective gets a guessed achievable bound, Sec. 2.1).
    """

    def __init__(
        self,
        graph: GlobalRoutingGraph,
        nets: Sequence[Net],
        objective: str = "wirelength",
        optimize_spacing: bool = True,
        max_extra_space: float = 2.0,
        bounds: Optional[Dict[str, float]] = None,
    ) -> None:
        if objective not in GLOBAL_RESOURCES:
            raise ValueError(f"unknown objective {objective}")
        self.graph = graph
        self.nets = list(nets)
        self.objective = objective
        self.optimize_spacing = optimize_spacing
        self.max_extra_space = max_extra_space
        self._net_width: Dict[str, float] = {
            net.name: (2.0 if net.wire_type == "wide" else 1.0) for net in self.nets
        }
        self.bounds: Dict[str, float] = dict(bounds or {})
        if not self.bounds:
            self.bounds = self._default_bounds()
        # Per-net detour bounds (Sec. 2.1: "constraints bounding, for
        # instance, detours of certain nets"): each bounded net gets its
        # own resource "detour:<net>" whose consumption is the net's
        # wirelength and whose capacity is the allowed total length.
        self.detour_resources: Dict[str, float] = {}
        for net in self.nets:
            if net.detour_bound is not None:
                name = f"detour:{net.name}"
                self.detour_resources[net.name] = float(net.detour_bound)
                self.bounds[name] = float(net.detour_bound)

    # ------------------------------------------------------------------
    # Bounds
    # ------------------------------------------------------------------
    def _default_bounds(self) -> Dict[str, float]:
        """Guess achievable global resource bounds (Sec. 2.1).

        Based on the sum of half-perimeter wirelengths with slack; the
        paper adapts the guess if needed (binary search), which
        :class:`repro.groute.sharing.ResourceSharingSolver` also supports.
        """
        hpwl = sum(net.half_perimeter() for net in self.nets)
        hpwl = max(hpwl, 1)
        return {
            "wirelength": 1.35 * hpwl,
            "power": 1.35 * power_usage(hpwl, 0.0),
            "yield": 1.35 * yield_loss(hpwl, 0.0),
        }

    def net_width(self, net_name: str) -> float:
        return self._net_width.get(net_name, 1.0)

    # ------------------------------------------------------------------
    # Resource usage of a route element
    # ------------------------------------------------------------------
    def edge_usage(
        self, net_name: str, edge: Edge, s: float
    ) -> Dict[str, float]:
        """gamma^r(s) for all resources r touched by (net, edge)."""
        width = self.net_width(net_name)
        length = self.graph.edge_length(edge)
        usage = {"space": space_usage(width, s)}
        if length > 0:
            usage["wirelength"] = float(length) * width
            usage["power"] = power_usage(length, s)
            usage["yield"] = yield_loss(length, s)
        else:
            # Vias: count them in the wirelength objective with an
            # equivalent-length penalty, and in yield (vias are defect
            # prone, Sec. 1.1).
            via_penalty = float(self.graph.tile_size) / 4.0
            usage["wirelength"] = via_penalty * width
            usage["yield"] = 0.2 * via_penalty
        if net_name in self.detour_resources:
            usage[f"detour:{net_name}"] = usage["wirelength"]
        return usage

    # ------------------------------------------------------------------
    # Priced edge cost with optimal extra space (Eq. 1)
    # ------------------------------------------------------------------
    def priced_edge_cost(
        self,
        net_name: str,
        edge: Edge,
        edge_price: float,
        global_prices: Dict[str, float],
    ) -> Tuple[float, float]:
        """(cost, s*) of using ``edge``: Eq. 1 minimized over s >= 0.

        ``edge_price`` is y_{r(e)} / u(e); ``global_prices`` maps each
        global resource to y_r / u^r.
        """
        width = self.net_width(net_name)
        length = float(self.graph.edge_length(edge))
        capacity = max(self.graph.capacity(edge), 1e-9)
        price_space = edge_price / capacity
        usage0 = self.edge_usage(net_name, edge, 0.0)
        base = price_space * width
        base += global_prices.get("wirelength", 0.0) * usage0["wirelength"]
        detour_key = f"detour:{net_name}"
        if detour_key in usage0:
            base += global_prices.get(detour_key, 0.0) * usage0[detour_key]
        if length <= 0 or not self.optimize_spacing:
            cost = base
            for resource in ("power", "yield"):
                if resource in usage0:
                    cost += global_prices.get(resource, 0.0) * usage0[resource]
            return cost, 0.0
        # Power + yield decay terms: p(s) = length * (a + b / (1 + s)),
        # y(s) = length * (c + d / (1 + s)^2); minimize
        #   price_space * s + P*b*length/(1+s) + Y*d*length/(1+s)^2.
        # A closed form exists for each term alone; with both we use a
        # short golden-section search on the (convex) sum.
        price_power = global_prices.get("power", 0.0)
        price_yield = global_prices.get("yield", 0.0)

        def objective(s: float) -> float:
            value = price_space * s
            value += price_power * power_usage(length, s)
            value += price_yield * yield_loss(length, s)
            return value

        s_star = _minimize_convex(objective, 0.0, self.max_extra_space)
        return base + objective(s_star), s_star

    def usage_summary(
        self, routes: Dict[str, "object"]
    ) -> Dict[str, float]:
        """Total global resource usage of a set of GlobalRoute objects."""
        totals = {name: 0.0 for name in GLOBAL_RESOURCES}
        for route in routes.values():
            for edge in route.edges:
                s = route.extra_space.get(edge, 0.0)
                usage = self.edge_usage(route.net_name, edge, s)
                for name in GLOBAL_RESOURCES:
                    if name in usage:
                        totals[name] += usage[name]
        return totals


def _minimize_convex(
    objective: Callable[[float], float], lo: float, hi: float, tol: float = 1e-3
) -> float:
    """Golden-section minimum of a convex 1-D function on [lo, hi]."""
    inv_phi = (math.sqrt(5.0) - 1.0) / 2.0
    a, b = lo, hi
    c = b - inv_phi * (b - a)
    d = a + inv_phi * (b - a)
    fc, fd = objective(c), objective(d)
    while b - a > tol:
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - inv_phi * (b - a)
            fc = objective(c)
        else:
            a, c, fc = c, d, fd
            d = a + inv_phi * (b - a)
            fd = objective(d)
    best = (a + b) / 2.0
    for candidate in (lo, best):
        if objective(candidate) <= objective(best):
            best = candidate
    return best
