"""Resource-sharing global routing demo (Sec. 2, Fig. 1).

Shows the min-max resource sharing algorithm working with the convex
resource model: the gamma curves of Fig. 1, the effect of extra-space
assignment on power/yield resources, and the phase-by-phase convergence
of the maximum congestion.

Run:  python examples/resource_sharing_demo.py
"""

from repro.chip.generator import ChipSpec, generate_chip
from repro.grid.tracks import build_track_plan
from repro.groute.capacity import estimate_capacities
from repro.groute.graph import GlobalRoutingGraph
from repro.groute.resources import (
    ResourceModel,
    power_usage,
    space_usage,
    yield_loss,
)
from repro.groute.sharing import ResourceSharingSolver


def print_fig1_curves() -> None:
    print("Fig. 1 - resource consumption vs extra space s (unit length):")
    print(f"  {'s':>4} {'space':>7} {'power':>7} {'yield':>7}")
    for s10 in range(0, 21, 4):
        s = s10 / 10.0
        print(
            f"  {s:4.1f} {space_usage(1.0, s):7.2f} "
            f"{power_usage(1.0, s):7.3f} {yield_loss(1.0, s):7.3f}"
        )


def main() -> None:
    print_fig1_curves()

    chip = generate_chip(
        ChipSpec("sharing", rows=3, row_width_cells=7, net_count=14, seed=13)
    )
    plan = build_track_plan(chip)
    graph = GlobalRoutingGraph(chip)
    estimate_capacities(graph, plan)
    model = ResourceModel(graph, chip.nets)
    routable = [n for n in chip.nets if not graph.is_local_net(n)]

    print(f"\nChip: {chip.stats()}")
    print(f"Global graph: {graph.nx} x {graph.ny} tiles x {len(chip.stack)} layers")

    print("\nConvergence of max congestion (lambda) with phases t:")
    for phases in (1, 3, 6, 12, 25):
        solver = ResourceSharingSolver(graph, model, phases=phases)
        fractional = solver.solve(routable)
        print(
            f"  t={phases:3}: lambda={fractional.max_congestion:.3f}  "
            f"oracle calls={fractional.oracle_calls:4}  "
            f"reuses={fractional.oracle_reuses}"
        )

    # Extra-space assignment: compare priced costs with / without the
    # convex power term.
    solver = ResourceSharingSolver(graph, model, phases=12)
    fractional = solver.solve(routable)
    spaces = []
    for net_name, weights in fractional.weights.items():
        for (edges, extra), _w in weights.items():
            spaces.extend(extra)
    if spaces:
        used = [s for s in spaces if s > 0]
        print(
            f"\nExtra-space assignment (Sec. 2.1): {len(used)}/{len(spaces)} "
            f"edge uses got s > 0, mean s = "
            f"{sum(spaces) / len(spaces):.2f} tracks"
        )


if __name__ == "__main__":
    main()
