"""Interval-based path search demo (Sec. 4.1, Fig. 6).

Runs the same long-distance on-track connection with Algorithm 4
(interval labelling) and with classical node labelling, comparing label
counts, heap pops and the (identical) optimal costs - the paper's
"at least factor 6" labelling reduction.

Run:  python examples/interval_search_demo.py
"""

from repro.chip.generator import ChipSpec, generate_chip
from repro.droute.area import RoutingArea
from repro.droute.future_cost import FutureCostH, SearchCosts
from repro.droute.intervals import GraphView
from repro.droute.pathsearch import interval_path_search, node_path_search
from repro.droute.space import RoutingSpace


def main() -> None:
    chip = generate_chip(
        ChipSpec("interval", rows=3, row_width_cells=8, net_count=8, seed=3)
    )
    space = RoutingSpace(chip)
    graph = space.graph
    costs = SearchCosts()
    area = RoutingArea.everywhere()

    scenarios = [
        ("same-track straight", (5, 2, 0), (5, 2, len(graph.crosses[5]) - 1)),
        ("across the die", (1, 1, 1),
         (6, len(graph.tracks[6]) - 2, len(graph.crosses[6]) - 2)),
        ("layer hop", (2, 3, 5), (5, 4, 10)),
    ]
    print(f"{'scenario':<22} {'cost':>7} {'pops(I)':>8} {'pops(N)':>8} "
          f"{'labels(I)':>10} {'labels(N)':>10} {'ratio':>6}")
    for name, s, t in scenarios:
        pi = FutureCostH(graph, [t], costs)
        view_i = GraphView(space, "default", area, forced_vertices={s, t})
        result_i = interval_path_search(view_i, {s: 0}, {t}, costs, pi)
        view_n = GraphView(space, "default", area, forced_vertices={s, t})
        result_n = node_path_search(view_n, {s: 0}, {t}, costs, pi)
        assert result_i.cost == result_n.cost, "both searches must agree"
        ratio = result_n.stats.pops / max(result_i.stats.pops, 1)
        print(
            f"{name:<22} {result_i.cost:>7} {result_i.stats.pops:>8} "
            f"{result_n.stats.pops:>8} {result_i.stats.labels_pushed:>10} "
            f"{result_n.stats.labels_pushed:>10} {ratio:>5.1f}x"
        )
    print("\nIdentical costs; the interval search settles whole")
    print("zero-reduced-cost runs per pop (the J_I(delta) frontier of")
    print("Algorithm 4), so pops track bends, not distance.")


if __name__ == "__main__":
    main()
