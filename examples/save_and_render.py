"""Persist a routed chip and render its layers (repro.io + repro.viz).

Routes a small chip, writes the instance and the routing result in the
text interchange format, reloads both, and prints an ASCII rendering of
two layers - the workflow a downstream user needs to inspect results
outside Python.

Run:  python examples/save_and_render.py
"""

import os
import tempfile

from repro.chip.generator import ChipSpec, generate_chip
from repro.droute.router import DetailedRouter
from repro.droute.space import RoutingSpace
from repro.io import (
    read_chip_file,
    read_routes_file,
    write_chip_file,
    write_routes_file,
)
from repro.viz import render_layer


def main() -> None:
    chip = generate_chip(
        ChipSpec("saveme", rows=2, row_width_cells=5, net_count=6, seed=12)
    )
    space = RoutingSpace(chip)
    result = DetailedRouter(space).run()
    print(f"routed {len(result.routed)}/{len(chip.nets)} nets, "
          f"{result.wire_length} dbu, {result.via_count} vias")

    with tempfile.TemporaryDirectory() as tmp:
        chip_path = os.path.join(tmp, "chip.txt")
        routes_path = os.path.join(tmp, "routes.txt")
        write_chip_file(chip, chip_path)
        write_routes_file(space.routes, routes_path, chip.name)
        print(f"\nwrote {os.path.getsize(chip_path)} bytes of chip text, "
              f"{os.path.getsize(routes_path)} bytes of routes text")

        reloaded_chip = read_chip_file(chip_path)
        reloaded_routes = read_routes_file(routes_path)
        assert sorted(reloaded_routes) == sorted(space.routes)
        print(f"reloaded {len(reloaded_chip.nets)} nets, "
              f"{len(reloaded_routes)} routes - roundtrip OK")

    for layer in (1, 2):
        print()
        print(render_layer(space, layer, width=90))


if __name__ == "__main__":
    main()
