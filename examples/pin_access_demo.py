"""Pin access demo (Sec. 4.3, Fig. 7).

Builds the paper's Fig. 7 situation - three pins of different nets behind
a blockage bar - and contrasts a greedy first-fit access choice (which
can wall in the last pin) with the conflict-free solution found by
branch-and-bound with destructive bounding.

Run:  python examples/pin_access_demo.py
"""

from repro.chip.cells import CellTemplate, CircuitInstance
from repro.chip.design import Chip
from repro.chip.net import Net, Pin
from repro.droute.pinaccess import PinAccessPlanner
from repro.droute.space import RoutingSpace
from repro.geometry.rect import Rect
from repro.tech.stacks import example_rules, example_stack, example_wiretypes


def build_fig7_chip() -> Chip:
    stack = example_stack(4)
    pitch = 80
    template = CellTemplate(
        "FIG7",
        width=10 * pitch,
        height=960,
        pins={
            "P1": [(1, Rect(150, 430, 190, 470))],
            "P2": [(1, Rect(390, 430, 430, 470))],
            "P3": [(1, Rect(630, 430, 670, 470))],
        },
        obstructions=[(1, Rect(60, 530, 740, 570))],
    )
    inst = CircuitInstance(0, template, 1000, 1000)
    pins = {
        name: Pin(f"0/{name}", inst.pin_shapes(name), circuit_id=0)
        for name in ("P1", "P2", "P3")
    }
    nets = [
        Net("a", [pins["P1"], Pin("x", [(1, Rect(4000, 1000, 4040, 1040))])]),
        Net("b", [pins["P2"], Pin("y", [(1, Rect(4000, 2000, 4040, 2040))])]),
        Net("c", [pins["P3"], Pin("z", [(1, Rect(4000, 3000, 4040, 3040))])]),
    ]
    return Chip(
        "fig7", Rect(0, 0, 6000, 6000), stack, example_rules(4),
        example_wiretypes(stack), circuits=[inst], nets=nets,
    )


def greedy_solution(planner, catalogues):
    """First-fit: each pin takes its shortest non-conflicting path."""
    chosen = {}
    for name in sorted(catalogues):
        for path in catalogues[name]:
            if not any(
                planner.paths_conflict(path, other) for other in chosen.values()
            ):
                chosen[name] = path
                break
    return chosen


def main() -> None:
    chip = build_fig7_chip()
    space = RoutingSpace(chip)
    planner = PinAccessPlanner(space)
    circuit = chip.circuits[0]
    pins = [pin for net in chip.nets for pin in net.pins if pin.circuit_id == 0]
    catalogues = planner.circuit_catalogues(circuit, pins)

    print("Catalogue sizes per pin:")
    for name in sorted(catalogues):
        paths = catalogues[name]
        print(f"  {name}: {len(paths)} paths, endpoints "
              f"{[space.graph.position(p.endpoint) for p in paths[:3]]}...")

    greedy = greedy_solution(planner, catalogues)
    print(f"\nGreedy first-fit covers {len(greedy)}/{len(catalogues)} pins")
    for name, path in sorted(greedy.items()):
        print(f"  {name} -> endpoint {space.graph.position(path.endpoint)}")

    solution = planner.conflict_free_solution(catalogues)
    print(f"\nConflict-free B&B covers {len(solution)}/{len(catalogues)} pins")
    for name, path in sorted(solution.items()):
        ex, ey, ez = space.graph.position(path.endpoint)
        via = " +via" if path.via is not None else ""
        print(f"  {name} -> ({ex}, {ey}, M{ez}){via}, length {path.length}")

    if len(solution) > len(greedy):
        print("\n=> The branch-and-bound recovered pins the greedy choice "
              "walled in (the Fig. 7 failure mode).")
    else:
        print("\n=> Both covered all pins here; the B&B additionally "
              "optimizes endpoint spreading and continuations.")


if __name__ == "__main__":
    main()
