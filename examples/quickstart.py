"""Quickstart: route a synthetic chip with the BonnRoute flow.

Generates a small standard-cell instance, runs global routing (min-max
resource sharing), detailed routing (interval-based path search with
conflict-free pin access) and the DRC cleanup, then prints a Table-I
style metrics row.

Run:  python examples/quickstart.py
"""

from repro.chip.generator import ChipSpec, generate_chip
from repro.flow.bonnroute import BonnRouteFlow


def main() -> None:
    spec = ChipSpec("quickstart", rows=3, row_width_cells=6, net_count=10, seed=7)
    chip = generate_chip(spec)
    print(f"Generated {chip}: {chip.stats()}")

    flow = BonnRouteFlow(chip, gr_phases=15, seed=1)
    result = flow.run()

    gr = result.global_result
    print("\n--- Global routing (Sec. 2) ---")
    print(f"  nets routed globally : {len(gr.routes)} (+{len(gr.local_nets)} local)")
    print(f"  fractional congestion: {gr.fractional.max_congestion:.3f}")
    print(f"  GR wirelength        : {gr.wire_length()} dbu, vias: {gr.via_count()}")
    print(f"  sharing runtime      : {gr.sharing_runtime:.2f}s "
          f"(rounding+R&R: {gr.rounding_runtime:.3f}s)")

    dr = result.detailed_result
    print("\n--- Detailed routing (Sec. 4) ---")
    print(f"  routed: {len(dr.routed)}/{len(chip.nets)}  opens: {dr.opens}")
    print(f"  wirelength: {dr.wire_length} dbu  vias: {dr.via_count}")
    print(f"  path searches: {dr.stats.searches}  "
          f"fast-grid hit rate: {result.space.fast_grid.hit_rate:.1%}")

    print("\n--- Table I row (this chip) ---")
    for key, value in result.metrics.as_dict().items():
        print(f"  {key:12}: {value}")
    if result.cleanup_report is not None:
        print(f"  cleanup     : {result.cleanup_report.summary()}")


if __name__ == "__main__":
    main()
