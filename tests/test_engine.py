"""Engine-layer tests: RoutingSession, ECO changes, incremental reroute.

Covers the incremental-routing acceptance criteria: a seeded ECO pass
editing <= 5 % of the nets re-routes only the dirty/conflict set
(verified through the ``engine.nets_rerouted`` counter and the ECO
pass's ``droute.net`` span count being >= 5x smaller than the full
flow's), stays DRC-clean relative to a from-scratch reroute of the
edited chip, and lands within 2 % of it on netlength and via count.
Plus unit coverage for the change vocabulary, dirty tracking,
conflict/capacity propagation, session checkpointing (schema v2) and
the dirty-subset partition assignment.
"""

import pytest

from repro.baseline.cleanup import DrcCleanup
from repro.chip.generator import ChipSpec, generate_chip
from repro.chip.net import Net, Pin
from repro.drc.checker import DrcChecker
from repro.droute.partition import assign_nets_to_rounds, partition_sequence
from repro.engine.changes import (
    AddNet,
    MovePin,
    RemoveNet,
    ResizeBlockage,
    change_from_dict,
    changes_from_json,
    changes_to_json,
)
from repro.engine.dirty import (
    REASON_ADDED,
    REASON_CAPACITY,
    REASON_CONFLICT,
    REASON_EDITED,
    REASON_RIPUP,
    DirtyTracker,
)
from repro.engine.session import (
    STATUS_PENDING,
    STATUS_ROUTED,
    RoutingSession,
)
from repro.geometry.rect import Rect
from repro.groute.graph import GlobalRoute
from repro.io.checkpoint import (
    CHECKPOINT_VERSION,
    SCHEMA_NAME,
    CheckpointError,
    build_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.obs import OBS
from repro.tech.wiring import StickFigure

MINI_SPEC = ChipSpec("engmini", rows=2, row_width_cells=4, net_count=6, seed=3)


@pytest.fixture(autouse=True)
def _clean_singleton():
    """The process-wide OBS singleton must not leak state across tests."""
    OBS.reset()
    OBS.enabled = False
    yield
    OBS.reset()
    OBS.enabled = False


@pytest.fixture
def mini_session():
    return RoutingSession(generate_chip(MINI_SPEC))


class TestDirtyTracker:
    def test_first_reason_sticks(self):
        tracker = DirtyTracker()
        assert tracker.mark("a", REASON_EDITED)
        assert not tracker.mark("a", REASON_CONFLICT, propagated=True)
        assert tracker.reason("a") == REASON_EDITED
        assert tracker.propagated_names() == set()

    def test_direct_mark_upgrades_propagated(self):
        tracker = DirtyTracker()
        tracker.mark("a", REASON_CONFLICT, propagated=True)
        assert tracker.propagated_names() == {"a"}
        tracker.mark("a", REASON_EDITED)
        assert tracker.reason("a") == REASON_EDITED
        assert tracker.propagated_names() == set()

    def test_discard_and_histogram(self):
        tracker = DirtyTracker()
        tracker.mark("a", REASON_EDITED)
        tracker.mark("b", REASON_RIPUP, propagated=True)
        tracker.mark("c", REASON_RIPUP, propagated=True)
        assert tracker.reasons_histogram() == {
            REASON_EDITED: 1, REASON_RIPUP: 2,
        }
        tracker.discard("b")
        assert tracker.names() == {"a", "c"}
        assert tracker.propagated_names() == {"c"}
        assert len(tracker) == 2 and "a" in tracker and bool(tracker)
        tracker.clear()
        assert not tracker


class TestChangeSerialization:
    def test_round_trip_all_ops(self):
        net = Net(
            "eco_new",
            [
                Pin("p0", [(1, Rect(100, 100, 140, 140))]),
                Pin("p1", [(1, Rect(500, 100, 540, 140))]),
            ],
            wire_type="default",
            weight=2.0,
        )
        changes = [
            AddNet(net),
            RemoveNet("gone"),
            MovePin("n1", "0/A", 40, -80),
            ResizeBlockage(2, expand=120),
            ResizeBlockage(0, rect=Rect(0, 0, 400, 80)),
        ]
        parsed = changes_from_json(changes_to_json(changes))
        assert [c.op for c in parsed] == [c.op for c in changes]
        assert parsed[0].net.name == "eco_new"
        assert parsed[0].net.pins[0].shapes == [(1, Rect(100, 100, 140, 140))]
        assert parsed[0].net.weight == 2.0
        assert parsed[1].net_name == "gone"
        assert (parsed[2].dx, parsed[2].dy) == (40, -80)
        assert parsed[3].expand == 120 and parsed[3].rect is None
        assert parsed[4].rect == Rect(0, 0, 400, 80)

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown ECO op"):
            change_from_dict({"op": "teleport_net"})
        with pytest.raises(ValueError, match="changes"):
            changes_from_json({"edits": []})

    def test_resize_wants_exactly_one_spec(self):
        with pytest.raises(ValueError):
            ResizeBlockage(0)
        with pytest.raises(ValueError):
            ResizeBlockage(0, rect=Rect(0, 0, 1, 1), expand=5)

    def test_bad_pin_shape_rejected(self):
        with pytest.raises(ValueError, match="pin shape"):
            change_from_dict(
                {"op": "add_net", "net": "x",
                 "pins": [{"name": "p", "shapes": [[1, 2, 3]]}]}
            )


class TestApplyChanges:
    def test_add_net_marks_added(self, mini_session):
        session = mini_session
        chip = session.chip
        before = len(chip.nets)
        net = Net(
            "eco_new",
            [
                Pin("p0", [(1, Rect(420, 420, 460, 460))]),
                Pin("p1", [(1, Rect(1220, 420, 1260, 460))]),
            ],
        )
        count = session.apply_changes([AddNet(net)])
        assert count == len(session.dirty)
        assert len(chip.nets) == before + 1
        assert chip.net("eco_new") is net
        assert "eco_new" in session.records
        assert session.dirty.reason("eco_new") == REASON_ADDED
        assert "eco_new" not in session.dirty.propagated_names()

    def test_move_pin_translates_shapes(self, mini_session):
        session = mini_session
        net = session.chip.nets[0]
        pin = net.pins[-1]
        old_shapes = list(pin.shapes)
        session.apply_changes([MovePin(net.name, pin.name, 40, -40)])
        assert pin.shapes == [
            (layer, rect.translated(40, -40)) for layer, rect in old_shapes
        ]
        assert pin.circuit_id is None
        assert session.dirty.reason(net.name) == REASON_EDITED

    def test_move_pin_conflict_propagates(self, mini_session):
        session = mini_session
        net = session.chip.nets[0]
        pin = net.pins[-1]
        victim = session.chip.nets[1].name
        layer, rect = pin.shapes[0]
        dx = 160
        target = rect.translated(dx, 0)
        mid_y = (target.y_lo + target.y_hi) // 2
        # Routed wiring of another net right where the pin lands.
        session.space.add_wire(
            victim,
            "default",
            StickFigure(layer, target.x_lo, mid_y, target.x_hi + 200, mid_y),
        )
        session.apply_changes([MovePin(net.name, pin.name, dx, 0)])
        assert victim in session.dirty
        assert session.dirty.reason(victim) == REASON_CONFLICT
        assert victim in session.dirty.propagated_names()

    def test_move_pin_unknown_pin_raises(self, mini_session):
        net = mini_session.chip.nets[0]
        with pytest.raises(KeyError, match="no pin"):
            mini_session.apply_changes([MovePin(net.name, "nope", 1, 1)])

    def test_remove_net_drops_record_and_wiring(self, mini_session):
        session = mini_session
        name = session.chip.nets[0].name
        session.space.add_wire(
            name, "default", StickFigure(1, 400, 440, 800, 440)
        )
        assert session.space.routes[name].wires
        session.dirty.mark(name, REASON_EDITED)
        session.apply_changes([RemoveNet(name)])
        with pytest.raises(KeyError):
            session.chip.net(name)
        assert name not in session.records
        assert name not in session.dirty
        assert name not in session.space.routes
        # Its pin shapes left the grid: nothing conflicts there any more.
        assert all(
            name not in session.space.conflicting_nets(layer, rect)
            for net in session.chip.nets
            for layer, rect in [(1, session.chip.die)]
        )

    def test_remove_unknown_net_raises_before_mutation(self, mini_session):
        records_before = dict(mini_session.records)
        with pytest.raises(KeyError):
            mini_session.apply_changes([RemoveNet("ghost")])
        assert mini_session.records == records_before

    def test_resize_blockage_marks_geometry_and_capacity(self, mini_session):
        session = mini_session
        chip = session.chip
        blockage = chip.blockages[0]
        graph = session.graph
        # A net whose (fabricated) global route crosses a tile edge
        # incident to the blockage: capacity propagation must catch it.
        cap_victim = chip.nets[2].name
        node = (*graph.tile_of_point(blockage.rect.x_lo, blockage.rect.y_lo),
                blockage.layer)
        _other, edge = next(iter(graph.neighbors(node)))
        session.record(cap_victim).global_route = GlobalRoute(
            cap_victim, {edge}
        )
        # A net with wiring inside the blockage's new extent: geometry
        # conflict propagation must catch it too.
        geo_victim = chip.nets[3].name
        mid_y = (blockage.rect.y_lo + blockage.rect.y_hi) // 2
        session.space.add_wire(
            geo_victim,
            "default",
            StickFigure(
                blockage.layer, blockage.rect.x_lo + 40, mid_y,
                blockage.rect.x_lo + 400, mid_y,
            ),
        )
        old_rect = blockage.rect
        session.apply_changes([ResizeBlockage(0, expand=40)])
        assert blockage.rect == old_rect.expanded(40)
        assert session.dirty.reason(cap_victim) == REASON_CAPACITY
        assert session.dirty.reason(geo_victim) == REASON_CONFLICT
        assert {cap_victim, geo_victim} <= session.dirty.propagated_names()
        assert session._capacities_stale

    def test_resize_blockage_bad_index(self, mini_session):
        with pytest.raises(IndexError, match="no blockage"):
            mini_session.apply_changes(
                [ResizeBlockage(len(mini_session.chip.blockages), expand=1)]
            )


class TestSessionState:
    def test_state_round_trip(self, mini_session):
        session = mini_session
        names = [net.name for net in session.chip.nets]
        session.record(names[0]).status = STATUS_ROUTED
        session.record(names[0]).prerouted = True
        session.record(names[1]).is_local = True
        session.record(names[1]).corridor_detour = 1.25
        session.record(names[1]).access_pins = ["0/A", "1/Z"]
        session.dirty.mark(names[2], REASON_CAPACITY, propagated=True)
        state = session.session_state()

        other = RoutingSession(generate_chip(MINI_SPEC))
        other.restore_state(state)
        assert other.record(names[0]).status == STATUS_ROUTED
        assert other.record(names[0]).prerouted
        assert other.record(names[1]).is_local
        assert other.record(names[1]).corridor_detour == 1.25
        assert other.record(names[1]).access_pins == ["0/A", "1/Z"]
        assert other.dirty.names() == {names[2]}
        assert other.dirty.reason(names[2]) == REASON_CAPACITY
        assert other.session_state() == state


class TestCheckpointVersioning:
    def test_v1_checkpoint_rejected_with_clear_error(self, tmp_path):
        path = str(tmp_path / "old.json")
        save_checkpoint(path, {"version": 1, "stage": "global", "chip": "c"})
        with pytest.raises(CheckpointError, match="pre-engine"):
            load_checkpoint(path)

    def test_foreign_schema_rejected(self, tmp_path):
        path = str(tmp_path / "foreign.json")
        save_checkpoint(
            path, {"schema": "other-tool", "version": CHECKPOINT_VERSION}
        )
        with pytest.raises(CheckpointError, match="schema"):
            load_checkpoint(path)

    def test_v2_round_trip_carries_session_payload(self, tmp_path, mini_session):
        session = mini_session
        name = session.chip.nets[0].name
        session.record(name).status = STATUS_ROUTED
        session.dirty.mark(name, REASON_EDITED)
        checkpoint = build_checkpoint(
            stage="detailed",
            chip_name=session.chip.name,
            seed=1,
            tile_size=session.graph.tile_size,
            routes={},
            global_routes={},
            local_nets=[],
            prerouted=[],
            session=session.session_state(),
        )
        assert checkpoint["schema"] == SCHEMA_NAME
        assert checkpoint["version"] == CHECKPOINT_VERSION
        path = str(tmp_path / "ckpt.json")
        save_checkpoint(path, checkpoint)
        loaded = load_checkpoint(path, chip_name=session.chip.name, seed=1)
        assert loaded is not None
        restored = RoutingSession(generate_chip(MINI_SPEC))
        restored.restore_state(loaded["session"])
        assert restored.record(name).status == STATUS_ROUTED
        assert restored.dirty.names() == {name}
        assert restored.session_state() == session.session_state()


class TestPartitionDirtySubset:
    def test_subset_assignment_resolves_names_and_dedups(self):
        chip = generate_chip(
            ChipSpec("engpart", rows=3, row_width_cells=6, net_count=10, seed=7)
        )
        sequence = partition_sequence(chip, threads=4)
        subset = [net.name for net in chip.nets[:3]]
        mixed = subset + [chip.net(subset[0]), subset[1]]  # dupes + Net objects
        rounds = assign_nets_to_rounds(chip, sequence, nets=mixed)
        assigned = [net.name for round_nets in rounds for _r, net in round_nets]
        assert sorted(assigned) == sorted(subset)

    def test_default_still_covers_every_net(self):
        chip = generate_chip(
            ChipSpec("engpart2", rows=2, row_width_cells=4, net_count=6, seed=2)
        )
        sequence = partition_sequence(chip, threads=2)
        rounds = assign_nets_to_rounds(chip, sequence)
        assigned = [net.name for round_nets in rounds for _r, net in round_nets]
        assert sorted(assigned) == sorted(net.name for net in chip.nets)


# ----------------------------------------------------------------------
# End-to-end ECO acceptance: full route once, edit <= 5 % of the nets,
# re-route incrementally, compare against a from-scratch run.
# ----------------------------------------------------------------------
ECO_SPEC = ChipSpec("ecotest", rows=3, row_width_cells=6, net_count=20, seed=7)


def _pick_eco_edit(chip, space):
    """A deterministic pin move that stays inside the die.

    Chosen against the *routed* space: of the pins with room to move,
    take the one whose destination conflicts with the fewest routed
    nets, so the ECO touches a genuinely small neighbourhood (ties
    broken by name for determinism).
    """
    dx = 240
    candidates = []
    for net in chip.nets:
        for pin in net.pins:
            box = pin.bounding_box()
            if box.x_hi + dx > chip.die.x_hi - 80:
                continue
            conflicts = set()
            for layer, rect in pin.shapes:
                conflicts |= space.conflicting_nets(layer, rect.translated(dx, 0))
            conflicts.discard(net.name)
            candidates.append((len(conflicts), net.name, pin.name))
    assert candidates, "no pin can move right by 240 dbu"
    _count, net_name, pin_name = min(candidates)
    return MovePin(net_name, pin_name, dx, 0)


class EcoScenario:
    """Shared measurements of the full-flow + ECO + from-scratch runs."""


@pytest.fixture(scope="module")
def eco(tmp_path_factory):
    from repro.flow.bonnroute import BonnRouteFlow

    scenario = EcoScenario()
    chip = generate_chip(ECO_SPEC)
    checkpoint_path = str(tmp_path_factory.mktemp("eco") / "ckpt.json")

    OBS.reset()
    OBS.configure(enabled=True)
    result = BonnRouteFlow(
        chip, gr_phases=6, seed=1, cleanup=False,
        checkpoint_path=checkpoint_path,
    ).run()
    scenario.full_droute_spans = int(
        OBS.span_totals.get("droute.net", [0, 0.0])[0]
    )
    scenario.full_failed = set(result.detailed_result.failed)
    session = result.session
    scenario.session = session
    scenario.chip = chip
    scenario.checkpoint_path = checkpoint_path
    scenario.state_after_full = session.session_state()

    change = _pick_eco_edit(chip, session.space)
    scenario.change = change

    OBS.reset()
    OBS.configure(enabled=True)
    scenario.dirty_count = session.apply_changes([change])
    scenario.report = session.reroute(cleanup=False)
    scenario.eco_droute_spans = int(
        OBS.span_totals.get("droute.net", [0, 0.0])[0]
    )
    scenario.eco_counters = dict(OBS.counters)
    OBS.reset()
    OBS.enabled = False
    # The cleanup finisher runs outside the span measurement (it is the
    # same finisher for both flows and must not distort the span ratio).
    DrcCleanup(session.space).run()
    scenario.eco_netlength = session.space.total_wire_length()
    scenario.eco_vias = session.space.total_via_count()
    scenario.eco_drc_errors = DrcChecker(session.space).run().error_count

    # From-scratch reference: the same edit applied to a fresh chip,
    # then a full (non-incremental) route of it.
    chip2 = generate_chip(ECO_SPEC)
    scratch = RoutingSession(chip2, gr_phases=6, seed=1)
    scratch.apply_changes(
        [MovePin(change.net_name, change.pin_name, change.dx, change.dy)]
    )
    scratch_result = scratch.route(cleanup=True)
    scenario.scratch_netlength = scratch_result.space.total_wire_length()
    scenario.scratch_vias = scratch_result.space.total_via_count()
    scenario.scratch_drc_errors = scratch_result.metrics.errors
    scenario.scratch_failed = set(scratch_result.detailed_result.failed)
    return scenario


class TestEcoAcceptance:
    def test_full_flow_populates_records(self, eco):
        session = eco.session
        names = {net.name for net in eco.chip.nets}
        assert names <= set(session.records)
        routed = session.routed_names()
        assert routed, "full flow routed nothing"
        for name in routed:
            rec = session.records[name]
            assert rec.status == STATUS_ROUTED
            assert rec.corridor is not None or rec.prerouted
        assert not session.dirty.names() - eco.full_failed

    def test_edit_is_at_most_five_percent(self, eco):
        edited_nets = {eco.change.net_name}
        assert len(edited_nets) <= max(1, len(eco.chip.nets) * 5 // 100)

    def test_dirty_set_is_small_and_reported(self, eco):
        report = eco.report
        assert report.nets_total == len(eco.chip.nets)
        assert report.nets_dirty == eco.dirty_count
        assert 1 <= report.nets_dirty <= report.nets_total // 4
        assert report.dirty_reasons.get(REASON_EDITED, 0) >= 1
        assert report.ripups_propagated >= 0

    def test_reroutes_only_the_dirty_set(self, eco):
        report = eco.report
        # Everything rerouted entered through an edit or propagation,
        # never the frozen remainder of the chip.
        assert report.nets_rerouted <= report.nets_dirty + report.ripups_propagated
        assert report.nets_rerouted <= report.nets_total // 4
        assert eco.eco_counters.get("engine.nets_rerouted") == report.nets_rerouted
        assert eco.eco_counters.get("engine.changes_applied") == 1
        assert eco.eco_counters.get("engine.nets_dirty", 0) >= 1

    def test_eco_is_five_times_cheaper_than_full_flow(self, eco):
        assert eco.eco_droute_spans >= 1
        assert eco.full_droute_spans >= 5 * eco.eco_droute_spans, (
            f"ECO pass routed {eco.eco_droute_spans} nets vs "
            f"{eco.full_droute_spans} in the full flow"
        )

    def test_eco_result_is_drc_clean(self, eco):
        assert eco.report.nets_failed <= len(eco.scratch_failed)
        assert eco.eco_drc_errors <= eco.scratch_drc_errors

    def test_eco_metrics_match_from_scratch_within_two_percent(self, eco):
        assert eco.eco_netlength == pytest.approx(
            eco.scratch_netlength, rel=0.02
        )
        assert eco.eco_vias == pytest.approx(eco.scratch_vias, rel=0.02)

    def test_dirty_state_cleared_after_reroute(self, eco):
        assert not eco.session.dirty

    def test_checkpoint_is_v2_with_session_payload(self, eco):
        loaded = load_checkpoint(
            eco.checkpoint_path, chip_name=eco.chip.name, seed=1
        )
        assert loaded is not None
        assert loaded["schema"] == SCHEMA_NAME
        assert loaded["version"] == CHECKPOINT_VERSION
        payload = loaded["session"]
        assert payload is not None
        restored = RoutingSession(generate_chip(ECO_SPEC))
        restored.restore_state(payload)
        full = eco.state_after_full["records"]
        for name, record in (payload.get("records") or {}).items():
            assert restored.record(name).as_dict() == record
            assert record["status"] == full[name]["status"]
