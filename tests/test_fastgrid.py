"""Tests for the fast grid cache (Sec. 3.6)."""

import pytest

from repro.chip.generator import ChipSpec, generate_chip
from repro.droute.space import RoutingSpace
from repro.geometry.rect import Rect
from repro.grid.shapegrid import RipupLevel
from repro.tech.wiring import StickFigure


@pytest.fixture(scope="module")
def space():
    spec = ChipSpec("fgtest", rows=2, row_width_cells=4, net_count=4, seed=3)
    return RoutingSpace(generate_chip(spec))


def _some_vertex(space, z=3):
    graph = space.graph
    t = len(graph.tracks[z]) // 2
    c = len(graph.crosses[z]) // 2
    return (z, t, c)


class TestWords:
    def test_word_has_four_entries(self, space):
        word = space.fast_grid.word("default", _some_vertex(space))
        assert len(word) == 4

    def test_word_cached(self, space):
        fast = space.fast_grid
        vertex = _some_vertex(space)
        fast.word("default", vertex)
        misses = fast.misses
        fast.word("default", vertex)
        assert fast.misses == misses
        assert fast.hits > 0

    def test_free_space_usable(self, space):
        vertex = _some_vertex(space, z=5)
        assert space.fast_grid.vertex_usable("default", vertex, "wire")
        assert space.fast_grid.vertex_usable("default", vertex, "jog")

    def test_wide_type_layer_restriction(self, space):
        vertex = _some_vertex(space, z=1)
        # "wide" is not allowed on layer 1 at all.
        assert not space.fast_grid.vertex_usable("wide", vertex, "wire")

    def test_batch_matches_individual(self, space):
        fast = space.fast_grid
        z, t = 3, 1
        fast.ensure_words("default", z, t, 0, 10)
        for c in range(0, 11):
            cached = fast.cached_word("default", z, t, c)
            fresh = fast._compute_word(fast.wire_types["default"], (z, t, c))
            assert cached == fresh, f"batched word differs at c={c}"


class TestInvalidation:
    def test_shape_add_invalidates(self):
        spec = ChipSpec("fginv", rows=2, row_width_cells=4, net_count=4, seed=3)
        space = RoutingSpace(generate_chip(spec))
        graph = space.graph
        z = 3
        t = len(graph.tracks[z]) // 2
        c = len(graph.crosses[z]) // 2
        vertex = (z, t, c)
        assert space.fast_grid.vertex_usable("default", vertex, "wire")
        x, y, _ = graph.position(vertex)
        # Drop a foreign wire exactly through the vertex.
        space.add_wire("blockernet", "default", StickFigure(z, x - 200, y, x + 200, y))
        assert not space.fast_grid.vertex_usable("default", vertex, "wire")
        # Removal restores usability.
        space.remove_wire("blockernet", StickFigure(z, x - 200, y, x + 200, y))
        assert space.fast_grid.vertex_usable("default", vertex, "wire")

    def test_ripup_levels_in_word(self):
        spec = ChipSpec("fgrip", rows=2, row_width_cells=4, net_count=4, seed=3)
        space = RoutingSpace(generate_chip(spec))
        graph = space.graph
        z = 3
        vertex = (z, len(graph.tracks[z]) // 2, len(graph.crosses[z]) // 2)
        x, y, _ = graph.position(vertex)
        space.add_wire(
            "softnet", "default", StickFigure(z, x - 200, y, x + 200, y),
            ripup_level=int(RipupLevel.NORMAL),
        )
        fast = space.fast_grid
        assert not fast.vertex_usable("default", vertex, "wire")
        assert fast.vertex_usable(
            "default", vertex, "wire", ripup_level=int(RipupLevel.NORMAL)
        )
        assert not fast.vertex_usable(
            "default", vertex, "wire", ripup_level=int(RipupLevel.CRITICAL)
        )

    def test_dirty_bits_force_segment_check(self):
        spec = ChipSpec("fgdirty", rows=2, row_width_cells=4, net_count=4, seed=3)
        space = RoutingSpace(generate_chip(spec))
        graph = space.graph
        z = 3
        t = len(graph.tracks[z]) // 2
        c = len(graph.crosses[z]) // 2
        v, w = (z, t, c), (z, t, c + 1)
        assert space.fast_grid.edge_usable("default", v, w, "wire")
        # An off-track blob strictly between the two vertices.
        xv, yv, _ = graph.position(v)
        xw, yw, _ = graph.position(w)
        mid_x = (xv + xw) // 2
        space.shape_grid.add_shape(
            "wiring", z, Rect(mid_x - 10, yv - 10, mid_x + 10, yv + 10),
            "offnet", "blob", __import__("repro.tech.wiring", fromlist=["ShapeKind"]).ShapeKind.WIRE,
            3, 20,
        )
        space.fast_grid.invalidate_region(
            z, Rect(mid_x - 10, yv - 10, mid_x + 10, yv + 10), off_track=True
        )
        assert not space.fast_grid.edge_usable("default", v, w, "wire")


class TestStats:
    def test_hit_rate_grows_with_reuse(self, space):
        fast = space.fast_grid
        for _ in range(3):
            for c in range(0, 20):
                fast.word("default", (3, 1, c))
        assert fast.hit_rate > 0.5

    def test_interval_count_positive_after_queries(self, space):
        space.fast_grid.ensure_words("default", 3, 2, 0, 30)
        assert space.fast_grid.interval_count() > 0
        # Far fewer intervals than cached vertices (compression works).
        cached = space.fast_grid.cached_word_count()
        assert space.fast_grid.interval_count() < cached

    def test_interval_count_stored_order(self):
        """interval_count walks cached words in stored (array) order.

        Filling a track out of order must not split runs: the count only
        reflects real gaps in cached coverage and legality flips, and the
        vectorized and scalar implementations agree exactly.
        """
        spec = ChipSpec("fgcount", rows=2, row_width_cells=4, net_count=4, seed=3)
        chip = generate_chip(spec)
        counts = []
        for vectorized in (True, False):
            space = RoutingSpace(chip, fast_grid_vectorized=vectorized)
            fast = space.fast_grid
            assert fast.interval_count() == 0
            # Fill [10, 14] before [0, 4]: stored-order iteration sees
            # [0, 4] then the gap then [10, 14] -> exactly 2 runs on a
            # uniformly-legal track.
            fast.ensure_words("default", 3, 1, 10, 14)
            fast.ensure_words("default", 3, 1, 0, 4)
            counts.append(fast.interval_count())
        assert counts[0] == counts[1]
        assert counts[0] >= 2  # the gap forces separate runs

    def test_disabled_grid_always_misses(self):
        spec = ChipSpec("fgoff", rows=2, row_width_cells=4, net_count=4, seed=3)
        space = RoutingSpace(generate_chip(spec), fast_grid_enabled=False)
        vertex = _some_vertex(space)
        space.fast_grid.word("default", vertex)
        space.fast_grid.word("default", vertex)
        assert space.fast_grid.hits == 0
        assert space.fast_grid.misses == 2
