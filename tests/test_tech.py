"""Tests for the technology model: layers, rules, wire/via models."""

import pytest

from repro.geometry.rect import Rect
from repro.tech.layers import Direction, Layer, LayerStack
from repro.tech.rules import RuleSet, SameNetRules, SpacingRule, ViaRule
from repro.tech.stacks import (
    LINE_END_EXTRA,
    THIN_PITCH,
    THIN_WIDTH,
    example_rules,
    example_stack,
    example_wiretypes,
)
from repro.tech.wiring import ShapeClass, ShapeKind, StickFigure, WireModel


class TestLayerStack:
    def test_alternating_directions_enforced(self):
        with pytest.raises(ValueError):
            LayerStack(
                [
                    Layer(1, Direction.HORIZONTAL, 80, 40, 40),
                    Layer(2, Direction.HORIZONTAL, 80, 40, 40),
                ]
            )

    def test_contiguous_indices_enforced(self):
        with pytest.raises(ValueError):
            LayerStack(
                [
                    Layer(1, Direction.HORIZONTAL, 80, 40, 40),
                    Layer(3, Direction.HORIZONTAL, 80, 40, 40),
                ]
            )

    def test_pitch_consistency_enforced(self):
        with pytest.raises(ValueError):
            Layer(1, Direction.HORIZONTAL, 50, 40, 40)

    def test_example_stack_structure(self):
        stack = example_stack(6)
        assert len(stack) == 6
        assert stack.direction(1) is Direction.HORIZONTAL
        assert stack.direction(2) is Direction.VERTICAL
        assert stack.via_layers() == [1, 2, 3, 4, 5]
        assert stack.horizontal_layers() == [1, 3, 5]

    def test_unknown_layer_raises(self):
        stack = example_stack(4)
        with pytest.raises(KeyError):
            stack[9]


class TestSpacingRule:
    def test_base_spacing(self):
        rule = SpacingRule(40)
        assert rule.spacing(40, 40, 0) == 40

    def test_width_dependent(self):
        rule = SpacingRule(40, table=[(80, 0, 60)])
        assert rule.spacing(40, 40, 0) == 40
        assert rule.spacing(40, 80, 0) == 60  # max width of pair governs

    def test_run_length_dependent(self):
        rule = SpacingRule(40, table=[(80, 0, 60), (80, 400, 80)])
        assert rule.spacing(80, 80, 100) == 60
        assert rule.spacing(80, 80, 400) == 80

    def test_monotone_in_width_and_runlength(self):
        rule = example_rules(6).spacing_rule(1)
        last = 0
        for width in (40, 80, 120):
            for run in (0, 200, 400, 1000):
                value = rule.spacing(width, width, run)
                assert value >= rule.spacing(40, 40, 0)
        assert rule.spacing(120, 120, 1000) >= rule.spacing(40, 40, 0)

    def test_line_end_extra(self):
        rule = SpacingRule(40, line_end_threshold=60, line_end_extra=20)
        assert rule.spacing_with_line_end(40, 40, 0, True) == 60
        assert rule.spacing_with_line_end(40, 40, 0, False) == 40

    def test_table_below_base_rejected(self):
        with pytest.raises(ValueError):
            SpacingRule(40, table=[(80, 0, 30)])

    def test_max_spacing_bounds_table(self):
        rule = example_rules(6).spacing_rule(1)
        assert rule.max_spacing() >= rule.spacing(1000, 1000, 100000)


class TestRuleSet:
    def test_lookup(self):
        rules = example_rules(6)
        assert rules.spacing_rule(1).base_spacing == 40
        assert rules.same_net_rules(1).min_segment_length == 80
        assert rules.via_rule(1) is not None
        assert rules.via_rule(99) is None

    def test_missing_layer_raises(self):
        rules = RuleSet({1: SpacingRule(40)}, {1: SameNetRules(80, 4800, 40, 40)})
        with pytest.raises(KeyError):
            rules.spacing_rule(2)


class TestStickFigure:
    def test_diagonal_rejected(self):
        with pytest.raises(ValueError):
            StickFigure(1, 0, 0, 5, 5)

    def test_normalized_order(self):
        stick = StickFigure(1, 10, 0, 2, 0)
        assert (stick.x0, stick.x1) == (2, 10)

    def test_direction_and_length(self):
        assert StickFigure(1, 0, 0, 9, 0).direction is Direction.HORIZONTAL
        assert StickFigure(1, 0, 0, 0, 9).direction is Direction.VERTICAL
        assert StickFigure(1, 0, 0, 0, 0).direction is None
        assert StickFigure(1, 0, 0, 9, 0).length == 9


class TestWireModels:
    def test_metal_shape_is_minkowski_sum(self):
        cls = ShapeClass("w40", 40)
        model = WireModel.symmetric(40, cls)
        stick = StickFigure(1, 0, 0, 100, 0)
        shape = model.metal_shape(stick, Direction.HORIZONTAL)
        assert shape == Rect(-20, -20, 120, 20)

    def test_line_end_extension_in_preferred_direction(self):
        cls = ShapeClass("w40", 40)
        model = WireModel.symmetric(40, cls, line_end_extension=20)
        stick = StickFigure(1, 0, 0, 100, 0)
        shape = model.metal_shape(stick, Direction.HORIZONTAL)
        assert shape == Rect(-40, -20, 140, 20)
        vertical = model.metal_shape(stick, Direction.VERTICAL)
        assert vertical == Rect(-20, -40, 120, 40)

    def test_jog_exempt_from_line_end(self):
        cls = ShapeClass("jog", 40, line_end_exempt=True)
        model = WireModel.symmetric(40, cls, line_end_extension=20)
        stick = StickFigure(1, 0, 0, 0, 100)
        shape = model.metal_shape(stick, Direction.HORIZONTAL)
        assert shape == Rect(-20, -20, 20, 120)


class TestWireTypes:
    def test_example_wiretypes_cover_stack(self):
        stack = example_stack(6)
        types = example_wiretypes(stack)
        default = types["default"]
        for layer in stack:
            assert default.has_layer(layer.index)
        for via_layer in stack.via_layers():
            assert default.has_via_layer(via_layer)

    def test_wide_type_layer_restriction(self):
        stack = example_stack(6)
        wide = example_wiretypes(stack)["wide"]
        assert not wide.has_layer(1)
        assert wide.has_layer(3)
        assert not wide.has_via_layer(2)  # needs layers 2 and 3
        assert wide.has_via_layer(3)

    def test_via_shapes_structure(self):
        stack = example_stack(6)
        default = example_wiretypes(stack)["default"]
        model = default.via_model(1)
        shapes = model.shapes(100, 200, 1)
        kinds = [s[4] for s in shapes]
        assert ShapeKind.VIA_PAD in kinds
        assert ShapeKind.VIA_CUT in kinds
        # Cut projection present because via layer 2 exists.
        assert ShapeKind.VIA_CUT_PROJECTION in kinds
        for kind, layer, rect, cls, shape_kind in shapes:
            assert rect.contains_point(100, 200) or rect.intersects(
                Rect(100, 200, 100, 200)
            )

    def test_wire_shape_classifies_jogs(self):
        stack = example_stack(6)
        default = example_wiretypes(stack)["default"]
        pref_stick = StickFigure(1, 0, 0, 100, 0)  # M1 is horizontal
        _, _, kind = default.wire_shape(pref_stick, stack)
        assert kind is ShapeKind.WIRE
        jog_stick = StickFigure(1, 0, 0, 0, 100)
        _, _, kind = default.wire_shape(jog_stick, stack)
        assert kind is ShapeKind.JOG

    def test_point_stick_uses_preferred_model_with_extension(self):
        stack = example_stack(6)
        default = example_wiretypes(stack)["default"]
        point = StickFigure(1, 0, 0, 0, 0)
        shape, _, _ = default.wire_shape(point, stack)
        half = THIN_WIDTH // 2
        assert shape == Rect(
            -half - LINE_END_EXTRA, -half, half + LINE_END_EXTRA, half
        )
