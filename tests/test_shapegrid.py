"""Tests for the shape grid and its cell-configuration interning."""

import pytest

from repro.geometry.rect import Rect
from repro.grid.cellconfig import CellShape, ConfigTable, EMPTY_CONFIG_ID
from repro.grid.shapegrid import RIPUP_FIXED, RipupLevel, ShapeGrid
from repro.tech.stacks import example_stack
from repro.tech.wiring import ShapeKind


def _grid(num_layers=4):
    stack = example_stack(num_layers)
    return ShapeGrid(Rect(0, 0, 8000, 8000), stack)


def _add_wire(grid, rect, net="n0", layer=1, ripup=RipupLevel.NORMAL):
    grid.add_shape(
        "wiring", layer, rect, net, "wire_w40", ShapeKind.WIRE, int(ripup), 40
    )


def _remove_wire(grid, rect, net="n0", layer=1, ripup=RipupLevel.NORMAL):
    grid.remove_shape(
        "wiring", layer, rect, net, "wire_w40", ShapeKind.WIRE, int(ripup), 40
    )


class TestConfigTable:
    def test_empty_is_zero(self):
        table = ConfigTable()
        assert table.intern(frozenset()) == EMPTY_CONFIG_ID

    def test_interning_is_stable(self):
        table = ConfigTable()
        shape = CellShape(0, 0, 10, 10, "n", "c", "wire", 3, 40)
        a = table.intern(frozenset([shape]))
        b = table.intern(frozenset([shape]))
        assert a == b
        assert len(table) == 2

    def test_with_and_without_shape(self):
        table = ConfigTable()
        shape = CellShape(0, 0, 10, 10, "n", "c", "wire", 3, 40)
        cfg = table.with_shape(EMPTY_CONFIG_ID, shape)
        assert shape in set(table.shapes(cfg))
        assert table.count(cfg, shape) == 1
        back = table.without_shape(cfg, shape)
        assert back == EMPTY_CONFIG_ID

    def test_with_shape_reference_counts(self):
        """Duplicate adds are counted: a multiset, not a set."""
        table = ConfigTable()
        shape = CellShape(0, 0, 10, 10, "n", "c", "wire", 3, 40)
        once = table.with_shape(EMPTY_CONFIG_ID, shape)
        twice = table.with_shape(once, shape)
        assert twice != once
        assert table.count(twice, shape) == 2
        # Distinct shapes are listed once regardless of count.
        assert list(table.shapes(twice)) == [shape]
        # One removal per addition restores the intermediate states.
        assert table.without_shape(twice, shape) == once
        assert table.without_shape(once, shape) == EMPTY_CONFIG_ID

    def test_shapes_order_is_insertion_independent(self):
        """shapes() yields a canonical order, whatever order built it.

        Lazily materialized rows intern configurations in a different
        sequence than an eager build; if iteration order leaked the
        build order, order-sensitive consumers of query streams would
        route differently with identical grid content.
        """
        shapes = [
            CellShape(i * 7 % 5, i * 3 % 4, 10 + i, 10 + i, f"n{i % 3}", "c", "wire", 3, 40)
            for i in range(8)
        ] + [CellShape(0, 0, 10, 10, None, "c", "blockage", 7, 40)]
        forward = ConfigTable()
        backward = ConfigTable()
        cfg_fwd = EMPTY_CONFIG_ID
        for shape in shapes:
            cfg_fwd = forward.with_shape(cfg_fwd, shape)
        cfg_bwd = EMPTY_CONFIG_ID
        for shape in reversed(shapes):
            cfg_bwd = backward.with_shape(cfg_bwd, shape)
        assert list(forward.shapes(cfg_fwd)) == list(backward.shapes(cfg_bwd))


class TestShapeGridBasics:
    def test_query_empty(self):
        grid = _grid()
        assert grid.query("wiring", 1, Rect(0, 0, 1000, 1000)) == []

    def test_add_and_query(self):
        grid = _grid()
        rect = Rect(100, 100, 500, 140)
        _add_wire(grid, rect)
        found = grid.query("wiring", 1, Rect(0, 0, 1000, 1000))
        assert len(found) >= 1
        covered = Rect.bounding([e.rect for e in found])
        assert covered == rect

    def test_query_misses_far_region(self):
        grid = _grid()
        _add_wire(grid, Rect(100, 100, 500, 140))
        assert grid.query("wiring", 1, Rect(4000, 4000, 5000, 5000)) == []

    def test_add_remove_roundtrip(self):
        grid = _grid()
        rect = Rect(100, 100, 2000, 140)
        _add_wire(grid, rect)
        _remove_wire(grid, rect)
        assert grid.query("wiring", 1, Rect(0, 0, 8000, 8000)) == []
        assert grid.interval_count("wiring", 1) == 0

    def test_long_wire_metadata_preserved(self):
        grid = _grid()
        rect = Rect(0, 100, 6000, 140)
        _add_wire(grid, rect, net="longnet")
        for entry in grid.query("wiring", 1, Rect(0, 0, 8000, 8000)):
            assert entry.net == "longnet"
            assert entry.rule_width == 40
            assert entry.shape_kind == ShapeKind.WIRE.value

    def test_two_nets_separate_entries(self):
        grid = _grid()
        _add_wire(grid, Rect(0, 100, 500, 140), net="a")
        _add_wire(grid, Rect(0, 300, 500, 340), net="b")
        nets = {e.net for e in grid.query("wiring", 1, Rect(0, 0, 1000, 1000))}
        assert nets == {"a", "b"}

    def test_fixed_shapes_not_removable(self):
        grid = _grid()
        grid.add_shape(
            "wiring", 1, Rect(0, 0, 100, 100), None, "blk", ShapeKind.BLOCKAGE,
            RIPUP_FIXED, 100,
        )
        entry = grid.query("wiring", 1, Rect(0, 0, 200, 200))[0]
        assert not entry.removable

    def test_via_layer_grid(self):
        grid = _grid()
        grid.add_shape(
            "via", 1, Rect(100, 100, 140, 140), "n0", "cut", ShapeKind.VIA_CUT,
            int(RipupLevel.NORMAL), 40,
        )
        found = grid.query("via", 1, Rect(0, 0, 500, 500))
        assert len(found) == 1

    def test_unknown_layer_raises(self):
        grid = _grid()
        with pytest.raises(KeyError):
            grid.query("wiring", 99, Rect(0, 0, 1, 1))


class TestIntervalCompression:
    def test_identical_configs_share_table_entries(self):
        grid = _grid()
        # Two identical wires on different rows should reuse configurations.
        _add_wire(grid, Rect(0, 100, 3000, 140), net="a")
        before = grid.config_count("wiring", 1)
        _add_wire(grid, Rect(0, 1060, 3000, 1100), net="a")
        after = grid.config_count("wiring", 1)
        # The second wire has the same geometry relative to cell anchors
        # when rows align to cell size; allow a small number of fresh
        # configurations for boundary cells.
        assert after <= before + 3

    def test_long_wire_compresses_to_few_intervals(self):
        grid = _grid()
        _add_wire(grid, Rect(0, 100, 6000, 140))
        # 6000 dbu at cell size 80 covers ~75 columns; interior cells have
        # identical configuration, so the row stores very few intervals.
        per_row = grid.interval_count("wiring", 1)
        assert per_row <= 8

    def test_interval_split_and_merge(self):
        grid = _grid()
        long_rect = Rect(0, 100, 6000, 140)
        _add_wire(grid, long_rect)
        base = grid.interval_count("wiring", 1)
        # Punch a different net's via pad into the middle: splits the run.
        middle = Rect(3000, 100, 3040, 140)
        grid.add_shape(
            "wiring", 1, middle, "other", "pad", ShapeKind.VIA_PAD, 3, 40
        )
        assert grid.interval_count("wiring", 1) > base
        grid.remove_shape(
            "wiring", 1, middle, "other", "pad", ShapeKind.VIA_PAD, 3, 40
        )
        assert grid.interval_count("wiring", 1) == base

    def test_query_dedupes_pieces(self):
        grid = _grid()
        rect = Rect(0, 100, 6000, 140)
        _add_wire(grid, rect)
        entries = grid.query("wiring", 1, Rect(0, 0, 8000, 8000))
        # Pieces are clipped per cell but each distinct absolute piece is
        # returned once.
        seen = set()
        for entry in entries:
            key = entry.rect.as_tuple()
            assert key not in seen
            seen.add(key)
