"""Tests for the on-track path search (Sec. 4.1, Algorithm 4).

The central invariant: the interval-based search returns exactly the
node-based Dijkstra's optimal costs, with far fewer heap pops.
"""

import random

import pytest

from repro.chip.generator import ChipSpec, generate_chip
from repro.droute.area import RoutingArea
from repro.droute.future_cost import (
    UNREACHABLE,
    FutureCostGR,
    FutureCostH,
    FutureCostP,
    SearchCosts,
)
from repro.droute.intervals import GraphView
from repro.droute.pathsearch import (
    BucketKernel,
    HeapKernel,
    interval_path_search,
    node_path_search,
    path_to_moves,
    resolve_kernel,
)
from repro.droute.space import RoutingSpace
from repro.geometry.rect import Rect
from repro.tech.wiring import StickFigure


@pytest.fixture(scope="module")
def space():
    spec = ChipSpec("pstest", rows=2, row_width_cells=5, net_count=5, seed=5)
    return RoutingSpace(generate_chip(spec))


def _run_both(space, s, t, ripup=-2):
    costs = SearchCosts()
    area = RoutingArea.everywhere()
    pi = FutureCostH(space.graph, [t], costs)
    results = []
    for search in (interval_path_search, node_path_search):
        view = GraphView(space, "default", area, ripup_level=ripup,
                         forced_vertices={s, t})
        results.append(search(view, {s: 0}, {t}, costs, pi))
    return results


class TestCorrectness:
    def test_same_layer_straight(self, space):
        z = 5
        s = (z, 1, 1)
        t = (z, 1, len(space.graph.crosses[z]) - 2)
        interval, node = _run_both(space, s, t)
        assert interval is not None and node is not None
        assert interval.cost == node.cost

    def test_cross_layer(self, space):
        s = (2, 2, 2)
        t = (5, 3, 3)
        interval, node = _run_both(space, s, t)
        assert interval is not None and node is not None
        assert interval.cost == node.cost

    def test_random_pairs_match(self, space):
        rng = random.Random(17)
        graph = space.graph
        for _ in range(15):
            z1 = rng.choice(graph.stack.indices)
            z2 = rng.choice(graph.stack.indices)
            s = (z1, rng.randrange(len(graph.tracks[z1])),
                 rng.randrange(len(graph.crosses[z1])))
            t = (z2, rng.randrange(len(graph.tracks[z2])),
                 rng.randrange(len(graph.crosses[z2])))
            if s == t:
                continue
            interval, node = _run_both(space, s, t)
            cost_i = interval.cost if interval else None
            cost_n = node.cost if node else None
            assert cost_i == cost_n, f"{s} -> {t}: {cost_i} != {cost_n}"

    def test_path_endpoints(self, space):
        s = (3, 1, 1)
        t = (3, 4, 8)
        interval, _node = _run_both(space, s, t)
        assert interval.vertices[0] == s
        assert interval.vertices[-1] == t

    def test_path_is_connected_moves(self, space):
        s = (2, 1, 1)
        t = (4, 3, 6)
        interval, _ = _run_both(space, s, t)
        moves = path_to_moves(space.graph, interval.vertices)
        assert len(moves) == len(interval.vertices) - 1
        for kind, v, w in moves:
            if kind == "via":
                assert abs(v[0] - w[0]) == 1 and v[1:] != None
            elif kind == "jog":
                assert v[0] == w[0] and abs(v[1] - w[1]) == 1 and v[2] == w[2]
            else:
                assert v[0] == w[0] and v[1] == w[1] and abs(v[2] - w[2]) == 1

    def test_unreachable_returns_none(self, space):
        # Restrict the area to two disjoint windows on one layer: no path.
        graph = space.graph
        z = 5
        x0, y0, _ = graph.position((z, 0, 0))
        area = RoutingArea.from_boxes([
            (z, Rect(x0, y0, x0 + 100, y0 + 100)),
        ])
        costs = SearchCosts()
        s = (z, 0, 0)
        t = (z, len(graph.tracks[z]) - 1, len(graph.crosses[z]) - 1)
        pi = FutureCostH(graph, [t], costs)
        view = GraphView(space, "default", area, forced_vertices={s})
        assert interval_path_search(view, {s: 0}, {t}, costs, pi) is None

    def test_source_offset_respected(self, space):
        z = 5
        s1 = (z, 1, 1)
        s2 = (z, 1, 3)
        t = (z, 1, 10)
        costs = SearchCosts()
        pi = FutureCostH(space.graph, [t], costs)
        view = GraphView(space, "default", RoutingArea.everywhere(),
                         forced_vertices={s1, s2, t})
        # Huge offset on the nearer source: the farther one wins.
        result = interval_path_search(
            view, {s1: 10 ** 9, s2: 0}, {t}, costs, pi
        )
        assert result.vertices[0] == s2


class TestEfficiency:
    def test_interval_pops_fewer(self, space):
        z = 5
        s = (z, 0, 0)
        t = (z, len(space.graph.tracks[z]) - 1, len(space.graph.crosses[z]) - 1)
        interval, node = _run_both(space, s, t)
        assert interval.stats.pops < node.stats.pops

    def test_long_straight_run_few_pops(self, space):
        """Goal-oriented straight-line search: O(1) pops, not O(distance)."""
        z = 5
        s = (z, 2, 0)
        t = (z, 2, len(space.graph.crosses[z]) - 1)
        interval, node = _run_both(space, s, t)
        assert interval.stats.pops <= 5
        assert node.stats.pops >= len(space.graph.crosses[z]) - 2


class TestBlockagesAndRipup:
    @pytest.fixture()
    def blocked_space(self):
        spec = ChipSpec("psblock", rows=2, row_width_cells=5, net_count=5, seed=5)
        space = RoutingSpace(generate_chip(spec))
        graph = space.graph
        z = 5
        t_index = 2
        y = graph.tracks[z][t_index]
        x_lo, _, _ = graph.position((z, t_index, 3))
        x_hi, _, _ = graph.position((z, t_index, 5))
        space.add_wire("blocker", "default", StickFigure(z, x_lo, y, x_hi, y))
        return space, z, t_index

    def test_search_detours_around_foreign_wire(self, blocked_space):
        space, z, t_index = blocked_space
        graph = space.graph
        s = (z, t_index, 0)
        t = (z, t_index, len(graph.crosses[z]) - 1)
        costs = SearchCosts()
        pi = FutureCostH(graph, [t], costs)
        view = GraphView(space, "default", RoutingArea.everywhere(),
                         forced_vertices={s, t})
        result = interval_path_search(view, {s: 0}, {t}, costs, pi)
        assert result is not None
        blocked = {(z, t_index, c) for c in range(3, 6)}
        assert not (set(result.vertices) & blocked)
        # Detour costs more than the straight line.
        straight = graph.crosses[z][-1] - graph.crosses[z][0]
        assert result.cost > straight

    def test_ripup_mode_crosses_at_penalty(self, blocked_space):
        space, z, t_index = blocked_space
        graph = space.graph
        s = (z, t_index, 0)
        t = (z, t_index, len(graph.crosses[z]) - 1)
        costs = SearchCosts()
        pi = FutureCostH(graph, [t], costs)
        view = GraphView(
            space, "default", RoutingArea.everywhere(),
            ripup_level=3, forced_vertices={s, t},
            ripup_base_penalty=10,
        )
        result = interval_path_search(view, {s: 0}, {t}, costs, pi)
        assert result is not None
        assert result.ripup_vertices, "expected the path to cross the blocker"

    def test_ripup_history_raises_penalty(self, blocked_space):
        space, z, t_index = blocked_space
        graph = space.graph
        s = (z, t_index, 0)
        t = (z, t_index, len(graph.crosses[z]) - 1)
        costs = SearchCosts()
        pi = FutureCostH(graph, [t], costs)

        def run(history):
            view = GraphView(
                space, "default", RoutingArea.everywhere(),
                ripup_level=3, forced_vertices={s, t},
                ripup_base_penalty=10, ripup_history=history,
            )
            return interval_path_search(view, {s: 0}, {t}, costs, pi)

        fresh = run({})
        loaded = run({v: 50 for v in fresh.ripup_vertices})
        # With heavy history the detour becomes cheaper than ripping.
        assert loaded.cost >= fresh.cost


class TestKernelEquivalence:
    """The heap and bucket kernels are interchangeable engines.

    Both break priority ties FIFO by insertion order, so they pop labels
    in the identical order and must return not just the same optimal
    cost but the *identical vertex path* on every instance.
    """

    def _instances(self, space, seed, count):
        rng = random.Random(seed)
        graph = space.graph
        out = []
        while len(out) < count:
            z1 = rng.choice(graph.stack.indices)
            z2 = rng.choice(graph.stack.indices)
            s = (z1, rng.randrange(len(graph.tracks[z1])),
                 rng.randrange(len(graph.crosses[z1])))
            t = (z2, rng.randrange(len(graph.tracks[z2])),
                 rng.randrange(len(graph.crosses[z2])))
            if s != t:
                out.append((s, t))
        return out

    def _run_kernels(self, space, s, t, search, pi_factory, ripup=-2):
        costs = SearchCosts()
        area = RoutingArea.everywhere()
        results = []
        for kernel in ("heap", "bucket"):
            view = GraphView(space, "default", area, ripup_level=ripup,
                             forced_vertices={s, t})
            pi = pi_factory(space, view, s, t, costs, area)
            results.append(
                search(view, {s: 0}, {t}, costs, pi, kernel=kernel)
            )
        return results

    @staticmethod
    def _pi_h(space, view, s, t, costs, area):
        return FutureCostH(space.graph, [t], costs)

    @staticmethod
    def _pi_gr(space, view, s, t, costs, area):
        return FutureCostGR(space.graph, [t], costs, area,
                            view=view, stop_vertices={s})

    def test_interval_equivalence_200_instances(self, space):
        """>= 200 seeded instances: identical cost and identical path."""
        for s, t in self._instances(space, seed=101, count=200):
            heap_r, bucket_r = self._run_kernels(
                space, s, t, interval_path_search, self._pi_h
            )
            assert (heap_r is None) == (bucket_r is None), f"{s} -> {t}"
            if heap_r is None:
                continue
            assert heap_r.cost == bucket_r.cost, f"{s} -> {t}"
            assert heap_r.vertices == bucket_r.vertices, f"{s} -> {t}"

    def test_interval_equivalence_under_pi_gr(self, space):
        for s, t in self._instances(space, seed=202, count=25):
            heap_r, bucket_r = self._run_kernels(
                space, s, t, interval_path_search, self._pi_gr
            )
            assert (heap_r is None) == (bucket_r is None), f"{s} -> {t}"
            if heap_r is None:
                continue
            assert heap_r.cost == bucket_r.cost, f"{s} -> {t}"
            assert heap_r.vertices == bucket_r.vertices, f"{s} -> {t}"

    def test_node_equivalence(self, space):
        for s, t in self._instances(space, seed=303, count=25):
            heap_r, bucket_r = self._run_kernels(
                space, s, t, node_path_search, self._pi_h
            )
            assert (heap_r is None) == (bucket_r is None), f"{s} -> {t}"
            if heap_r is None:
                continue
            assert heap_r.cost == bucket_r.cost, f"{s} -> {t}"
            assert heap_r.vertices == bucket_r.vertices, f"{s} -> {t}"

    def test_equivalence_with_ripup_penalties(self, space):
        for s, t in self._instances(space, seed=404, count=25):
            heap_r, bucket_r = self._run_kernels(
                space, s, t, interval_path_search, self._pi_h, ripup=3
            )
            assert (heap_r is None) == (bucket_r is None), f"{s} -> {t}"
            if heap_r is None:
                continue
            assert heap_r.cost == bucket_r.cost, f"{s} -> {t}"
            assert heap_r.vertices == bucket_r.vertices, f"{s} -> {t}"

    def test_equivalence_with_warm_interval_cache(self, space):
        """heap == bucket with the cross-search interval cache warm.

        The second pass must actually serve runs out of the cache
        (interval_cache_hits > 0) and still return identical paths.
        """
        from repro.obs import OBS

        space.interval_cache.clear()
        instances = self._instances(space, seed=505, count=10)
        for s, t in instances:  # warm pass populates the cache
            self._run_kernels(space, s, t, interval_path_search, self._pi_h)
        OBS.reset()
        OBS.configure(enabled=True)
        try:
            for s, t in instances:
                heap_r, bucket_r = self._run_kernels(
                    space, s, t, interval_path_search, self._pi_h
                )
                assert (heap_r is None) == (bucket_r is None), f"{s} -> {t}"
                if heap_r is None:
                    continue
                assert heap_r.cost == bucket_r.cost, f"{s} -> {t}"
                assert heap_r.vertices == bucket_r.vertices, f"{s} -> {t}"
            assert OBS.counters.get("fastgrid.interval_cache_hits", 0) > 0
        finally:
            OBS.reset()

    def test_resolve_kernel(self):
        assert isinstance(resolve_kernel("heap"), HeapKernel)
        assert isinstance(resolve_kernel("bucket"), BucketKernel)
        assert isinstance(resolve_kernel(None), BucketKernel)
        kernel = HeapKernel()
        assert resolve_kernel(kernel) is kernel
        with pytest.raises(ValueError):
            resolve_kernel("fibonacci")

    def test_bucket_kernel_reuses_arrays_per_graph(self, space):
        kernel = BucketKernel()
        f1 = kernel.new_search(space.graph)
        f2 = kernel.new_search(space.graph)
        assert f1._arrays is f2._arrays
        assert f2._gen > f1._gen  # generation bump invalidates f1's labels


class TestFutureCosts:
    def test_pi_h_zero_at_target(self, space):
        t = (3, 2, 4)
        pi = FutureCostH(space.graph, [t], SearchCosts())
        assert pi(t) == 0

    def test_pi_h_admissible(self, space):
        rng = random.Random(3)
        graph = space.graph
        costs = SearchCosts()
        t = (3, 2, 4)
        pi = FutureCostH(graph, [t], costs)
        for _ in range(8):
            z = rng.choice(graph.stack.indices)
            s = (z, rng.randrange(len(graph.tracks[z])),
                 rng.randrange(len(graph.crosses[z])))
            if s == t:
                continue
            view = GraphView(space, "default", RoutingArea.everywhere(),
                             forced_vertices={s, t})
            result = node_path_search(view, {s: 0}, {t}, costs, pi)
            if result is not None:
                assert pi(s) <= result.cost

    def test_pi_p_at_least_pi_h_and_admissible(self, space):
        graph = space.graph
        costs = SearchCosts()
        t = (3, 2, 4)
        area = RoutingArea.everywhere()
        large = [
            (layer, rect)
            for layer, rect, _own in space.chip.obstruction_shapes()
        ]
        pi_p = FutureCostP(graph, [t], costs, area, large)
        pi_h = FutureCostH(graph, [t], costs)
        rng = random.Random(4)
        for _ in range(8):
            z = rng.choice(graph.stack.indices)
            s = (z, rng.randrange(len(graph.tracks[z])),
                 rng.randrange(len(graph.crosses[z])))
            if s == t:
                continue
            assert pi_p(s) >= pi_h(s)
            view = GraphView(space, "default", area, forced_vertices={s, t})
            result = node_path_search(view, {s: 0}, {t}, costs, pi_h)
            if result is not None:
                assert pi_p(s) <= result.cost, "pi_P must stay admissible"

    def _optimal_cost(self, space, s, t, area=None):
        area = area or RoutingArea.everywhere()
        costs = SearchCosts()
        pi_h = FutureCostH(space.graph, [t], costs)
        view = GraphView(space, "default", area, forced_vertices={s, t})
        result = interval_path_search(view, {s: 0}, {t}, costs, pi_h)
        return None if result is None else result.cost

    def test_pi_gr_zero_at_target_and_dominates_pi_h(self, space):
        graph = space.graph
        costs = SearchCosts()
        t = (3, 2, 4)
        area = RoutingArea.everywhere()
        pi_gr = FutureCostGR(graph, [t], costs, area)
        pi_h = FutureCostH(graph, [t], costs)
        assert pi_gr(t) == 0
        rng = random.Random(11)
        for _ in range(12):
            z = rng.choice(graph.stack.indices)
            s = (z, rng.randrange(len(graph.tracks[z])),
                 rng.randrange(len(graph.crosses[z])))
            assert pi_gr(s) >= pi_h(s)

    def test_pi_gr_admissible(self, space):
        """pi_GR(s) never exceeds the true optimal search cost."""
        graph = space.graph
        costs = SearchCosts()
        t = (3, 2, 4)
        area = RoutingArea.everywhere()
        pi_gr = FutureCostGR(graph, [t], costs, area)
        rng = random.Random(12)
        for _ in range(20):
            z = rng.choice(graph.stack.indices)
            s = (z, rng.randrange(len(graph.tracks[z])),
                 rng.randrange(len(graph.crosses[z])))
            if s == t:
                continue
            cost = self._optimal_cost(space, s, t)
            if cost is not None:
                assert pi_gr(s) <= cost

    def test_pi_gr_view_mode_admissible_with_penalties(self, space):
        """View-mode pi_GR (penalty-aware, source-truncated) stays below
        the true cost of the search it steers."""
        graph = space.graph
        costs = SearchCosts()
        area = RoutingArea.everywhere()
        rng = random.Random(13)
        checked = 0
        while checked < 20:
            z1 = rng.choice(graph.stack.indices)
            z2 = rng.choice(graph.stack.indices)
            s = (z1, rng.randrange(len(graph.tracks[z1])),
                 rng.randrange(len(graph.crosses[z1])))
            t = (z2, rng.randrange(len(graph.tracks[z2])),
                 rng.randrange(len(graph.crosses[z2])))
            if s == t:
                continue
            view = GraphView(space, "default", area, forced_vertices={s, t})
            pi_gr = FutureCostGR(graph, [t], costs, area,
                                 view=view, stop_vertices={s})
            result = interval_path_search(view, {s: 0}, {t}, costs, pi_gr)
            reference = self._optimal_cost(space, s, t)
            if reference is None:
                assert result is None
                continue
            assert result is not None
            assert result.cost == reference
            assert pi_gr(s) <= reference
            checked += 1

    def test_pi_gr_unreachable_proof_prunes(self, space):
        """Disconnected target: the view-mode bound proves it and the
        search stops after O(1) labels instead of exhausting."""
        graph = space.graph
        z = 5
        x0, y0, _ = graph.position((z, 0, 0))
        area = RoutingArea.from_boxes([(z, Rect(x0, y0, x0 + 100, y0 + 100))])
        costs = SearchCosts()
        s = (z, 0, 0)
        t = (z, len(graph.tracks[z]) - 1, len(graph.crosses[z]) - 1)
        view = GraphView(space, "default", area, forced_vertices={s})
        pi_gr = FutureCostGR(graph, [t], costs, area,
                             view=view, stop_vertices={s})
        assert pi_gr.unreachable_is_proof
        assert pi_gr(s) >= UNREACHABLE
        result = interval_path_search(view, {s: 0}, {t}, costs, pi_gr)
        assert result is None

    def test_search_with_pi_p_same_cost(self, space):
        graph = space.graph
        costs = SearchCosts()
        s, t = (1, 2, 5), (4, 3, 10)
        area = RoutingArea.everywhere()
        large = [
            (layer, rect)
            for layer, rect, _own in space.chip.obstruction_shapes()
        ]
        pi_p = FutureCostP(graph, [t], costs, area, large)
        pi_h = FutureCostH(graph, [t], costs)
        view1 = GraphView(space, "default", area, forced_vertices={s, t})
        view2 = GraphView(space, "default", area, forced_vertices={s, t})
        r_h = interval_path_search(view1, {s: 0}, {t}, costs, pi_h)
        r_p = interval_path_search(view2, {s: 0}, {t}, costs, pi_p)
        assert (r_h is None) == (r_p is None)
        if r_h is not None:
            assert r_h.cost == r_p.cost
