"""Tests for the chip model and the synthetic generator."""

from collections import Counter

import pytest

from repro.chip.cells import CircuitInstance, Orientation, example_cell_library
from repro.chip.design import Blockage, Chip
from repro.chip.generator import ChipSpec, TABLE_CHIP_SPECS, generate_chip
from repro.chip.net import Net, Pin
from repro.geometry.rect import Rect
from repro.tech.stacks import example_rules, example_stack, example_wiretypes


def _tiny_chip():
    stack = example_stack(4)
    return Chip(
        "tiny",
        Rect(0, 0, 1000, 1000),
        stack,
        example_rules(4),
        example_wiretypes(stack),
        nets=[
            Net(
                "n0",
                [
                    Pin("p0", [(1, Rect(0, 0, 40, 40))]),
                    Pin("p1", [(1, Rect(900, 900, 940, 940))]),
                ],
            )
        ],
    )


class TestPinsAndNets:
    def test_pin_requires_shapes(self):
        with pytest.raises(ValueError):
            Pin("empty", [])

    def test_net_requires_two_pins(self):
        with pytest.raises(ValueError):
            Net("n", [Pin("p", [(1, Rect(0, 0, 1, 1))])])

    def test_net_backlink(self):
        chip = _tiny_chip()
        net = chip.net("n0")
        assert all(pin.net is net for pin in net.pins)

    def test_half_perimeter(self):
        net = _tiny_chip().net("n0")
        assert net.half_perimeter() == 940 + 940


class TestCells:
    def test_pin_shapes_translate(self):
        lib = example_cell_library()
        inst = CircuitInstance(0, lib[0], 1000, 2000)
        for layer, rect in inst.pin_shapes("A"):
            template_rect = lib[0].pins["A"][0][1]
            assert rect == template_rect.translated(1000, 2000)

    def test_fn_orientation_mirrors_x(self):
        lib = example_cell_library()
        n = CircuitInstance(0, lib[0], 0, 0, Orientation.N)
        fn = CircuitInstance(1, lib[0], 0, 0, Orientation.FN)
        n_rect = n.pin_shapes("A")[0][1]
        fn_rect = fn.pin_shapes("A")[0][1]
        width = lib[0].width
        assert fn_rect.x_lo == width - n_rect.x_hi
        assert fn_rect.x_hi == width - n_rect.x_lo
        assert fn_rect.y_lo == n_rect.y_lo

    def test_circuit_class_key_groups_by_template_and_orientation(self):
        lib = example_cell_library()
        a = CircuitInstance(0, lib[0], 0, 0, Orientation.N)
        b = CircuitInstance(1, lib[0], 800, 0, Orientation.N)
        c = CircuitInstance(2, lib[0], 0, 0, Orientation.FN)
        assert a.circuit_class_key() == b.circuit_class_key()
        assert a.circuit_class_key() != c.circuit_class_key()


class TestChip:
    def test_duplicate_net_name_rejected(self):
        chip = _tiny_chip()
        with pytest.raises(ValueError):
            chip.add_net(
                Net(
                    "n0",
                    [
                        Pin("x", [(1, Rect(0, 0, 1, 1))]),
                        Pin("y", [(1, Rect(5, 5, 6, 6))]),
                    ],
                )
            )

    def test_requires_default_wiretype(self):
        stack = example_stack(4)
        with pytest.raises(ValueError):
            Chip("bad", Rect(0, 0, 10, 10), stack, example_rules(4), {})

    def test_obstruction_shapes_include_blockages(self):
        chip = _tiny_chip()
        chip.blockages.append(Blockage(1, Rect(0, 0, 10, 10), "rail"))
        shapes = chip.obstruction_shapes()
        assert any(owner is None for _, _, owner in shapes)


class TestGenerator:
    def test_deterministic(self):
        spec = TABLE_CHIP_SPECS[0]
        a = generate_chip(spec)
        b = generate_chip(spec)
        assert [n.name for n in a.nets] == [n.name for n in b.nets]
        assert [p.name for n in a.nets for p in n.pins] == [
            p.name for n in b.nets for p in n.pins
        ]

    def test_seed_changes_netlist(self):
        base = TABLE_CHIP_SPECS[0]
        other = ChipSpec("alt", base.rows, base.row_width_cells, base.net_count, seed=999)
        a = generate_chip(base)
        b = generate_chip(other)
        pins_a = [p.name for n in a.nets for p in n.pins]
        pins_b = [p.name for n in b.nets for p in n.pins]
        assert pins_a != pins_b

    def test_requested_net_count_reached(self):
        chip = generate_chip(TABLE_CHIP_SPECS[0])
        assert len(chip.nets) == TABLE_CHIP_SPECS[0].net_count

    def test_each_pin_used_once(self):
        chip = generate_chip(TABLE_CHIP_SPECS[1])
        names = [p.name for n in chip.nets for p in n.pins]
        assert len(names) == len(set(names))

    def test_terminal_histogram_spans_table2_classes(self):
        chip = generate_chip(TABLE_CHIP_SPECS[-1])
        hist = Counter(n.terminal_count for n in chip.nets)
        assert hist[2] > 0 and hist[3] > 0 and hist[4] > 0
        assert any(5 <= k <= 10 for k in hist)
        assert any(k >= 11 for k in hist)

    def test_pins_inside_die(self):
        chip = generate_chip(TABLE_CHIP_SPECS[0])
        for pin in chip.all_pins():
            for layer, rect in pin.shapes:
                assert chip.die.contains_rect(rect)

    def test_power_rails_present(self):
        chip = generate_chip(TABLE_CHIP_SPECS[0])
        labels = Counter(b.label for b in chip.blockages)
        assert labels["power_rail"] >= 2
        assert labels["power_strap"] >= 1
