"""Tests for the HTML report generator, the heatmap rasterizer, the
trace-schema validator's edge cases, and the ``repro viz`` subcommand.

The report golden-structure test asserts what a consumer relies on:
every SVG block is well-formed XML, all stage spans appear in the
waterfall, and the heatmap / track / histogram sections are present.
"""

import json
import re
import xml.etree.ElementTree as ET
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.chip.generator import ChipSpec, generate_chip
from repro.flow.bonnroute import BonnRouteFlow
from repro.io.textformat import write_chip_file
from repro.obs import (
    OBS,
    congestion_heatmap,
    heatmap_layers,
    validate_trace_file,
    validate_trace_lines,
)
from repro.obs.report import (
    build_report,
    load_trace,
    records_from_observer,
    track_utilization,
    write_route_report,
)

SPEC = ChipSpec("reptest", rows=2, row_width_cells=4, net_count=6, seed=3)

_META = json.dumps({"type": "meta", "schema": "repro-trace", "version": 1})
_SUMMARY = json.dumps(
    {"type": "summary", "counters": {}, "gauges": {}, "histograms": {},
     "spans": {}}
)


@pytest.fixture(autouse=True)
def _clean_singleton():
    OBS.reset()
    OBS.enabled = False
    yield
    OBS.reset()
    OBS.enabled = False


@pytest.fixture(scope="module")
def br_result():
    # The flow instruments the OBS singleton, so configure it for this
    # module-scoped fixture and snapshot what the report needs before
    # the function-scoped cleaner resets it.
    OBS.reset()
    OBS.configure(enabled=True)
    result = BonnRouteFlow(generate_chip(SPEC), gr_phases=6, seed=1).run()
    records = records_from_observer(OBS)
    from repro.obs.report import histograms_from_observer

    histograms = histograms_from_observer(OBS)
    OBS.reset()
    OBS.enabled = False
    return result, records, histograms


def _svg_blocks(html):
    return re.findall(r"<svg.*?</svg>", html, re.S)


class TestSchemaEdgeCases:
    def test_empty_trace_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        errors = validate_trace_file(str(path))
        assert any("empty" in error for error in errors)

    def test_unknown_record_type(self):
        unknown = json.dumps({"type": "wormhole", "name": "x"})
        errors = validate_trace_lines([_META, unknown, _SUMMARY])
        assert any("unknown record type 'wormhole'" in e for e in errors)

    def test_unknown_event_name_characters(self):
        event = json.dumps({"type": "event", "name": "Bad Name", "t": 0.0})
        errors = validate_trace_lines([_META, event, _SUMMARY])
        assert any("invalid event name" in e for e in errors)

    def test_truncated_final_line(self, tmp_path):
        path = tmp_path / "truncated.jsonl"
        # A writer killed mid-record: the summary line is cut short.
        path.write_text(
            _META + "\n"
            + json.dumps({"type": "event", "name": "a.b", "t": 0.1}) + "\n"
            + _SUMMARY[: len(_SUMMARY) // 2] + "\n"
        )
        errors = validate_trace_file(str(path))
        assert any("invalid JSON" in e for e in errors)
        assert any("summary" in e for e in errors)

    def test_load_trace_skips_malformed_lines(self, tmp_path):
        path = tmp_path / "partial.jsonl"
        path.write_text(_META + "\n{truncat\n" + _SUMMARY + "\n")
        records = load_trace(str(path))
        assert [r["type"] for r in records] == ["meta", "summary"]


class TestHeatmap:
    def test_zero_capacity_edge_reports_raw_usage(self):
        class _Graph:
            tile_size = 10
            nx = 2
            ny = 1

            def capacity(self, edge):
                return 0.0

        class _Route:
            edges = {(((0, 0, 1), (1, 0, 1)))}

        class _Result:
            graph = _Graph()
            routes = {"n1": _Route(), "n2": _Route()}

            class chip:
                name = "synthetic"

        heatmap = congestion_heatmap(_Result())
        assert heatmap["edges"][0]["usage"] == 2
        assert heatmap["edges"][0]["utilization"] == 2.0
        assert heatmap["max_utilization"] == 2.0

    def test_heatmap_layers_rasterization(self):
        heatmap = {
            "tiles": [3, 2],
            "edges": [
                # Planar edge on layer 1.
                {"a": [0, 0, 1], "b": [1, 0, 1], "utilization": 0.5},
                # Via edge between layers 1 and 2 at tile (2, 1).
                {"a": [2, 1, 1], "b": [2, 1, 2], "utilization": 0.9},
                # Second edge at an already-painted tile: max wins.
                {"a": [0, 0, 1], "b": [0, 1, 1], "utilization": 0.2},
            ],
        }
        grids = heatmap_layers(heatmap)
        assert sorted(grids) == [1, 2]
        assert grids[1][0][0] == 0.5  # max(0.5, 0.2) at (0,0)
        assert grids[1][0][1] == 0.5
        assert grids[1][1][0] == 0.2
        assert grids[1][1][2] == 0.9  # via contributes to both layers
        assert grids[2][1][2] == 0.9

    def test_heatmap_layers_on_real_flow(self, br_result):
        result, _records, _histograms = br_result
        heatmap = congestion_heatmap(result.global_result)
        grids = heatmap_layers(heatmap)
        nx, ny = heatmap["tiles"]
        for grid in grids.values():
            assert len(grid) == ny and all(len(row) == nx for row in grid)
        if heatmap["edges"]:
            peak = max(v for g in grids.values() for row in g for v in row)
            assert peak == pytest.approx(heatmap["max_utilization"])


class TestReportStructure:
    def test_golden_structure_from_live_run(self, br_result, tmp_path):
        result, records, histograms = br_result
        heatmap = congestion_heatmap(result.global_result)
        html = build_report(
            "golden",
            trace_records=records,
            heatmap=heatmap,
            track_rows=track_utilization(result.space),
            histograms=histograms,
            meta={"chip": "reptest", "flow": "bonnroute"},
        )
        # Standalone: no external fetches of any kind.
        assert "http://" not in html.replace("http://www.w3.org", "")
        assert "https://" not in html
        # Every SVG block is well-formed XML.
        svgs = _svg_blocks(html)
        assert len(svgs) >= 3, "waterfall + heatmap + bars expected"
        for svg in svgs:
            ET.fromstring(svg)
        # All stage spans of the flow appear in the waterfall.
        waterfall = svgs[0]
        for stage in ("flow.run", "flow.global", "flow.detailed"):
            assert f'data-name="{stage}"' in waterfall, stage
        # Section presence.
        for section in (
            "Span waterfall", "Congestion heatmap",
            "Per-layer track utilization", "Histograms", "Work counters",
        ):
            assert section in html, section
        # The registry histograms render as bucketed bars.
        assert "flow.net_length_dbu" in html
        assert "flow.net_detour_ratio" in html

    def test_track_utilization_rows(self, br_result):
        result, _records, _histograms = br_result
        rows = track_utilization(result.space)
        layers = [row["layer"] for row in rows]
        assert layers == result.space.chip.stack.indices
        total_routed = sum(row["routed_dbu"] for row in rows)
        assert total_routed == result.space.total_wire_length()
        for row in rows:
            assert row["utilization"] >= 0.0
            assert row["tracks"] >= 0

    def test_report_without_optional_sections(self):
        html = build_report("bare", trace_records=[])
        assert "no spans recorded" in html
        assert "no heatmap attached" in html
        ET.fromstring("<root>" + "".join(_svg_blocks(html)) + "</root>")

    def test_write_route_report_and_offline_cli(self, br_result, tmp_path):
        result, _records, _histograms = br_result
        OBS.reset()
        OBS.configure(enabled=True)
        rerun = BonnRouteFlow(generate_chip(SPEC), gr_phases=6, seed=1).run()
        out = tmp_path / "report.html"
        html = write_route_report(str(out), rerun, OBS)
        assert out.read_text() == html
        assert "Routing report: reptest" in html

    def test_offline_report_from_trace_cli(self, tmp_path):
        chip_path = str(tmp_path / "chip.txt")
        write_chip_file(generate_chip(SPEC), chip_path)
        trace = str(tmp_path / "t.jsonl")
        heat = str(tmp_path / "h.json")
        report = str(tmp_path / "r.html")
        code = main([
            "route", chip_path, str(tmp_path / "routes.txt"),
            "--gr-phases", "6", "--seed", "1",
            "--trace-out", trace, "--heatmap-out", heat,
        ])
        assert code in (0, 1)
        from repro.obs.report import main as report_main

        assert report_main([trace, "--heatmap", heat, "-o", report]) == 0
        html = Path(report).read_text()
        for svg in _svg_blocks(html):
            ET.fromstring(svg)
        assert 'data-name="flow.run"' in html
        assert "Congestion heatmap" in html
        # Offline reports have no live space: stat rows, no track bars.
        assert "not available from a trace file alone" in html


class TestVizCli:
    @pytest.fixture()
    def chip_path(self, tmp_path):
        path = str(tmp_path / "chip.txt")
        write_chip_file(generate_chip(SPEC), path)
        return path

    def test_viz_renders_layer(self, chip_path, capsys):
        assert main(["viz", chip_path, "--layer", "1", "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("layer M1")

    def test_viz_window_clips(self, chip_path, capsys):
        assert main([
            "viz", chip_path, "--layer", "1", "--width", "40",
            "--window", "0,0,1000,800",
        ]) == 0
        out = capsys.readouterr().out
        assert "window=(0, 0, 1000, 800)" in out

    def test_viz_rejects_out_of_range_layer(self, chip_path, capsys):
        assert main(["viz", chip_path, "--layer", "42"]) == 2
        err = capsys.readouterr().err
        assert "layer M42" in err and "valid layers" in err

    def test_viz_rejects_malformed_window(self, chip_path, capsys):
        assert main(["viz", chip_path, "--window", "1,2,3"]) == 2
        assert "--window" in capsys.readouterr().err
        assert main(["viz", chip_path, "--window", "5,5,1,9"]) == 2
        assert "non-empty" in capsys.readouterr().err

    def test_render_layer_raises_value_error(self, br_result):
        from repro.viz import render_layer

        result, _records, _histograms = br_result
        with pytest.raises(ValueError, match="valid layers"):
            render_layer(result.space, 99)
