"""Tests for the deterministic fault-injection harness."""

import time

import pytest

from repro.chip.generator import ChipSpec, generate_chip
from repro.flow.bonnroute import BonnRouteFlow
from repro.flow.faults import (
    FAULT_SITES,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)


class TestFaultSpec:
    def test_rejects_unknown_site(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec("bogus_site", fraction=0.5)

    def test_rejects_ambiguous_selection(self):
        with pytest.raises(ValueError):
            FaultSpec("path_search", nets=["a"], fraction=0.5)
        with pytest.raises(ValueError):
            FaultSpec("path_search")

    def test_explicit_net_list(self):
        spec = FaultSpec("path_search", nets=["a", "b"])
        assert spec.matches(0, "a")
        assert not spec.matches(0, "c")
        assert not spec.matches(0, None)

    def test_fraction_is_deterministic_per_seed(self):
        spec = FaultSpec("path_search", fraction=0.5)
        names = [f"n{i}" for i in range(64)]
        picked_1 = [n for n in names if spec.matches(7, n)]
        picked_2 = [n for n in names if spec.matches(7, n)]
        picked_other = [n for n in names if spec.matches(8, n)]
        assert picked_1 == picked_2
        assert picked_1 != picked_other
        # Roughly the requested fraction (stable hash, not exact).
        assert 10 <= len(picked_1) <= 54


class TestFaultPlanParse:
    def test_parse_minimal(self):
        plan = FaultPlan.parse(["path_search:0.1"], seed=3)
        assert len(plan.specs) == 1
        spec = plan.specs[0]
        assert spec.site == "path_search"
        assert spec.fraction == 0.1
        assert spec.kind == "raise"
        assert spec.fires_per_net == 1

    def test_parse_kind_and_persistent(self):
        plan = FaultPlan.parse(
            ["steiner_oracle:0.05:raise:inf", "path_search:0.2:stall:3"]
        )
        oracle, search = plan.specs
        assert oracle.fires_per_net is None
        assert search.kind == "stall"
        assert search.fires_per_net == 3

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="bad fault spec"):
            FaultPlan.parse(["path_search"])

    def test_injected_nets_listing(self):
        plan = FaultPlan([FaultSpec("rounding", nets=["x"])], seed=0)
        assert plan.injected_nets("rounding", ["x", "y"]) == ["x"]
        assert plan.injected_nets("path_search", ["x", "y"]) == []


class TestFaultInjector:
    def test_transient_fires_once_per_net(self):
        plan = FaultPlan([FaultSpec("path_search", nets=["a"])])
        injector = FaultInjector(plan)
        with pytest.raises(InjectedFault):
            injector.check("path_search", net="a")
        # Second check survives: the fault was transient.
        injector.check("path_search", net="a")
        assert injector.fire_count("path_search") == 1

    def test_persistent_fires_every_time(self):
        plan = FaultPlan(
            [FaultSpec("path_search", nets=["a"], fires_per_net=None)]
        )
        injector = FaultInjector(plan)
        for _ in range(3):
            with pytest.raises(InjectedFault):
                injector.check("path_search", net="a")
        assert injector.fire_count() == 3

    def test_sites_are_independent(self):
        plan = FaultPlan([FaultSpec("rounding", nets=["a"])])
        injector = FaultInjector(plan)
        injector.check("path_search", net="a")  # wrong site: no fire
        assert injector.fire_count() == 0

    def test_stall_sleeps_instead_of_raising(self, monkeypatch):
        slept = []
        monkeypatch.setattr(time, "sleep", slept.append)
        plan = FaultPlan(
            [FaultSpec("path_search", nets=["a"], kind="stall", stall_s=0.5)]
        )
        injector = FaultInjector(plan)
        injector.check("path_search", net="a")  # no raise
        assert slept == [0.5]
        assert injector.fired == [("path_search", "a", "stall")]

    def test_fault_sites_cover_documented_surface(self):
        assert set(FAULT_SITES) == {
            "steiner_oracle", "rounding", "path_search", "pin_access",
            "worker",
        }


class TestInjectionEndToEnd:
    def _chip(self, name, nets=6, seed=3):
        return generate_chip(
            ChipSpec(name, rows=2, row_width_cells=5, net_count=nets, seed=seed)
        )

    def test_flow_completes_under_each_site(self):
        """Whole-flow sanity: faults at every site are absorbed; the flow
        returns a result instead of raising."""
        for site in FAULT_SITES:
            chip = self._chip(f"site_{site}")
            plan = FaultPlan.parse([f"{site}:0.5"], seed=13)
            result = BonnRouteFlow(
                chip, gr_phases=4, seed=1, cleanup=False, fault_plan=plan
            ).run()
            assert result.metrics is not None, site
            detailed = result.detailed_result
            assert detailed.routed or detailed.failed, site

    def test_oracle_faults_counted_in_report(self):
        chip = self._chip("oracle")
        names = [n.name for n in chip.nets]
        plan = FaultPlan.parse(["steiner_oracle:0.9:raise:inf"], seed=13)
        flow = BonnRouteFlow(
            chip, gr_phases=4, seed=1, cleanup=False, fault_plan=plan
        )
        result = flow.run()
        # Persistent oracle faults on most nets must be visible in the
        # report (unless every net was local and skipped global routing).
        if plan.injected_nets("steiner_oracle", names) and (
            result.global_result.fractional is not None
            and result.global_result.fractional.oracle_calls > 0
        ):
            assert result.failure_report.global_faults > 0

    def test_same_plan_same_seed_is_reproducible(self):
        plan_a = FaultPlan.parse(["path_search:0.4"], seed=21)
        plan_b = FaultPlan.parse(["path_search:0.4"], seed=21)
        chip_a = self._chip("repro_a", seed=4)
        chip_b = generate_chip(
            ChipSpec("repro_a", rows=2, row_width_cells=5, net_count=6, seed=4)
        )
        result_a = BonnRouteFlow(
            chip_a, gr_phases=4, seed=1, cleanup=False, fault_plan=plan_a
        ).run()
        result_b = BonnRouteFlow(
            chip_b, gr_phases=4, seed=1, cleanup=False, fault_plan=plan_b
        ).run()
        assert result_a.detailed_result.routed == result_b.detailed_result.routed
        assert sorted(result_a.failure_report.net_failures) == sorted(
            result_b.failure_report.net_failures
        )
