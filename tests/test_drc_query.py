"""Tests for the distance rule checking module (Sec. 3.4)."""

import pytest

from repro.geometry.rect import Rect
from repro.grid.drc_query import DistanceRuleChecker
from repro.grid.shapegrid import RIPUP_FIXED, RipupLevel, ShapeGrid
from repro.tech.stacks import example_rules, example_stack, example_wiretypes
from repro.tech.wiring import ShapeKind, StickFigure


@pytest.fixture
def env():
    stack = example_stack(4)
    rules = example_rules(4)
    grid = ShapeGrid(Rect(0, 0, 8000, 8000), stack)
    checker = DistanceRuleChecker(grid, stack, rules)
    wire_types = example_wiretypes(stack)
    return stack, rules, grid, checker, wire_types


def _add_fixed(grid, rect, layer=1):
    grid.add_shape(
        "wiring", layer, rect, None, "blk", ShapeKind.BLOCKAGE, RIPUP_FIXED, 40
    )


def _add_net_wire(grid, rect, net, layer=1, level=RipupLevel.NORMAL):
    grid.add_shape(
        "wiring", layer, rect, net, "wire_w40", ShapeKind.WIRE, int(level), 40
    )


class TestCheckMetal:
    def test_empty_space_legal(self, env):
        *_, checker, _types = env
        result = checker.check_metal(1, Rect(100, 100, 200, 140), 40, "n0")
        assert result.legal

    def test_own_net_ignored(self, env):
        _stack, _rules, grid, checker, _types = env
        _add_net_wire(grid, Rect(100, 100, 500, 140), "n0")
        result = checker.check_metal(1, Rect(100, 100, 500, 140), 40, "n0")
        assert result.legal

    def test_too_close_foreign_wire_illegal(self, env):
        _stack, _rules, grid, checker, _types = env
        _add_net_wire(grid, Rect(100, 100, 500, 140), "other")
        # 20 dbu below required 40 spacing.
        candidate = Rect(100, 160, 500, 200)
        result = checker.check_metal(1, candidate, 40, "n0")
        assert not result.legal
        assert result.blockers == {"other"}
        assert result.max_ripup_needed == int(RipupLevel.NORMAL)

    def test_exactly_at_spacing_legal(self, env):
        _stack, _rules, grid, checker, _types = env
        _add_net_wire(grid, Rect(100, 100, 500, 140), "other")
        candidate = Rect(100, 180, 500, 220)  # gap exactly 40
        assert checker.check_metal(1, candidate, 40, "n0").legal

    def test_fixed_blockage_unrippable(self, env):
        _stack, _rules, grid, checker, _types = env
        _add_fixed(grid, Rect(100, 100, 500, 140))
        result = checker.check_metal(1, Rect(100, 150, 500, 190), 40, "n0")
        assert not result.legal
        assert result.max_ripup_needed == RIPUP_FIXED
        assert not result.legal_with_ripup(10)

    def test_legal_with_ripup_level(self, env):
        _stack, _rules, grid, checker, _types = env
        _add_net_wire(grid, Rect(100, 100, 500, 140), "other", level=RipupLevel.NORMAL)
        result = checker.check_metal(1, Rect(100, 150, 500, 190), 40, "n0")
        assert result.legal_with_ripup(int(RipupLevel.NORMAL))
        assert not result.legal_with_ripup(int(RipupLevel.CRITICAL))

    def test_wide_shape_needs_more_spacing(self, env):
        _stack, rules, grid, checker, _types = env
        # A wide (rule width 80) foreign shape: spacing table row kicks in.
        grid.add_shape(
            "wiring", 1, Rect(100, 100, 500, 180), "other", "wire_w80",
            ShapeKind.WIRE, int(RipupLevel.NORMAL), 80,
        )
        required = rules.spacing_rule(1).spacing(40, 80, 400)
        assert required > rules.spacing_rule(1).base_spacing
        gap_ok = Rect(100, 180 + required, 500, 220 + required)
        gap_bad = Rect(100, 180 + required - 10, 500, 220 + required - 10)
        assert checker.check_metal(1, gap_ok, 40, "n0").legal
        assert not checker.check_metal(1, gap_bad, 40, "n0").legal

    def test_run_length_dependence(self, env):
        """Long parallel wide runs need the biggest spacing; short ones not."""
        _stack, rules, grid, checker, _types = env
        rule = rules.spacing_rule(1)
        long_run = rule.table[-1][1]
        grid.add_shape(
            "wiring", 1, Rect(0, 100, long_run + 500, 180), "other", "w80",
            ShapeKind.WIRE, int(RipupLevel.NORMAL), 80,
        )
        mid = rule.spacing(80, 80, 0)
        top = rule.spacing(80, 80, long_run)
        assert top > mid
        # Short candidate (low run-length): mid spacing suffices.
        short = Rect(0, 180 + mid, 100, 260 + mid)
        assert checker.check_metal(1, short, 80, "n0").legal
        # Long candidate at the same gap: violates the long-run row.
        long_candidate = Rect(0, 180 + mid, long_run + 100, 260 + mid)
        assert not checker.check_metal(1, long_candidate, 80, "n0").legal

    def test_clipped_pieces_merged_for_run_length(self, env):
        """A long stored wire keeps its run-length despite cell clipping."""
        _stack, rules, grid, checker, _types = env
        rule = rules.spacing_rule(1)
        long_run = rule.table[-1][1]
        # Stored wide wire much longer than a shape-grid cell.
        grid.add_shape(
            "wiring", 1, Rect(0, 100, 6000, 180), "other", "w80",
            ShapeKind.WIRE, int(RipupLevel.NORMAL), 80,
        )
        mid = rule.spacing(80, 80, 0)
        long_candidate = Rect(0, 180 + mid, 6000, 260 + mid)
        result = checker.check_metal(1, long_candidate, 80, "n0")
        assert not result.legal, (
            "run-length must be computed on merged pieces, not per cell"
        )

    def test_query_count_increments(self, env):
        *_, checker, _types = env
        before = checker.query_count
        checker.check_metal(1, Rect(0, 0, 40, 40), 40, None)
        assert checker.query_count == before + 1


class TestViaChecks:
    def test_via_in_empty_space_legal(self, env):
        _stack, _rules, _grid, checker, types = env
        assert checker.check_via(types["default"], 1, 400, 400, "n0").legal

    def test_via_cut_spacing(self, env):
        stack, rules, grid, checker, types = env
        model = types["default"].via_model(1)
        # Place a foreign cut, then check another cut too close.
        for kind, layer, rect, cls, shape_kind in model.shapes(400, 400, 1):
            grid.add_shape(
                kind, layer, rect, "other", cls.name, shape_kind,
                int(RipupLevel.NORMAL), cls.rule_width,
            )
        spacing = rules.via_rule(1).cut_spacing
        too_close = checker.check_via(types["default"], 1, 400 + spacing, 400, "n0")
        assert not too_close.legal
        far = checker.check_via(
            types["default"], 1, 400 + 40 + spacing + 200, 400, "n0"
        )
        assert far.legal

    def test_inter_layer_via_rule_uses_projection(self, env):
        stack, rules, grid, checker, types = env
        model = types["default"].via_model(1)
        assert model.project_cut
        for kind, layer, rect, cls, shape_kind in model.shapes(400, 400, 1):
            grid.add_shape(
                kind, layer, rect, "other", cls.name, shape_kind,
                int(RipupLevel.NORMAL), cls.rule_width,
            )
        # A via on the next higher via layer, directly above: violates the
        # adjacent-layer rule via the stored projection.
        result = checker.check_via(types["default"], 2, 400, 400, "n0")
        assert not result.legal


class TestAllowedModels:
    def test_reports_all_shape_types(self, env):
        _stack, _rules, _grid, checker, types = env
        out = checker.allowed_models([types["default"]], 2, 400, 400, "n0")
        entry = out["default"]
        assert set(entry) == {"wire", "jog", "via_down", "via_up"}
        assert all(entry.values())

    def test_layer_restricted_type_has_no_entry(self, env):
        _stack, _rules, _grid, checker, types = env
        out = checker.allowed_models([types["wide"]], 1, 400, 400, "n0")
        assert "wire" not in out["wide"]

    def test_blocked_location_reports_false(self, env):
        _stack, _rules, grid, checker, types = env
        _add_fixed(grid, Rect(380, 380, 420, 420), layer=2)
        out = checker.allowed_models([types["default"]], 2, 400, 400, "n0")
        assert not out["default"]["wire"]
